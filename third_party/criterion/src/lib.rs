//! Vendored minimal stand-in for the `criterion` crate, used because this
//! workspace builds fully offline (no registry access).
//!
//! It keeps the same authoring API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`) but the
//! measurement loop is deliberately simple: each benchmark runs
//! `sample_size` timed iterations after a handful of warm-up iterations and
//! reports the mean wall-clock time per iteration. No statistics, HTML
//! reports, or outlier analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs are sized in [`Bencher::iter_batched`]
/// (accepted for API compatibility; batching is always one input per
/// iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is a fixed small number of
    /// untimed iterations here.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the measurement budget is
    /// `sample_size` iterations here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        sample_size,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    println!("bench {id}: {mean_ns:.0} ns/iter ({} iters)", b.iters);
}

/// Passed to each benchmark closure; drives the timing loop.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a single untimed iteration.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` with a fresh `setup()` input per iteration; the
    /// setup cost is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
