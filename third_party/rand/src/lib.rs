//! Vendored minimal stand-in for the `rand` crate, used because this
//! workspace builds fully offline (no registry access).
//!
//! It implements exactly the subset the workspace uses:
//!
//! - [`rngs::SmallRng`]: the same xoshiro256++ generator (seeded via
//!   SplitMix64) that `rand 0.8`'s `SmallRng` uses on 64-bit platforms, so
//!   raw `next_u64` streams match the real crate for a given
//!   `seed_from_u64` seed.
//! - [`Rng`]: `gen::<T>()` for the primitive types, `gen_bool`, and
//!   `gen_range` over half-open and inclusive integer/float ranges.
//! - [`SeedableRng::seed_from_u64`].
//!
//! Distribution details (`gen_range` rejection strategy, `gen_bool`
//! quantisation) are simplified relative to the real crate; the workspace
//! only relies on determinism and statistical quality, not on bit-exact
//! compatibility with `rand`'s derived distributions.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (low half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (same construction as
    /// `rand 0.8`'s `Standard` for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    if span == 0 {
                        // Full-width range: every word is in range.
                        return rng.next_u64() as $t;
                    }
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let u = <$t as Standard>::sample_standard(rng);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let u = <$t as Standard>::sample_standard(rng);
                    start + u * (end - start)
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 — the algorithm behind
    /// `rand 0.8`'s `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn matches_reference_xoshiro256plusplus_stream() {
        // First outputs of xoshiro256++ seeded with SplitMix64(0), as
        // produced by the rand_xoshiro reference implementation.
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.gen::<u64>();
        let mut a = SmallRng::seed_from_u64(0);
        assert_eq!(first, a.gen::<u64>());
        assert_ne!(first, a.gen::<u64>());
    }

    #[test]
    fn unit_interval_floats() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
