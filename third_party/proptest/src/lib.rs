//! Vendored minimal stand-in for the `proptest` crate, used because this
//! workspace builds fully offline (no registry access).
//!
//! Supported surface (exactly what the workspace's property tests use):
//!
//! - the [`proptest!`] macro with `fn name(arg in strategy, ...) { .. }`
//!   items, including outer attributes and doc comments;
//! - range strategies over the primitive integers and floats (`a..b` and
//!   `a..=b`), tuple strategies (2- and 3-tuples), `Just`,
//!   [`prop::collection::vec`], [`prop::bool::ANY`], [`prop_oneof!`] and
//!   [`Strategy::prop_map`];
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from the real crate: cases are sampled deterministically
//! from a per-test seed (no persistence files), there is **no shrinking**,
//! and the case count comes from `PROPTEST_CASES` (default 64).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// RNG used to drive sampling. Deterministic per (test, case index).
pub type TestRng = SmallRng;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assumption failed; the case is skipped, not failed.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Result type the generated test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
///
/// Unlike the real crate there is no value tree: strategies sample directly
/// and nothing shrinks.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates an empty union (must be populated before sampling).
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one alternative.
    pub fn push<S: Strategy<Value = T> + 'static>(&mut self, s: S) {
        self.arms.push(Box::new(s));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.gen_range(self.clone())
                }
            }
        )*
    };
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy modules mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// An inclusive range of collection sizes, converted from the
        /// range forms `proptest` accepts (`a..b`, `a..=b`, `n`).
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            max_inclusive: usize,
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max_inclusive: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max_inclusive: *r.end(),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    min: n,
                    max_inclusive: n,
                }
            }
        }

        /// A `Vec` strategy with element strategy `element` and a length
        /// drawn from `size` (typically a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                use rand::Rng;
                let n = rng.gen_range(self.size.min..=self.size.max_inclusive);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// A uniformly random boolean.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                use rand::Rng;
                rng.gen_bool(0.5)
            }
        }
    }
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Builds the deterministic RNG for one case of one named test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37_79B9))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property body (fails the case, with the
/// sampled inputs echoed by the harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut u = $crate::Union::empty();
        $(u.push($arm);)+
        u
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` that samples its arguments for a number of deterministic cases
/// and runs the body; `prop_assert*`/`prop_assume` control the outcome.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let strategies = ($($strat,)+);
                let mut ran = 0u32;
                let mut attempts = 0u32;
                let total = $crate::cases();
                while ran < total {
                    attempts += 1;
                    assert!(
                        attempts < total.saturating_mul(20).max(1000),
                        "too many rejected cases in {}", stringify!($name)
                    );
                    let mut rng = $crate::case_rng(stringify!($name), attempts);
                    #[allow(non_snake_case)]
                    let ($($arg,)+) = {
                        let ($(ref $arg,)+) = strategies;
                        ($($arg.sample(&mut rng),)+)
                    };
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> $crate::TestCaseResult {
                        $(let $arg = $arg;)+
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => ran += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed at case {}: {}\ninputs: {}",
                                stringify!($name), ran, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u32..5, 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            for x in xs {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..10).prop_map(|x| x * 2),
            Just(99u64),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn tuples_and_bools(pair in (0u8..4, prop::bool::ANY)) {
            prop_assert!(pair.0 < 4);
        }
    }

    #[test]
    fn deterministic_rng_per_case() {
        use crate::Strategy;
        let s = 0u64..1000;
        let a = s.sample(&mut crate::case_rng("t", 1));
        let b = s.sample(&mut crate::case_rng("t", 1));
        assert_eq!(a, b);
    }
}
