//! Property-based tests for the supervisor mode machine.
//!
//! The graceful-degradation story rests on two invariants: the mode
//! machine is a *pure* function of its health-sample history (so runs are
//! reproducible and the pin tests mean something), and its hysteresis
//! actually prevents flapping (oscillating health signals cannot thrash
//! modes). Both are checked over randomly generated sample sequences.

// `SystemParams::new` genuinely takes a Vec of managed page ranges.
#![allow(clippy::single_range_in_vec_init)]

use proptest::prelude::*;
use tiersys::{HealthSample, SupervisorConfig, SupervisorMode};

fn config() -> SupervisorConfig {
    SupervisorConfig::new(std::iter::once(0..64).collect())
}

/// An arbitrary-but-plausible health sample: mixes healthy ticks,
/// partial failures, total failures, backlog pressure, inversion, and
/// hard-fault evidence.
fn sample() -> impl Strategy<Value = HealthSample> {
    (
        (
            0u64..8,   // failed
            0u64..8,   // succeeded
            0u64..512, // retry_pending
            0u64..4,   // evacuated
        ),
        (
            prop::bool::ANY, // tier_shrunk
            0u64..4,         // over_capacity
            prop::bool::ANY, // latency_inverted
            prop::bool::ANY, // drain_active
        ),
        0.0f64..8.0, // copy_slowdown (spans both sides of the threshold)
    )
        .prop_map(
            |(
                (failed, succeeded, retry_pending, evacuated),
                (tier_shrunk, over_capacity, latency_inverted, drain_active),
                copy_slowdown,
            )| HealthSample {
                failed,
                succeeded,
                retry_pending,
                evacuated,
                tier_shrunk,
                over_capacity,
                latency_inverted,
                drain_active,
                copy_slowdown,
            },
        )
}

/// A sample that is unambiguously healthy.
fn healthy_sample() -> impl Strategy<Value = HealthSample> {
    (0u64..4).prop_map(|succeeded| HealthSample {
        succeeded: succeeded + 1,
        ..HealthSample::default()
    })
}

/// A sample that is unhealthy but carries no hard-fault evidence (so the
/// immediate Evacuating escape hatch stays closed).
fn soft_unhealthy_sample() -> impl Strategy<Value = HealthSample> {
    (1u64..8, prop::bool::ANY).prop_map(|(failed, all_fail)| HealthSample {
        failed,
        succeeded: if all_fail { 0 } else { failed.div_ceil(3) },
        ..HealthSample::default()
    })
}

proptest! {
    /// Determinism: the same sample sequence always produces the same mode
    /// sequence. (The machine holds no clock and no RNG; this pins that.)
    #[test]
    fn mode_machine_is_deterministic(
        steps in prop::collection::vec(sample(), 1..300)
    ) {
        let mut a = tiersys::supervisor::ModeMachine::new(&config());
        let mut b = tiersys::supervisor::ModeMachine::new(&config());
        for s in &steps {
            prop_assert_eq!(a.step(s), b.step(s));
        }
    }

    /// Hysteresis, degrade direction: as long as no `enter_ticks`-long run
    /// of consecutive unhealthy ticks occurs, the machine never leaves
    /// Normal — a flapping signal (unhealthy bursts shorter than the
    /// hysteresis window) cannot thrash modes.
    #[test]
    fn short_unhealthy_bursts_never_degrade(
        bursts in prop::collection::vec(
            (prop::collection::vec(soft_unhealthy_sample(), 1..3),
             prop::collection::vec(healthy_sample(), 1..4)),
            1..40,
        )
    ) {
        let cfg = config();
        prop_assume!(cfg.enter_ticks == 3);
        let mut mm = tiersys::supervisor::ModeMachine::new(&cfg);
        for (unhealthy, healthy) in bursts {
            // Bursts of 1–2 unhealthy ticks stay under enter_ticks=3
            // because each is followed by at least one healthy tick.
            for s in &unhealthy {
                prop_assert_eq!(mm.step(s), SupervisorMode::Normal);
            }
            for s in &healthy {
                prop_assert_eq!(mm.step(s), SupervisorMode::Normal);
            }
        }
    }

    /// Hysteresis, recover direction: once degraded, short healthy bursts
    /// (below `exit_ticks`) never recover the mode — the machine stays in
    /// Throttled rather than bouncing Throttled → Recovered → Throttled.
    #[test]
    fn short_healthy_bursts_never_recover(
        bursts in prop::collection::vec(
            (prop::collection::vec(healthy_sample(), 1..9),
             prop::collection::vec(soft_unhealthy_sample(), 1..3)),
            1..40,
        )
    ) {
        let cfg = config();
        prop_assume!(cfg.exit_ticks == 10);
        let mut mm = tiersys::supervisor::ModeMachine::new(&cfg);
        // Degrade for real: enter_ticks consecutive mixed-failure ticks.
        let degraded = HealthSample { failed: 3, succeeded: 1, ..HealthSample::default() };
        for _ in 0..cfg.enter_ticks {
            mm.step(&degraded);
        }
        prop_assert!(mm.mode() != SupervisorMode::Normal);
        for (healthy, unhealthy) in bursts {
            // Healthy runs of at most 8 < exit_ticks=10 ticks, every run
            // terminated by an unhealthy tick: recovery must never fire.
            for s in &healthy {
                let mode = mm.step(s);
                prop_assert!(
                    mode != SupervisorMode::Recovered && mode != SupervisorMode::Normal,
                    "recovered early into {:?}", mode
                );
            }
            for s in &unhealthy {
                let mode = mm.step(s);
                prop_assert!(
                    mode != SupervisorMode::Recovered && mode != SupervisorMode::Normal,
                    "recovered early into {:?}", mode
                );
            }
        }
    }

    /// Liveness under sustained health: from any reachable state, a long
    /// enough run of healthy ticks with no hard-fault evidence always
    /// brings the machine back to Normal.
    #[test]
    fn sustained_health_always_recovers(
        prefix in prop::collection::vec(sample(), 0..120),
    ) {
        let cfg = config();
        let mut mm = tiersys::supervisor::ModeMachine::new(&cfg);
        for s in &prefix {
            mm.step(s);
        }
        // Enough healthy ticks to exit any mode and complete the
        // Recovered dwell, with margin.
        let enough = (cfg.exit_ticks + cfg.recovered_dwell + cfg.enter_ticks) * 3;
        let healthy = HealthSample { succeeded: 1, ..HealthSample::default() };
        let mut mode = mm.mode();
        for _ in 0..enough {
            mode = mm.step(&healthy);
        }
        prop_assert_eq!(mode, SupervisorMode::Normal);
    }
}

mod n_tier_conservation {
    use super::*;
    use memsim::{
        AccessStream, CoreConfig, Machine, MachineConfig, ObjectAccess, TierId, TrafficClass,
        LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE,
    };
    use rand::rngs::SmallRng;
    use rand::Rng;
    use simkit::SimTime;
    use tiersys::{build_system, ColloidParams, SystemKind, SystemParams};

    /// First page of the application's region (the antagonist's pinned
    /// buffer lives at the bottom of the address space).
    const APP_BASE: u64 = 1024;
    /// Pinned antagonist buffer on the local tier, pages `[0, 64)`.
    const ANTAGONIST_PAGES: u64 = 64;

    /// 90/10 hot/cold stream over `[base, base + total)`.
    struct HotCold {
        base: u64,
        hot: u64,
        total: u64,
    }
    impl AccessStream for HotCold {
        fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
            let off = if rng.gen_bool(0.9) {
                rng.gen_range(0..self.hot)
            } else {
                rng.gen_range(0..self.total)
            };
            let vpn = self.base + off;
            ObjectAccess::read_line(vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE)
        }
    }

    /// Every page accounted for: each managed page resident in exactly one
    /// tier (that is what `tier_of` can report), every pinned antagonist
    /// page still on the local tier, and no tier over its capacity.
    fn assert_conserved(m: &Machine, ws: u64, ctx: &str) -> Result<(), TestCaseError> {
        let mut per_tier = vec![0u64; m.config().tiers.len()];
        for vpn in (0..ANTAGONIST_PAGES).chain(APP_BASE..APP_BASE + ws) {
            match m.tier_of(vpn) {
                Some(t) => per_tier[usize::from(t.0)] += 1,
                None => {
                    return Err(TestCaseError::Fail(format!(
                        "{ctx}: page {vpn} lost (not resident in any tier)"
                    )))
                }
            }
        }
        for vpn in 0..ANTAGONIST_PAGES {
            prop_assert_eq!(
                m.tier_of(vpn),
                Some(TierId(0)),
                "{}: pinned page {} moved",
                ctx,
                vpn
            );
        }
        for (i, (&n, t)) in per_tier.iter().zip(m.config().tiers.iter()).enumerate() {
            prop_assert!(
                n <= t.capacity_bytes / PAGE_SIZE,
                "{}: tier {} holds {} pages, over its capacity",
                ctx,
                i,
                n
            );
        }
        Ok(())
    }

    proptest! {
        /// Across every tiering system ± Colloid on a three-tier chain, a
        /// mid-run antagonist storm on the local tier never loses, forks,
        /// or overflows a page: one-hop promotion/demotion and the room-
        /// making spills conserve the page population at every step.
        #[test]
        fn contention_shift_conserves_pages_on_three_tiers(
            kind_idx in 0usize..3,
            colloid in prop::bool::ANY,
            ws in 128u64..=192,
            hot in 16u64..=48,
            seed in 0u64..1_000_000,
        ) {
            let kind = SystemKind::ALL[kind_idx];
            let mut cfg = MachineConfig::cxl_three_tier();
            cfg.tiers[0].capacity_bytes = 96 * PAGE_SIZE;
            cfg.tiers[1].capacity_bytes = 128 * PAGE_SIZE;
            cfg.tiers[2].capacity_bytes = 2048 * PAGE_SIZE;
            cfg.pebs_period = 16;
            cfg.seed = seed;
            let mut m = Machine::new(cfg);
            m.place_range(0..ANTAGONIST_PAGES, TierId(0));
            for vpn in 0..ANTAGONIST_PAGES {
                m.pin(vpn);
            }
            let mut antagonists = Vec::new();
            for _ in 0..2 {
                let id = m.add_core(
                    Box::new(HotCold { base: 0, hot: ANTAGONIST_PAGES, total: ANTAGONIST_PAGES }),
                    CoreConfig::antagonist_default(),
                    TrafficClass::Antagonist,
                );
                m.set_core_active(id, false);
                antagonists.push(id);
            }
            m.place_range(APP_BASE..APP_BASE + ws, TierId(2));
            m.add_core(
                Box::new(HotCold { base: APP_BASE, hot, total: ws }),
                CoreConfig::app_default(),
                TrafficClass::App,
            );
            let mut params = SystemParams::new(
                vec![APP_BASE..APP_BASE + ws],
                colloid.then(ColloidParams::default),
            );
            params.unloaded_ns = m
                .config()
                .tiers
                .iter()
                .map(|t| t.unloaded_latency().as_ns())
                .collect();
            let mut system = build_system(kind, params);
            for tick in 0..40 {
                let rep = m.run_tick(SimTime::from_us(100.0));
                system.on_tick(&mut m, &rep);
                if tick % 10 == 9 {
                    assert_conserved(&m, ws, &format!("pre-shift tick {tick}"))?;
                }
            }
            for &id in &antagonists {
                m.set_core_active(id, true);
            }
            for tick in 0..40 {
                let rep = m.run_tick(SimTime::from_us(100.0));
                system.on_tick(&mut m, &rep);
                if tick % 10 == 9 {
                    assert_conserved(&m, ws, &format!("post-shift tick {tick}"))?;
                }
            }
        }
    }
}
