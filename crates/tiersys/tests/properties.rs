//! Property-based tests for the supervisor mode machine.
//!
//! The graceful-degradation story rests on two invariants: the mode
//! machine is a *pure* function of its health-sample history (so runs are
//! reproducible and the pin tests mean something), and its hysteresis
//! actually prevents flapping (oscillating health signals cannot thrash
//! modes). Both are checked over randomly generated sample sequences.

use proptest::prelude::*;
use tiersys::{HealthSample, SupervisorConfig, SupervisorMode};

fn config() -> SupervisorConfig {
    SupervisorConfig::new(std::iter::once(0..64).collect())
}

/// An arbitrary-but-plausible health sample: mixes healthy ticks,
/// partial failures, total failures, backlog pressure, inversion, and
/// hard-fault evidence.
fn sample() -> impl Strategy<Value = HealthSample> {
    (
        (
            0u64..8,   // failed
            0u64..8,   // succeeded
            0u64..512, // retry_pending
            0u64..4,   // evacuated
        ),
        (
            prop::bool::ANY, // tier_shrunk
            0u64..4,         // over_capacity
            prop::bool::ANY, // latency_inverted
            prop::bool::ANY, // drain_active
        ),
        0.0f64..8.0, // copy_slowdown (spans both sides of the threshold)
    )
        .prop_map(
            |(
                (failed, succeeded, retry_pending, evacuated),
                (tier_shrunk, over_capacity, latency_inverted, drain_active),
                copy_slowdown,
            )| HealthSample {
                failed,
                succeeded,
                retry_pending,
                evacuated,
                tier_shrunk,
                over_capacity,
                latency_inverted,
                drain_active,
                copy_slowdown,
            },
        )
}

/// A sample that is unambiguously healthy.
fn healthy_sample() -> impl Strategy<Value = HealthSample> {
    (0u64..4).prop_map(|succeeded| HealthSample {
        succeeded: succeeded + 1,
        ..HealthSample::default()
    })
}

/// A sample that is unhealthy but carries no hard-fault evidence (so the
/// immediate Evacuating escape hatch stays closed).
fn soft_unhealthy_sample() -> impl Strategy<Value = HealthSample> {
    (1u64..8, prop::bool::ANY).prop_map(|(failed, all_fail)| HealthSample {
        failed,
        succeeded: if all_fail { 0 } else { failed.div_ceil(3) },
        ..HealthSample::default()
    })
}

proptest! {
    /// Determinism: the same sample sequence always produces the same mode
    /// sequence. (The machine holds no clock and no RNG; this pins that.)
    #[test]
    fn mode_machine_is_deterministic(
        steps in prop::collection::vec(sample(), 1..300)
    ) {
        let mut a = tiersys::supervisor::ModeMachine::new(&config());
        let mut b = tiersys::supervisor::ModeMachine::new(&config());
        for s in &steps {
            prop_assert_eq!(a.step(s), b.step(s));
        }
    }

    /// Hysteresis, degrade direction: as long as no `enter_ticks`-long run
    /// of consecutive unhealthy ticks occurs, the machine never leaves
    /// Normal — a flapping signal (unhealthy bursts shorter than the
    /// hysteresis window) cannot thrash modes.
    #[test]
    fn short_unhealthy_bursts_never_degrade(
        bursts in prop::collection::vec(
            (prop::collection::vec(soft_unhealthy_sample(), 1..3),
             prop::collection::vec(healthy_sample(), 1..4)),
            1..40,
        )
    ) {
        let cfg = config();
        prop_assume!(cfg.enter_ticks == 3);
        let mut mm = tiersys::supervisor::ModeMachine::new(&cfg);
        for (unhealthy, healthy) in bursts {
            // Bursts of 1–2 unhealthy ticks stay under enter_ticks=3
            // because each is followed by at least one healthy tick.
            for s in &unhealthy {
                prop_assert_eq!(mm.step(s), SupervisorMode::Normal);
            }
            for s in &healthy {
                prop_assert_eq!(mm.step(s), SupervisorMode::Normal);
            }
        }
    }

    /// Hysteresis, recover direction: once degraded, short healthy bursts
    /// (below `exit_ticks`) never recover the mode — the machine stays in
    /// Throttled rather than bouncing Throttled → Recovered → Throttled.
    #[test]
    fn short_healthy_bursts_never_recover(
        bursts in prop::collection::vec(
            (prop::collection::vec(healthy_sample(), 1..9),
             prop::collection::vec(soft_unhealthy_sample(), 1..3)),
            1..40,
        )
    ) {
        let cfg = config();
        prop_assume!(cfg.exit_ticks == 10);
        let mut mm = tiersys::supervisor::ModeMachine::new(&cfg);
        // Degrade for real: enter_ticks consecutive mixed-failure ticks.
        let degraded = HealthSample { failed: 3, succeeded: 1, ..HealthSample::default() };
        for _ in 0..cfg.enter_ticks {
            mm.step(&degraded);
        }
        prop_assert!(mm.mode() != SupervisorMode::Normal);
        for (healthy, unhealthy) in bursts {
            // Healthy runs of at most 8 < exit_ticks=10 ticks, every run
            // terminated by an unhealthy tick: recovery must never fire.
            for s in &healthy {
                let mode = mm.step(s);
                prop_assert!(
                    mode != SupervisorMode::Recovered && mode != SupervisorMode::Normal,
                    "recovered early into {:?}", mode
                );
            }
            for s in &unhealthy {
                let mode = mm.step(s);
                prop_assert!(
                    mode != SupervisorMode::Recovered && mode != SupervisorMode::Normal,
                    "recovered early into {:?}", mode
                );
            }
        }
    }

    /// Liveness under sustained health: from any reachable state, a long
    /// enough run of healthy ticks with no hard-fault evidence always
    /// brings the machine back to Normal.
    #[test]
    fn sustained_health_always_recovers(
        prefix in prop::collection::vec(sample(), 0..120),
    ) {
        let cfg = config();
        let mut mm = tiersys::supervisor::ModeMachine::new(&cfg);
        for s in &prefix {
            mm.step(s);
        }
        // Enough healthy ticks to exit any mode and complete the
        // Recovered dwell, with margin.
        let enough = (cfg.exit_ticks + cfg.recovered_dwell + cfg.enter_ticks) * 3;
        let healthy = HealthSample { succeeded: 1, ..HealthSample::default() };
        let mut mode = mm.mode();
        for _ in 0..enough {
            mode = mm.step(&healthy);
        }
        prop_assert_eq!(mode, SupervisorMode::Normal);
    }
}
