//! MEMTIS (SOSP '23) and MEMTIS+Colloid (paper §4.2).
//!
//! MEMTIS differs from HeMem in four ways the paper calls out:
//!
//! 1. **dynamic PEBS sampling rate** to bound CPU overhead;
//! 2. a **dynamic hot threshold** derived from the measured access
//!    distribution (the hot set is sized to the fast tier's capacity);
//! 3. promotion/demotion on separate per-tier `kmigrated` threads with a
//!    500 ms quantum (scaled here to several machine ticks), with
//!    *proactive* demotion of non-hot pages;
//! 4. **page-size determination**: hugepages are split when their internal
//!    access distribution is skewed, and re-coalesced by a background
//!    thread that *scans the virtual address space* — a mechanism the
//!    paper's §2.2 measures to be "significantly longer than the time it
//!    takes for this workload to reach steady-state". The coalescer here
//!    reproduces that slowness: it walks a bounded number of pages per
//!    kmigrated quantum, so split regions effectively never re-coalesce
//!    within an experiment, exactly as the paper observes.
//!
//! The Colloid integration (411 LoC in the paper) replaces the alternate
//! tier's `kmigrated` policy with Algorithm 1, selecting pages by scanning
//! the per-tier hot lists until Δp is met, while the default-tier
//! `kmigrated` continues demoting cold pages on capacity pressure.

use std::collections::HashSet;

use memsim::{Machine, TickReport, TierId, Vpn, PAGE_SIZE};
use tierctl::{FreqTracker, MigrationBudget};

use crate::retry::{RetryPolicy, RetryQueue, RetryStats};
use crate::{ColloidDriver, SystemParams, TierMove, TieringSystem};

/// MEMTIS-specific knobs.
#[derive(Debug, Clone)]
pub struct MemtisConfig {
    /// kmigrated period in machine ticks (500 ms scaled).
    pub quantum_ticks: u32,
    /// Hugepage (region) size in base pages (scaled THP).
    pub region_pages: u64,
    /// Dynamic PEBS control: halve the rate above `hi` samples/tick,
    /// double it below `lo`.
    pub samples_lo: usize,
    /// See `samples_lo`.
    pub samples_hi: usize,
    /// Split a hot region when its hottest subpage exceeds this multiple of
    /// the region's mean subpage count.
    pub split_skew_factor: f64,
    /// Proactively demote non-hot pages even with free default frames.
    pub proactive_demotion: bool,
    /// Pages the background coalescer scans per kmigrated quantum. MEMTIS
    /// coalesces by scanning the virtual address space; the paper measures
    /// this to be far slower than workload convergence, which this default
    /// reproduces (a full pass over the §2.1 working set takes ~290
    /// quanta).
    pub coalesce_scan_pages: u64,
}

impl Default for MemtisConfig {
    fn default() -> Self {
        MemtisConfig {
            quantum_ticks: 5,
            region_pages: 16,
            samples_lo: 64,
            samples_hi: 4096,
            split_skew_factor: 4.0,
            proactive_demotion: true,
            coalesce_scan_pages: 64,
        }
    }
}

/// MEMTIS cooling threshold for the frequency tracker.
const COOLING_THRESHOLD: u32 = 32;

/// Telemetry counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemtisStats {
    /// Pages promoted into the default tier.
    pub promoted: u64,
    /// Pages demoted to the alternate tier.
    pub demoted: u64,
    /// Regions split into base pages.
    pub splits: u64,
    /// Regions re-coalesced by the background scanner.
    pub coalesces: u64,
    /// Current PEBS period.
    pub pebs_period: u64,
}

/// A placement unit: a whole (huge) region or a single split base page.
#[derive(Debug, Clone, Copy)]
struct Unit {
    first_vpn: Vpn,
    pages: u64,
    count: u64,
    tier: TierId,
}

impl Unit {
    fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE
    }

    /// Access density: samples per byte (MEMTIS ranks by per-byte hotness
    /// so small hot pages beat lukewarm hugepages).
    fn density(&self) -> f64 {
        self.count as f64 / self.bytes() as f64
    }
}

/// The MEMTIS tiering system (vanilla or +Colloid).
pub struct Memtis {
    params: SystemParams,
    cfg: MemtisConfig,
    tracker: FreqTracker,
    split: HashSet<Vpn>, // region base vpns that have been split
    budget: MigrationBudget,
    colloid: Option<ColloidDriver>,
    ticks: u32,
    pebs_period: u64,
    /// Virtual-address-space cursor of the background coalescer.
    coalesce_cursor: u64,
    // Accumulators for averaging counter windows over a kmigrated quantum.
    acc_meas: Vec<(f64, f64)>,
    acc_ticks: u32,
    retry: RetryQueue,
    frozen: bool,
    stats: MemtisStats,
}

impl Memtis {
    /// Builds MEMTIS; attaches Colloid when `params.colloid` is set.
    pub fn new(params: SystemParams, cfg: MemtisConfig) -> Self {
        let colloid = params.build_colloid();
        let tiers = params.unloaded_ns.len();
        Memtis {
            tracker: FreqTracker::new(COOLING_THRESHOLD),
            split: HashSet::new(),
            budget: MigrationBudget::new(
                params.migration_limit_per_tick * cfg.quantum_ticks as u64,
            ),
            colloid,
            ticks: 0,
            pebs_period: 64,
            coalesce_cursor: 0,
            acc_meas: vec![(0.0, 0.0); tiers],
            acc_ticks: 0,
            retry: RetryQueue::new(RetryPolicy::default()),
            frozen: false,
            stats: MemtisStats {
                pebs_period: 64,
                ..MemtisStats::default()
            },
            cfg,
            params,
        }
    }

    /// Telemetry counters.
    pub fn stats(&self) -> MemtisStats {
        self.stats
    }

    fn region_base(&self, vpn: Vpn) -> Vpn {
        vpn / self.cfg.region_pages * self.cfg.region_pages
    }

    /// Dynamic PEBS rate control (MEMTIS bounds tracking overhead).
    fn adapt_sampling(&mut self, machine: &mut Machine, samples: usize) {
        if samples > self.cfg.samples_hi && self.pebs_period < 4096 {
            self.pebs_period *= 2;
            machine.set_pebs_period(self.pebs_period);
        } else if samples < self.cfg.samples_lo && self.pebs_period > 16 {
            self.pebs_period /= 2;
            machine.set_pebs_period(self.pebs_period);
        }
        self.stats.pebs_period = self.pebs_period;
    }

    /// Splits hot regions whose internal access distribution is skewed.
    fn split_pass(&mut self) {
        let rp = self.cfg.region_pages;
        let mut to_split = Vec::new();
        let mut region_counts: std::collections::HashMap<Vpn, (u64, u64)> =
            std::collections::HashMap::new();
        for (vpn, count) in self.tracker.iter() {
            let base = self.region_base(vpn);
            if self.split.contains(&base) {
                continue;
            }
            let e = region_counts.entry(base).or_insert((0, 0));
            e.0 += count as u64;
            e.1 = e.1.max(count as u64);
        }
        for (base, (total, max)) in region_counts {
            let mean = total as f64 / rp as f64;
            if total >= rp && max as f64 > self.cfg.split_skew_factor * mean.max(1.0) {
                to_split.push(base);
            }
        }
        for base in to_split {
            self.split.insert(base);
            self.stats.splits += 1;
        }
    }

    /// The background coalescer: advances a cursor over the managed virtual
    /// address space by `coalesce_scan_pages` per quantum; a split region
    /// it passes over is re-coalesced when its pages are tier-homogeneous
    /// and its access distribution is no longer skewed. The bounded scan
    /// rate makes a full pass take hundreds of quanta (paper §2.2).
    fn coalesce_pass(&mut self, machine: &Machine) {
        let total: u64 = self.params.managed.iter().map(|r| r.end - r.start).sum();
        if total == 0 || self.split.is_empty() {
            return;
        }
        let rp = self.cfg.region_pages;
        let mut scanned = 0;
        while scanned < self.cfg.coalesce_scan_pages {
            let pos = self.coalesce_cursor % total;
            // Map the flat cursor onto the managed ranges.
            let mut off = pos;
            let mut vpn = None;
            for r in &self.params.managed {
                let len = r.end - r.start;
                if off < len {
                    vpn = Some(r.start + off);
                    break;
                }
                off -= len;
            }
            self.coalesce_cursor = (pos / rp + 1) * rp; // next region boundary
            scanned += rp;
            let Some(vpn) = vpn else { break };
            let base = self.region_base(vpn);
            if !self.split.contains(&base) {
                continue;
            }
            // Tier-homogeneous?
            let tiers: Vec<_> = (base..base + rp).map(|p| machine.tier_of(p)).collect();
            if tiers.windows(2).any(|w| w[0] != w[1]) {
                continue;
            }
            // Still skewed?
            let counts: Vec<u64> = (base..base + rp)
                .map(|p| self.tracker.count(p) as u64)
                .collect();
            let totalc: u64 = counts.iter().sum();
            let max = counts.iter().copied().max().unwrap_or(0);
            let mean = totalc as f64 / rp as f64;
            if totalc >= rp && max as f64 > self.cfg.split_skew_factor * mean.max(1.0) {
                continue;
            }
            self.split.remove(&base);
            self.stats.coalesces += 1;
        }
    }

    /// Builds the unit list (regions, or base pages where split), sorted by
    /// descending access density.
    fn build_units(&self, machine: &Machine) -> Vec<Unit> {
        let mut units = Vec::new();
        let rp = self.cfg.region_pages;
        for range in &self.params.managed {
            let mut vpn = range.start;
            while vpn < range.end {
                let base = self.region_base(vpn);
                if self.split.contains(&base) {
                    for page in base..(base + rp).min(range.end) {
                        if let Some(tier) = machine.tier_of(page) {
                            units.push(Unit {
                                first_vpn: page,
                                pages: 1,
                                count: self.tracker.count(page) as u64,
                                tier,
                            });
                        }
                    }
                } else {
                    let end = (base + rp).min(range.end);
                    let count: u64 = (base..end).map(|p| self.tracker.count(p) as u64).sum();
                    if let Some(tier) = machine.tier_of(base) {
                        units.push(Unit {
                            first_vpn: base,
                            pages: end - base,
                            count,
                            tier,
                        });
                    }
                }
                vpn = (base + rp).max(vpn + 1);
            }
        }
        units.sort_by(|a, b| b.density().total_cmp(&a.density()));
        units
    }

    fn migrate_unit(&mut self, machine: &mut Machine, unit: &Unit, dst: TierId) -> u64 {
        let mut moved = 0;
        for page in unit.first_vpn..unit.first_vpn + unit.pages {
            if machine.tier_of(page) == Some(dst) {
                continue;
            }
            if !self.budget.try_take_page() {
                break;
            }
            if self.retry.request(machine, page, dst) {
                moved += 1;
            }
        }
        moved
    }

    /// Vanilla kmigrated pass: hot set = densest units filling the default
    /// tier; promote hot units, proactively demote everything else.
    fn vanilla_place(&mut self, machine: &mut Machine, units: &[Unit]) {
        // Effective capacity: a tier shrink permanently lowers the hot-set
        // budget, and MEMTIS must size to what is actually usable.
        let cap_bytes = machine.capacity_pages(TierId::DEFAULT) * PAGE_SIZE;
        // Leave kswapd headroom (2%).
        let target = cap_bytes - cap_bytes / 50;
        let mut used = 0u64;
        let mut hot_end = 0;
        for (i, u) in units.iter().enumerate() {
            if u.count == 0 || used + u.bytes() > target {
                hot_end = i;
                break;
            }
            used += u.bytes();
            hot_end = i + 1;
        }
        // Promote hot units one hop up the tier chain (on a two-tier
        // machine: alternate → default).
        for u in &units[..hot_end] {
            if u.tier != TierId::DEFAULT {
                let dst = TierId(u.tier.0 - 1);
                let down = TierId(dst.0 + 1);
                let needed = u.pages;
                if machine.free_pages(dst) < needed {
                    // Demote the coldest dst-resident units one hop down to
                    // make room.
                    for cold in units[hot_end..].iter().rev() {
                        if cold.tier == dst {
                            let moved = self.migrate_unit(machine, cold, down);
                            self.stats.demoted += moved;
                            if machine.free_pages(dst) >= needed {
                                break;
                            }
                        }
                    }
                }
                let moved = self.migrate_unit(machine, u, dst);
                self.stats.promoted += moved;
            }
        }
        // Proactive demotion of non-hot units one hop down — for every tier
        // that has a slower neighbour (on two tiers: default → alternate).
        if self.cfg.proactive_demotion {
            let n_tiers = self.params.n_tiers();
            for u in &units[hot_end..] {
                if usize::from(u.tier.0) + 1 < n_tiers {
                    let moved = self.migrate_unit(machine, u, TierId(u.tier.0 + 1));
                    self.stats.demoted += moved;
                }
            }
        }
    }

    /// Colloid kmigrated pass (§4.2): scan the source tier's units in
    /// density order, pick while Δp and the migration limit allow.
    fn colloid_place(&mut self, machine: &mut Machine, units: &[Unit], mv: &TierMove) {
        let (src, dst) = (mv.src, mv.dst);
        let promotion = mv.is_promotion();
        let can_spill = usize::from(dst.0) + 1 < self.params.n_tiers();
        let down = TierId(dst.0 + 1);
        let total = self.tracker.total().max(1) as f64;
        let mut rem_p = mv.delta_p;
        let mut rem_bytes = mv.byte_limit;
        for u in units {
            if u.tier != src || u.count == 0 {
                continue;
            }
            let prob = u.count as f64 / total;
            if prob > rem_p {
                continue; // too much probability: try a colder unit
            }
            if u.bytes() > rem_bytes {
                continue; // page-size aware limit check (paper §4.2)
            }
            if can_spill && machine.free_pages(dst) < u.pages {
                // Make room by demoting zero-count dst units one hop down.
                let mut freed = false;
                for cold in units.iter().rev() {
                    if cold.tier == dst && cold.count == 0 {
                        let moved = self.migrate_unit(machine, cold, down);
                        self.stats.demoted += moved;
                        if machine.free_pages(dst) >= u.pages {
                            freed = true;
                            break;
                        }
                    }
                }
                if !freed {
                    continue;
                }
            }
            let moved = self.migrate_unit(machine, u, dst);
            if moved > 0 {
                rem_p -= prob;
                rem_bytes = rem_bytes.saturating_sub(moved * PAGE_SIZE);
                if promotion {
                    self.stats.promoted += moved;
                } else {
                    self.stats.demoted += moved;
                }
            }
        }
    }

    /// Averaged per-tier measurements over the elapsed kmigrated quantum.
    fn drain_measurements(&mut self) -> Vec<colloid::TierMeasurement> {
        let n = self.acc_ticks.max(1) as f64;
        let out = self
            .acc_meas
            .iter()
            .map(|&(o, r)| colloid::TierMeasurement {
                occupancy: o / n,
                rate_per_ns: r / n,
            })
            .collect();
        for m in &mut self.acc_meas {
            *m = (0.0, 0.0);
        }
        self.acc_ticks = 0;
        out
    }
}

impl TieringSystem for Memtis {
    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport) {
        self.retry.note_failures(report);
        self.retry.on_tick(machine);
        self.adapt_sampling(machine, report.pebs.len());
        for s in &report.pebs {
            if self.params.managed.iter().any(|r| r.contains(&s.vpn)) {
                self.tracker.record(s.vpn);
            }
        }
        for (i, t) in report.tiers.iter().enumerate() {
            self.acc_meas[i].0 += t.occupancy;
            self.acc_meas[i].1 += t.rate_per_ns;
        }
        self.acc_ticks += 1;
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.cfg.quantum_ticks) {
            return;
        }

        // kmigrated quantum boundary.
        self.budget.refill();
        self.split_pass();
        self.coalesce_pass(machine);
        let units = self.build_units(machine);
        let window = self.drain_measurements();
        match self.colloid.as_mut().map(|c| c.on_quantum(&window)) {
            None => {
                // A frozen vanilla system keeps tracking but stops moving.
                if !self.frozen {
                    self.vanilla_place(machine, &units)
                }
            }
            Some(moves) => {
                for mv in moves {
                    self.colloid_place(machine, &units, &mv);
                }
            }
        }
    }

    fn name(&self) -> String {
        if self.colloid.is_some() {
            "MEMTIS+Colloid".into()
        } else {
            "MEMTIS".into()
        }
    }

    fn retry_stats(&self) -> Option<RetryStats> {
        Some(self.retry.stats())
    }

    fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
        if let Some(c) = self.colloid.as_mut() {
            c.set_frozen(frozen);
        }
    }

    fn reset_equilibrium(&mut self) {
        if let Some(c) = self.colloid.as_mut() {
            c.reset_equilibrium();
        }
    }

    fn heat_of(&self, vpn: Vpn) -> f64 {
        f64::from(self.tracker.count(vpn))
    }

    fn set_telemetry(&mut self, sink: telemetry::Sink) {
        if let Some(c) = self.colloid.as_mut() {
            c.set_telemetry(sink.clone());
        }
        self.retry.set_telemetry(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::machine::AccessStream;
    use memsim::{
        CoreConfig, MachineConfig, ObjectAccess, TrafficClass, LINES_PER_PAGE, LINE_SIZE,
    };
    use rand::rngs::SmallRng;
    use rand::Rng;
    use simkit::SimTime;

    struct HotCold {
        hot: u64,
        total: u64,
    }
    impl AccessStream for HotCold {
        fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
            let vpn = if rng.gen_bool(0.9) {
                rng.gen_range(0..self.hot)
            } else {
                rng.gen_range(0..self.total)
            };
            ObjectAccess::read_line(vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE)
        }
    }

    fn small_machine() -> Machine {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        cfg.pebs_period = 16;
        let mut m = Machine::new(cfg);
        m.place_range(0..256, TierId::ALTERNATE);
        m.add_core(
            Box::new(HotCold {
                hot: 32,
                total: 256,
            }),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        m
    }

    fn params(colloid: bool) -> SystemParams {
        SystemParams::new(vec![0..256], colloid.then(crate::ColloidParams::default))
    }

    fn run(s: &mut Memtis, m: &mut Machine, ticks: usize) {
        for _ in 0..ticks {
            let rep = m.run_tick(SimTime::from_us(100.0));
            s.on_tick(m, &rep);
        }
    }

    #[test]
    fn vanilla_packs_hot_units_into_default() {
        let mut m = small_machine();
        let mut s = Memtis::new(params(false), MemtisConfig::default());
        run(&mut s, &mut m, 400);
        let hot_in_default = (0..32)
            .filter(|&v| m.tier_of(v) == Some(TierId::DEFAULT))
            .count();
        assert!(
            hot_in_default >= 24,
            "MEMTIS should pack hot regions into the default tier, got {hot_in_default}/32"
        );
    }

    #[test]
    fn proactive_demotion_clears_cold_pages() {
        let mut m = small_machine();
        // Cold pages squat in the default tier.
        for vpn in 192..240 {
            let _ = m.enqueue_migration(vpn, TierId::DEFAULT);
        }
        m.run_tick(SimTime::from_ms(2.0));
        let mut s = Memtis::new(params(false), MemtisConfig::default());
        run(&mut s, &mut m, 400);
        let cold_left = (192..240)
            .filter(|&v| m.tier_of(v) == Some(TierId::DEFAULT))
            .count();
        assert!(
            cold_left < 16,
            "proactive demotion should clear squatters, {cold_left} left"
        );
    }

    #[test]
    fn sampling_rate_adapts_down_under_load() {
        let mut m = small_machine();
        m.set_pebs_period(16);
        let mut s = Memtis::new(
            params(false),
            MemtisConfig {
                samples_hi: 10, // force the controller to throttle
                ..MemtisConfig::default()
            },
        );
        run(&mut s, &mut m, 50);
        assert!(
            s.stats().pebs_period > 64,
            "period should rise, got {}",
            s.stats().pebs_period
        );
    }

    #[test]
    fn skewed_regions_get_split() {
        // One scorching page inside an otherwise cold region.
        struct OnePage;
        impl AccessStream for OnePage {
            fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
                // Page 5 gets 95% of traffic; rest uniform over the region.
                let vpn = if rng.gen_bool(0.95) {
                    5
                } else {
                    rng.gen_range(0..16)
                };
                ObjectAccess::read_line(
                    vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE,
                )
            }
        }
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.pebs_period = 16;
        let mut m = Machine::new(cfg);
        m.place_range(0..16, TierId::DEFAULT);
        m.add_core(
            Box::new(OnePage),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        let mut s = Memtis::new(
            SystemParams::new(vec![0..16], None),
            MemtisConfig::default(),
        );
        run(&mut s, &mut m, 200);
        assert!(s.stats().splits >= 1, "skewed region must split");
    }

    #[test]
    fn coalescer_rejoins_uniform_regions_eventually() {
        // A region is split by an early skewed phase, then the workload
        // turns uniform: the (slow) coalescer must eventually rejoin it.
        struct TwoPhase;
        impl AccessStream for TwoPhase {
            fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
                let vpn = if now < SimTime::from_ms(2.0) && rng.gen_bool(0.95) {
                    5
                } else {
                    rng.gen_range(0..16)
                };
                ObjectAccess::read_line(
                    vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE,
                )
            }
        }
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.pebs_period = 16;
        let mut m = Machine::new(cfg);
        m.place_range(0..16, TierId::DEFAULT);
        m.add_core(
            Box::new(TwoPhase),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        let mut s = Memtis::new(
            SystemParams::new(vec![0..16], None),
            MemtisConfig {
                coalesce_scan_pages: 16, // tiny space: full pass per quantum
                ..MemtisConfig::default()
            },
        );
        run(&mut s, &mut m, 800);
        assert!(s.stats().splits >= 1, "phase 1 must split");
        assert!(
            s.stats().coalesces >= 1,
            "uniform phase must eventually coalesce, stats = {:?}",
            s.stats()
        );
        assert!(s.split.is_empty());
    }

    #[test]
    fn coalescer_is_too_slow_for_large_working_sets() {
        // The paper's §2.2 observation: on a realistically sized working
        // set, the address-space scan cannot finish within the workload's
        // convergence time, so split regions stay split.
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.pebs_period = 16;
        let mut m = Machine::new(cfg);
        m.place_range(0..4096, TierId::DEFAULT);
        struct OnePageHot;
        impl AccessStream for OnePageHot {
            fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
                let vpn = if rng.gen_bool(0.9) {
                    3
                } else {
                    rng.gen_range(0..4096)
                };
                ObjectAccess::read_line(
                    vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE,
                )
            }
        }
        m.add_core(
            Box::new(OnePageHot),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        let mut s = Memtis::new(
            SystemParams::new(vec![0..4096], None),
            MemtisConfig::default(), // 64 pages scanned per quantum
        );
        run(&mut s, &mut m, 100);
        assert!(s.stats().splits >= 1);
        assert_eq!(
            s.stats().coalesces,
            0,
            "a 4096-page space cannot be fully rescanned in 20 quanta"
        );
    }

    #[test]
    fn colloid_variant_name() {
        let s = Memtis::new(params(true), MemtisConfig::default());
        assert_eq!(s.name(), "MEMTIS+Colloid");
    }

    #[test]
    fn units_move_whole_regions_when_huge() {
        let mut m = small_machine();
        let mut s = Memtis::new(params(false), MemtisConfig::default());
        run(&mut s, &mut m, 400);
        // Unsplit regions must be tier-homogeneous.
        for region in 0..(256 / 16) {
            let base = region * 16;
            if s.split.contains(&base) {
                continue;
            }
            let tiers: Vec<_> = (base..base + 16).map(|v| m.tier_of(v)).collect();
            assert!(
                tiers.windows(2).all(|w| w[0] == w[1]),
                "region {region} fragmented: {tiers:?}"
            );
        }
    }
}
