//! Migration retry with capped exponential backoff.
//!
//! The machine's [`Machine::enqueue_migration`] is best-effort: it rejects
//! requests when the destination tier has no free frames, and — under fault
//! injection — an accepted migration can still abort in flight (surfaced in
//! [`TickReport::failed_migrations`]). The tiering systems historically
//! ignored both outcomes, silently stranding pages on the wrong tier.
//!
//! [`RetryQueue`] is the shared remedy: rejected and failed migrations are
//! parked and re-driven with capped exponential backoff (in ticks), with
//! retries deferred while the machine's migration engine is backlogged so
//! recovery traffic never piles onto an already-saturated DMA engine.
//! Requests that became moot (page unmapped, or already at its destination)
//! are resolved rather than retried.
//!
//! **Determinism contract**: rejection capture engages only while the
//! machine has an active [`FaultPlan`](memsim::FaultPlan). On a fault-free
//! machine a transient rejection keeps the legacy drop-on-reject semantics
//! (counted in [`RetryStats::uncaptured`]), so every fault-free experiment
//! is bit-identical with and without the retry layer. In-flight failures
//! can only be produced by fault injection, so ingesting them needs no
//! gate.
//!
//! [`Machine::enqueue_migration`]: memsim::Machine::enqueue_migration
//! [`TickReport::failed_migrations`]: memsim::TickReport

use std::collections::VecDeque;

use memsim::{AbortReason, EnqueueError, Machine, TickReport, TierId, Vpn};

/// Knobs for [`RetryQueue`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Delay before the first retry, in ticks.
    pub base_delay_ticks: u64,
    /// Cap on the exponential backoff delay, in ticks.
    pub max_delay_ticks: u64,
    /// Attempts before an entry is dropped for good (counted in
    /// [`RetryStats::dropped`]).
    pub max_attempts: u32,
    /// Retries are deferred (not attempted, not aged) while the machine's
    /// migration backlog exceeds this many pages.
    pub backlog_threshold: usize,
    /// Maximum parked entries; beyond this the oldest entry is dropped.
    pub capacity: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay_ticks: 1,
            max_delay_ticks: 64,
            max_attempts: 12,
            backlog_threshold: 4096,
            capacity: 65_536,
        }
    }
}

/// Counters exposed for tests, telemetry, and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Entries parked for retry (rejections + in-flight failures).
    pub scheduled: u64,
    /// Retry attempts performed.
    pub attempts: u64,
    /// Retries that successfully re-enqueued their migration.
    pub recovered: u64,
    /// Entries resolved without a migration (page vanished or already at
    /// its destination by the time the retry came up).
    pub resolved_moot: u64,
    /// Entries abandoned: attempt cap reached or queue overflow.
    pub dropped: u64,
    /// Entries abandoned specifically because the attempt cap was
    /// exhausted (a subset of `dropped`; the rest are overflow evictions).
    pub gave_up: u64,
    /// Ticks on which retries were deferred due to engine backlog.
    pub deferred_ticks: u64,
    /// Transient rejections observed on a fault-free machine, where the
    /// legacy drop-on-reject behavior is preserved for determinism.
    pub uncaptured: u64,
    /// High-water mark of parked entries (queue-depth saturation signal).
    pub max_pending: u64,
    /// Requests rejected because the destination tier had no free frame.
    pub rejected_full: u64,
    /// Requests rejected by the supervisor's admission freeze.
    pub rejected_frozen: u64,
    /// Requests rejected because the page already had a migration in
    /// flight. Not parked: the in-flight transaction either commits (a
    /// retry would be moot) or aborts (and re-enters via
    /// [`RetryQueue::note_failures`]).
    pub rejected_duplicate: u64,
}

#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    vpn: Vpn,
    dst: TierId,
    attempts: u32,
    due: u64,
}

/// A backoff queue of migrations that could not be enqueued (or failed in
/// flight), shared by all three tiering systems.
///
/// # Examples
///
/// ```
/// use memsim::{Machine, MachineConfig, TierId, PAGE_SIZE};
/// use tiersys::retry::{RetryPolicy, RetryQueue};
///
/// let mut cfg = MachineConfig::icelake_two_tier();
/// cfg.tiers[1].capacity_bytes = PAGE_SIZE; // one alternate frame
/// cfg.faults.migration_fail_prob = 0.1; // active plan: capture rejections
/// let mut m = Machine::new(cfg);
/// m.place_range(0..4, TierId::DEFAULT);
///
/// let mut q = RetryQueue::new(RetryPolicy::default());
/// assert!(q.request(&mut m, 0, TierId::ALTERNATE)); // fills the frame
/// assert!(!q.request(&mut m, 1, TierId::ALTERNATE)); // parked for retry
/// assert_eq!(q.pending(), 1);
/// ```
#[derive(Debug)]
pub struct RetryQueue {
    policy: RetryPolicy,
    entries: VecDeque<RetryEntry>,
    tick: u64,
    stats: RetryStats,
    sink: telemetry::Sink,
}

impl RetryQueue {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts > 0, "at least one attempt");
        assert!(policy.capacity > 0, "capacity must be positive");
        RetryQueue {
            policy,
            entries: VecDeque::new(),
            tick: 0,
            stats: RetryStats::default(),
            sink: telemetry::Sink::default(),
        }
    }

    /// Attaches a telemetry sink (events stamp with its shared clock).
    pub fn set_telemetry(&mut self, sink: telemetry::Sink) {
        self.sink = sink;
    }

    /// Requests a migration, parking it for retry if the machine rejects
    /// it for a transient reason (destination full). Returns whether the
    /// migration was enqueued *now* — callers update their placement
    /// bookkeeping on `true` exactly as they would for a bare
    /// `enqueue_migration`.
    pub fn request(&mut self, machine: &mut Machine, vpn: Vpn, dst: TierId) -> bool {
        let err = match machine.enqueue_migration(vpn, dst) {
            Ok(()) => return true,
            Err(e) => e,
        };
        match err {
            // Unmapped or already where it should be: nothing to retry.
            EnqueueError::Moot => self.stats.resolved_moot += 1,
            // A migration for this page is already in flight: it either
            // commits (retry moot) or aborts and re-enters via
            // `note_failures` — parking now would double-drive the page.
            EnqueueError::DuplicateInFlight => self.stats.rejected_duplicate += 1,
            // Transient rejections: park for a backoff retry — but only
            // under an active fault plan (see module docs).
            EnqueueError::Pinned | EnqueueError::DestinationFull | EnqueueError::EngineFrozen => {
                match err {
                    EnqueueError::DestinationFull => self.stats.rejected_full += 1,
                    EnqueueError::EngineFrozen => self.stats.rejected_frozen += 1,
                    _ => {}
                }
                if machine.config().faults.is_active() {
                    self.schedule(vpn, dst);
                } else {
                    self.stats.uncaptured += 1;
                }
            }
        }
        false
    }

    /// Ingests a tick's in-flight migration failures: each aborted page is
    /// parked for retry, with the typed abort reason shaping the delay —
    /// a write-conflict abort means the page is write-hot *right now*, so
    /// it cools for four times the base delay before the next attempt;
    /// outage, transient and watchdog aborts retry on the base schedule.
    pub fn note_failures(&mut self, report: &TickReport) {
        for f in &report.failed_migrations {
            let delay = match f.reason {
                AbortReason::WriteConflict => self.policy.base_delay_ticks.saturating_mul(4),
                AbortReason::Outage | AbortReason::Transient | AbortReason::Watchdog => {
                    self.policy.base_delay_ticks
                }
            };
            self.schedule_after(f.vpn, f.dst, delay);
        }
    }

    /// One tick of retry processing. Returns the migrations that were
    /// successfully re-enqueued this tick so the caller can update its
    /// placement bookkeeping (e.g. HeMem's frequency bins).
    pub fn on_tick(&mut self, machine: &mut Machine) -> Vec<(Vpn, TierId)> {
        self.tick += 1;
        if self.entries.is_empty() {
            return Vec::new();
        }
        // Backlog-aware throttling: while the DMA engine is drowning,
        // retrying would only deepen the queue it is rejected from.
        if machine.migration_backlog() > self.policy.backlog_threshold {
            self.stats.deferred_ticks += 1;
            return Vec::new();
        }
        let _prof = simkit::profile::scope("tiersys.retry_drain");
        // Re-enqueued copies are this queue's doing, not the original
        // controller's: point the causal chain here while draining, then
        // restore whatever decision was current.
        let prev_cause = self.sink.cause();
        self.sink
            .span_decision(telemetry::Source::System, "retry.drain", "retry");
        let mut recovered = Vec::new();
        for _ in 0..self.entries.len() {
            let Some(mut e) = self.entries.pop_front() else {
                break;
            };
            if e.due > self.tick {
                self.entries.push_back(e);
                continue;
            }
            match machine.tier_of(e.vpn) {
                None => {
                    self.stats.resolved_moot += 1;
                    continue;
                }
                Some(t) if t == e.dst => {
                    self.stats.resolved_moot += 1;
                    continue;
                }
                Some(_) => {}
            }
            self.stats.attempts += 1;
            if machine.enqueue_migration(e.vpn, e.dst).is_ok() {
                self.stats.recovered += 1;
                self.sink.emit(telemetry::Source::System, || {
                    telemetry::EventKind::MigrationRetry {
                        vpn: e.vpn,
                        dst: e.dst.0,
                    }
                });
                recovered.push((e.vpn, e.dst));
            } else {
                e.attempts += 1;
                if e.attempts >= self.policy.max_attempts {
                    self.stats.dropped += 1;
                    self.stats.gave_up += 1;
                    self.sink.emit(telemetry::Source::System, || {
                        telemetry::EventKind::RetryExhausted {
                            vpn: e.vpn,
                            dst: e.dst.0,
                        }
                    });
                } else {
                    e.due = self.tick + self.backoff(e.attempts);
                    self.entries.push_back(e);
                }
            }
        }
        self.sink.set_cause(prev_cause);
        recovered
    }

    /// Entries currently parked.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    fn backoff(&self, attempts: u32) -> u64 {
        let exp = attempts.min(32);
        (self.policy.base_delay_ticks << exp.min(62)).min(self.policy.max_delay_ticks)
    }

    fn schedule(&mut self, vpn: Vpn, dst: TierId) {
        self.schedule_after(vpn, dst, self.policy.base_delay_ticks);
    }

    fn schedule_after(&mut self, vpn: Vpn, dst: TierId, delay: u64) {
        // Coalesce: a page already parked keeps its earlier slot (a second
        // rejection adds no information).
        if self.entries.iter().any(|e| e.vpn == vpn && e.dst == dst) {
            return;
        }
        if self.entries.len() >= self.policy.capacity {
            self.entries.pop_front();
            self.stats.dropped += 1;
        }
        self.stats.scheduled += 1;
        self.entries.push_back(RetryEntry {
            vpn,
            dst,
            attempts: 0,
            due: self.tick + delay,
        });
        self.stats.max_pending = self.stats.max_pending.max(self.entries.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{MachineConfig, PAGE_SIZE};
    use simkit::SimTime;

    /// Two-tier machine with `alt` alternate frames and 64 mapped pages.
    /// The fault plan is active (but harmless here: PEBS is off) so
    /// rejection capture is engaged.
    fn machine(alt_frames: u64) -> Machine {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[1].capacity_bytes = alt_frames * PAGE_SIZE;
        cfg.faults.pebs_loss_prob = 0.5;
        let mut m = Machine::new(cfg);
        m.place_range(0..64, TierId::DEFAULT);
        m
    }

    #[test]
    fn immediate_success_needs_no_retry() {
        let mut m = machine(64);
        let mut q = RetryQueue::new(RetryPolicy::default());
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        assert_eq!(q.pending(), 0);
        assert_eq!(q.stats(), RetryStats::default());
    }

    #[test]
    fn capacity_rejection_is_parked_and_recovers() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy::default());
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        assert!(!q.request(&mut m, 1, TierId::ALTERNATE));
        assert_eq!(q.pending(), 1);
        // Nothing recovers while the frame is taken.
        m.run_tick(SimTime::from_us(100.0));
        assert!(q.on_tick(&mut m).is_empty());
        // Free the frame by migrating page 0 back, then drain it.
        m.enqueue_migration(0, TierId::DEFAULT).unwrap();
        m.run_tick(SimTime::from_ms(1.0));
        let mut recovered = Vec::new();
        for _ in 0..200 {
            recovered.extend(q.on_tick(&mut m));
            m.run_tick(SimTime::from_us(100.0));
            if q.pending() == 0 {
                break;
            }
        }
        assert_eq!(recovered, vec![(1, TierId::ALTERNATE)]);
        assert_eq!(m.tier_of(1), Some(TierId::ALTERNATE));
        assert_eq!(q.stats().recovered, 1);
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn moot_entries_resolve_without_migrating() {
        let mut m = machine(4);
        let mut q = RetryQueue::new(RetryPolicy::default());
        // Already at destination.
        assert!(!q.request(&mut m, 0, TierId::DEFAULT));
        // Unmapped page.
        assert!(!q.request(&mut m, 4000, TierId::ALTERNATE));
        assert_eq!(q.pending(), 0);
        assert_eq!(q.stats().resolved_moot, 2);
    }

    #[test]
    fn parked_entry_resolves_moot_if_page_arrives_by_other_means() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy::default());
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        assert!(!q.request(&mut m, 1, TierId::ALTERNATE));
        // Page 0 leaves, page 1 gets migrated directly by someone else.
        m.run_tick(SimTime::from_ms(1.0));
        m.enqueue_migration(0, TierId::DEFAULT).unwrap();
        m.run_tick(SimTime::from_ms(1.0));
        m.enqueue_migration(1, TierId::ALTERNATE).unwrap();
        m.run_tick(SimTime::from_ms(1.0));
        for _ in 0..10 {
            assert!(q.on_tick(&mut m).is_empty());
        }
        assert_eq!(q.pending(), 0);
        assert_eq!(q.stats().resolved_moot, 1);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let q = RetryQueue::new(RetryPolicy {
            base_delay_ticks: 2,
            max_delay_ticks: 32,
            ..RetryPolicy::default()
        });
        assert_eq!(q.backoff(1), 4);
        assert_eq!(q.backoff(2), 8);
        assert_eq!(q.backoff(3), 16);
        assert_eq!(q.backoff(4), 32);
        assert_eq!(q.backoff(20), 32); // capped
        assert_eq!(q.backoff(63), 32); // no shift overflow
    }

    #[test]
    fn attempt_cap_drops_unserviceable_entries() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy {
            base_delay_ticks: 1,
            max_delay_ticks: 1,
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        assert!(!q.request(&mut m, 1, TierId::ALTERNATE));
        // The frame never frees: the entry must eventually be dropped.
        for _ in 0..20 {
            q.on_tick(&mut m);
        }
        assert_eq!(q.pending(), 0);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().gave_up, 1);
        assert_eq!(q.stats().max_pending, 1);
        assert_eq!(q.stats().attempts, 3);
    }

    #[test]
    fn max_pending_records_queue_high_water() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy {
            base_delay_ticks: 1,
            max_delay_ticks: 1,
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        for vpn in 1..5 {
            assert!(!q.request(&mut m, vpn, TierId::ALTERNATE));
        }
        assert_eq!(q.pending(), 4);
        assert_eq!(q.stats().max_pending, 4);
        // Exhausting the attempt cap drains the queue but never lowers
        // the recorded high-water mark.
        for _ in 0..20 {
            q.on_tick(&mut m);
        }
        assert_eq!(q.pending(), 0);
        assert_eq!(q.stats().max_pending, 4);
        assert_eq!(q.stats().gave_up, 4);
        assert_eq!(q.stats().dropped, 4);
    }

    #[test]
    fn overflow_evictions_are_dropped_but_not_gave_up() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy {
            capacity: 2,
            ..RetryPolicy::default()
        });
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        for vpn in 1..4 {
            assert!(!q.request(&mut m, vpn, TierId::ALTERNATE));
        }
        // Third park evicted the oldest entry to stay within capacity.
        assert_eq!(q.pending(), 2);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().gave_up, 0);
        assert_eq!(q.stats().max_pending, 2);
    }

    #[test]
    fn fault_free_rejections_keep_legacy_drop_semantics() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[1].capacity_bytes = PAGE_SIZE;
        let mut m = Machine::new(cfg); // no fault plan
        m.place_range(0..64, TierId::DEFAULT);
        let mut q = RetryQueue::new(RetryPolicy::default());
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        assert!(!q.request(&mut m, 1, TierId::ALTERNATE));
        // Nothing parked: fault-free runs stay bit-identical to the
        // pre-retry behavior.
        assert_eq!(q.pending(), 0);
        assert_eq!(q.stats().scheduled, 0);
        assert_eq!(q.stats().uncaptured, 1);
    }

    #[test]
    fn duplicate_requests_coalesce() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy::default());
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        for _ in 0..5 {
            assert!(!q.request(&mut m, 1, TierId::ALTERNATE));
        }
        assert_eq!(q.pending(), 1);
        assert_eq!(q.stats().scheduled, 1);
    }

    #[test]
    fn typed_rejections_are_counted() {
        let mut m = machine(1);
        let mut q = RetryQueue::new(RetryPolicy::default());
        assert!(q.request(&mut m, 0, TierId::ALTERNATE));
        // Destination full: parked (fault plan is active) and counted.
        assert!(!q.request(&mut m, 1, TierId::ALTERNATE));
        assert_eq!(q.stats().rejected_full, 1);
        // Duplicate in-flight (transactional engine): counted but NOT
        // parked — the in-flight migration settles the page one way or the
        // other.
        let mut txn = {
            let mut cfg = MachineConfig::icelake_two_tier();
            cfg.engine = memsim::MigrationEngineConfig::transactional();
            cfg.faults.pebs_loss_prob = 0.5;
            let mut m = Machine::new(cfg);
            m.place_range(0..64, TierId::DEFAULT);
            m
        };
        assert!(q.request(&mut txn, 0, TierId::ALTERNATE));
        assert!(!q.request(&mut txn, 0, TierId::ALTERNATE));
        assert_eq!(q.stats().rejected_duplicate, 1);
        assert_eq!(q.pending(), 1);
        // Admission freeze (on a machine with room): parked and counted.
        let mut frozen = machine(8);
        frozen.set_migration_admission_limit(Some(0));
        assert!(!q.request(&mut frozen, 2, TierId::ALTERNATE));
        assert_eq!(q.stats().rejected_frozen, 1);
        assert_eq!(q.pending(), 2);
    }

    #[test]
    fn write_conflict_aborts_cool_longer_before_retry() {
        let mut q = RetryQueue::new(RetryPolicy {
            base_delay_ticks: 2,
            ..RetryPolicy::default()
        });
        let report = |reason| memsim::TickReport {
            failed_migrations: vec![memsim::FailedMigration {
                vpn: 7,
                dst: TierId::ALTERNATE,
                reason,
            }],
            ..sample_report()
        };
        q.note_failures(&report(memsim::AbortReason::WriteConflict));
        assert_eq!(q.entries[0].due, q.tick + 8, "4x base delay");
        q.entries.clear();
        q.note_failures(&report(memsim::AbortReason::Watchdog));
        assert_eq!(q.entries[0].due, q.tick + 2, "base delay");
        assert_eq!(q.stats().scheduled, 2);
    }

    /// An empty TickReport scaffold for synthesizing failure reports.
    fn sample_report() -> memsim::TickReport {
        memsim::TickReport {
            t_start: SimTime::ZERO,
            t_end: SimTime::from_ms(1.0),
            tiers: Vec::new(),
            pebs: Vec::new(),
            faults: Vec::new(),
            app_ops: 0,
            migrated_bytes: 0,
            migration_backlog: 0,
            mig_copy_ns: None,
            mig_copy_pair_ns: Vec::new(),
            true_latency_ns: Vec::new(),
            fault_stats: memsim::FaultStats::default(),
            failed_migrations: Vec::new(),
            txn: memsim::TxnTickStats::default(),
            evacuated: Vec::new(),
        }
    }

    #[test]
    fn backlog_defers_retries() {
        let mut m = machine(64);
        // Flood the migration queue well past the threshold.
        let mut q = RetryQueue::new(RetryPolicy {
            backlog_threshold: 4,
            ..RetryPolicy::default()
        });
        for vpn in 0..32 {
            m.enqueue_migration(vpn, TierId::ALTERNATE).unwrap();
        }
        assert!(m.migration_backlog() > 4);
        // Park an entry (destination still has room, so force one in by
        // filling the queue via a full alternate tier is overkill — park
        // directly through a failure report instead).
        q.schedule(40, TierId::ALTERNATE);
        assert!(q.on_tick(&mut m).is_empty());
        assert!(q.stats().deferred_ticks >= 1);
        assert_eq!(q.stats().attempts, 0);
    }
}
