//! Re-implementations of the three state-of-the-art tiering systems the
//! paper integrates Colloid with (§4), against the `memsim` substrate.
//!
//! Each system exists in two variants selected at construction:
//!
//! | System | Access tracking | Vanilla placement | Colloid integration |
//! |--------|-----------------|-------------------|---------------------|
//! | [`hemem::HeMem`] | PEBS samples → per-page frequency counts with cooling | pack pages above a fixed hot threshold into the default tier | frequency-binned page lists + Algorithm 1/2 (§4.1) |
//! | [`tpp::Tpp`] | page-table scan + hint faults (time-to-fault) | promote hot-by-time-to-fault pages on fault; kswapd watermark demotion | per-fault access-probability test `p = 1/(Δt·r)` against Δp (§4.3) |
//! | [`memtis::Memtis`] | dynamic-rate PEBS + huge-page (region) management | distribution-derived hot set packed into the default tier; proactive cold demotion | hot-list scan under Δp and the dynamic migration limit (§4.2) |
//!
//! All variants drive the machine through the same narrow interface
//! ([`TieringSystem`]), consume the same [`memsim::TickReport`] hardware
//! counters, and migrate through the machine's migration engine — mirroring
//! how the real implementations reuse each system's existing tracking and
//! migration mechanisms.

// Managed-page region lists are genuinely one range in most tests.
#![allow(clippy::single_range_in_vec_init)]

pub mod hemem;
pub mod memtis;
pub mod retry;
pub mod supervisor;
pub mod tpp;

use memsim::{Machine, TickReport, Vpn};
use simkit::SimTime;

pub use retry::{RetryPolicy, RetryQueue, RetryStats};
pub use supervisor::{
    HealthSample, SupervisionReport, Supervisor, SupervisorConfig, SupervisorMode,
};

/// A tiering system driving page placement on a [`Machine`].
pub trait TieringSystem {
    /// Reacts to one machine tick: ingest counters/samples, enqueue
    /// migrations, re-mark pages.
    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport);

    /// Display name ("HeMem", "HeMem+Colloid", ...).
    fn name(&self) -> String;

    /// Migration-retry counters, for systems that drive a [`RetryQueue`]
    /// (all three real systems do; placeholders return `None`).
    fn retry_stats(&self) -> Option<RetryStats> {
        None
    }

    /// Suspends (or resumes) placement decisions. A frozen system keeps
    /// ingesting counters and samples — its view of the machine stays
    /// current — but must not enqueue migrations or move watermarks.
    /// Default: no-op, for placement-free systems.
    fn set_frozen(&mut self, _frozen: bool) {}

    /// Discards learned equilibrium state (Colloid watermarks, adaptive
    /// thresholds) after the machine's operating point changed
    /// permanently, e.g. a tier shrink. Heat tracking is kept.
    /// Default: no-op.
    fn reset_equilibrium(&mut self) {}

    /// Relative hotness of a page under this system's own tracking
    /// metadata (higher = hotter; 0.0 = never seen). Used by the
    /// supervisor to drain a degraded tier hottest-first.
    fn heat_of(&self, _vpn: Vpn) -> f64 {
        0.0
    }

    /// Supervision telemetry (mode timeline, time-to-recover), for
    /// systems wrapped in a [`Supervisor`]. Default: `None`.
    fn supervision(&self) -> Option<SupervisionReport> {
        None
    }

    /// Attaches a telemetry sink; the system forwards clones to the
    /// sub-components it owns (Colloid controller, retry queue, wrapped
    /// inner system). Default: no-op, for systems with nothing to record.
    fn set_telemetry(&mut self, _sink: telemetry::Sink) {}
}

/// A placement policy that never migrates (used for the best-case oracle's
/// manually pinned placements and for baseline-free runs).
pub struct StaticPlacement;

impl TieringSystem for StaticPlacement {
    fn on_tick(&mut self, _machine: &mut Machine, _report: &TickReport) {}

    fn name(&self) -> String {
        "static".into()
    }
}

/// Parameters shared by every system.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Page ranges under the system's management (the application's
    /// regions; pinned/antagonist pages are excluded).
    pub managed: Vec<std::ops::Range<Vpn>>,
    /// Machine tick duration (the base quantum).
    pub tick: SimTime,
    /// Static migration rate limit, bytes per tick (`M` in Algorithm 1).
    pub migration_limit_per_tick: u64,
    /// Unloaded latency of each tier in ns (for Colloid's idle-tier
    /// fallback).
    pub unloaded_ns: Vec<f64>,
    /// Attach the Colloid controller (ε, δ) instead of the vanilla
    /// placement policy.
    pub colloid: Option<ColloidParams>,
}

/// Colloid knobs (paper §5: ε = 0.01, δ = 0.05).
#[derive(Debug, Clone, Copy)]
pub struct ColloidParams {
    /// Watermark collapse threshold ε.
    pub epsilon: f64,
    /// Latency balance tolerance δ.
    pub delta: f64,
    /// EWMA smoothing factor for the occupancy/rate signals.
    pub ewma_alpha: f64,
    /// Dynamic migration limit (§3.2); disable for ablation runs.
    pub dynamic_limit: bool,
}

impl Default for ColloidParams {
    fn default() -> Self {
        ColloidParams {
            epsilon: 0.01,
            delta: 0.05,
            ewma_alpha: 0.3,
            dynamic_limit: true,
        }
    }
}

impl SystemParams {
    /// Reasonable defaults for the paper's scaled GUPS setup: 100 µs ticks
    /// and a 2.4 GB/s static migration limit.
    pub fn new(managed: Vec<std::ops::Range<Vpn>>, colloid: Option<ColloidParams>) -> Self {
        let tick = SimTime::from_us(100.0);
        SystemParams {
            managed,
            tick,
            migration_limit_per_tick: (2.4e9 * tick.as_secs()) as u64,
            unloaded_ns: vec![70.0, 135.7],
            colloid,
        }
    }

    /// Total managed pages.
    pub fn managed_pages(&self) -> u64 {
        self.managed.iter().map(|r| r.end - r.start).sum()
    }

    /// Builds the Colloid controller for this configuration, if enabled.
    pub(crate) fn build_colloid(&self) -> Option<colloid::ColloidController> {
        self.colloid.map(|c| {
            colloid::ColloidController::new(colloid::ColloidConfig {
                epsilon: c.epsilon,
                delta: c.delta,
                ewma_alpha: c.ewma_alpha,
                static_limit_bytes: self.migration_limit_per_tick,
                quantum_ns: self.tick.as_ns(),
                unloaded_ns: self.unloaded_ns.clone(),
                dynamic_limit: c.dynamic_limit,
            })
        })
    }
}

/// Extracts Colloid's per-tier `(O, R)` measurements from a tick report.
pub(crate) fn measurements(report: &TickReport) -> Vec<colloid::TierMeasurement> {
    report
        .tiers
        .iter()
        .map(|t| colloid::TierMeasurement {
            occupancy: t.occupancy,
            rate_per_ns: t.rate_per_ns,
        })
        .collect()
}

/// Which of the three systems to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// HeMem (SOSP '21).
    Hemem,
    /// TPP (ASPLOS '23), as upstreamed in Linux v6.3.
    Tpp,
    /// MEMTIS (SOSP '23).
    Memtis,
}

impl SystemKind {
    /// All three systems, in the paper's presentation order.
    pub const ALL: [SystemKind; 3] = [SystemKind::Hemem, SystemKind::Tpp, SystemKind::Memtis];

    /// Base display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Hemem => "HeMem",
            SystemKind::Tpp => "TPP",
            SystemKind::Memtis => "MEMTIS",
        }
    }
}

/// Builds a system (vanilla or +Colloid per `params.colloid`).
pub fn build_system(kind: SystemKind, params: SystemParams) -> Box<dyn TieringSystem> {
    match kind {
        SystemKind::Hemem => Box::new(hemem::HeMem::new(params)),
        SystemKind::Tpp => Box::new(tpp::Tpp::new(params, tpp::TppConfig::default())),
        SystemKind::Memtis => {
            Box::new(memtis::Memtis::new(params, memtis::MemtisConfig::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_defaults() {
        let p = SystemParams::new(vec![0..100, 200..300], None);
        assert_eq!(p.managed_pages(), 200);
        // 2.4 GB/s over 100 us = 240 KB per tick.
        assert_eq!(p.migration_limit_per_tick, 240_000);
        assert!(p.build_colloid().is_none());
    }

    #[test]
    fn colloid_controller_built_when_enabled() {
        let p = SystemParams::new(vec![0..10], Some(ColloidParams::default()));
        let c = p.build_colloid().expect("controller");
        assert_eq!(c.shift().epsilon(), 0.01);
        assert_eq!(c.shift().delta(), 0.05);
    }

    #[test]
    fn kind_names() {
        assert_eq!(SystemKind::Hemem.name(), "HeMem");
        assert_eq!(SystemKind::ALL.len(), 3);
    }
}
