//! Re-implementations of the three state-of-the-art tiering systems the
//! paper integrates Colloid with (§4), against the `memsim` substrate.
//!
//! Each system exists in two variants selected at construction:
//!
//! | System | Access tracking | Vanilla placement | Colloid integration |
//! |--------|-----------------|-------------------|---------------------|
//! | [`hemem::HeMem`] | PEBS samples → per-page frequency counts with cooling | pack pages above a fixed hot threshold into the default tier | frequency-binned page lists + Algorithm 1/2 (§4.1) |
//! | [`tpp::Tpp`] | page-table scan + hint faults (time-to-fault) | promote hot-by-time-to-fault pages on fault; kswapd watermark demotion | per-fault access-probability test `p = 1/(Δt·r)` against Δp (§4.3) |
//! | [`memtis::Memtis`] | dynamic-rate PEBS + huge-page (region) management | distribution-derived hot set packed into the default tier; proactive cold demotion | hot-list scan under Δp and the dynamic migration limit (§4.2) |
//!
//! All variants drive the machine through the same narrow interface
//! ([`TieringSystem`]), consume the same [`memsim::TickReport`] hardware
//! counters, and migrate through the machine's migration engine — mirroring
//! how the real implementations reuse each system's existing tracking and
//! migration mechanisms.

// Managed-page region lists are genuinely one range in most tests.
#![allow(clippy::single_range_in_vec_init)]

pub mod hemem;
pub mod memtis;
pub mod retry;
pub mod supervisor;
pub mod tpp;

use memsim::{Machine, TickReport, TierId, Vpn};
use simkit::SimTime;

pub use retry::{RetryPolicy, RetryQueue, RetryStats};
pub use supervisor::{
    HealthSample, SupervisionReport, Supervisor, SupervisorConfig, SupervisorMode,
};

/// A tiering system driving page placement on a [`Machine`].
pub trait TieringSystem {
    /// Reacts to one machine tick: ingest counters/samples, enqueue
    /// migrations, re-mark pages.
    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport);

    /// Display name ("HeMem", "HeMem+Colloid", ...).
    fn name(&self) -> String;

    /// Migration-retry counters, for systems that drive a [`RetryQueue`]
    /// (all three real systems do; placeholders return `None`).
    fn retry_stats(&self) -> Option<RetryStats> {
        None
    }

    /// Suspends (or resumes) placement decisions. A frozen system keeps
    /// ingesting counters and samples — its view of the machine stays
    /// current — but must not enqueue migrations or move watermarks.
    /// Default: no-op, for placement-free systems.
    fn set_frozen(&mut self, _frozen: bool) {}

    /// Discards learned equilibrium state (Colloid watermarks, adaptive
    /// thresholds) after the machine's operating point changed
    /// permanently, e.g. a tier shrink. Heat tracking is kept.
    /// Default: no-op.
    fn reset_equilibrium(&mut self) {}

    /// Relative hotness of a page under this system's own tracking
    /// metadata (higher = hotter; 0.0 = never seen). Used by the
    /// supervisor to drain a degraded tier hottest-first.
    fn heat_of(&self, _vpn: Vpn) -> f64 {
        0.0
    }

    /// Supervision telemetry (mode timeline, time-to-recover), for
    /// systems wrapped in a [`Supervisor`]. Default: `None`.
    fn supervision(&self) -> Option<SupervisionReport> {
        None
    }

    /// Attaches a telemetry sink; the system forwards clones to the
    /// sub-components it owns (Colloid controller, retry queue, wrapped
    /// inner system). Default: no-op, for systems with nothing to record.
    fn set_telemetry(&mut self, _sink: telemetry::Sink) {}
}

/// A placement policy that never migrates (used for the best-case oracle's
/// manually pinned placements and for baseline-free runs).
pub struct StaticPlacement;

impl TieringSystem for StaticPlacement {
    fn on_tick(&mut self, _machine: &mut Machine, _report: &TickReport) {}

    fn name(&self) -> String {
        "static".into()
    }
}

/// Parameters shared by every system.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Page ranges under the system's management (the application's
    /// regions; pinned/antagonist pages are excluded).
    pub managed: Vec<std::ops::Range<Vpn>>,
    /// Machine tick duration (the base quantum).
    pub tick: SimTime,
    /// Static migration rate limit, bytes per tick (`M` in Algorithm 1).
    pub migration_limit_per_tick: u64,
    /// Unloaded latency of each tier in ns (for Colloid's idle-tier
    /// fallback).
    pub unloaded_ns: Vec<f64>,
    /// Attach the Colloid controller (ε, δ) instead of the vanilla
    /// placement policy.
    pub colloid: Option<ColloidParams>,
}

/// Colloid knobs (paper §5: ε = 0.01, δ = 0.05).
#[derive(Debug, Clone, Copy)]
pub struct ColloidParams {
    /// Watermark collapse threshold ε.
    pub epsilon: f64,
    /// Latency balance tolerance δ.
    pub delta: f64,
    /// EWMA smoothing factor for the occupancy/rate signals.
    pub ewma_alpha: f64,
    /// Dynamic migration limit (§3.2); disable for ablation runs.
    pub dynamic_limit: bool,
}

impl Default for ColloidParams {
    fn default() -> Self {
        ColloidParams {
            epsilon: 0.01,
            delta: 0.05,
            ewma_alpha: 0.3,
            dynamic_limit: true,
        }
    }
}

impl SystemParams {
    /// Reasonable defaults for the paper's scaled GUPS setup: 100 µs ticks
    /// and a 2.4 GB/s static migration limit.
    pub fn new(managed: Vec<std::ops::Range<Vpn>>, colloid: Option<ColloidParams>) -> Self {
        let tick = SimTime::from_us(100.0);
        SystemParams {
            managed,
            tick,
            migration_limit_per_tick: (2.4e9 * tick.as_secs()) as u64,
            unloaded_ns: vec![70.0, 135.7],
            colloid,
        }
    }

    /// Total managed pages.
    pub fn managed_pages(&self) -> u64 {
        self.managed.iter().map(|r| r.end - r.start).sum()
    }

    /// Number of memory tiers this configuration addresses.
    pub fn n_tiers(&self) -> usize {
        self.unloaded_ns.len()
    }

    /// Builds the Colloid decision engine for this configuration, if
    /// enabled: the two-tier Algorithm 1 controller on a two-tier machine,
    /// the pairwise multi-tier balancer (§3.1) beyond that.
    pub(crate) fn build_colloid(&self) -> Option<ColloidDriver> {
        self.colloid.map(|c| {
            if self.unloaded_ns.len() == 2 {
                ColloidDriver::Pair(colloid::ColloidController::new(colloid::ColloidConfig {
                    epsilon: c.epsilon,
                    delta: c.delta,
                    ewma_alpha: c.ewma_alpha,
                    static_limit_bytes: self.migration_limit_per_tick,
                    quantum_ns: self.tick.as_ns(),
                    unloaded_ns: self.unloaded_ns.clone(),
                    dynamic_limit: c.dynamic_limit,
                }))
            } else {
                ColloidDriver::Chain(colloid::multitier::MultiTierBalancer::new(
                    self.unloaded_ns.clone(),
                    c.epsilon,
                    c.delta,
                    c.ewma_alpha,
                    self.migration_limit_per_tick,
                    self.tick.as_ns(),
                ))
            }
        })
    }
}

/// One migration direction for a quantum, in tier terms: move pages whose
/// summed access probability is within `delta_p` (and summed size within
/// `byte_limit`) from `src` to `dst`. The systems act on this shape
/// regardless of which decision engine produced it.
#[derive(Debug, Clone, Copy)]
pub struct TierMove {
    /// Tier pages leave.
    pub src: TierId,
    /// Tier pages land in (adjacent to `src` in the tier chain).
    pub dst: TierId,
    /// Desired shift in summed access probability.
    pub delta_p: f64,
    /// Byte budget for this quantum's migrations.
    pub byte_limit: u64,
}

impl TierMove {
    /// Whether the move heads towards a faster (lower-latency) tier.
    pub fn is_promotion(&self) -> bool {
        self.dst.0 < self.src.0
    }
}

/// The Colloid decision engine behind a system: on exactly two tiers the
/// original Algorithm 1 controller runs verbatim (keeping two-tier runs
/// bit-identical); with more tiers the pairwise [`MultiTierBalancer`]
/// generalisation takes over, emitting moves between adjacent tier pairs.
///
/// [`MultiTierBalancer`]: colloid::multitier::MultiTierBalancer
pub enum ColloidDriver {
    /// `n == 2`: the paper's two-tier controller.
    Pair(colloid::ColloidController),
    /// `n > 2`: pairwise balancing along the tier chain (§3.1).
    Chain(colloid::multitier::MultiTierBalancer),
}

impl ColloidDriver {
    /// One quantum: per-tier measurements in, adjacent-pair moves out
    /// (empty when balanced or idle; at most one move per quantum today).
    pub fn on_quantum(&mut self, window: &[colloid::TierMeasurement]) -> Vec<TierMove> {
        match self {
            ColloidDriver::Pair(c) => c
                .on_quantum(window)
                .map(|d| {
                    let (src, dst) = match d.mode {
                        colloid::Mode::Promote => (TierId::ALTERNATE, TierId::DEFAULT),
                        colloid::Mode::Demote => (TierId::DEFAULT, TierId::ALTERNATE),
                    };
                    TierMove {
                        src,
                        dst,
                        delta_p: d.delta_p,
                        byte_limit: d.byte_limit,
                    }
                })
                .into_iter()
                .collect(),
            ColloidDriver::Chain(b) => b
                .on_quantum(window)
                .into_iter()
                .map(|d| {
                    let (src, dst) = match d.mode {
                        colloid::Mode::Promote => (TierId(d.lower as u8), TierId(d.upper as u8)),
                        colloid::Mode::Demote => (TierId(d.upper as u8), TierId(d.lower as u8)),
                    };
                    TierMove {
                        src,
                        dst,
                        delta_p: d.delta_p,
                        byte_limit: d.byte_limit,
                    }
                })
                .collect(),
        }
    }

    /// Freezes or resumes the watermark controller(s).
    pub fn set_frozen(&mut self, frozen: bool) {
        match self {
            ColloidDriver::Pair(c) => c.set_frozen(frozen),
            ColloidDriver::Chain(b) => b.set_frozen(frozen),
        }
    }

    /// Restarts the watermark search(es) from the full interval.
    pub fn reset_equilibrium(&mut self) {
        match self {
            ColloidDriver::Pair(c) => c.reset_equilibrium(),
            ColloidDriver::Chain(b) => b.reset_equilibrium(),
        }
    }

    /// Attaches a telemetry sink.
    pub fn set_telemetry(&mut self, sink: telemetry::Sink) {
        match self {
            ColloidDriver::Pair(c) => c.set_telemetry(sink),
            ColloidDriver::Chain(b) => b.set_telemetry(sink),
        }
    }
}

/// Extracts Colloid's per-tier `(O, R)` measurements from a tick report.
pub(crate) fn measurements(report: &TickReport) -> Vec<colloid::TierMeasurement> {
    report
        .tiers
        .iter()
        .map(|t| colloid::TierMeasurement {
            occupancy: t.occupancy,
            rate_per_ns: t.rate_per_ns,
        })
        .collect()
}

/// Which of the three systems to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// HeMem (SOSP '21).
    Hemem,
    /// TPP (ASPLOS '23), as upstreamed in Linux v6.3.
    Tpp,
    /// MEMTIS (SOSP '23).
    Memtis,
}

impl SystemKind {
    /// All three systems, in the paper's presentation order.
    pub const ALL: [SystemKind; 3] = [SystemKind::Hemem, SystemKind::Tpp, SystemKind::Memtis];

    /// Base display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Hemem => "HeMem",
            SystemKind::Tpp => "TPP",
            SystemKind::Memtis => "MEMTIS",
        }
    }
}

/// Builds a system (vanilla or +Colloid per `params.colloid`).
pub fn build_system(kind: SystemKind, params: SystemParams) -> Box<dyn TieringSystem> {
    match kind {
        SystemKind::Hemem => Box::new(hemem::HeMem::new(params)),
        SystemKind::Tpp => Box::new(tpp::Tpp::new(params, tpp::TppConfig::default())),
        SystemKind::Memtis => {
            Box::new(memtis::Memtis::new(params, memtis::MemtisConfig::default()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_defaults() {
        let p = SystemParams::new(vec![0..100, 200..300], None);
        assert_eq!(p.managed_pages(), 200);
        // 2.4 GB/s over 100 us = 240 KB per tick.
        assert_eq!(p.migration_limit_per_tick, 240_000);
        assert!(p.build_colloid().is_none());
    }

    #[test]
    fn colloid_controller_built_when_enabled() {
        let p = SystemParams::new(vec![0..10], Some(ColloidParams::default()));
        match p.build_colloid().expect("driver") {
            ColloidDriver::Pair(c) => {
                assert_eq!(c.shift().epsilon(), 0.01);
                assert_eq!(c.shift().delta(), 0.05);
            }
            ColloidDriver::Chain(_) => panic!("two tiers must use the pair controller"),
        }
    }

    #[test]
    fn three_tier_params_build_the_chain_driver() {
        let mut p = SystemParams::new(vec![0..10], Some(ColloidParams::default()));
        p.unloaded_ns = vec![70.0, 180.0, 350.0];
        assert_eq!(p.n_tiers(), 3);
        assert!(matches!(p.build_colloid(), Some(ColloidDriver::Chain(_))));
    }

    #[test]
    fn tier_move_direction_matches_tier_order() {
        let up = TierMove {
            src: TierId(2),
            dst: TierId(1),
            delta_p: 0.1,
            byte_limit: 4096,
        };
        assert!(up.is_promotion());
        let down = TierMove {
            src: TierId(0),
            dst: TierId(1),
            delta_p: 0.1,
            byte_limit: 4096,
        };
        assert!(!down.is_promotion());
    }

    #[test]
    fn chain_driver_emits_adjacent_pair_moves() {
        let mut p = SystemParams::new(vec![0..10], Some(ColloidParams::default()));
        p.unloaded_ns = vec![70.0, 180.0, 350.0];
        let mut d = p.build_colloid().expect("driver");
        // Default tier heavily loaded (300 ns) against near-balanced lower
        // tiers (190/195 ns): once the latency EWMAs converge, pair 0-1 is
        // the most imbalanced and the driver demotes tier 0 → tier 1.
        let window = [
            colloid::TierMeasurement {
                occupancy: 90.0,
                rate_per_ns: 0.3,
            },
            colloid::TierMeasurement {
                occupancy: 19.0,
                rate_per_ns: 0.1,
            },
            colloid::TierMeasurement {
                occupancy: 9.75,
                rate_per_ns: 0.05,
            },
        ];
        let mut last = Vec::new();
        for _ in 0..50 {
            let moves = d.on_quantum(&window);
            if !moves.is_empty() {
                last = moves;
            }
        }
        assert_eq!(last.len(), 1);
        assert_eq!(last[0].src, TierId(0));
        assert_eq!(last[0].dst, TierId(1));
        assert!(!last[0].is_promotion());
        assert!(last[0].delta_p > 0.0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(SystemKind::Hemem.name(), "HeMem");
        assert_eq!(SystemKind::ALL.len(), 3);
    }
}
