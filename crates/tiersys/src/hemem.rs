//! HeMem (SOSP '21) and HeMem+Colloid (paper §4.1).
//!
//! HeMem tracks per-page access frequencies from PEBS samples, keeps
//! hot/cold page lists per tier, cools counts by halving when any count
//! reaches `COOLING_THRESHOLD`, and migrates asynchronously on a 10 ms
//! quantum (scaled here to one machine tick).
//!
//! Vanilla placement packs every page whose count exceeds a fixed hot
//! threshold into the default tier, demoting cold pages when frames run
//! out — the "pack the hottest pages in the default tier" policy the paper
//! shows is contention-oblivious.
//!
//! The Colloid integration (520 LoC in the paper) replaces that policy with
//! Algorithm 1: the binary hot/cold lists become one list per frequency bin
//! (five by default), and each quantum the page finder walks the bins from
//! hottest to coldest collecting pages whose summed access probability stays
//! within Δp and whose summed size stays within the dynamic migration
//! limit.

use colloid::{Mode, PageFinder};
use memsim::{Machine, TickReport, TierId, Vpn, PAGE_SIZE};
use tierctl::{FreqTracker, MigrationBudget, TierBins};

use crate::retry::{RetryPolicy, RetryQueue, RetryStats};
use crate::{measurements, ColloidDriver, SystemParams, TierMove, TieringSystem};

/// HeMem's cooling threshold (counts halve when any page reaches it).
const COOLING_THRESHOLD: u32 = 16;
/// Number of frequency bins for the Colloid page finder (paper: "We use 5
/// bins by default").
const N_BINS: usize = 5;
/// Vanilla hot threshold: a page is hot once its count reaches this.
const HOT_THRESHOLD: u32 = 2;
/// Work bound per quantum for the page finder.
const MAX_EXAMINED: usize = 65_536;

/// Counters exposed for tests and telemetry.
#[derive(Debug, Clone, Copy, Default)]
pub struct HememStats {
    /// Pages promoted into the default tier.
    pub promoted: u64,
    /// Pages demoted to the alternate tier (including room-making).
    pub demoted: u64,
    /// Cooling passes performed.
    pub coolings: u64,
}

/// The §4.1 page-finding procedure over frequency-binned lists, as a
/// standalone [`PageFinder`]: walk the source tier's bins from hottest to
/// coldest, collecting pages whose summed access probability stays within
/// Δp and whose summed size stays within the byte limit.
///
/// # Examples
///
/// ```
/// use colloid::{Mode, PageFinder};
/// use memsim::TierId;
/// use tierctl::{FreqTracker, TierBins};
/// use tiersys::hemem::BinnedFinder;
///
/// let mut tracker = FreqTracker::new(16);
/// let mut bins = TierBins::new(2, 5, 16);
/// for vpn in 0..4u64 {
///     bins.insert(vpn, TierId::DEFAULT, 0);
/// }
/// for _ in 0..10 {
///     tracker.record(0); // page 0 carries all the probability
/// }
/// bins.update_count(0, tracker.count(0));
/// let mut finder = BinnedFinder::new(&bins, &tracker);
/// // Demotion with Δp = 1: the hot page is picked first.
/// let pages = finder.find_pages(Mode::Demote, 1.0, 4096);
/// assert_eq!(pages, vec![0]);
/// ```
pub struct BinnedFinder<'a> {
    bins: &'a TierBins,
    tracker: &'a FreqTracker,
}

impl<'a> BinnedFinder<'a> {
    /// Creates a finder over a system's bins and frequency counts.
    pub fn new(bins: &'a TierBins, tracker: &'a FreqTracker) -> Self {
        BinnedFinder { bins, tracker }
    }

    /// The §4.1 bin walk with an explicit source tier — the N-tier entry
    /// point ([`PageFinder::find_pages`] maps a two-tier [`Mode`] onto it).
    pub fn find_pages_from(&self, from: TierId, delta_p: f64, byte_limit: u64) -> Vec<Vpn> {
        let mut rem_p = delta_p;
        let mut rem_bytes = byte_limit;
        let mut out = Vec::new();
        let mut examined = 0;
        for bin in (0..self.bins.n_bins()).rev() {
            for &vpn in self.bins.pages(from, bin) {
                if rem_bytes < PAGE_SIZE || examined >= MAX_EXAMINED {
                    return out;
                }
                examined += 1;
                let prob = self.tracker.access_prob(vpn);
                if prob <= 0.0 || prob > rem_p {
                    // Zero-probability pages cannot shift latency; pages
                    // that overshoot the remaining Δp are skipped in favour
                    // of colder ones (paper §3.2).
                    continue;
                }
                out.push(vpn);
                rem_p -= prob;
                rem_bytes -= PAGE_SIZE;
            }
        }
        out
    }
}

impl PageFinder for BinnedFinder<'_> {
    fn find_pages(&mut self, mode: Mode, delta_p: f64, byte_limit: u64) -> Vec<Vpn> {
        let from = match mode {
            Mode::Promote => TierId::ALTERNATE,
            Mode::Demote => TierId::DEFAULT,
        };
        self.find_pages_from(from, delta_p, byte_limit)
    }
}

/// The HeMem tiering system (vanilla or +Colloid).
pub struct HeMem {
    params: SystemParams,
    tracker: FreqTracker,
    bins: TierBins,
    budget: MigrationBudget,
    colloid: Option<ColloidDriver>,
    retry: RetryQueue,
    initialized: bool,
    frozen: bool,
    stats: HememStats,
}

impl HeMem {
    /// Builds HeMem; attaches Colloid when `params.colloid` is set.
    pub fn new(params: SystemParams) -> Self {
        let colloid = params.build_colloid();
        HeMem {
            tracker: FreqTracker::new(COOLING_THRESHOLD),
            bins: TierBins::new(params.unloaded_ns.len(), N_BINS, COOLING_THRESHOLD),
            budget: MigrationBudget::new(params.migration_limit_per_tick),
            colloid,
            retry: RetryQueue::new(RetryPolicy::default()),
            initialized: false,
            frozen: false,
            stats: HememStats::default(),
            params,
        }
    }

    /// Telemetry counters.
    pub fn stats(&self) -> HememStats {
        self.stats
    }

    fn initialize(&mut self, machine: &Machine) {
        for range in self.params.managed.clone() {
            for vpn in range {
                let tier = machine
                    .tier_of(vpn)
                    .expect("managed pages are placed before the system starts");
                self.bins.insert(vpn, tier, 0);
            }
        }
        self.initialized = true;
    }

    fn ingest_samples(&mut self, report: &TickReport) {
        for s in &report.pebs {
            if self.bins.tier_of(s.vpn).is_none() {
                continue; // not under management
            }
            let cooled = self.tracker.record(s.vpn);
            if cooled {
                self.stats.coolings += 1;
                // Cooling halved every count: re-bin the whole population.
                for range in self.params.managed.clone() {
                    for vpn in range {
                        self.bins.update_count(vpn, self.tracker.count(vpn));
                    }
                }
            } else {
                self.bins.update_count(s.vpn, self.tracker.count(s.vpn));
            }
        }
    }

    /// Demotes the coldest page of `from` one hop down the tier chain to
    /// make room; returns whether a frame was freed (the migration was
    /// enqueued). Prefers never-sampled pages so recently-cooled hot pages
    /// are not churned out. `from` must not be the last tier.
    fn demote_one_cold(&mut self, machine: &mut Machine, from: TierId) -> bool {
        let down = TierId(from.0 + 1);
        for pass in 0..2 {
            for bin in 0..self.bins.n_bins() {
                let candidates = self.bins.pages(from, bin).to_vec();
                for vpn in candidates {
                    if pass == 0 && self.tracker.count(vpn) > 0 {
                        continue;
                    }
                    if !self.budget.try_take_page() {
                        return false;
                    }
                    if machine.enqueue_migration(vpn, down).is_ok() {
                        self.bins.move_tier(vpn, down);
                        self.stats.demoted += 1;
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Vanilla HeMem placement: pack pages with count >= HOT_THRESHOLD one
    /// hop up the tier chain (on a two-tier machine: into the default
    /// tier; hot pages on deeper tiers ratchet upwards tick by tick).
    fn vanilla_place(&mut self, machine: &mut Machine) {
        let n_tiers = self.params.n_tiers() as u8;
        let hot_bin_floor = self.bins.bin_of_count(HOT_THRESHOLD);
        for src in 1..n_tiers {
            let (src, dst) = (TierId(src), TierId(src - 1));
            for bin in (hot_bin_floor..self.bins.n_bins()).rev() {
                let candidates = self.bins.pages(src, bin).to_vec();
                for vpn in candidates {
                    if self.tracker.count(vpn) < HOT_THRESHOLD {
                        continue;
                    }
                    // Make room if needed.
                    if machine.free_pages(dst) == 0 && !self.demote_one_cold(machine, dst) {
                        return;
                    }
                    if !self.budget.try_take_page() {
                        return;
                    }
                    if self.retry.request(machine, vpn, dst) {
                        self.bins.move_tier(vpn, dst);
                        self.stats.promoted += 1;
                    }
                }
            }
        }
    }

    /// Colloid placement (§4.1): find pages with [`BinnedFinder`] in the
    /// move's source tier, then migrate them through the machine's engine,
    /// making room with cold demotions when promoting into a full tier.
    fn colloid_place(&mut self, machine: &mut Machine, mv: &TierMove) {
        let candidates = {
            let finder = BinnedFinder::new(&self.bins, &self.tracker);
            finder.find_pages_from(
                mv.src,
                mv.delta_p,
                mv.byte_limit.min(self.budget.remaining()),
            )
        };
        let promotion = mv.is_promotion();
        for vpn in candidates {
            if promotion
                && machine.free_pages(mv.dst) == 0
                && !self.demote_one_cold(machine, mv.dst)
            {
                return;
            }
            if !self.budget.try_take_page() {
                return;
            }
            if self.retry.request(machine, vpn, mv.dst) {
                self.bins.move_tier(vpn, mv.dst);
                if promotion {
                    self.stats.promoted += 1;
                } else {
                    self.stats.demoted += 1;
                }
            }
        }
    }
}

impl TieringSystem for HeMem {
    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport) {
        if !self.initialized {
            self.initialize(machine);
        }
        // Migrations that aborted in flight never landed: re-sync the bins
        // with the page's actual tier and park the move for retry.
        self.retry.note_failures(report);
        for f in &report.failed_migrations {
            if self.bins.tier_of(f.vpn).is_some() {
                if let Some(actual) = machine.tier_of(f.vpn) {
                    self.bins.move_tier(f.vpn, actual);
                }
            }
        }
        for (vpn, dst) in self.retry.on_tick(machine) {
            if self.bins.tier_of(vpn).is_some() {
                self.bins.move_tier(vpn, dst);
            }
        }
        // Pages force-evacuated by a tier shrink already moved: re-sync
        // the bins with where each page actually landed.
        for &(vpn, dst) in &report.evacuated {
            if self.bins.tier_of(vpn).is_some() {
                self.bins.move_tier(vpn, dst);
            }
        }
        self.ingest_samples(report);
        self.budget.refill();
        match self
            .colloid
            .as_mut()
            .map(|c| c.on_quantum(&measurements(report)))
        {
            None => {
                // A frozen vanilla system keeps tracking but stops moving.
                if !self.frozen {
                    self.vanilla_place(machine)
                }
            }
            // Colloid enabled: act on each pair move (none when balanced).
            Some(moves) => {
                for mv in moves {
                    self.colloid_place(machine, &mv);
                }
            }
        }
    }

    fn name(&self) -> String {
        if self.colloid.is_some() {
            "HeMem+Colloid".into()
        } else {
            "HeMem".into()
        }
    }

    fn retry_stats(&self) -> Option<RetryStats> {
        Some(self.retry.stats())
    }

    fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
        if let Some(c) = self.colloid.as_mut() {
            c.set_frozen(frozen);
        }
    }

    fn reset_equilibrium(&mut self) {
        if let Some(c) = self.colloid.as_mut() {
            c.reset_equilibrium();
        }
    }

    fn heat_of(&self, vpn: Vpn) -> f64 {
        f64::from(self.tracker.count(vpn))
    }

    fn set_telemetry(&mut self, sink: telemetry::Sink) {
        if let Some(c) = self.colloid.as_mut() {
            c.set_telemetry(sink.clone());
        }
        self.retry.set_telemetry(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::machine::AccessStream;
    use memsim::{
        CoreConfig, MachineConfig, ObjectAccess, TrafficClass, LINES_PER_PAGE, LINE_SIZE,
    };
    use rand::rngs::SmallRng;
    use rand::Rng;
    use simkit::SimTime;

    /// 90/10 hot/cold over [0, hot) vs [0, total).
    struct HotCold {
        hot: u64,
        total: u64,
    }
    impl AccessStream for HotCold {
        fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
            let vpn = if rng.gen_bool(0.9) {
                rng.gen_range(0..self.hot)
            } else {
                rng.gen_range(0..self.total)
            };
            ObjectAccess::read_line(vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE)
        }
    }

    /// Small two-tier machine: default fits 64 pages, working set 256.
    fn small_machine() -> Machine {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        cfg.pebs_period = 16;
        let mut m = Machine::new(cfg);
        // Hot pages [0, 32) start in the WRONG tier to exercise promotion.
        m.place_range(0..256, TierId::ALTERNATE);
        m.add_core(
            Box::new(HotCold {
                hot: 32,
                total: 256,
            }),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        m
    }

    fn params(colloid: bool) -> SystemParams {
        SystemParams::new(vec![0..256], colloid.then(crate::ColloidParams::default))
    }

    fn run(system: &mut dyn TieringSystem, m: &mut Machine, ticks: usize) {
        for _ in 0..ticks {
            let rep = m.run_tick(SimTime::from_us(100.0));
            system.on_tick(m, &rep);
        }
    }

    #[test]
    fn vanilla_promotes_hot_pages_to_default() {
        let mut m = small_machine();
        let mut h = HeMem::new(params(false));
        run(&mut h, &mut m, 300);
        let hot_in_default = (0..32)
            .filter(|&v| m.tier_of(v) == Some(TierId::DEFAULT))
            .count();
        assert!(
            hot_in_default >= 28,
            "vanilla HeMem should pack the hot set into the default tier, got {hot_in_default}/32"
        );
        assert!(h.stats().promoted >= 28);
    }

    #[test]
    fn vanilla_respects_capacity_via_cold_demotion() {
        let mut m = small_machine();
        // Pre-fill default with cold pages so promotion must demote.
        for vpn in 200..256 {
            let _ = m.enqueue_migration(vpn, TierId::DEFAULT);
        }
        m.run_tick(SimTime::from_ms(1.0));
        let mut h = HeMem::new(params(false));
        run(&mut h, &mut m, 300);
        let hot_in_default = (0..32)
            .filter(|&v| m.tier_of(v) == Some(TierId::DEFAULT))
            .count();
        assert!(hot_in_default >= 28, "got {hot_in_default}/32");
        assert!(h.stats().demoted > 0, "cold pages must have been evicted");
    }

    #[test]
    fn colloid_balances_latencies_not_capacity() {
        // Make the default tier tiny AND heavily self-contended by placing
        // all traffic on it via vanilla; Colloid should instead converge to
        // a split that balances measured latencies.
        let mut m = small_machine();
        let mut h = HeMem::new(params(true));
        run(&mut h, &mut m, 400);
        let rep = m.run_tick(SimTime::from_us(400.0));
        let l_d = rep.littles_latency_ns(TierId::DEFAULT);
        let l_a = rep.littles_latency_ns(TierId::ALTERNATE);
        // Both tiers carry traffic at steady state under Colloid (the
        // single-core load is light, so the default tier stays fastest
        // and hot pages flow towards it, but never beyond balance).
        assert!(h.stats().promoted > 0);
        if let (Some(l_d), Some(l_a)) = (l_d, l_a) {
            assert!(
                l_d <= l_a * 1.3,
                "Colloid must not leave the default tier slower: {l_d} vs {l_a}"
            );
        }
    }

    #[test]
    fn colloid_name_reflects_variant() {
        assert_eq!(HeMem::new(params(false)).name(), "HeMem");
        assert_eq!(HeMem::new(params(true)).name(), "HeMem+Colloid");
    }

    #[test]
    fn migration_failures_are_retried_until_pages_land() {
        // 30% of migrations abort in flight; the retry queue must re-drive
        // them so the hot set still converges into the default tier.
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        cfg.pebs_period = 16;
        cfg.faults.migration_fail_prob = 0.3;
        let mut m = Machine::new(cfg);
        m.place_range(0..256, TierId::ALTERNATE);
        m.add_core(
            Box::new(HotCold {
                hot: 32,
                total: 256,
            }),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        let mut h = HeMem::new(params(false));
        run(&mut h, &mut m, 300);
        let retry = h.retry_stats().expect("HeMem drives a retry queue");
        assert!(retry.scheduled > 0, "faults must have parked retries");
        assert!(retry.recovered > 0, "retries must have re-driven pages");
        assert_eq!(retry.dropped, 0, "no migration permanently dropped");
        let hot_in_default = (0..32)
            .filter(|&v| m.tier_of(v) == Some(TierId::DEFAULT))
            .count();
        assert!(
            hot_in_default >= 28,
            "hot set must still converge under migration faults, got {hot_in_default}/32"
        );
        // The retry queue drains to (almost) nothing: entries mid-backoff
        // may linger for up to max_delay_ticks, but nothing accumulates.
        run(&mut h, &mut m, 50);
        assert!(
            h.retry.pending() <= 2,
            "retry queue must not accumulate, pending = {}",
            h.retry.pending()
        );
    }

    #[test]
    fn three_tier_vanilla_ratchets_hot_pages_to_the_top() {
        // Hot pages start at the BOTTOM of a three-tier chain; one-hop
        // promotion must ratchet them far → cxl → local over time.
        let mut cfg = MachineConfig::cxl_three_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 128 * PAGE_SIZE;
        cfg.tiers[2].capacity_bytes = 1024 * PAGE_SIZE;
        cfg.pebs_period = 16;
        let mut m = Machine::new(cfg);
        m.place_range(0..256, TierId(2));
        m.add_core(
            Box::new(HotCold {
                hot: 32,
                total: 256,
            }),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        let mut p = params(false);
        p.unloaded_ns = m
            .config()
            .tiers
            .iter()
            .map(|t| t.unloaded_latency().as_ns())
            .collect();
        let mut h = HeMem::new(p);
        run(&mut h, &mut m, 400);
        let hot_on_top = (0..32).filter(|&v| m.tier_of(v) == Some(TierId(0))).count();
        assert!(
            hot_on_top >= 24,
            "hot set must ratchet 2 → 1 → 0, got {hot_on_top}/32 on the local tier"
        );
        // Page conservation: every managed page is still resident somewhere.
        let resident = (0..256).filter(|&v| m.tier_of(v).is_some()).count();
        assert_eq!(resident, 256);
    }

    #[test]
    fn cooling_rebins_population() {
        let mut m = small_machine();
        let mut h = HeMem::new(params(false));
        run(&mut h, &mut m, 600);
        assert!(
            h.stats().coolings > 0,
            "long runs must trigger cooling passes"
        );
        // Counts stay below the cooling threshold after cooling.
        for vpn in 0..256 {
            assert!(h.tracker.count(vpn) <= COOLING_THRESHOLD);
        }
    }
}
