//! Tiering supervisor: graceful degradation under hard faults.
//!
//! The three tiering systems assume a machine that mostly works: frames
//! stay mapped, the migration engine eventually services its queue, and a
//! failed migration is transient. Hard faults (permanent tier shrinks,
//! engine outages, permanent bandwidth collapse — `memsim::faults`) break
//! those assumptions, and an unsupervised system degrades badly: it keeps
//! hammering a dead engine (each aborted start still burns engine time),
//! floods a collapsed link with admissions, and chases a stale equilibrium
//! after the machine's capacity changed for good.
//!
//! The [`Supervisor`] wraps any [`TieringSystem`] and watches per-tick
//! health signals — migration success rate, retry-queue saturation,
//! persistent latency inversion, forced evacuations and capacity loss —
//! and drives an explicit mode machine:
//!
//! ```text
//!            degraded ≥ enter_ticks            all-fail ≥ enter_ticks
//!   Normal ───────────────────────▶ Throttled ──────────────────────▶ Frozen
//!     ▲                                │  ▲                             │
//!     │ dwell elapsed                  │  │ relapse                     │ probe
//!     │                                ▼  │                            │ successes
//!   Recovered ◀──────────────────── (healthy ≥ exit_ticks) ◀───────────┘
//!     ▲
//!     │ drain quiet
//!   Evacuating ◀── forced evacuation / capacity loss (any mode, immediate)
//! ```
//!
//! Per-mode admission control is enforced twice: the supervisor freezes
//! the inner system's placement (it keeps ingesting counters so its view
//! stays current), and the machine itself caps admitted migrations per
//! tick ([`Machine::set_migration_admission_limit`]) as defense in depth.
//! Mode transitions carry hysteresis — `enter_ticks` consecutive unhealthy
//! ticks to degrade, `exit_ticks` consecutive healthy ticks to recover —
//! so oscillating signals cannot thrash modes.
//!
//! While `Frozen`, the supervisor sends a one-page canary migration every
//! `probe_interval` ticks; only probe *successes* count as recovery
//! evidence, so a silent (zero-traffic) outage cannot look healthy.
//! While `Evacuating`, it drains the shrunk tier hottest-pages-first using
//! the inner system's own heat metadata ([`TieringSystem::heat_of`]): a
//! page's cost of remaining on failing hardware is proportional to its
//! access rate, so the hottest pages are rescued first, and the machine's
//! arbitrary-order emergency path only handles frames that physically
//! vanished. On `Recovered` the inner system's learned equilibrium is
//! reset ([`TieringSystem::reset_equilibrium`]) so Colloid's watermark
//! search restarts against the post-fault operating point.

use memsim::{Machine, TickReport, TierId, Vpn};
use simkit::SimTime;

use crate::{RetryStats, TieringSystem};

/// The supervisor's operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SupervisorMode {
    /// Healthy: the inner system runs unrestricted.
    #[default]
    Normal,
    /// Degraded: placement runs but admissions are capped per tick.
    Throttled,
    /// Critical (e.g. engine outage): placement suspended, admissions
    /// blocked except for periodic canary probes.
    Frozen,
    /// A tier lost capacity: placement suspended while the supervisor
    /// drains the failing tier hottest-pages-first.
    Evacuating,
    /// Health restored: equilibrium reset, throttled re-admission while
    /// the system re-finds its operating point.
    Recovered,
}

impl SupervisorMode {
    /// Short display name ("normal", "frozen", ...).
    pub fn name(self) -> &'static str {
        match self {
            SupervisorMode::Normal => "normal",
            SupervisorMode::Throttled => "throttled",
            SupervisorMode::Frozen => "frozen",
            SupervisorMode::Evacuating => "evacuating",
            SupervisorMode::Recovered => "recovered",
        }
    }
}

/// Supervisor thresholds and knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Page ranges under supervision (the same ranges handed to the inner
    /// system's `SystemParams::managed`); the drain routine only touches
    /// these.
    pub managed: Vec<std::ops::Range<Vpn>>,
    /// Consecutive unhealthy ticks before degrading a mode (hysteresis).
    pub enter_ticks: u64,
    /// Consecutive healthy ticks before recovering a mode (hysteresis).
    pub exit_ticks: u64,
    /// Admitted migrations per tick while `Throttled` / `Recovered`.
    pub throttled_limit: u64,
    /// Drained pages per tick while `Evacuating`.
    pub drain_limit: u64,
    /// Ticks between canary probes while `Frozen`.
    pub probe_interval: u64,
    /// Successful probes required to leave `Frozen`.
    pub probe_successes_to_exit: u64,
    /// Ticks to dwell in `Recovered` before returning to `Normal`.
    pub recovered_dwell: u64,
    /// Per-tick migration failure ratio considered unhealthy.
    pub failure_rate_threshold: f64,
    /// Retry-queue depth considered saturated.
    pub backlog_threshold: u64,
    /// Consecutive ticks of latency inversion (default tier slower than
    /// the alternate tier) considered unhealthy.
    pub inversion_ticks: u64,
    /// Observed-vs-expected page-copy-time ratio above which the
    /// migration path counts as critically degraded (bandwidth collapse).
    /// A healthy engine sits near 1; transient queueing pushes it to ~2;
    /// the hard-fault collapse phases land near `1/factor`.
    pub copy_slowdown_threshold: f64,
}

impl SupervisorConfig {
    /// Defaults tuned for the experiments' 100 µs ticks.
    pub fn new(managed: Vec<std::ops::Range<Vpn>>) -> Self {
        SupervisorConfig {
            managed,
            enter_ticks: 3,
            exit_ticks: 10,
            throttled_limit: 8,
            drain_limit: 16,
            probe_interval: 5,
            probe_successes_to_exit: 2,
            recovered_dwell: 20,
            failure_rate_threshold: 0.5,
            backlog_threshold: 256,
            inversion_ticks: 50,
            copy_slowdown_threshold: 4.0,
        }
    }
}

/// One tick's worth of health evidence, distilled from the
/// [`TickReport`], the machine, and the inner system's retry counters.
/// Everything here is observable by a real supervisor daemon — there is
/// no fault-injection oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthSample {
    /// Migrations that failed this tick (transient aborts + outage aborts).
    pub failed: u64,
    /// Pages whose migration completed this tick.
    pub succeeded: u64,
    /// Entries currently parked in the inner system's retry queue.
    pub retry_pending: u64,
    /// Pages force-evacuated by the machine this tick.
    pub evacuated: u64,
    /// Any tier's effective capacity is below its configured capacity.
    pub tier_shrunk: bool,
    /// Pages still resident above some tier's effective capacity
    /// (deferred evacuation backlog).
    pub over_capacity: u64,
    /// The default tier's measured latency exceeded the alternate tier's.
    pub latency_inverted: bool,
    /// The supervisor's drain routine moved pages this tick.
    pub drain_active: bool,
    /// Observed / expected page-copy time for copies completed this tick
    /// (0 when nothing completed; ~1 on a healthy engine).
    pub copy_slowdown: f64,
}

/// Health classification of one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Ok,
    Degraded,
    Critical,
}

/// The pure mode machine: consumes one [`HealthSample`] per tick and
/// yields the mode. Deterministic by construction (no clock, no RNG) —
/// property-tested in `tests/properties.rs`.
#[derive(Debug, Clone)]
pub struct ModeMachine {
    cfg: ModeThresholds,
    mode: SupervisorMode,
    degraded_streak: u64,
    critical_streak: u64,
    healthy_streak: u64,
    inversion_streak: u64,
    dwell: u64,
    evac_quiet: u64,
    seen_shrunk: bool,
}

/// The subset of [`SupervisorConfig`] the mode machine needs.
#[derive(Debug, Clone, Copy)]
struct ModeThresholds {
    enter_ticks: u64,
    exit_ticks: u64,
    probe_successes_to_exit: u64,
    recovered_dwell: u64,
    failure_rate_threshold: f64,
    backlog_threshold: u64,
    inversion_ticks: u64,
    copy_slowdown_threshold: f64,
}

impl ModeMachine {
    /// Builds a machine in `Normal` from the supervisor's thresholds.
    pub fn new(cfg: &SupervisorConfig) -> Self {
        ModeMachine {
            cfg: ModeThresholds {
                enter_ticks: cfg.enter_ticks.max(1),
                exit_ticks: cfg.exit_ticks.max(1),
                probe_successes_to_exit: cfg.probe_successes_to_exit.max(1),
                recovered_dwell: cfg.recovered_dwell,
                failure_rate_threshold: cfg.failure_rate_threshold,
                backlog_threshold: cfg.backlog_threshold,
                inversion_ticks: cfg.inversion_ticks.max(1),
                copy_slowdown_threshold: cfg.copy_slowdown_threshold.max(1.0),
            },
            mode: SupervisorMode::Normal,
            degraded_streak: 0,
            critical_streak: 0,
            healthy_streak: 0,
            inversion_streak: 0,
            dwell: 0,
            evac_quiet: 0,
            seen_shrunk: false,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SupervisorMode {
        self.mode
    }

    fn classify(&self, h: &HealthSample) -> Health {
        let attempts = h.failed + h.succeeded;
        if attempts > 0 && h.succeeded == 0 {
            // Every migration attempted this tick failed: the engine is
            // effectively down.
            return Health::Critical;
        }
        if h.copy_slowdown >= self.cfg.copy_slowdown_threshold {
            // Copies complete but take several times the bandwidth-implied
            // duration: the migration path has collapsed. Because probes
            // also reveal this, a permanent collapse keeps the machine
            // Frozen instead of letting slow probe completions fake health.
            return Health::Critical;
        }
        let failure_rate = if attempts > 0 {
            h.failed as f64 / attempts as f64
        } else {
            0.0
        };
        if failure_rate >= self.cfg.failure_rate_threshold
            || h.retry_pending >= self.cfg.backlog_threshold
        {
            return Health::Degraded;
        }
        // Persistent latency inversion is *placement* evidence, not
        // migration-path evidence: it may degrade a running mode, but it
        // must not hold the machine Frozen — a contended default tier
        // stays inverted indefinitely while the engine is perfectly
        // healthy, and the only accepted recovery evidence in Frozen is
        // the migration path's own (probe successes at sane copy times).
        if self.inversion_streak >= self.cfg.inversion_ticks && self.mode != SupervisorMode::Frozen
        {
            return Health::Degraded;
        }
        Health::Ok
    }

    /// Advances one tick. Returns the (possibly unchanged) mode.
    pub fn step(&mut self, h: &HealthSample) -> SupervisorMode {
        self.inversion_streak = if h.latency_inverted {
            self.inversion_streak + 1
        } else {
            0
        };
        let health = self.classify(h);
        match health {
            Health::Ok => {
                // While Frozen, a quiet tick is *neutral*, not healthy:
                // with admissions blocked there are no failures to see, so
                // only probe successes may count as recovery evidence.
                if self.mode != SupervisorMode::Frozen || h.succeeded > 0 {
                    self.healthy_streak += 1;
                }
                self.degraded_streak = 0;
                self.critical_streak = 0;
            }
            Health::Degraded => {
                self.degraded_streak += 1;
                self.critical_streak = 0;
                self.healthy_streak = 0;
            }
            Health::Critical => {
                self.degraded_streak += 1;
                self.critical_streak += 1;
                self.healthy_streak = 0;
            }
        }

        // Capacity loss preempts everything: forced evacuations, a
        // lingering over-capacity backlog, or a newly observed shrink
        // switch to Evacuating immediately (the hardware already changed;
        // hysteresis would only delay the rescue).
        let shrink_edge = h.tier_shrunk && !self.seen_shrunk;
        self.seen_shrunk = h.tier_shrunk;
        if self.mode != SupervisorMode::Evacuating
            && (h.evacuated > 0 || h.over_capacity > 0 || shrink_edge)
        {
            return self.transition(SupervisorMode::Evacuating);
        }

        let next = match self.mode {
            SupervisorMode::Normal => {
                if self.critical_streak >= self.cfg.enter_ticks {
                    Some(SupervisorMode::Frozen)
                } else if self.degraded_streak >= self.cfg.enter_ticks {
                    Some(SupervisorMode::Throttled)
                } else {
                    None
                }
            }
            SupervisorMode::Throttled => {
                if self.critical_streak >= self.cfg.enter_ticks {
                    Some(SupervisorMode::Frozen)
                } else if self.healthy_streak >= self.cfg.exit_ticks {
                    Some(SupervisorMode::Recovered)
                } else {
                    None
                }
            }
            SupervisorMode::Frozen => {
                if self.healthy_streak >= self.cfg.probe_successes_to_exit {
                    Some(SupervisorMode::Recovered)
                } else {
                    None
                }
            }
            SupervisorMode::Evacuating => {
                let active = h.evacuated > 0 || h.over_capacity > 0 || h.drain_active;
                self.evac_quiet = if active { 0 } else { self.evac_quiet + 1 };
                if self.evac_quiet >= self.cfg.enter_ticks {
                    Some(SupervisorMode::Recovered)
                } else {
                    None
                }
            }
            SupervisorMode::Recovered => {
                self.dwell += 1;
                if self.critical_streak >= self.cfg.enter_ticks {
                    Some(SupervisorMode::Frozen)
                } else if self.degraded_streak >= self.cfg.enter_ticks {
                    Some(SupervisorMode::Throttled)
                } else if self.dwell >= self.cfg.recovered_dwell {
                    Some(SupervisorMode::Normal)
                } else {
                    None
                }
            }
        };
        match next {
            Some(mode) => self.transition(mode),
            None => self.mode,
        }
    }

    fn transition(&mut self, mode: SupervisorMode) -> SupervisorMode {
        self.mode = mode;
        // Fresh hysteresis window in the new mode.
        self.degraded_streak = 0;
        self.critical_streak = 0;
        self.healthy_streak = 0;
        self.dwell = 0;
        self.evac_quiet = 0;
        mode
    }
}

/// Supervision telemetry, surfaced through
/// [`TieringSystem::supervision`] and recorded into experiment results.
#[derive(Debug, Clone, Default)]
pub struct SupervisionReport {
    /// Mode transitions as `(time, entered mode)`; the first entry is
    /// `(0, Normal)`.
    pub timeline: Vec<(SimTime, SupervisorMode)>,
    /// Time from first leaving `Normal` to first returning to `Normal`,
    /// if both happened.
    pub time_to_recover: Option<SimTime>,
    /// Mode at the end of the run.
    pub final_mode: SupervisorMode,
    /// Canary probes sent while `Frozen`.
    pub probes_sent: u64,
    /// Pages drained hottest-first while `Evacuating`.
    pub drained_pages: u64,
}

/// Wraps a tiering system with health monitoring, the mode machine, and
/// per-mode admission control.
pub struct Supervisor {
    inner: Box<dyn TieringSystem>,
    cfg: SupervisorConfig,
    mm: ModeMachine,
    timeline: Vec<(SimTime, SupervisorMode)>,
    degraded_at: Option<SimTime>,
    recovered_at: Option<SimTime>,
    last_migrated: u64,
    frozen: bool,
    probe_clock: u64,
    probes_sent: u64,
    drained_pages: u64,
    drained_last_tick: bool,
    sink: telemetry::Sink,
}

impl Supervisor {
    /// Wraps `inner`; the supervisor starts in `Normal` with admissions
    /// unrestricted.
    pub fn new(inner: Box<dyn TieringSystem>, cfg: SupervisorConfig) -> Self {
        let mm = ModeMachine::new(&cfg);
        Supervisor {
            inner,
            cfg,
            mm,
            timeline: vec![(SimTime::ZERO, SupervisorMode::Normal)],
            degraded_at: None,
            recovered_at: None,
            last_migrated: 0,
            frozen: false,
            probe_clock: 0,
            probes_sent: 0,
            drained_pages: 0,
            drained_last_tick: false,
            sink: telemetry::Sink::default(),
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SupervisorMode {
        self.mm.mode()
    }

    /// Distills one tick's health evidence.
    fn sample(&self, machine: &Machine, report: &TickReport) -> HealthSample {
        let migrated = machine.migrated_pages();
        let succeeded = migrated.saturating_sub(self.last_migrated);
        let rs = self.inner.retry_stats().unwrap_or_default();
        let retry_pending = rs
            .scheduled
            .saturating_sub(rs.recovered + rs.resolved_moot + rs.dropped);
        let mut tier_shrunk = false;
        let mut over_capacity = 0;
        for (i, tier) in machine.config().tiers.iter().enumerate() {
            let t = TierId(i as u8);
            let eff = machine.capacity_pages(t);
            if eff < tier.capacity_pages() {
                tier_shrunk = true;
            }
            over_capacity += machine.used_pages(t).saturating_sub(eff);
        }
        // Inversion anywhere along the tier chain: a faster-by-design tier
        // measuring slower than its slower neighbour (on two tiers: the
        // default tier slower than the alternate).
        let latency_inverted = report
            .true_latency_ns
            .windows(2)
            .any(|w| matches!((w[0], w[1]), (Some(upper), Some(lower)) if upper > lower));
        // Expected copy time at the *configured* bandwidth — what a healthy
        // engine delivers regardless of queue depth (pacing is per page).
        let expected_ns = memsim::PAGE_SIZE as f64 / machine.config().migration_bandwidth * 1e9;
        let copy_slowdown = if machine.config().tiers.len() == 2 {
            report
                .mig_copy_ns
                .map(|obs| obs / expected_ns.max(1.0))
                .unwrap_or(0.0)
        } else {
            // N tiers: the worst adjacent pair's mean copy time — a single
            // collapsed link must not be averaged away by healthy ones.
            report
                .mig_copy_pair_ns
                .iter()
                .map(|&(_, _, ns)| ns / expected_ns.max(1.0))
                .fold(0.0, f64::max)
        };
        HealthSample {
            failed: report.failed_migrations.len() as u64,
            succeeded,
            retry_pending,
            evacuated: report.evacuated.len() as u64,
            tier_shrunk,
            over_capacity,
            latency_inverted,
            drain_active: self.drained_last_tick,
            copy_slowdown,
        }
    }

    /// The tier that permanently lost capacity, if any (first match).
    fn shrunk_tier(&self, machine: &Machine) -> Option<TierId> {
        machine
            .config()
            .tiers
            .iter()
            .enumerate()
            .map(|(i, tier)| (TierId(i as u8), tier))
            .find(|(t, tier)| machine.capacity_pages(*t) < tier.capacity_pages())
            .map(|(t, _)| t)
    }

    /// Applies the per-mode admission limit and freeze state. Runs every
    /// tick (idempotent) so the machine cap is always in force before the
    /// inner system gets to enqueue.
    fn apply_mode(&mut self, machine: &mut Machine, mode: SupervisorMode, probe_tick: bool) {
        let (limit, frozen) = match mode {
            SupervisorMode::Normal => (None, false),
            SupervisorMode::Throttled => (Some(self.cfg.throttled_limit), false),
            SupervisorMode::Frozen => (Some(u64::from(probe_tick)), true),
            SupervisorMode::Evacuating => (Some(self.cfg.drain_limit), true),
            SupervisorMode::Recovered => (Some(self.cfg.throttled_limit), false),
        };
        machine.set_migration_admission_limit(limit);
        if frozen != self.frozen {
            self.frozen = frozen;
            self.inner.set_frozen(frozen);
        }
    }

    /// Adapts the transactional engine to observed conflict pressure: when
    /// aborts and dirty retries dominate the transactions begun this tick,
    /// halve both the in-flight window (fewer concurrent snapshots racing
    /// writers) and the shootdown batch (shorter commit linger, shorter
    /// conflict exposure); when pressure subsides, step both back toward
    /// the configured operating point one notch per tick. A no-op on the
    /// exclusive legacy engine, so fault-free experiments are untouched.
    fn tune_engine(&mut self, machine: &mut Machine, report: &TickReport) {
        let e = &machine.config().engine;
        let (transactional, cfg_batch, cfg_channels) =
            (e.transactional, e.shootdown_batch, e.channels);
        if !transactional || report.txn.begun == 0 {
            return;
        }
        let t = &report.txn;
        let aborts = t.aborted_write_conflict + t.aborted_watchdog;
        let pressure = (aborts * 4 + t.dirty_retries) as f64 / t.begun as f64;
        let (batch, inflight) = machine.engine_tuning();
        if pressure > 1.0 {
            let (nb, ni) = ((batch / 2).max(1), (inflight / 2).max(1));
            if (nb, ni) != (batch, inflight) {
                machine.set_shootdown_batch(Some(nb));
                machine.set_max_inflight_txns(Some(ni));
            }
        } else if pressure < 0.25 && (batch, inflight) != (cfg_batch, cfg_channels) {
            let (nb, ni) = ((batch + 1).min(cfg_batch), (inflight + 1).min(cfg_channels));
            if (nb, ni) == (cfg_batch, cfg_channels) {
                machine.set_shootdown_batch(None);
                machine.set_max_inflight_txns(None);
            } else {
                machine.set_shootdown_batch(Some(nb));
                machine.set_max_inflight_txns(Some(ni));
            }
        }
    }

    /// Sends a one-page canary migration: the coldest managed page of the
    /// default tier is demoted (least harmful probe). Its fate — success
    /// or an entry in the next tick's `failed_migrations` — is the only
    /// recovery evidence accepted while `Frozen`.
    fn probe(&mut self, machine: &mut Machine) {
        let n_tiers = machine.config().tiers.len();
        let mut candidate: Option<(Vpn, f64)> = None;
        for range in &self.cfg.managed {
            for vpn in range.clone() {
                if machine.tier_of(vpn) != Some(TierId::DEFAULT) {
                    continue;
                }
                let heat = self.inner.heat_of(vpn);
                if candidate.is_none_or(|(_, best)| heat < best) {
                    candidate = Some((vpn, heat));
                }
            }
        }
        let Some((vpn, _)) = candidate else { return };
        let prev_cause = self.sink.cause();
        self.sink
            .span_decision(telemetry::Source::Supervisor, "supervisor.probe", "probe");
        for i in 0..n_tiers {
            let dst = TierId(i as u8);
            if dst != TierId::DEFAULT && machine.enqueue_migration(vpn, dst).is_ok() {
                self.probes_sent += 1;
                self.sink.emit(telemetry::Source::Supervisor, || {
                    telemetry::EventKind::ProbeSent { vpn }
                });
                break;
            }
        }
        self.sink.set_cause(prev_cause);
    }

    /// Drains the shrunk tier hottest-pages-first, bounded by
    /// `drain_limit` and destination space. Returns pages enqueued.
    fn drain(&mut self, machine: &mut Machine) -> u64 {
        let Some(src) = self.shrunk_tier(machine) else {
            return 0;
        };
        let mut candidates: Vec<(Vpn, f64)> = Vec::new();
        for range in &self.cfg.managed {
            for vpn in range.clone() {
                if machine.tier_of(vpn) == Some(src) {
                    candidates.push((vpn, self.inner.heat_of(vpn)));
                }
            }
        }
        // Hottest first; ties broken by vpn for determinism.
        candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let n_tiers = machine.config().tiers.len();
        let prev_cause = self.sink.cause();
        self.sink.span_decision(
            telemetry::Source::Supervisor,
            "supervisor.drain",
            "evacuate",
        );
        let mut moved = 0;
        'outer: for (vpn, _) in candidates {
            if moved >= self.cfg.drain_limit {
                break;
            }
            for i in 0..n_tiers {
                let dst = TierId(i as u8);
                if dst == src || machine.free_pages(dst) == 0 {
                    continue;
                }
                if machine.enqueue_migration(vpn, dst).is_ok() {
                    moved += 1;
                    continue 'outer;
                }
            }
            // No destination accepted the page (space exhausted or the
            // admission window closed): stop scanning.
            break;
        }
        self.sink.set_cause(prev_cause);
        self.drained_pages += moved;
        moved
    }
}

impl TieringSystem for Supervisor {
    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport) {
        let h = self.sample(machine, report);
        self.last_migrated = machine.migrated_pages();
        let prev = self.mm.mode();
        let mode = self.mm.step(&h);
        if mode != prev {
            self.timeline.push((report.t_end, mode));
            self.sink
                .emit_at(report.t_end, telemetry::Source::Supervisor, || {
                    telemetry::EventKind::ModeTransition {
                        from: prev.name(),
                        to: mode.name(),
                    }
                });
            if prev == SupervisorMode::Normal && self.degraded_at.is_none() {
                self.degraded_at = Some(report.t_end);
            }
            if mode == SupervisorMode::Normal
                && self.degraded_at.is_some()
                && self.recovered_at.is_none()
            {
                self.recovered_at = Some(report.t_end);
            }
            if mode == SupervisorMode::Recovered {
                self.inner.reset_equilibrium();
            }
        }

        let probe_tick = if mode == SupervisorMode::Frozen {
            self.probe_clock += 1;
            if self.probe_clock >= self.cfg.probe_interval {
                self.probe_clock = 0;
                true
            } else {
                false
            }
        } else {
            self.probe_clock = 0;
            false
        };

        self.apply_mode(machine, mode, probe_tick);
        self.tune_engine(machine, report);

        // The inner system always ingests the tick — frozen systems keep
        // their counters and heat metadata current; the admission cap and
        // the freeze flag keep them from acting on it.
        self.inner.on_tick(machine, report);

        self.drained_last_tick = false;
        if mode == SupervisorMode::Evacuating {
            self.drained_last_tick = self.drain(machine) > 0;
        } else if probe_tick {
            self.probe(machine);
        }
    }

    fn name(&self) -> String {
        format!("{} (supervised)", self.inner.name())
    }

    fn retry_stats(&self) -> Option<RetryStats> {
        self.inner.retry_stats()
    }

    fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
        self.inner.set_frozen(frozen);
    }

    fn reset_equilibrium(&mut self) {
        self.inner.reset_equilibrium();
    }

    fn heat_of(&self, vpn: Vpn) -> f64 {
        self.inner.heat_of(vpn)
    }

    fn set_telemetry(&mut self, sink: telemetry::Sink) {
        self.sink = sink.clone();
        self.inner.set_telemetry(sink);
    }

    fn supervision(&self) -> Option<SupervisionReport> {
        Some(SupervisionReport {
            timeline: self.timeline.clone(),
            time_to_recover: match (self.degraded_at, self.recovered_at) {
                (Some(d), Some(r)) => Some(r.saturating_sub(d)),
                _ => None,
            },
            final_mode: self.mm.mode(),
            probes_sent: self.probes_sent,
            drained_pages: self.drained_pages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{MachineConfig, PAGE_SIZE};

    fn cfg() -> SupervisorConfig {
        SupervisorConfig::new(vec![0..64])
    }

    fn healthy() -> HealthSample {
        HealthSample {
            succeeded: 1,
            ..HealthSample::default()
        }
    }

    fn all_fail() -> HealthSample {
        HealthSample {
            failed: 4,
            ..HealthSample::default()
        }
    }

    #[test]
    fn mode_machine_degrades_with_hysteresis() {
        let mut mm = ModeMachine::new(&cfg());
        // Two unhealthy ticks: below enter_ticks=3, still Normal.
        assert_eq!(mm.step(&all_fail()), SupervisorMode::Normal);
        assert_eq!(mm.step(&all_fail()), SupervisorMode::Normal);
        // A healthy tick resets the streak.
        assert_eq!(mm.step(&healthy()), SupervisorMode::Normal);
        assert_eq!(mm.step(&all_fail()), SupervisorMode::Normal);
        assert_eq!(mm.step(&all_fail()), SupervisorMode::Normal);
        // Third consecutive all-fail tick: critical → Frozen.
        assert_eq!(mm.step(&all_fail()), SupervisorMode::Frozen);
    }

    #[test]
    fn mixed_failures_throttle_and_recover() {
        let degraded = HealthSample {
            failed: 3,
            succeeded: 1,
            ..HealthSample::default()
        };
        let mut mm = ModeMachine::new(&cfg());
        for _ in 0..2 {
            assert_eq!(mm.step(&degraded), SupervisorMode::Normal);
        }
        assert_eq!(mm.step(&degraded), SupervisorMode::Throttled);
        // exit_ticks=10 healthy ticks to reach Recovered.
        for _ in 0..9 {
            assert_eq!(mm.step(&healthy()), SupervisorMode::Throttled);
        }
        assert_eq!(mm.step(&healthy()), SupervisorMode::Recovered);
        // recovered_dwell=20 healthy ticks back to Normal.
        let mut mode = SupervisorMode::Recovered;
        for _ in 0..20 {
            mode = mm.step(&healthy());
        }
        assert_eq!(mode, SupervisorMode::Normal);
    }

    #[test]
    fn frozen_needs_probe_successes_not_silence() {
        let mut mm = ModeMachine::new(&cfg());
        for _ in 0..3 {
            mm.step(&all_fail());
        }
        assert_eq!(mm.mode(), SupervisorMode::Frozen);
        // Quiet ticks (no attempts) are neutral: still Frozen forever.
        for _ in 0..50 {
            assert_eq!(mm.step(&HealthSample::default()), SupervisorMode::Frozen);
        }
        // Two successful probes exit to Recovered.
        assert_eq!(mm.step(&healthy()), SupervisorMode::Frozen);
        assert_eq!(mm.step(&healthy()), SupervisorMode::Recovered);
    }

    #[test]
    fn copy_slowdown_is_critical_and_keeps_the_machine_frozen() {
        let mut mm = ModeMachine::new(&cfg());
        // Copies complete (so the all-fail rule never fires) but take 10x
        // the bandwidth-implied time: a collapse, critical after
        // enter_ticks.
        let collapsed = HealthSample {
            succeeded: 2,
            copy_slowdown: 10.0,
            ..HealthSample::default()
        };
        for _ in 0..2 {
            assert_eq!(mm.step(&collapsed), SupervisorMode::Normal);
        }
        assert_eq!(mm.step(&collapsed), SupervisorMode::Frozen);
        // A probe that completes but still reveals the slowdown is *not*
        // recovery evidence: the machine stays Frozen under a permanent
        // collapse instead of flapping Frozen -> Recovered -> Frozen.
        let slow_probe = HealthSample {
            succeeded: 1,
            copy_slowdown: 9.0,
            ..HealthSample::default()
        };
        for _ in 0..30 {
            assert_eq!(mm.step(&slow_probe), SupervisorMode::Frozen);
        }
        // Probes at healthy speed do recover it.
        assert_eq!(mm.step(&healthy()), SupervisorMode::Frozen);
        assert_eq!(mm.step(&healthy()), SupervisorMode::Recovered);
    }

    #[test]
    fn latency_inversion_cannot_hold_the_machine_frozen() {
        let mut mm = ModeMachine::new(&cfg());
        for _ in 0..3 {
            mm.step(&all_fail());
        }
        assert_eq!(mm.mode(), SupervisorMode::Frozen);
        // Build up a long inversion streak (e.g. a legitimately contended
        // default tier) with quiet engine ticks.
        let inverted_quiet = HealthSample {
            latency_inverted: true,
            ..HealthSample::default()
        };
        for _ in 0..60 {
            assert_eq!(mm.step(&inverted_quiet), SupervisorMode::Frozen);
        }
        // Probe successes at sane copy times must still recover it even
        // though the inversion persists.
        let inverted_probe = HealthSample {
            succeeded: 1,
            latency_inverted: true,
            ..HealthSample::default()
        };
        assert_eq!(mm.step(&inverted_probe), SupervisorMode::Frozen);
        assert_eq!(mm.step(&inverted_probe), SupervisorMode::Recovered);
    }

    #[test]
    fn evacuation_preempts_any_mode_and_quiets_out() {
        let mut mm = ModeMachine::new(&cfg());
        let evac = HealthSample {
            evacuated: 8,
            tier_shrunk: true,
            ..HealthSample::default()
        };
        assert_eq!(mm.step(&evac), SupervisorMode::Evacuating);
        // Still shrunk but no work left: quiet ticks count up.
        let quiet = HealthSample {
            tier_shrunk: true,
            ..HealthSample::default()
        };
        let mut mode = SupervisorMode::Evacuating;
        for _ in 0..3 {
            mode = mm.step(&quiet);
        }
        assert_eq!(mode, SupervisorMode::Recovered);
        // The shrink level-signal alone must not re-trigger Evacuating
        // (edge-triggered): dwell proceeds to Normal.
        for _ in 0..20 {
            mode = mm.step(&quiet);
        }
        assert_eq!(mode, SupervisorMode::Normal);
    }

    #[test]
    fn supervisor_freezes_inner_system_and_caps_admissions() {
        struct Probe {
            frozen: bool,
            resets: u64,
        }
        impl TieringSystem for Probe {
            fn on_tick(&mut self, _m: &mut Machine, _r: &TickReport) {}
            fn name(&self) -> String {
                "probe".into()
            }
            fn set_frozen(&mut self, frozen: bool) {
                self.frozen = frozen;
            }
            fn reset_equilibrium(&mut self) {
                self.resets += 1;
            }
        }

        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..64, TierId::DEFAULT);
        let mut sup = Supervisor::new(
            Box::new(Probe {
                frozen: false,
                resets: 0,
            }),
            cfg(),
        );
        // Drive three all-fail ticks by synthesizing reports.
        let mut rep = m.run_tick(SimTime::from_us(100.0));
        for _ in 0..3 {
            rep.failed_migrations = vec![
                memsim::FailedMigration {
                    vpn: 0,
                    dst: TierId::ALTERNATE,
                    reason: memsim::AbortReason::Transient,
                };
                4
            ];
            sup.on_tick(&mut m, &rep);
        }
        assert_eq!(sup.mode(), SupervisorMode::Frozen);
        assert_eq!(m.migration_admission_limit(), Some(0));
        let report = sup.supervision().expect("supervision report");
        assert_eq!(report.final_mode, SupervisorMode::Frozen);
        assert_eq!(
            report.timeline.last().map(|(_, m)| *m),
            Some(SupervisorMode::Frozen)
        );
        assert!(report.time_to_recover.is_none());
    }

    #[test]
    fn drain_moves_hottest_pages_first() {
        struct Heat;
        impl TieringSystem for Heat {
            fn on_tick(&mut self, _m: &mut Machine, _r: &TickReport) {}
            fn name(&self) -> String {
                "heat".into()
            }
            fn heat_of(&self, vpn: Vpn) -> f64 {
                // Higher vpn = hotter.
                vpn as f64
            }
        }

        let mut mcfg = MachineConfig::icelake_two_tier();
        mcfg.tiers[0].capacity_bytes = 32 * PAGE_SIZE;
        mcfg.tiers[1].capacity_bytes = 64 * PAGE_SIZE;
        // A shrink the machine has already absorbed: tier 1 down to 16
        // frames, pages 16.. already force-evacuated by the machine. Here
        // we emulate the post-shrink state directly: 16 pages remain on
        // the failing tier.
        mcfg.faults.tier_shrinks = vec![memsim::TierShrink {
            tier: TierId::ALTERNATE,
            at: SimTime::ZERO,
            new_frames: 16,
        }];
        let mut m = Machine::new(mcfg);
        m.place_range(0..16, TierId::ALTERNATE);
        let rep = m.run_tick(SimTime::from_us(100.0));
        assert!(m.capacity_pages(TierId::ALTERNATE) == 16);

        let mut scfg = SupervisorConfig::new(vec![0..16]);
        scfg.drain_limit = 4;
        let mut sup = Supervisor::new(Box::new(Heat), scfg);
        sup.on_tick(&mut m, &rep);
        assert_eq!(sup.mode(), SupervisorMode::Evacuating);
        // The four hottest pages (12..16) were enqueued toward tier 0.
        assert_eq!(m.migration_backlog(), 4);
        let report = sup.supervision().expect("report");
        assert_eq!(report.drained_pages, 4);
        // Let the engine complete them, then drain the rest over ticks.
        for _ in 0..40 {
            let rep = m.run_tick(SimTime::from_us(100.0));
            sup.on_tick(&mut m, &rep);
        }
        assert_eq!(m.used_pages(TierId::ALTERNATE), 0);
        assert_eq!(m.used_pages(TierId::DEFAULT), 16);
        // Work done: the supervisor has moved on toward recovery.
        assert!(matches!(
            sup.mode(),
            SupervisorMode::Recovered | SupervisorMode::Normal
        ));
    }
}
