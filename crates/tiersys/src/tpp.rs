//! TPP (ASPLOS '23, as upstreamed in Linux v6.3) and TPP+Colloid
//! (paper §4.3).
//!
//! TPP tracks access recency with NUMA-balancing-style hint faults: a
//! background scan marks page-table entries; the next access to a marked
//! page traps, and the *time-to-fault* (marking → fault) indicates hotness
//! (hot pages fault quickly). Vanilla TPP promotes a faulting
//! alternate-tier page when its time-to-fault is under a dynamically
//! adapted threshold, and demotes cold pages from the default tier through
//! kswapd when free frames drop below a watermark, picking victims from an
//! (approximate) inactive list.
//!
//! The Colloid integration (~315 LoC in the paper) measures per-tier
//! latency from a spin-polling kernel module (here: the per-tick CHA
//! window) and changes the fault handler: a faulting page migrates only in
//! the latency-balancing direction, and only if its estimated access
//! probability `p = 1/(Δt·r)` fits in the remaining Δp for this quantum.
//! Hint faults are additionally enabled on default-tier pages so hot pages
//! can be *demoted* under memory interconnect contention.

use std::collections::HashMap;

use memsim::{Machine, TickReport, TierId, Vpn, PAGE_SIZE};
use tierctl::{MigrationBudget, RegionScanner};

use crate::retry::{RetryPolicy, RetryQueue, RetryStats};
use crate::{measurements, ColloidDriver, SystemParams, TieringSystem};

/// TPP-specific knobs.
#[derive(Debug, Clone)]
pub struct TppConfig {
    /// Pages marked per tick by the page-table scanner.
    pub scan_pages_per_tick: usize,
    /// Transparent Huge Pages: promote whole 16-page regions.
    pub huge: bool,
    /// Initial hot/cold time-to-fault threshold (ns); adapted dynamically.
    pub initial_threshold_ns: f64,
    /// kswapd wakes when default-tier free frames fall below this fraction
    /// of capacity ...
    pub watermark_low: f64,
    /// ... and demotes until free frames reach this fraction.
    pub watermark_high: f64,
    /// Promotion-rate boost: scales the hot-qualifying time-to-fault
    /// threshold *and* the candidate-byte target the threshold adapts
    /// towards. At the default `1.0` behaviour is identical to upstream;
    /// larger values make hot-page discovery correspondingly more eager —
    /// under heavy contention vanilla TPP's recency sampling is otherwise
    /// too slow to ever pack the default tier (see EXPERIMENTS.md Fig 1).
    pub promotion_boost: f64,
}

impl Default for TppConfig {
    fn default() -> Self {
        TppConfig {
            scan_pages_per_tick: 1024,
            huge: true,
            initial_threshold_ns: 200_000.0,
            watermark_low: 0.01,
            watermark_high: 0.03,
            promotion_boost: 1.0,
        }
    }
}

impl TppConfig {
    /// Hot-page discovery fast enough to *pack*: a dense scan plus a 4×
    /// promotion boost. At the default scan rate TPP's recency sampling is
    /// so slow under contention that it never finishes packing the hot set
    /// into the default tier (≈20 % default-tier traffic share at 3× vs
    /// the paper's >75 %) — its Figure 1 "gap" stays small for the wrong
    /// reason. With this preset TPP packs like the paper's TPP (≈90 %
    /// share at 3×, full-length run) and therefore *degrades* like it too,
    /// which is exactly the paper's point: packing the hot set into a
    /// contended default tier is the failure mode. Used by the Fig 1
    /// "TPP (fast discovery)" row; the default config is deliberately
    /// untouched so headline figures stay comparable across revisions.
    pub fn fast_discovery() -> Self {
        TppConfig {
            scan_pages_per_tick: 6144,
            promotion_boost: 4.0,
            ..TppConfig::default()
        }
    }
}

/// Scaled THP region size in pages.
const REGION_PAGES: u64 = 16;

/// Telemetry counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TppStats {
    /// Pages promoted on hint faults.
    pub promoted: u64,
    /// Pages demoted (kswapd + Colloid demotions).
    pub demoted: u64,
    /// Hint faults processed.
    pub faults: u64,
}

/// The TPP tiering system (vanilla or +Colloid).
pub struct Tpp {
    params: SystemParams,
    cfg: TppConfig,
    scanner: RegionScanner,
    budget: MigrationBudget,
    colloid: Option<ColloidDriver>,
    /// Dynamic time-to-fault threshold (vanilla hotness test).
    threshold_ns: f64,
    /// Last observed time-to-fault per page: large = cold. Pages that never
    /// faulted are treated as coldest (the approximate inactive list).
    last_ttf: HashMap<Vpn, f64>,
    /// Flattened managed pages for the kswapd clock hand.
    clock_pages: Vec<Vpn>,
    clock_hand: usize,
    retry: RetryQueue,
    frozen: bool,
    stats: TppStats,
}

impl Tpp {
    /// Builds TPP; attaches Colloid when `params.colloid` is set.
    pub fn new(params: SystemParams, cfg: TppConfig) -> Self {
        let colloid = params.build_colloid();
        let scanner = RegionScanner::new(params.managed.clone());
        let clock_pages = params.managed.iter().cloned().flatten().collect();
        Tpp {
            threshold_ns: cfg.initial_threshold_ns,
            scanner,
            budget: MigrationBudget::new(params.migration_limit_per_tick),
            colloid,
            last_ttf: HashMap::new(),
            clock_pages,
            clock_hand: 0,
            retry: RetryQueue::new(RetryPolicy::default()),
            frozen: false,
            stats: TppStats::default(),
            cfg,
            params,
        }
    }

    /// Telemetry counters.
    pub fn stats(&self) -> TppStats {
        self.stats
    }

    /// Current dynamic time-to-fault threshold (ns).
    pub fn threshold_ns(&self) -> f64 {
        self.threshold_ns
    }

    fn managed(&self, vpn: Vpn) -> bool {
        self.params.managed.iter().any(|r| r.contains(&vpn))
    }

    /// All pages of `vpn`'s THP region (or just the page without THP).
    fn unit_pages(&self, vpn: Vpn) -> Vec<Vpn> {
        if !self.cfg.huge {
            return vec![vpn];
        }
        let base = vpn / REGION_PAGES * REGION_PAGES;
        (base..base + REGION_PAGES)
            .filter(|&v| self.managed(v))
            .collect()
    }

    /// Migrates a page's whole unit to `dst` (all-or-nothing with respect
    /// to the budget, so THP regions never straddle tiers); returns pages
    /// enqueued.
    fn migrate_unit(&mut self, machine: &mut Machine, vpn: Vpn, dst: TierId) -> u64 {
        let pages: Vec<Vpn> = self
            .unit_pages(vpn)
            .into_iter()
            .filter(|&p| machine.tier_of(p) != Some(dst))
            .collect();
        let need = pages.len() as u64;
        if need == 0 || self.budget.remaining() < need * PAGE_SIZE {
            return 0;
        }
        // Make room by demoting one hop further down the chain — possible
        // for every destination except the last tier.
        if usize::from(dst.0) + 1 < self.params.n_tiers() {
            while machine.free_pages(dst) < need {
                if !self.kswapd_demote_one(machine, dst) {
                    return 0;
                }
            }
        }
        let mut moved = 0;
        for page in pages {
            if !self.budget.try_take_page() {
                break;
            }
            if self.retry.request(machine, page, dst) {
                moved += 1;
            }
        }
        moved
    }

    /// kswapd victim selection: one clock sweep over `tier`'s resident
    /// pages, demoting (one hop down the chain) the first page whose last
    /// time-to-fault marks it cold (larger than the hotness threshold), or
    /// — if every resident page looks hot — the coldest page seen. Returns
    /// whether a frame was freed (enqueued for demotion). `tier` must not
    /// be the last tier.
    fn kswapd_demote_one(&mut self, machine: &mut Machine, tier: TierId) -> bool {
        if self.clock_pages.is_empty() {
            return false;
        }
        let mut coldest: Option<(Vpn, f64)> = None;
        for _ in 0..self.clock_pages.len() {
            let vpn = self.clock_pages[self.clock_hand];
            self.clock_hand = (self.clock_hand + 1) % self.clock_pages.len();
            if machine.tier_of(vpn) != Some(tier) {
                continue;
            }
            let ttf = self.last_ttf.get(&vpn).copied().unwrap_or(f64::INFINITY);
            // Hysteresis: reclaim only short-circuits on pages that are
            // *clearly* cold — well beyond both the promotion threshold and
            // the hot population's time-to-fault spread (the promotion
            // threshold rate-limits to the hottest tail, so it sits far
            // below the hot mean and must not drive eviction directly).
            // Pages that are merely lukewarm are handled by the
            // coldest-page fallback below.
            if ttf > (self.threshold_ns * 10.0).max(150_000.0) {
                return self.demote_unit_of(machine, vpn, tier);
            }
            if coldest.map(|(_, c)| ttf > c).unwrap_or(true) {
                coldest = Some((vpn, ttf));
            }
        }
        match coldest {
            Some((vpn, _)) => self.demote_unit_of(machine, vpn, tier),
            None => false,
        }
    }

    /// Demotes the whole unit of `vpn` from `from` one hop down the tier
    /// chain (THP regions stay intact). `from` must not be the last tier.
    fn demote_unit_of(&mut self, machine: &mut Machine, vpn: Vpn, from: TierId) -> bool {
        let down = TierId(from.0 + 1);
        let pages: Vec<Vpn> = self
            .unit_pages(vpn)
            .into_iter()
            .filter(|&p| machine.tier_of(p) == Some(from))
            .collect();
        if self.budget.remaining() < pages.len() as u64 * PAGE_SIZE {
            return false;
        }
        let mut any = false;
        for page in pages {
            if !self.budget.try_take_page() {
                break;
            }
            if self.retry.request(machine, page, down) {
                self.stats.demoted += 1;
                any = true;
            }
        }
        any
    }

    /// kswapd main loop: keep every non-terminal tier's free frames above
    /// the watermarks (on a two-tier machine this is exactly the
    /// default-tier kswapd; deeper tiers spill one hop further down).
    fn kswapd(&mut self, machine: &mut Machine) {
        for i in 0..self.params.n_tiers().saturating_sub(1) {
            let tier = TierId(i as u8);
            // Effective capacity: watermarks must track post-shrink reality.
            let cap = machine.capacity_pages(tier);
            let low = ((cap as f64 * self.cfg.watermark_low) as u64).max(1);
            let high = ((cap as f64 * self.cfg.watermark_high) as u64).max(2);
            if machine.free_pages(tier) >= low {
                continue;
            }
            while machine.free_pages(tier) < high {
                if !self.kswapd_demote_one(machine, tier) {
                    break;
                }
            }
        }
    }

    /// Adapts the vanilla hotness threshold so the *candidate* promotion
    /// rate tracks the migration budget (Linux's hot-page-selection rate
    /// control: if more hot-qualifying bytes fault than the rate limit
    /// allows, the threshold tightens; if the budget is underused, it
    /// loosens).
    fn adapt_threshold(&mut self, candidate_bytes: u64, faults_this_tick: usize) {
        let target = (self.budget.per_quantum() as f64 * self.cfg.promotion_boost) as u64;
        if candidate_bytes > target {
            self.threshold_ns *= 0.9; // too many candidates: be stricter
        } else if faults_this_tick > 0 && candidate_bytes < target / 4 {
            self.threshold_ns *= 1.15; // budget underused: loosen
        }
        self.threshold_ns = self.threshold_ns.clamp(1_000.0, 10_000_000.0);
    }
}

impl TieringSystem for Tpp {
    fn on_tick(&mut self, machine: &mut Machine, report: &TickReport) {
        self.retry.note_failures(report);
        self.retry.on_tick(machine);
        self.budget.refill();

        // Colloid move/Δp for this quantum (None = vanilla; the drivers
        // emit at most one adjacent-pair move per quantum).
        let has_colloid = self.colloid.is_some();
        let mv = self
            .colloid
            .as_mut()
            .map(|c| c.on_quantum(&measurements(report)))
            .and_then(|moves| moves.first().copied());
        let mut rem_p = mv.map(|m| m.delta_p).unwrap_or(0.0);
        let mut rem_bytes = mv.map(|m| m.byte_limit).unwrap_or(u64::MAX);

        // Per-tier request rates for the access-probability estimate
        // p = 1 / (Δt · r)   (paper §4.3).
        let rate_of = |tier: TierId| report.tiers[tier.index()].rate_per_ns;

        let mut promoted_this_tick = 0u64;
        // Bytes of promotion *candidates* (hot-qualifying faults on
        // alternate-tier pages) this tick — the signal Linux's hot-page
        // selection adapts its threshold on (rate-limit targeting).
        let mut candidate_bytes = 0u64;
        for fault in &report.faults {
            if !self.managed(fault.vpn) {
                continue;
            }
            self.stats.faults += 1;
            self.last_ttf.insert(fault.vpn, fault.time_to_fault_ns);

            match (has_colloid, mv) {
                // Vanilla: promote hot (fast-faulting) pages one hop up the
                // chain (on a two-tier machine: alternate → default).
                (false, _) => {
                    if !self.frozen
                        && fault.tier != TierId::DEFAULT
                        && fault.time_to_fault_ns <= self.threshold_ns * self.cfg.promotion_boost
                    {
                        candidate_bytes += self.unit_pages(fault.vpn).len() as u64 * PAGE_SIZE;
                        let dst = TierId(fault.tier.0 - 1);
                        let moved = self.migrate_unit(machine, fault.vpn, dst);
                        promoted_this_tick += moved;
                        self.stats.promoted += moved;
                    }
                }
                // Colloid, but balanced this quantum: no migrations.
                (true, None) => {}
                // Colloid: migrate along the balancing pair's direction while
                // the page's access probability fits the remaining Δp.
                (true, Some(m)) => {
                    if fault.tier != m.src {
                        continue;
                    }
                    let r = rate_of(m.src);
                    if r <= 0.0 {
                        continue;
                    }
                    let prob = 1.0 / (fault.time_to_fault_ns.max(1.0) * r);
                    let unit_bytes = self.unit_pages(fault.vpn).len() as u64 * PAGE_SIZE;
                    if prob <= rem_p && unit_bytes <= rem_bytes {
                        let moved = self.migrate_unit(machine, fault.vpn, m.dst);
                        if moved > 0 {
                            rem_p -= prob;
                            rem_bytes -= moved * PAGE_SIZE;
                            if m.is_promotion() {
                                promoted_this_tick += moved;
                                self.stats.promoted += moved;
                            } else {
                                self.stats.demoted += moved;
                            }
                        }
                    }
                }
            }
        }

        let _ = promoted_this_tick;
        if self.colloid.is_none() && !self.frozen {
            self.adapt_threshold(candidate_bytes, report.faults.len());
        }

        // Capacity-driven cold demotion continues in both variants, but a
        // frozen system must not move pages at all.
        if !self.frozen {
            self.kswapd(machine);
        }

        // Re-arm the scanner: vanilla TPP only tracks alternate-tier pages
        // for promotion (plus recency on default pages); Colloid needs
        // faults on default-tier pages to drive demotion too. We mark both
        // in both variants — vanilla simply ignores default-tier faults for
        // placement, using them only as recency information.
        for vpn in self.scanner.next_batch(self.cfg.scan_pages_per_tick) {
            machine.mark_page(vpn);
        }
    }

    fn name(&self) -> String {
        if self.colloid.is_some() {
            "TPP+Colloid".into()
        } else {
            "TPP".into()
        }
    }

    fn retry_stats(&self) -> Option<RetryStats> {
        Some(self.retry.stats())
    }

    fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
        if let Some(c) = self.colloid.as_mut() {
            c.set_frozen(frozen);
        }
    }

    fn reset_equilibrium(&mut self) {
        // The machine's operating point changed for good: restart the
        // hotness threshold search and (when attached) Colloid's watermark
        // search. Recency data (`last_ttf`) is kept — it is still valid.
        self.threshold_ns = self.cfg.initial_threshold_ns;
        if let Some(c) = self.colloid.as_mut() {
            c.reset_equilibrium();
        }
    }

    fn heat_of(&self, vpn: Vpn) -> f64 {
        // Hot pages fault quickly: heat is inverse time-to-fault. Pages
        // that never faulted are coldest.
        self.last_ttf
            .get(&vpn)
            .map(|ttf| 1.0 / ttf.max(1.0))
            .unwrap_or(0.0)
    }

    fn set_telemetry(&mut self, sink: telemetry::Sink) {
        if let Some(c) = self.colloid.as_mut() {
            c.set_telemetry(sink.clone());
        }
        self.retry.set_telemetry(sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::machine::AccessStream;
    use memsim::{
        CoreConfig, MachineConfig, ObjectAccess, TrafficClass, LINES_PER_PAGE, LINE_SIZE,
    };
    use rand::rngs::SmallRng;
    use rand::Rng;
    use simkit::SimTime;

    struct HotCold {
        hot: u64,
        total: u64,
    }
    impl AccessStream for HotCold {
        fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
            let vpn = if rng.gen_bool(0.9) {
                rng.gen_range(0..self.hot)
            } else {
                rng.gen_range(0..self.total)
            };
            ObjectAccess::read_line(vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE)
        }
    }

    fn small_machine(default_pages: u64) -> Machine {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = default_pages * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        let mut m = Machine::new(cfg);
        m.place_range(0..256, TierId::ALTERNATE);
        m.add_core(
            Box::new(HotCold {
                hot: 32,
                total: 256,
            }),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
        m
    }

    fn params(colloid: bool) -> SystemParams {
        SystemParams::new(vec![0..256], colloid.then(crate::ColloidParams::default))
    }

    fn run(t: &mut Tpp, m: &mut Machine, ticks: usize) {
        for _ in 0..ticks {
            let rep = m.run_tick(SimTime::from_us(100.0));
            t.on_tick(m, &rep);
        }
    }

    #[test]
    fn faults_fire_and_promote_hot_pages() {
        let mut m = small_machine(64);
        let mut t = Tpp::new(
            params(false),
            TppConfig {
                huge: false,
                scan_pages_per_tick: 32,
                ..TppConfig::default()
            },
        );
        run(&mut t, &mut m, 400);
        assert!(t.stats().faults > 100, "faults = {}", t.stats().faults);
        let hot_in_default = (0..32)
            .filter(|&v| m.tier_of(v) == Some(TierId::DEFAULT))
            .count();
        assert!(
            hot_in_default >= 24,
            "TPP should promote most of the hot set, got {hot_in_default}/32"
        );
    }

    #[test]
    fn thp_promotes_whole_regions() {
        let mut m = small_machine(128);
        let mut t = Tpp::new(params(false), TppConfig::default());
        run(&mut t, &mut m, 400);
        // With 16-page regions, promoted pages come in region-sized groups:
        // every promoted page's region peers should share its tier.
        let mut region_aligned = true;
        for region in 0..2 {
            let base = region * REGION_PAGES;
            let tiers: Vec<_> = (base..base + REGION_PAGES).map(|v| m.tier_of(v)).collect();
            if tiers.windows(2).any(|w| w[0] != w[1]) {
                region_aligned = false;
            }
        }
        assert!(region_aligned, "THP units must move together");
    }

    #[test]
    fn kswapd_maintains_free_watermark() {
        // No application core: pure reclaim behaviour.
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        let mut m = Machine::new(cfg);
        m.place_range(0..192, TierId::ALTERNATE);
        m.place_range(192..256, TierId::DEFAULT); // default tier full
        assert_eq!(m.free_pages(TierId::DEFAULT), 0);
        let mut t = Tpp::new(
            params(false),
            TppConfig {
                huge: false,
                scan_pages_per_tick: 32,
                ..TppConfig::default()
            },
        );
        run(&mut t, &mut m, 50);
        assert!(
            m.free_pages(TierId::DEFAULT) > 0,
            "kswapd must restore free frames"
        );
        assert!(t.stats().demoted > 0);
    }

    #[test]
    fn threshold_adapts_within_bounds() {
        let mut m = small_machine(64);
        let mut t = Tpp::new(
            params(false),
            TppConfig {
                huge: false,
                initial_threshold_ns: 5_000.0,
                ..TppConfig::default()
            },
        );
        run(&mut t, &mut m, 200);
        let th = t.threshold_ns();
        assert!((1_000.0..=10_000_000.0).contains(&th), "threshold {th}");
    }

    #[test]
    fn promotion_boost_accelerates_hot_discovery() {
        let base = {
            let mut m = small_machine(64);
            let mut t = Tpp::new(
                params(false),
                TppConfig {
                    huge: false,
                    ..TppConfig::default()
                },
            );
            run(&mut t, &mut m, 150);
            t.stats().promoted
        };
        let boosted = {
            let mut m = small_machine(64);
            let mut t = Tpp::new(
                params(false),
                TppConfig {
                    huge: false,
                    ..TppConfig::fast_discovery()
                },
            );
            run(&mut t, &mut m, 150);
            t.stats().promoted
        };
        assert!(
            boosted >= base,
            "fast discovery must not promote slower: boosted {boosted} vs base {base}"
        );
        assert!(boosted > 0);
    }

    #[test]
    fn frozen_tpp_tracks_but_never_migrates() {
        let mut m = small_machine(64);
        let mut t = Tpp::new(
            params(false),
            TppConfig {
                huge: false,
                scan_pages_per_tick: 32,
                ..TppConfig::default()
            },
        );
        t.set_frozen(true);
        run(&mut t, &mut m, 100);
        assert!(t.stats().faults > 0, "frozen TPP still ingests recency");
        assert_eq!(t.stats().promoted, 0);
        assert_eq!(t.stats().demoted, 0);
        // Thaw: placement resumes from the preserved recency data.
        t.set_frozen(false);
        run(&mut t, &mut m, 300);
        assert!(t.stats().promoted > 0);
    }

    #[test]
    fn colloid_variant_demotes_under_pressure() {
        // Heavy contention on a tiny default tier: with Colloid, hint
        // faults on default-tier pages must produce demotions once the
        // default tier is the slower one.
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 256 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        let mut m = Machine::new(cfg);
        m.place_range(0..200, TierId::DEFAULT);
        m.place_range(200..256, TierId::ALTERNATE);
        for _ in 0..24 {
            m.add_core(
                Box::new(HotCold {
                    hot: 200,
                    total: 256,
                }),
                CoreConfig::default(),
                TrafficClass::App,
            );
        }
        let mut t = Tpp::new(
            params(true),
            TppConfig {
                huge: false,
                scan_pages_per_tick: 32,
                ..TppConfig::default()
            },
        );
        run(&mut t, &mut m, 600);
        assert!(
            t.stats().demoted > 20,
            "Colloid TPP should demote hot pages under contention, demoted = {}",
            t.stats().demoted
        );
        assert_eq!(t.name(), "TPP+Colloid");
    }
}
