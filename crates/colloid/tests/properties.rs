//! Property-based tests for the Colloid controller invariants.
//!
//! The paper's convergence argument (§3.2) rests on invariants of the
//! watermark controller; these tests check them over randomly generated
//! measurement sequences and toy tier models, not just hand-picked cases.

use colloid::multitier::MultiTierBalancer;
use colloid::{ColloidConfig, ColloidController, Mode, ShiftController, TierMeasurement};
use proptest::prelude::*;

/// Degenerate measurement values: NaN, infinities, negatives, absurd
/// magnitudes — everything a glitched PMU read could hand the controller —
/// mixed with an ordinary range so valid and garbage windows interleave.
fn wild() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(-1.0),
        Just(1e300),
        Just(0.0),
        -1e12f64..1e12,
        0.0f64..200.0,
    ]
}

proptest! {
    /// p_lo <= p_hi must hold after any sequence of updates, including ones
    /// with inconsistent (noisy) latency observations.
    #[test]
    fn watermarks_stay_ordered(
        steps in prop::collection::vec((0.0f64..=1.0, 1.0f64..500.0, 1.0f64..500.0), 1..200)
    ) {
        let mut c = ShiftController::new(0.01, 0.05);
        for (p, l_d, l_a) in steps {
            let _ = c.compute_shift(p, l_d, l_a);
            prop_assert!(c.p_lo() <= c.p_hi() + 1e-12,
                "violated: lo={} hi={}", c.p_lo(), c.p_hi());
        }
    }

    /// The returned shift is a magnitude within [0, 1].
    #[test]
    fn shift_is_bounded(
        steps in prop::collection::vec((0.0f64..=1.0, 1.0f64..500.0, 1.0f64..500.0), 1..200)
    ) {
        let mut c = ShiftController::new(0.01, 0.05);
        for (p, l_d, l_a) in steps {
            let dp = c.compute_shift(p, l_d, l_a);
            prop_assert!((0.0..=1.0).contains(&dp), "dp = {dp}");
        }
    }

    /// Balanced latencies (within delta) always yield a zero shift and
    /// leave the watermarks untouched.
    #[test]
    fn balanced_input_is_a_noop(
        p in 0.0f64..=1.0,
        l in 50.0f64..400.0,
        jitter in -0.04f64..0.04,
    ) {
        let mut c = ShiftController::new(0.01, 0.05);
        // Pre-load some state.
        let _ = c.compute_shift(0.5, 100.0, 200.0);
        let (lo, hi) = (c.p_lo(), c.p_hi());
        let dp = c.compute_shift(p, l, l * (1.0 + jitter));
        prop_assert_eq!(dp, 0.0);
        prop_assert_eq!((c.p_lo(), c.p_hi()), (lo, hi));
    }

    /// Closed-loop convergence: for any crossing point p* and any monotone
    /// linear latency model, the controller converges to a latency-balanced
    /// share within a bounded number of quanta.
    #[test]
    fn converges_for_random_toy_models(
        p_star in 0.05f64..0.95,
        slope_d in 50.0f64..500.0,
        slope_a in 20.0f64..300.0,
        p0 in 0.0f64..=1.0,
    ) {
        let latencies = |p: f64| {
            let l_d: f64 = 150.0 + slope_d * (p - p_star);
            let l_a: f64 = 150.0 - slope_a * (p - p_star);
            (l_d.max(1.0), l_a.max(1.0))
        };
        let mut c = ShiftController::new(0.01, 0.02);
        let mut p = p0;
        for _ in 0..200 {
            let (l_d, l_a) = latencies(p);
            let dp = c.compute_shift(p, l_d, l_a);
            p = if l_d < l_a { (p + dp).min(1.0) } else { (p - dp).max(0.0) };
        }
        let (l_d, l_a) = latencies(p);
        prop_assert!((l_d - l_a).abs() <= 0.10 * l_d.max(l_a),
            "did not balance: p={p}, L_D={l_d}, L_A={l_a}, p*={p_star}");
    }

    /// The dynamic migration limit never exceeds the static limit, and the
    /// decision's latencies/mode are mutually consistent.
    #[test]
    fn decisions_are_internally_consistent(
        windows in prop::collection::vec(
            ((0.0f64..200.0, 0.0f64..0.5), (0.0f64..200.0, 0.0f64..0.5)), 1..100),
        static_limit in 1u64..10_000_000,
    ) {
        let cfg = ColloidConfig {
            static_limit_bytes: static_limit,
            ..ColloidConfig::paper_default(70.0, 135.0, 0, 100_000.0)
        };
        let mut ctl = ColloidController::new(cfg);
        for ((o_d, r_d), (o_a, r_a)) in windows {
            let d = ctl.on_quantum(&[
                TierMeasurement { occupancy: o_d, rate_per_ns: r_d },
                TierMeasurement { occupancy: o_a, rate_per_ns: r_a },
            ]);
            if let Some(d) = d {
                prop_assert!(d.byte_limit <= static_limit);
                prop_assert!(d.delta_p > 0.0 && d.delta_p <= 1.0);
                prop_assert!((0.0..=1.0).contains(&d.p));
                match d.mode {
                    Mode::Promote => prop_assert!(d.l_default_ns < d.l_alternate_ns),
                    Mode::Demote => prop_assert!(d.l_default_ns >= d.l_alternate_ns),
                }
                // Measured latencies never undercut the transient floor of
                // half the unloaded latency.
                prop_assert!(d.l_default_ns >= 35.0 - 1e-9);
                prop_assert!(d.l_alternate_ns >= 67.5 - 1e-9);
            }
        }
    }

    /// Arbitrary garbage fed straight into `on_quantum` must never panic,
    /// and any decision that does come out stays within its documented
    /// bounds: finite `delta_p` in (0, 1], `byte_limit` capped by the
    /// static limit, finite non-negative latencies.
    #[test]
    fn garbage_measurements_never_panic_or_escape_bounds(
        windows in prop::collection::vec(((wild(), wild()), (wild(), wild())), 1..150),
        static_limit in 1u64..10_000_000,
    ) {
        let cfg = ColloidConfig {
            static_limit_bytes: static_limit,
            ..ColloidConfig::paper_default(70.0, 135.0, 0, 100_000.0)
        };
        let mut ctl = ColloidController::new(cfg);
        for ((o_d, r_d), (o_a, r_a)) in windows {
            let d = ctl.on_quantum(&[
                TierMeasurement { occupancy: o_d, rate_per_ns: r_d },
                TierMeasurement { occupancy: o_a, rate_per_ns: r_a },
            ]);
            if let Some(d) = d {
                prop_assert!(d.delta_p.is_finite() && d.delta_p > 0.0 && d.delta_p <= 1.0,
                    "delta_p = {}", d.delta_p);
                prop_assert!(d.byte_limit <= static_limit,
                    "byte_limit {} > static {}", d.byte_limit, static_limit);
                prop_assert!((0.0..=1.0).contains(&d.p), "p = {}", d.p);
                prop_assert!(d.l_default_ns.is_finite() && d.l_default_ns >= 0.0);
                prop_assert!(d.l_alternate_ns.is_finite() && d.l_alternate_ns >= 0.0);
            }
        }
    }

    /// A burst of garbage windows (long enough to expire the hold-last-good
    /// state) never wedges the controller: plausible imbalanced windows
    /// afterwards produce decisions again.
    #[test]
    fn controller_recovers_after_garbage_burst(
        burst in prop::collection::vec((wild(), wild()), 1..40),
    ) {
        let cfg = ColloidConfig::paper_default(70.0, 135.0, 240_000, 100_000.0);
        let mut ctl = ColloidController::new(cfg);
        for (o, r) in burst {
            let _ = ctl.on_quantum(&[
                TierMeasurement { occupancy: o, rate_per_ns: r },
                TierMeasurement { occupancy: o, rate_per_ns: r },
            ]);
        }
        // Default tier heavily loaded, alternate idle: a hardened
        // controller must eventually demand a demotion shift.
        let mut decided = false;
        for _ in 0..50 {
            if let Some(d) = ctl.on_quantum(&[
                TierMeasurement { occupancy: 120.0, rate_per_ns: 0.4 },
                TierMeasurement { occupancy: 2.0, rate_per_ns: 0.1 },
            ]) {
                prop_assert!(d.delta_p.is_finite() && d.delta_p > 0.0);
                decided = true;
            }
        }
        prop_assert!(decided, "controller wedged after garbage burst");
    }

    /// After convergence, a sudden move of the equilibrium point is always
    /// re-acquired (the watermark-reset property, Figure 4c), regardless of
    /// the direction or size of the move.
    #[test]
    fn reacquires_moved_equilibrium(
        p_star_a in 0.1f64..0.9,
        p_star_b in 0.1f64..0.9,
    ) {
        prop_assume!((p_star_a - p_star_b).abs() > 0.1);
        let model = |p_star: f64, p: f64| {
            let l_d: f64 = 150.0 + 300.0 * (p - p_star);
            let l_a: f64 = 150.0 - 150.0 * (p - p_star);
            (l_d.max(1.0), l_a.max(1.0))
        };
        let mut c = ShiftController::new(0.01, 0.02);
        let mut p = 0.99f64;
        for _ in 0..150 {
            let (l_d, l_a) = model(p_star_a, p);
            let dp = c.compute_shift(p, l_d, l_a);
            p = if l_d < l_a { (p + dp).min(1.0) } else { (p - dp).max(0.0) };
        }
        for _ in 0..300 {
            let (l_d, l_a) = model(p_star_b, p);
            let dp = c.compute_shift(p, l_d, l_a);
            p = if l_d < l_a { (p + dp).min(1.0) } else { (p - dp).max(0.0) };
        }
        prop_assert!((p - p_star_b).abs() < 0.08,
            "p={p} failed to track p* move {p_star_a} -> {p_star_b}");
    }
}

proptest! {
    /// The pairwise N-tier balancer (§3.1 generalised) equalises a random
    /// chain of 3–4 linear-latency tiers: after enough quanta every
    /// adjacent pair is either latency-balanced or has drained its slower
    /// (lower) side empty, in which case no further promotion is possible
    /// and the residual gap is the lower tier's unloaded floor.
    #[test]
    fn multitier_balancer_equalises_random_chains(
        n in 3usize..=4,
        base in 50.0f64..120.0,
        incs in prop::collection::vec(15.0f64..120.0, 3),
        slopes in prop::collection::vec(100.0f64..450.0, 4),
        raw in prop::collection::vec(0.05f64..1.0, 4),
    ) {
        let mut unloaded = vec![base];
        for i in 0..n - 1 {
            let prev = unloaded[i];
            unloaded.push(prev + incs[i]);
        }
        let slope = &slopes[..n];
        let mut shares: Vec<f64> = raw[..n].to_vec();
        let total: f64 = shares.iter().sum();
        for s in &mut shares {
            *s /= total;
        }
        let mut b = MultiTierBalancer::new(unloaded.clone(), 0.01, 0.02, 1.0, 1 << 30, 1e5);
        let total_rate = 0.3;
        let latencies = |shares: &[f64]| -> Vec<f64> {
            (0..n).map(|i| unloaded[i] + slope[i] * shares[i]).collect()
        };
        for _ in 0..2000 {
            let lat = latencies(&shares);
            let window: Vec<TierMeasurement> = (0..n)
                .map(|i| TierMeasurement {
                    occupancy: lat[i] * shares[i] * total_rate,
                    rate_per_ns: shares[i] * total_rate,
                })
                .collect();
            for d in b.on_quantum(&window) {
                let (from, to) = match d.mode {
                    Mode::Promote => (d.lower, d.upper),
                    Mode::Demote => (d.upper, d.lower),
                };
                // delta_p is a fraction of the *pair's* combined traffic
                // (the watermark controller works in pair-local p).
                let pair_total = shares[d.upper] + shares[d.lower];
                let moved = (d.delta_p * pair_total).min(shares[from]);
                shares[from] -= moved;
                shares[to] += moved;
                // Page counts are integral in the real system: a tier
                // holds zero pages, not subtraction dust. Without the
                // clamp a ~1e-17 residue keeps the donor gate open and
                // the pair wins the imbalance selection forever.
                if shares[from] < 1e-12 {
                    shares[to] += shares[from];
                    shares[from] = 0.0;
                }
            }
        }
        let lat = latencies(&shares);
        for i in 0..n - 1 {
            let gap = (lat[i] - lat[i + 1]).abs() / lat[i].min(lat[i + 1]);
            let lower_drained = shares[i + 1] < 0.02;
            prop_assert!(
                gap < 0.3 || lower_drained,
                "pair {i}-{} unbalanced: lat {lat:?} shares {shares:?} \
                 unloaded {unloaded:?} slopes {slope:?}",
                i + 1,
            );
        }
    }
}
