//! Per-tier access-latency measurement (paper §3.1).
//!
//! "CHA hardware counters enable low-overhead measurements of queue
//! occupancy and request arrival rates [...] Colloid uses Little's Law to
//! measure the access latency of each tier: `L_D = O_D/R_D`,
//! `L_A = O_A/R_A`. [...] We apply Exponentially Weighted Moving Averaging
//! (EWMA) on both the occupancy and rate measurements to smooth noise in
//! the signals."
//!
//! [`LatencyMonitor`] consumes one raw `(occupancy, rate)` pair per tier
//! per quantum — exactly what the CHA counter block (simulated in `memsim`,
//! or real uncore PMUs) produces — and exposes smoothed latencies plus the
//! default-tier access-probability share `p = R_D / (R_D + R_A)`.

use simkit::stats::Ewma;

/// One tier's raw counter window: average queue occupancy and arrival rate
/// over the previous quantum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierMeasurement {
    /// Average read-queue occupancy `O` (requests).
    pub occupancy: f64,
    /// Average read arrival rate `R` (requests per nanosecond).
    pub rate_per_ns: f64,
}

impl TierMeasurement {
    /// An idle window (no traffic).
    pub const IDLE: TierMeasurement = TierMeasurement {
        occupancy: 0.0,
        rate_per_ns: 0.0,
    };

    /// True when the pair could plausibly have come from real counters:
    /// finite, non-negative, and below the absurdity bounds. Corrupt
    /// windows (NaN from a dropped register read, negative from a wrapped
    /// subtraction, garbage magnitudes) must not poison the EWMA state.
    pub fn is_plausible(&self) -> bool {
        self.occupancy.is_finite()
            && self.rate_per_ns.is_finite()
            && self.occupancy >= 0.0
            && self.rate_per_ns >= 0.0
            && self.occupancy <= MAX_OCCUPANCY
            && self.rate_per_ns <= MAX_RATE
    }
}

/// Rates below this (requests/ns) are treated as "tier idle": Little's Law
/// is undefined without arrivals, so the monitor reports the unloaded
/// latency instead.
const IDLE_RATE: f64 = 1e-6;

/// Occupancy above this is physically impossible for any real read queue
/// (hardware queues hold at most a few hundred entries); treat as corrupt.
const MAX_OCCUPANCY: f64 = 1e9;

/// Arrival rates above this (requests/ns) would mean >64 TB/s of demand
/// traffic on one tier; treat as corrupt.
const MAX_RATE: f64 = 1e3;

/// Consecutive implausible windows a tier tolerates while holding its
/// last-good smoothed state. Beyond this the held estimate is discarded and
/// the tier falls back to its unloaded latency.
pub const MAX_STALE_QUANTA: u32 = 8;

/// Smoothed per-tier latency estimation.
///
/// # Examples
///
/// ```
/// use colloid::{LatencyMonitor, TierMeasurement};
///
/// // Two tiers with unloaded latencies 70 ns and 135 ns.
/// let mut mon = LatencyMonitor::new(vec![70.0, 135.0], 0.3);
/// mon.update(&[
///     TierMeasurement { occupancy: 30.0, rate_per_ns: 0.2 },
///     TierMeasurement { occupancy: 13.5, rate_per_ns: 0.1 },
/// ]);
/// assert!((mon.latency_ns(0) - 150.0).abs() < 1e-9);
/// assert!((mon.latency_ns(1) - 135.0).abs() < 1e-9);
/// assert!((mon.default_share() - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyMonitor {
    unloaded_ns: Vec<f64>,
    occupancy: Vec<Ewma>,
    rate: Vec<Ewma>,
    /// Consecutive implausible windows per tier (resets on a good window).
    stale: Vec<u32>,
    /// Total windows rejected as implausible, across tiers.
    rejected: u64,
}

impl LatencyMonitor {
    /// Creates a monitor for `unloaded_ns.len()` tiers; `unloaded_ns` gives
    /// each tier's unloaded latency (reported while the tier is idle), and
    /// `alpha` the EWMA smoothing factor.
    pub fn new(unloaded_ns: Vec<f64>, alpha: f64) -> Self {
        assert!(!unloaded_ns.is_empty());
        assert!(
            unloaded_ns.iter().all(|l| l.is_finite() && *l > 0.0),
            "unloaded latencies must be finite and positive"
        );
        let n = unloaded_ns.len();
        LatencyMonitor {
            unloaded_ns,
            occupancy: vec![Ewma::new(alpha); n],
            rate: vec![Ewma::new(alpha); n],
            stale: vec![0; n],
            rejected: 0,
        }
    }

    /// Number of tiers.
    pub fn tiers(&self) -> usize {
        self.unloaded_ns.len()
    }

    /// Feeds one quantum of raw measurements (one entry per tier).
    ///
    /// Implausible measurements (see [`TierMeasurement::is_plausible`]) are
    /// rejected without touching the smoothed state: the tier *holds* its
    /// last-good latency estimate. After [`MAX_STALE_QUANTA`] consecutive
    /// rejections the held state is discarded and the tier reports its
    /// unloaded latency until believable counters return.
    ///
    /// # Panics
    ///
    /// Panics if `window.len()` differs from the tier count.
    pub fn update(&mut self, window: &[TierMeasurement]) {
        assert_eq!(window.len(), self.tiers(), "one measurement per tier");
        for (i, w) in window.iter().enumerate() {
            if w.is_plausible() {
                self.stale[i] = 0;
                self.occupancy[i].update(w.occupancy);
                self.rate[i].update(w.rate_per_ns);
            } else {
                self.rejected += 1;
                self.stale[i] = self.stale[i].saturating_add(1);
                if self.stale[i] >= MAX_STALE_QUANTA {
                    // The hold expired without a believable measurement:
                    // stop trusting stale state.
                    self.occupancy[i].reset();
                    self.rate[i].reset();
                }
            }
        }
    }

    /// Smoothed arrival rate of tier `i` (requests/ns).
    pub fn rate_per_ns(&self, i: usize) -> f64 {
        self.rate[i].get()
    }

    /// Smoothed Little's-Law latency of tier `i` in nanoseconds; the
    /// unloaded latency while the tier is (nearly) idle.
    pub fn latency_ns(&self, i: usize) -> f64 {
        let r = self.rate[i].get();
        if r < IDLE_RATE {
            self.unloaded_ns[i]
        } else {
            // Guard against start-up transients with a loose floor: genuine
            // measurements can undercut the nominal unloaded latency (open
            // row-buffer hits), but not by more than ~2x.
            (self.occupancy[i].get() / r).max(self.unloaded_ns[i] * 0.5)
        }
    }

    /// The sum of access probabilities of pages in tier 0 (the default
    /// tier): `p = R_D / ΣR`. Returns 0.0 before any traffic.
    pub fn default_share(&self) -> f64 {
        let total: f64 = (0..self.tiers()).map(|i| self.rate[i].get()).sum();
        if total < IDLE_RATE {
            0.0
        } else {
            self.rate[0].get() / total
        }
    }

    /// Total smoothed arrival rate across tiers (requests/ns).
    pub fn total_rate_per_ns(&self) -> f64 {
        (0..self.tiers()).map(|i| self.rate[i].get()).sum()
    }

    /// True once at least one update has been fed.
    pub fn is_warm(&self) -> bool {
        self.rate[0].is_initialized()
    }

    /// Total counter windows rejected as implausible.
    pub fn rejected_windows(&self) -> u64 {
        self.rejected
    }

    /// Consecutive implausible windows tier `i` has currently absorbed.
    pub fn stale_quanta(&self, i: usize) -> u32 {
        self.stale[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(o: f64, r: f64) -> TierMeasurement {
        TierMeasurement {
            occupancy: o,
            rate_per_ns: r,
        }
    }

    #[test]
    fn littles_law_single_update() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 1.0);
        m.update(&[meas(20.0, 0.2), meas(1.35, 0.01)]);
        assert!((m.latency_ns(0) - 100.0).abs() < 1e-9);
        assert!((m.latency_ns(1) - 135.0).abs() < 1e-9);
    }

    #[test]
    fn idle_tier_reports_unloaded() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 0.5);
        m.update(&[meas(10.0, 0.1), TierMeasurement::IDLE]);
        assert_eq!(m.latency_ns(1), 135.0);
        assert_eq!(m.default_share(), 1.0);
    }

    #[test]
    fn latency_floor_guards_transients() {
        let mut m = LatencyMonitor::new(vec![70.0], 1.0);
        // Occupancy implausibly low for the rate: floor at half unloaded.
        m.update(&[meas(0.5, 0.1)]);
        assert_eq!(m.latency_ns(0), 35.0);
        // Plausible sub-unloaded measurements (row-buffer hits) survive.
        m.update(&[meas(6.0, 0.1)]);
        assert_eq!(m.latency_ns(0), 60.0);
    }

    #[test]
    fn ewma_smooths_noise() {
        let mut m = LatencyMonitor::new(vec![70.0], 0.1);
        for i in 0..200 {
            // Noisy occupancy around 20, rate fixed at 0.2 -> L ~ 100.
            let noise = if i % 2 == 0 { 6.0 } else { -6.0 };
            m.update(&[meas(20.0 + noise, 0.2)]);
        }
        assert!((m.latency_ns(0) - 100.0).abs() < 5.0);
    }

    #[test]
    fn default_share_tracks_rates() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 1.0);
        m.update(&[meas(10.0, 0.3), meas(10.0, 0.1)]);
        assert!((m.default_share() - 0.75).abs() < 1e-9);
        m.update(&[meas(10.0, 0.0), meas(10.0, 0.1)]);
        assert_eq!(m.default_share(), 0.0);
    }

    #[test]
    fn cold_start_is_sane() {
        let m = LatencyMonitor::new(vec![70.0, 135.0], 0.3);
        assert!(!m.is_warm());
        assert_eq!(m.latency_ns(0), 70.0);
        assert_eq!(m.latency_ns(1), 135.0);
        assert_eq!(m.default_share(), 0.0);
        assert_eq!(m.total_rate_per_ns(), 0.0);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 0.3);
        m.update(&[meas(1.0, 0.1)]);
    }

    #[test]
    fn implausible_windows_hold_last_good_estimate() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 1.0);
        m.update(&[meas(20.0, 0.2), meas(13.5, 0.1)]);
        assert!((m.latency_ns(0) - 100.0).abs() < 1e-9);
        // NaN, negative, and absurd windows are all rejected; the smoothed
        // estimate holds.
        for bad in [
            meas(f64::NAN, 0.2),
            meas(20.0, f64::INFINITY),
            meas(-5.0, 0.2),
            meas(20.0, -0.1),
            meas(1e30, 0.2),
            meas(20.0, 1e9),
        ] {
            m.update(&[bad, meas(13.5, 0.1)]);
            assert!(
                (m.latency_ns(0) - 100.0).abs() < 1e-9,
                "held through {bad:?}"
            );
        }
        assert_eq!(m.rejected_windows(), 6);
        assert_eq!(m.stale_quanta(0), 6);
        // Tier 1 kept updating normally throughout.
        assert_eq!(m.stale_quanta(1), 0);
        assert!((m.latency_ns(1) - 135.0).abs() < 1e-9);
    }

    #[test]
    fn hold_expires_to_unloaded_after_max_stale_quanta() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 1.0);
        m.update(&[meas(20.0, 0.2), meas(13.5, 0.1)]);
        for _ in 0..MAX_STALE_QUANTA {
            m.update(&[meas(f64::NAN, f64::NAN), meas(13.5, 0.1)]);
        }
        // The held estimate expired: back to the unloaded latency and no
        // share attributed to the distrusted tier.
        assert_eq!(m.latency_ns(0), 70.0);
        assert_eq!(m.default_share(), 0.0);
        // A good window immediately restores measurement.
        m.update(&[meas(20.0, 0.2), meas(13.5, 0.1)]);
        assert!((m.latency_ns(0) - 100.0).abs() < 1e-9);
        assert_eq!(m.stale_quanta(0), 0);
    }

    #[test]
    fn outputs_stay_finite_under_garbage_input() {
        let mut m = LatencyMonitor::new(vec![70.0, 135.0], 0.3);
        let garbage = [
            meas(f64::NAN, f64::NAN),
            meas(f64::NEG_INFINITY, 1e300),
            meas(1e300, f64::INFINITY),
            meas(-1.0, -1.0),
        ];
        for (i, g) in garbage.iter().cycle().take(50).enumerate() {
            let good = meas(10.0 + (i % 7) as f64, 0.1);
            m.update(&[*g, good]);
            for t in 0..2 {
                assert!(m.latency_ns(t).is_finite());
                assert!(m.latency_ns(t) > 0.0);
            }
            assert!(m.default_share().is_finite());
            assert!((0.0..=1.0).contains(&m.default_share()));
            assert!(m.total_rate_per_ns().is_finite());
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonfinite_unloaded_latency() {
        let _ = LatencyMonitor::new(vec![70.0, f64::NAN], 0.3);
    }
}
