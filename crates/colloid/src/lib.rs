//! Colloid: tiered memory management by balancing access latencies.
//!
//! This crate is the paper's primary contribution (Vuppalapati & Agarwal,
//! "Tiered Memory Management: Access Latency is the Key!", SOSP '24),
//! re-implemented as a pure, substrate-agnostic library:
//!
//! - [`latency::LatencyMonitor`] — per-tier access-latency measurement from
//!   queue-occupancy and arrival-rate counters via Little's Law, smoothed
//!   with EWMA (paper §3.1).
//! - [`shift::ShiftController`] — Algorithm 2: the binary-search-style
//!   watermark controller that computes the desired shift `Δp` in access
//!   probability, including the watermark reset that tracks dynamic
//!   equilibrium changes (paper §3.2, Figure 4).
//! - [`placement`] — Algorithm 1: the end-to-end per-quantum placement
//!   decision (promotion/demotion mode, `Δp`, and the dynamic migration
//!   limit `min(Δp·(R_D+R_A), M)`), generic over a [`placement::PageFinder`]
//!   supplied by the host tiering system (paper §4).
//! - [`multitier`] — the generalisation to more than two tiers (paper
//!   §3.1): pairwise balancing between latency-adjacent tiers.
//!
//! The crate deliberately depends only on `simkit` (for EWMA): it knows
//! nothing about the simulator, so the same code would drive real CHA
//! counters.

pub mod latency;
pub mod multitier;
pub mod placement;
pub mod shift;

pub use latency::{LatencyMonitor, TierMeasurement, MAX_STALE_QUANTA};
pub use placement::{ColloidConfig, ColloidController, Mode, PageFinder, PlacementDecision};
pub use shift::ShiftController;
