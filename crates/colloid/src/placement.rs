//! Algorithm 1: the end-to-end Colloid page-placement loop.
//!
//! Every quantum the controller:
//!
//! 1. reads per-tier `(O, R)` counter windows and derives smoothed
//!    latencies `L_D`, `L_A` and the default-tier share `p` (§3.1);
//! 2. picks the migration **mode**: promotion when `L_D < L_A`, demotion
//!    otherwise;
//! 3. computes the desired shift `Δp` with the watermark controller
//!    (Algorithm 2);
//! 4. computes the **dynamic migration limit**
//!    `min(Δp · (R_D + R_A), M)` — migrating more traffic-worth of pages
//!    than the desired rate perturbation would oscillate (§3.2);
//! 5. asks the host system's [`PageFinder`] for a set of pages whose
//!    summed access probability is ≤ `Δp` and summed size is within the
//!    limit, then hands them to the host's migration mechanism.
//!
//! Steps 1–4 are substrate-independent and live here; step 5 is
//! system-specific (paper §4) and is supplied through the [`PageFinder`]
//! trait.

use crate::latency::{LatencyMonitor, TierMeasurement};
use crate::shift::ShiftController;

/// Direction of migration this quantum (Algorithm 1, lines 5–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Default tier is faster: move hot pages *into* the default tier.
    Promote,
    /// Default tier is slower: move hot pages *out* to the alternate tier.
    Demote,
}

/// The per-quantum outcome of Algorithm 1's measurement half.
#[derive(Debug, Clone, Copy)]
pub struct PlacementDecision {
    /// Migration direction.
    pub mode: Mode,
    /// Desired shift in summed access probability.
    pub delta_p: f64,
    /// Byte budget for this quantum's migrations:
    /// `min(Δp·(R_D+R_A)·64·quantum, M)`.
    pub byte_limit: u64,
    /// Measured (smoothed) default-tier latency, ns.
    pub l_default_ns: f64,
    /// Measured (smoothed) alternate-tier latency, ns.
    pub l_alternate_ns: f64,
    /// Current default-tier access-probability share.
    pub p: f64,
}

/// Supplied by the host tiering system: find pages to migrate under the
/// Δp and byte constraints, using whatever access-tracking state the system
/// maintains (frequency bins for HeMem, hot lists for MEMTIS, time-to-fault
/// for TPP — paper §4.1–4.3).
pub trait PageFinder {
    /// Returns pages to migrate in `mode`'s direction. The implementation
    /// must ensure the pages' summed access probability is ≤ `delta_p` and
    /// their summed size is ≤ `byte_limit`.
    fn find_pages(&mut self, mode: Mode, delta_p: f64, byte_limit: u64) -> Vec<u64>;
}

/// Colloid configuration.
#[derive(Debug, Clone)]
pub struct ColloidConfig {
    /// Watermark collapse threshold ε (paper default 0.01).
    pub epsilon: f64,
    /// Latency balance tolerance δ (paper default 0.05).
    pub delta: f64,
    /// EWMA smoothing factor for occupancy/rate signals.
    pub ewma_alpha: f64,
    /// Static migration limit `M` in bytes per quantum (the underlying
    /// system's rate limit).
    pub static_limit_bytes: u64,
    /// Quantum duration in nanoseconds (to convert the rate-based dynamic
    /// limit into bytes).
    pub quantum_ns: f64,
    /// Unloaded latency of each tier, ns (reported while a tier is idle).
    pub unloaded_ns: Vec<f64>,
    /// Apply the dynamic migration limit `Δp·(R_D+R_A)` (§3.2). Disabling
    /// it (ablation) falls back to the static limit alone.
    pub dynamic_limit: bool,
}

impl ColloidConfig {
    /// Paper defaults (ε = 0.01, δ = 0.05) for a two-tier machine.
    pub fn paper_default(
        unloaded_default_ns: f64,
        unloaded_alternate_ns: f64,
        static_limit_bytes: u64,
        quantum_ns: f64,
    ) -> Self {
        ColloidConfig {
            epsilon: 0.01,
            delta: 0.05,
            ewma_alpha: 0.3,
            static_limit_bytes,
            quantum_ns,
            unloaded_ns: vec![unloaded_default_ns, unloaded_alternate_ns],
            dynamic_limit: true,
        }
    }
}

/// The Algorithm 1 controller (measurement + shift + limit).
///
/// # Examples
///
/// ```
/// use colloid::{ColloidConfig, ColloidController, Mode, TierMeasurement};
///
/// let cfg = ColloidConfig::paper_default(70.0, 135.0, 1 << 20, 100_000.0);
/// let mut ctl = ColloidController::new(cfg);
/// // Default tier heavily loaded (L_D = 300 ns) vs alternate at 140 ns.
/// let d = ctl
///     .on_quantum(&[
///         TierMeasurement { occupancy: 60.0, rate_per_ns: 0.2 },
///         TierMeasurement { occupancy: 14.0, rate_per_ns: 0.1 },
///     ])
///     .expect("unbalanced tiers need migration");
/// assert_eq!(d.mode, Mode::Demote);
/// assert!(d.delta_p > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ColloidController {
    monitor: LatencyMonitor,
    shift: ShiftController,
    cfg: ColloidConfig,
    quanta: u64,
    sink: telemetry::Sink,
}

impl ColloidController {
    /// Creates a controller from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two tiers are configured.
    pub fn new(cfg: ColloidConfig) -> Self {
        assert!(cfg.unloaded_ns.len() >= 2, "Colloid needs at least 2 tiers");
        assert!(
            cfg.quantum_ns.is_finite() && cfg.quantum_ns > 0.0,
            "quantum_ns must be finite and positive"
        );
        ColloidController {
            monitor: LatencyMonitor::new(cfg.unloaded_ns.clone(), cfg.ewma_alpha),
            shift: ShiftController::new(cfg.epsilon, cfg.delta),
            cfg,
            quanta: 0,
            sink: telemetry::Sink::default(),
        }
    }

    /// Attaches a telemetry sink. The controller has no clock of its own,
    /// so events are stamped with the sink's shared clock (which the
    /// machine refreshes at every tick boundary). Recording is passive and
    /// never changes a decision.
    pub fn set_telemetry(&mut self, sink: telemetry::Sink) {
        self.sink = sink;
    }

    /// Algorithm 1, lines 1–9: ingest counters, decide mode/Δp/limit.
    ///
    /// Returns `None` when no migration is needed this quantum (balanced
    /// latencies, or no traffic yet).
    ///
    /// Robust to corrupt counter windows: implausible measurements are
    /// rejected by the [`LatencyMonitor`] (which holds its last-good
    /// estimate), and any decision returned has a finite `delta_p` in
    /// `(0, 1]` and `byte_limit <= static_limit_bytes` — never a panic or a
    /// NaN, whatever the input.
    pub fn on_quantum(&mut self, window: &[TierMeasurement]) -> Option<PlacementDecision> {
        let _prof = simkit::profile::scope("colloid.on_quantum");
        self.monitor.update(window);
        self.quanta += 1;
        let total_rate = self.monitor.total_rate_per_ns();
        if total_rate <= 0.0 {
            return None;
        }
        let l_d = self.monitor.latency_ns(0);
        let l_a = self.alternate_latency_ns();
        let p = self.monitor.default_share();
        let mode = if l_d < l_a {
            Mode::Promote
        } else {
            Mode::Demote
        };
        let marks_before = (self.shift.p_lo(), self.shift.p_hi(), self.shift.resets());
        let delta_p = self.shift.compute_shift(p, l_d, l_a);
        let (lo, hi, resets) = (self.shift.p_lo(), self.shift.p_hi(), self.shift.resets());
        if (lo, hi, resets) != marks_before {
            self.sink.emit(telemetry::Source::Colloid, || {
                telemetry::EventKind::WatermarkMove {
                    p_lo: lo,
                    p_hi: hi,
                    reset: resets != marks_before.2,
                }
            });
        }
        // The NaN check keeps a corrupt shift from ever reaching a decision.
        if delta_p.is_nan() || delta_p <= 0.0 {
            return None;
        }
        let delta_p = delta_p.min(1.0);
        // Dynamic migration limit: Δp·(R_D+R_A) requests/ns worth of pages,
        // 64 B per request, over one quantum — capped by the static limit.
        // (An `f64 as u64` cast saturates, and maps NaN to 0, so the cap
        // holds even for degenerate products.)
        let byte_limit = if self.cfg.dynamic_limit {
            let dynamic = delta_p * total_rate * 64.0 * self.cfg.quantum_ns;
            (dynamic as u64).min(self.cfg.static_limit_bytes)
        } else {
            self.cfg.static_limit_bytes
        };
        let mode_str = match mode {
            Mode::Promote => "promote",
            Mode::Demote => "demote",
        };
        self.sink.emit(telemetry::Source::Colloid, || {
            telemetry::EventKind::PUpdate {
                p,
                l_default_ns: l_d,
                l_alternate_ns: l_a,
                mode: mode_str,
                delta_p,
                byte_limit,
            }
        });
        // Causal anchor: migrations the system enqueues while acting on
        // this decision chain back to this span via the sink's cause id.
        self.sink
            .span_decision(telemetry::Source::Colloid, "colloid.decide", mode_str);
        Some(PlacementDecision {
            mode,
            delta_p,
            byte_limit,
            l_default_ns: l_d,
            l_alternate_ns: l_a,
            p,
        })
    }

    /// Effective latency of "the alternate side": for two tiers, tier 1;
    /// with more tiers, the rate-weighted average of tiers 1.. (the
    /// pairwise generalisation lives in [`crate::multitier`]).
    fn alternate_latency_ns(&self) -> f64 {
        let n = self.monitor.tiers();
        if n == 2 {
            return self.monitor.latency_ns(1);
        }
        let mut rate_sum = 0.0;
        let mut weighted = 0.0;
        for i in 1..n {
            let r = self.monitor.rate_per_ns(i);
            rate_sum += r;
            weighted += r * self.monitor.latency_ns(i);
        }
        if rate_sum <= 0.0 {
            // All alternate tiers idle: the cheapest one is what a migrated
            // page would see.
            (1..n)
                .map(|i| self.monitor.latency_ns(i))
                .fold(f64::INFINITY, f64::min)
        } else {
            weighted / rate_sum
        }
    }

    /// The latency monitor (for telemetry).
    pub fn monitor(&self) -> &LatencyMonitor {
        &self.monitor
    }

    /// The watermark controller (for telemetry).
    pub fn shift(&self) -> &ShiftController {
        &self.shift
    }

    /// Freezes or resumes the placement controller (supervisor degraded
    /// modes): while frozen, `on_quantum` keeps ingesting measurements so
    /// the latency EWMAs stay warm, but the watermarks never move and no
    /// placement decision is emitted.
    pub fn set_frozen(&mut self, frozen: bool) {
        if frozen {
            self.shift.freeze();
        } else {
            self.shift.resume();
        }
    }

    /// Whether the controller is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.shift.is_frozen()
    }

    /// Re-runs the watermark reset (`p_lo ← 0`, `p_hi ← 1`) so the
    /// post-fault equilibrium is re-found from scratch — the paper's
    /// dynamic-shift mechanism applied after a hard fault rather than a
    /// workload move.
    pub fn reset_equilibrium(&mut self) {
        self.shift.reset_watermarks();
        self.sink.emit(telemetry::Source::Colloid, || {
            telemetry::EventKind::EquilibriumReset
        });
    }

    /// Quanta processed so far.
    pub fn quanta(&self) -> u64 {
        self.quanta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(o: f64, r: f64) -> TierMeasurement {
        TierMeasurement {
            occupancy: o,
            rate_per_ns: r,
        }
    }

    fn cfg() -> ColloidConfig {
        ColloidConfig::paper_default(70.0, 135.0, 1 << 20, 100_000.0)
    }

    #[test]
    fn no_decision_without_traffic() {
        let mut c = ColloidController::new(cfg());
        assert!(c
            .on_quantum(&[TierMeasurement::IDLE, TierMeasurement::IDLE])
            .is_none());
    }

    #[test]
    fn frozen_controller_ingests_but_never_decides() {
        let mut c = ColloidController::new(cfg());
        c.set_frozen(true);
        assert!(c.is_frozen());
        for _ in 0..10 {
            assert!(c.on_quantum(&[meas(7.0, 0.1), meas(30.0, 0.2)]).is_none());
        }
        // Measurements were still ingested while frozen …
        assert!(c.monitor().total_rate_per_ns() > 0.0);
        assert_eq!(c.quanta(), 10);
        // … so the first unfrozen quantum can decide immediately.
        c.set_frozen(false);
        let d = c
            .on_quantum(&[meas(7.0, 0.1), meas(30.0, 0.2)])
            .expect("decision after resume");
        assert_eq!(d.mode, Mode::Promote);
    }

    #[test]
    fn reset_equilibrium_forwards_to_watermarks() {
        let mut c = ColloidController::new(cfg());
        c.on_quantum(&[meas(7.0, 0.1), meas(30.0, 0.2)]);
        c.reset_equilibrium();
        assert_eq!(c.shift().p_lo(), 0.0);
        assert_eq!(c.shift().p_hi(), 1.0);
        assert!(c.shift().resets() > 0);
    }

    #[test]
    fn promotes_when_default_faster() {
        let mut c = ColloidController::new(cfg());
        let d = c
            .on_quantum(&[meas(7.0, 0.1), meas(30.0, 0.2)])
            .expect("decision");
        assert_eq!(d.mode, Mode::Promote);
        assert!(d.l_default_ns < d.l_alternate_ns);
    }

    #[test]
    fn demotes_when_default_slower() {
        let mut c = ColloidController::new(cfg());
        let d = c
            .on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1)])
            .expect("decision");
        assert_eq!(d.mode, Mode::Demote);
        assert!((d.p - 0.75).abs() < 1e-9);
    }

    #[test]
    fn balanced_tiers_need_no_migration() {
        let mut c = ColloidController::new(cfg());
        // L_D = 150, L_A = 148: within delta = 5%.
        let d = c.on_quantum(&[meas(30.0, 0.2), meas(14.8, 0.1)]);
        assert!(d.is_none());
    }

    #[test]
    fn dynamic_limit_caps_at_static() {
        let mut small = cfg();
        small.static_limit_bytes = 4096;
        let mut c = ColloidController::new(small);
        let d = c
            .on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1)])
            .expect("decision");
        assert_eq!(d.byte_limit, 4096);
    }

    #[test]
    fn dynamic_limit_scales_with_delta_p() {
        let mut c = ColloidController::new(cfg());
        let d = c
            .on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1)])
            .expect("decision");
        let expected = (d.delta_p * 0.4 * 64.0 * 100_000.0) as u64;
        assert_eq!(d.byte_limit, expected.min(1 << 20));
    }

    #[test]
    fn idle_alternate_tier_uses_unloaded_latency() {
        let mut c = ColloidController::new(cfg());
        // Default tier at 300 ns, alternate idle (unloaded 135 ns): demote.
        let d = c
            .on_quantum(&[meas(60.0, 0.2), TierMeasurement::IDLE])
            .expect("decision");
        assert_eq!(d.mode, Mode::Demote);
        assert_eq!(d.l_alternate_ns, 135.0);
    }

    #[test]
    fn corrupt_windows_never_panic_and_decisions_stay_bounded() {
        let mut c = ColloidController::new(cfg());
        // Establish a normal imbalance first.
        c.on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1)]);
        let garbage = [
            meas(f64::NAN, f64::NAN),
            meas(f64::INFINITY, 0.3),
            meas(-90.0, -0.3),
            meas(1e300, 1e300),
        ];
        for g in garbage {
            if let Some(d) = c.on_quantum(&[g, meas(14.0, 0.1)]) {
                assert!(d.delta_p.is_finite());
                assert!(d.delta_p > 0.0 && d.delta_p <= 1.0);
                assert!(d.byte_limit <= 1 << 20);
                assert!(d.l_default_ns.is_finite());
                assert!(d.l_alternate_ns.is_finite());
                assert!(d.p.is_finite());
            }
        }
        assert_eq!(c.monitor().rejected_windows(), 4);
    }

    #[test]
    fn sustained_counter_loss_parks_the_controller() {
        // When every window is corrupt for long enough, the monitor forgets
        // its held state; with no believable traffic the controller stops
        // issuing decisions instead of acting on garbage.
        let mut c = ColloidController::new(cfg());
        c.on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1)]);
        let bad = [meas(f64::NAN, f64::NAN), meas(f64::NAN, f64::NAN)];
        for _ in 0..crate::latency::MAX_STALE_QUANTA {
            c.on_quantum(&bad);
        }
        assert!(c.on_quantum(&bad).is_none());
    }

    #[test]
    fn three_tier_alternate_latency_is_rate_weighted() {
        let mut c = ColloidController::new(ColloidConfig {
            unloaded_ns: vec![70.0, 135.0, 250.0],
            ..cfg()
        });
        let d = c
            .on_quantum(&[
                meas(90.0, 0.3), // L_D = 300
                meas(13.5, 0.1), // 135 ns
                meas(25.0, 0.1), // 250 ns
            ])
            .expect("decision");
        assert!((d.l_alternate_ns - 192.5).abs() < 1.0);
    }
}
