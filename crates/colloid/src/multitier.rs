//! Generalisation to more than two tiers (paper §3.1).
//!
//! "If the access latencies of all the tiers are not equal, then the
//! average access latency can be reduced by placing more hot pages in the
//! tier with the smallest access latency. [...] Similar reasoning can be
//! applied recursively for the tier with the second smallest access latency
//! and so on."
//!
//! [`MultiTierBalancer`] realises the recursion pairwise: tiers are ordered
//! by unloaded latency, and one Algorithm 2 watermark controller runs
//! between each adjacent pair `(i, i+1)`, treating tier `i` as that pair's
//! "default" side. At equilibrium every pairwise controller is balanced,
//! hence all tier latencies are equal — the paper's multi-tier equilibrium.

use crate::latency::{LatencyMonitor, TierMeasurement};
use crate::placement::Mode;
use crate::shift::ShiftController;

/// One pairwise migration decision between adjacent tiers.
#[derive(Debug, Clone, Copy)]
pub struct PairDecision {
    /// The faster (lower-unloaded-latency) tier of the pair.
    pub upper: usize,
    /// The slower tier of the pair.
    pub lower: usize,
    /// `Promote` = move hot pages from `lower` into `upper`.
    pub mode: Mode,
    /// Desired shift in the pair's access-probability split.
    pub delta_p: f64,
    /// Byte budget for this pair's migrations this quantum.
    pub byte_limit: u64,
}

/// Pairwise Colloid balancing across `n >= 2` tiers.
///
/// # Examples
///
/// ```
/// use colloid::multitier::MultiTierBalancer;
/// use colloid::TierMeasurement;
///
/// let mut b = MultiTierBalancer::new(vec![70.0, 135.0, 150.0], 0.01, 0.05, 0.3, 1 << 20, 1e5);
/// let ds = b.on_quantum(&[
///     TierMeasurement { occupancy: 60.0, rate_per_ns: 0.2 }, // 300 ns
///     TierMeasurement { occupancy: 14.0, rate_per_ns: 0.1 }, // 140 ns
///     TierMeasurement { occupancy: 1.5, rate_per_ns: 0.01 }, // 150 ns
/// ]);
/// // Pair (0,1) is the most imbalanced (300 vs 140 ns): demote.
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds[0].upper, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiTierBalancer {
    monitor: LatencyMonitor,
    pairs: Vec<ShiftController>,
    static_limit_bytes: u64,
    quantum_ns: f64,
    sink: telemetry::Sink,
}

impl MultiTierBalancer {
    /// Creates a balancer over tiers with the given unloaded latencies
    /// (must be sorted ascending — tier 0 fastest).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two tiers or the latencies are not ascending.
    pub fn new(
        unloaded_ns: Vec<f64>,
        epsilon: f64,
        delta: f64,
        ewma_alpha: f64,
        static_limit_bytes: u64,
        quantum_ns: f64,
    ) -> Self {
        assert!(unloaded_ns.len() >= 2);
        assert!(
            unloaded_ns.windows(2).all(|w| w[0] <= w[1]),
            "tiers must be ordered by unloaded latency"
        );
        let pairs = (0..unloaded_ns.len() - 1)
            .map(|_| ShiftController::new(epsilon, delta))
            .collect();
        MultiTierBalancer {
            monitor: LatencyMonitor::new(unloaded_ns, ewma_alpha),
            pairs,
            static_limit_bytes,
            quantum_ns,
            sink: telemetry::Sink::default(),
        }
    }

    /// Attaches a telemetry sink. Like [`crate::ColloidController`], the
    /// balancer has no clock of its own — events are stamped with the
    /// sink's shared clock. Recording is passive and never changes a
    /// decision.
    pub fn set_telemetry(&mut self, sink: telemetry::Sink) {
        self.sink = sink;
    }

    /// Freezes or resumes every pairwise watermark controller (supervisor
    /// degraded modes): while frozen, `on_quantum` keeps ingesting
    /// measurements so the latency EWMAs stay warm, but no watermark moves
    /// and no pair decision is emitted.
    pub fn set_frozen(&mut self, frozen: bool) {
        for pair in &mut self.pairs {
            if frozen {
                pair.freeze();
            } else {
                pair.resume();
            }
        }
    }

    /// Whether the balancer is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.pairs.iter().all(ShiftController::is_frozen)
    }

    /// Resets every pairwise watermark interval to `[0, 1]` so the
    /// post-fault equilibrium is re-found from scratch on every tier
    /// boundary.
    pub fn reset_equilibrium(&mut self) {
        for pair in &mut self.pairs {
            pair.reset_watermarks();
        }
        self.sink.emit(telemetry::Source::Colloid, || {
            telemetry::EventKind::EquilibriumReset
        });
    }

    /// One quantum: returns the decision of the most latency-imbalanced
    /// adjacent pair (empty when every pair is balanced or idle).
    pub fn on_quantum(&mut self, window: &[TierMeasurement]) -> Vec<PairDecision> {
        self.monitor.update(window);
        // Pick the pair with the largest relative latency imbalance.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.pairs.len() {
            let r_u = self.monitor.rate_per_ns(i);
            let r_l = self.monitor.rate_per_ns(i + 1);
            let l_u = self.monitor.latency_ns(i);
            let l_l = self.monitor.latency_ns(i + 1);
            // A pair can only act if the donor side of the indicated move
            // has traffic: promotion drains the lower tier, demotion the
            // upper. An imbalanced pair with an idle donor must not win
            // the selection — it would produce no shift while starving
            // every other pair.
            let donor_rate = if l_u < l_l { r_l } else { r_u };
            if donor_rate <= 0.0 {
                continue;
            }
            let imbalance = (l_u - l_l).abs() / l_u.max(1e-9);
            if best.map(|(_, b)| imbalance > b).unwrap_or(true) {
                best = Some((i, imbalance));
            }
        }
        let Some((i, _)) = best else {
            return Vec::new();
        };
        let (upper, lower) = (i, i + 1);
        let r_u = self.monitor.rate_per_ns(upper);
        let r_l = self.monitor.rate_per_ns(lower);
        let pair_rate = r_u + r_l;
        let l_u = self.monitor.latency_ns(upper);
        let l_l = self.monitor.latency_ns(lower);
        let p = r_u / pair_rate;
        let marks_before = (
            self.pairs[i].p_lo(),
            self.pairs[i].p_hi(),
            self.pairs[i].resets(),
        );
        let delta_p = self.pairs[i].compute_shift(p, l_u, l_l);
        let (lo, hi, resets) = (
            self.pairs[i].p_lo(),
            self.pairs[i].p_hi(),
            self.pairs[i].resets(),
        );
        if (lo, hi, resets) != marks_before {
            self.sink.emit(telemetry::Source::Colloid, || {
                telemetry::EventKind::WatermarkMove {
                    p_lo: lo,
                    p_hi: hi,
                    reset: resets != marks_before.2,
                }
            });
        }
        if delta_p.is_nan() || delta_p <= 0.0 {
            return Vec::new();
        }
        let delta_p = delta_p.min(1.0);
        let mode = if l_u < l_l {
            Mode::Promote
        } else {
            Mode::Demote
        };
        let dynamic = delta_p * pair_rate * 64.0 * self.quantum_ns;
        let byte_limit = (dynamic as u64).min(self.static_limit_bytes);
        let mode_str = match mode {
            Mode::Promote => "promote",
            Mode::Demote => "demote",
        };
        self.sink.emit(telemetry::Source::Colloid, || {
            telemetry::EventKind::PUpdate {
                p,
                l_default_ns: l_u,
                l_alternate_ns: l_l,
                mode: mode_str,
                delta_p,
                byte_limit,
            }
        });
        // Causal anchor: migrations enqueued while acting on this pair
        // decision chain back to this span via the sink's cause id, the
        // same pattern as [`crate::ColloidController`].
        self.sink
            .span_decision(telemetry::Source::Colloid, "colloid.decide", mode_str);
        vec![PairDecision {
            upper,
            lower,
            mode,
            delta_p,
            byte_limit,
        }]
    }

    /// Latency monitor (telemetry).
    pub fn monitor(&self) -> &LatencyMonitor {
        &self.monitor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(o: f64, r: f64) -> TierMeasurement {
        TierMeasurement {
            occupancy: o,
            rate_per_ns: r,
        }
    }

    fn balancer(n: usize) -> MultiTierBalancer {
        let unloaded: Vec<f64> = (0..n).map(|i| 70.0 + 65.0 * i as f64).collect();
        MultiTierBalancer::new(unloaded, 0.01, 0.05, 1.0, 1 << 30, 1e5)
    }

    #[test]
    fn balanced_three_tiers_no_decisions() {
        let mut b = balancer(3);
        // All at 250 ns (above every tier's unloaded latency).
        let ds = b.on_quantum(&[meas(50.0, 0.2), meas(25.0, 0.1), meas(12.5, 0.05)]);
        assert!(ds.is_empty());
    }

    #[test]
    fn hot_default_demotes_towards_middle_tier() {
        let mut b = balancer(3);
        let ds = b.on_quantum(&[
            meas(90.0, 0.3), // 300 ns
            meas(14.0, 0.1), // 140 ns
            meas(4.0, 0.02), // 200 ns
        ]);
        // Pair 0-1 (300 vs 140 ns) is more imbalanced than 1-2 (140 vs
        // 200 ns), so it acts this quantum, demoting out of the default.
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].upper, 0);
        assert_eq!(ds[0].mode, Mode::Demote);
    }

    #[test]
    fn idle_tail_tier_is_skipped() {
        let mut b = balancer(3);
        let ds = b.on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1), TierMeasurement::IDLE]);
        // Pair 1-2 has rate > 0 (tier 1), so it may act; pair decisions
        // must never reference a rate-0 *pair*.
        for d in &ds {
            assert!(d.upper < 2);
        }
    }

    #[test]
    fn pairwise_closed_loop_converges_three_tiers() {
        // Toy model: three tiers whose latency rises linearly in their
        // share of total traffic; the balancer should equalise latencies.
        let unloaded = [70.0_f64, 135.0, 170.0];
        let slope = [400.0_f64, 250.0, 200.0];
        let mut shares = [0.8_f64, 0.15, 0.05];
        let mut b = MultiTierBalancer::new(unloaded.to_vec(), 0.01, 0.02, 1.0, 1 << 30, 1e5);
        let total_rate = 0.3;
        for _ in 0..400 {
            let lat: Vec<f64> = (0..3).map(|i| unloaded[i] + slope[i] * shares[i]).collect();
            let window: Vec<TierMeasurement> = (0..3)
                .map(|i| meas(lat[i] * shares[i] * total_rate, shares[i] * total_rate))
                .collect();
            for d in b.on_quantum(&window) {
                let (from, to) = match d.mode {
                    Mode::Promote => (d.lower, d.upper),
                    Mode::Demote => (d.upper, d.lower),
                };
                let moved = d.delta_p.min(shares[from]);
                shares[from] -= moved;
                shares[to] += moved;
            }
        }
        let lat: Vec<f64> = (0..3).map(|i| unloaded[i] + slope[i] * shares[i]).collect();
        let max = lat.iter().cloned().fold(f64::MIN, f64::max);
        let min = lat.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.15,
            "latencies should equalise, got {lat:?} (shares {shares:?})"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_unsorted_tiers() {
        let _ = MultiTierBalancer::new(vec![135.0, 70.0], 0.01, 0.05, 0.3, 1, 1e5);
    }

    #[test]
    fn frozen_balancer_ingests_but_never_decides() {
        let mut b = balancer(3);
        b.set_frozen(true);
        assert!(b.is_frozen());
        for _ in 0..10 {
            let ds = b.on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1), meas(4.0, 0.02)]);
            assert!(ds.is_empty());
        }
        // Measurements were still ingested while frozen …
        assert!(b.monitor().total_rate_per_ns() > 0.0);
        // … so the first unfrozen quantum can decide immediately.
        b.set_frozen(false);
        assert!(!b.is_frozen());
        let ds = b.on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1), meas(4.0, 0.02)]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].mode, Mode::Demote);
    }

    #[test]
    fn reset_equilibrium_restarts_every_pair() {
        let mut b = balancer(3);
        // Move at least one pair's watermarks off the initial interval.
        b.on_quantum(&[meas(90.0, 0.3), meas(14.0, 0.1), meas(4.0, 0.02)]);
        b.reset_equilibrium();
        for pair in &b.pairs {
            assert_eq!(pair.p_lo(), 0.0);
            assert_eq!(pair.p_hi(), 1.0);
            assert!(pair.resets() > 0);
        }
    }
}
