//! Algorithm 2: computing the desired shift in access probability.
//!
//! Faithful implementation of the paper's watermark controller:
//!
//! ```text
//! /* Initialize p_lo <- 0 and p_hi <- 1 */
//! procedure ComputeShift(p, L_D, L_A)
//!     if |L_D - L_A| < delta * L_D then return 0
//!     if L_D < L_A then p_lo <- p else p_hi <- p
//!     if p_hi < p_lo + epsilon then
//!         if L_D < L_A then p_hi <- 1 else p_lo <- 0
//!     return | (p_lo + p_hi)/2 - p |
//! ```
//!
//! `p_hi` upper-bounds the default-tier probability share for which the
//! default tier *may* still be faster; `p_lo` lower-bounds the share for
//! which it is *definitely* faster. Each quantum narrows the gap
//! (binary-search convergence, Figure 4a); when the watermarks collapse
//! without reaching latency balance, the equilibrium has moved and the
//! relevant watermark is reset (Figure 4c).

/// The Algorithm 2 watermark controller.
///
/// # Examples
///
/// ```
/// let mut c = colloid::ShiftController::new(0.01, 0.05);
/// // Default tier faster and p = 0.5: shift towards more default traffic.
/// let dp = c.compute_shift(0.5, 100.0, 200.0);
/// assert!((dp - 0.25).abs() < 1e-12); // midpoint of [0.5, 1] is 0.75
/// ```
#[derive(Debug, Clone)]
pub struct ShiftController {
    p_lo: f64,
    p_hi: f64,
    epsilon: f64,
    delta: f64,
    resets: u64,
    reset_enabled: bool,
    rejected: u64,
    frozen: bool,
}

impl ShiftController {
    /// Creates a controller with watermark-collapse threshold `epsilon` and
    /// latency-balance tolerance `delta` (paper defaults: 0.01 and 0.05).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        ShiftController {
            p_lo: 0.0,
            p_hi: 1.0,
            epsilon,
            delta,
            resets: 0,
            reset_enabled: true,
            rejected: 0,
            frozen: false,
        }
    }

    /// Like [`ShiftController::new`] but with the watermark reset disabled
    /// — an ablation of the dynamic-equilibrium tracking (Figure 4c). With
    /// the reset off, the controller cannot follow a moved equilibrium.
    pub fn without_reset(epsilon: f64, delta: f64) -> Self {
        ShiftController {
            reset_enabled: false,
            ..Self::new(epsilon, delta)
        }
    }

    /// One quantum of Algorithm 2. `p` is the current default-tier access
    /// probability share; `l_d`/`l_a` the measured tier latencies (ns).
    /// Returns the desired |Δp| (0 when balanced within `delta`).
    ///
    /// Corrupt inputs are tolerated: a non-finite or non-positive latency
    /// (or a non-finite `p`) cannot say which tier is faster, so the
    /// watermarks are left untouched and the shift is 0. A finite `p`
    /// outside `[0, 1]` is clamped. The returned shift is always finite and
    /// in `[0, 1]`.
    pub fn compute_shift(&mut self, p: f64, l_d: f64, l_a: f64) -> f64 {
        if self.frozen {
            // Frozen (supervisor degraded mode): measurements taken under a
            // fault regime must not move the watermarks, and no shift is
            // requested.
            return 0.0;
        }
        if !l_d.is_finite() || !l_a.is_finite() || l_d <= 0.0 || l_a <= 0.0 || !p.is_finite() {
            self.rejected += 1;
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        if (l_d - l_a).abs() < self.delta * l_d {
            return 0.0;
        }
        if l_d < l_a {
            self.p_lo = p;
        } else {
            self.p_hi = p;
        }
        if self.reset_enabled && self.p_hi < self.p_lo + self.epsilon {
            // Watermarks collapsed but latencies are still unbalanced: the
            // equilibrium point moved outside [p_lo, p_hi]; reset the
            // boundary on the side the equilibrium escaped to.
            if l_d < l_a {
                self.p_hi = 1.0;
            } else {
                self.p_lo = 0.0;
            }
            self.resets += 1;
        }
        ((self.p_lo + self.p_hi) / 2.0 - p).abs()
    }

    /// Freezes the controller: while frozen, [`compute_shift`] returns 0
    /// and leaves all state untouched.
    ///
    /// [`compute_shift`]: ShiftController::compute_shift
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Resumes a frozen controller (watermarks keep their pre-freeze
    /// values; call [`reset_watermarks`] as well if the equilibrium may
    /// have moved during the freeze).
    ///
    /// [`reset_watermarks`]: ShiftController::reset_watermarks
    pub fn resume(&mut self) {
        self.frozen = false;
    }

    /// Whether the controller is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Re-runs the watermark initialisation (`p_lo ← 0`, `p_hi ← 1`) so the
    /// binary search restarts from the full interval — used after a hard
    /// fault has moved the equilibrium in a way the incremental reset logic
    /// would be slow to discover.
    pub fn reset_watermarks(&mut self) {
        self.p_lo = 0.0;
        self.p_hi = 1.0;
        self.resets += 1;
    }

    /// Low watermark.
    pub fn p_lo(&self) -> f64 {
        self.p_lo
    }

    /// High watermark.
    pub fn p_hi(&self) -> f64 {
        self.p_hi
    }

    /// Number of watermark resets performed (equilibrium moves detected).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Number of quanta whose inputs were rejected as corrupt.
    pub fn rejected_inputs(&self) -> u64 {
        self.rejected
    }

    /// The collapse threshold ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The balance tolerance δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy two-tier latency model: `L_D` rises and `L_A` falls linearly
    /// in `p`, crossing at `p_star`.
    struct ToyTiers {
        p_star: f64,
    }

    impl ToyTiers {
        fn latencies(&self, p: f64) -> (f64, f64) {
            // At p = p_star both are 150 ns; slopes +/-200 ns per unit p.
            let l_d = 150.0 + 200.0 * (p - self.p_star);
            let l_a = 150.0 - 100.0 * (p - self.p_star);
            (l_d.max(1.0), l_a.max(1.0))
        }
    }

    /// Closed-loop helper: apply the computed shift in the indicated
    /// direction each quantum.
    fn step(c: &mut ShiftController, toy: &ToyTiers, p: f64) -> f64 {
        let (l_d, l_a) = toy.latencies(p);
        let dp = c.compute_shift(p, l_d, l_a);
        if l_d < l_a {
            (p + dp).min(1.0)
        } else {
            (p - dp).max(0.0)
        }
    }

    #[test]
    fn balanced_latencies_yield_zero_shift() {
        let mut c = ShiftController::new(0.01, 0.05);
        assert_eq!(c.compute_shift(0.5, 100.0, 102.0), 0.0);
        // Watermarks untouched.
        assert_eq!(c.p_lo(), 0.0);
        assert_eq!(c.p_hi(), 1.0);
    }

    #[test]
    fn first_shift_is_towards_midpoint() {
        let mut c = ShiftController::new(0.01, 0.05);
        // Default faster at p=0.3: p_lo=0.3, target midpoint (0.3+1)/2.
        let dp = c.compute_shift(0.3, 80.0, 160.0);
        assert!((dp - 0.35).abs() < 1e-12);
        assert_eq!(c.p_lo(), 0.3);
        assert_eq!(c.p_hi(), 1.0);
    }

    #[test]
    fn converges_to_static_equilibrium() {
        // Figure 4a: static workload, p converges to p*.
        for p_star in [0.2, 0.5, 0.8] {
            let toy = ToyTiers { p_star };
            let mut c = ShiftController::new(0.01, 0.02);
            let mut p = 0.9;
            for _ in 0..60 {
                p = step(&mut c, &toy, p);
            }
            let (l_d, l_a) = toy.latencies(p);
            assert!(
                (l_d - l_a).abs() < 0.1 * l_d,
                "p={p} did not balance {l_d} vs {l_a} (p*={p_star})"
            );
            assert!((p - p_star).abs() < 0.05, "p={p} vs p*={p_star}");
        }
    }

    #[test]
    fn converges_to_p_one_when_default_always_faster() {
        // If L_D < L_A even at p=1, Colloid must converge to p=1 (the
        // existing systems' placement).
        let mut c = ShiftController::new(0.01, 0.05);
        let mut p: f64 = 0.4;
        for _ in 0..200 {
            let dp = c.compute_shift(p, 70.0, 135.0);
            p = (p + dp).min(1.0);
        }
        assert!(p > 0.99, "p={p}");
    }

    #[test]
    fn watermark_invariant_contains_p() {
        // p_lo <= p_hi after arbitrary (monotone-consistent) updates.
        let toy = ToyTiers { p_star: 0.37 };
        let mut c = ShiftController::new(0.01, 0.02);
        let mut p = 1.0;
        for _ in 0..100 {
            p = step(&mut c, &toy, p);
            assert!(
                c.p_lo() <= c.p_hi() + 1e-12,
                "lo {} hi {}",
                c.p_lo(),
                c.p_hi()
            );
        }
    }

    #[test]
    fn abrupt_p_change_is_absorbed() {
        // Figure 4b: p jumps outside the watermarks; updating the watermark
        // before computing the shift re-establishes the invariant.
        let toy = ToyTiers { p_star: 0.5 };
        let mut c = ShiftController::new(0.01, 0.02);
        let mut p = 0.9;
        for _ in 0..30 {
            p = step(&mut c, &toy, p);
        }
        // External event slams p to 0.05 (e.g. the workload moved).
        p = 0.05;
        for _ in 0..60 {
            p = step(&mut c, &toy, p);
        }
        assert!((p - 0.5).abs() < 0.05, "p={p} after p-jump");
    }

    #[test]
    fn equilibrium_move_triggers_reset_and_reconverges() {
        // Figure 4c: p* jumps after convergence; the watermark reset lets
        // the controller escape the collapsed interval.
        let mut toy = ToyTiers { p_star: 0.3 };
        let mut c = ShiftController::new(0.01, 0.02);
        let mut p = 0.9;
        for _ in 0..80 {
            p = step(&mut c, &toy, p);
        }
        assert!((p - 0.3).abs() < 0.05, "initial convergence, p={p}");
        let resets_before = c.resets();
        toy.p_star = 0.8; // contention on the alternate side changed
        for _ in 0..120 {
            p = step(&mut c, &toy, p);
        }
        assert!(
            (p - 0.8).abs() < 0.05,
            "re-convergence after p* move, p={p}"
        );
        assert!(c.resets() > resets_before, "a watermark reset must fire");
    }

    #[test]
    fn equilibrium_move_down_also_reconverges() {
        let mut toy = ToyTiers { p_star: 0.8 };
        let mut c = ShiftController::new(0.01, 0.02);
        let mut p = 0.1;
        for _ in 0..80 {
            p = step(&mut c, &toy, p);
        }
        toy.p_star = 0.2;
        for _ in 0..120 {
            p = step(&mut c, &toy, p);
        }
        assert!((p - 0.2).abs() < 0.05, "p={p}");
    }

    #[test]
    fn corrupt_latencies_leave_watermarks_untouched() {
        let mut c = ShiftController::new(0.01, 0.05);
        c.compute_shift(0.3, 80.0, 160.0); // establish p_lo = 0.3
        let (lo, hi) = (c.p_lo(), c.p_hi());
        for (l_d, l_a) in [
            (f64::NAN, 160.0),
            (80.0, f64::NAN),
            (f64::INFINITY, 160.0),
            (80.0, f64::NEG_INFINITY),
            (-80.0, 160.0),
            (0.0, 160.0),
        ] {
            assert_eq!(c.compute_shift(0.5, l_d, l_a), 0.0);
            assert_eq!(c.p_lo(), lo);
            assert_eq!(c.p_hi(), hi);
        }
        assert_eq!(c.rejected_inputs(), 6);
    }

    #[test]
    fn nan_p_is_rejected_and_out_of_range_p_clamped() {
        let mut c = ShiftController::new(0.01, 0.05);
        assert_eq!(c.compute_shift(f64::NAN, 80.0, 160.0), 0.0);
        assert_eq!(c.rejected_inputs(), 1);
        // p = 1.7 clamps to 1.0: default faster -> p_lo = 1.0, shift 0.
        let dp = c.compute_shift(1.7, 80.0, 160.0);
        assert!(dp.is_finite() && (0.0..=1.0).contains(&dp));
        assert!(c.p_lo() <= 1.0);
        // p = -3.0 clamps to 0.0.
        let dp = c.compute_shift(-3.0, 200.0, 100.0);
        assert!(dp.is_finite() && (0.0..=1.0).contains(&dp));
        assert!(c.p_hi() >= 0.0);
    }

    #[test]
    fn freeze_suspends_watermark_movement_and_resume_restores_it() {
        let mut c = ShiftController::new(0.01, 0.05);
        c.compute_shift(0.3, 80.0, 160.0); // p_lo = 0.3
        c.freeze();
        assert!(c.is_frozen());
        // Wildly unbalanced inputs while frozen: no shift, no movement,
        // not even the corrupt-input counter.
        assert_eq!(c.compute_shift(0.9, 10.0, 500.0), 0.0);
        assert_eq!(c.compute_shift(f64::NAN, 10.0, 500.0), 0.0);
        assert_eq!(c.p_lo(), 0.3);
        assert_eq!(c.p_hi(), 1.0);
        assert_eq!(c.rejected_inputs(), 0);
        c.resume();
        assert!(!c.is_frozen());
        let dp = c.compute_shift(0.5, 80.0, 160.0);
        assert!(dp > 0.0, "resumed controller must shift again");
    }

    #[test]
    fn reset_watermarks_restarts_the_search_interval() {
        let mut c = ShiftController::new(0.01, 0.05);
        c.compute_shift(0.3, 80.0, 160.0);
        c.compute_shift(0.7, 200.0, 100.0);
        assert!(c.p_lo() > 0.0 && c.p_hi() < 1.0);
        let resets = c.resets();
        c.reset_watermarks();
        assert_eq!(c.p_lo(), 0.0);
        assert_eq!(c.p_hi(), 1.0);
        assert_eq!(c.resets(), resets + 1);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        let _ = ShiftController::new(0.0, 0.05);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_delta() {
        let _ = ShiftController::new(0.01, 1.0);
    }
}
