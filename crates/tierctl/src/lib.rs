//! Page-management substrate shared by the tiering systems.
//!
//! The systems in `tiersys` (HeMem, TPP, MEMTIS and their Colloid variants)
//! are assembled from the primitives here:
//!
//! - [`freq::FreqTracker`] — per-page access-frequency counts fed by PEBS
//!   samples, with HeMem-style *cooling* (halve every count when any count
//!   reaches the cooling threshold) and access-probability queries.
//! - [`bins::TierBins`] — per-tier page lists partitioned into frequency
//!   bins. This is the generalisation of HeMem's hot/cold lists that the
//!   Colloid integration introduces (paper §4.1: "rather than binary
//!   hot/cold lists, we split the frequency space into equal sized bins and
//!   maintain a separate page list per bin").
//! - [`scanner::RegionScanner`] — the page-table scanner behind TPP's
//!   access tracking: marks batches of pages for hint faults, round-robin
//!   over the application's address ranges.
//! - [`budget::MigrationBudget`] — per-quantum migration byte budgeting
//!   (the static rate limits every system configures).

// Managed-page region lists are genuinely one range in most tests.
#![allow(clippy::single_range_in_vec_init)]

pub mod bins;
pub mod budget;
pub mod freq;
pub mod scanner;

pub use bins::TierBins;
pub use budget::MigrationBudget;
pub use freq::FreqTracker;
pub use scanner::RegionScanner;
