//! Per-quantum migration budgeting.
//!
//! Every tiering system rate-limits migration traffic with a static cap;
//! Colloid additionally introduces a *dynamic* limit proportional to the
//! desired probability shift (paper §3.2, implemented in the `colloid`
//! crate). [`MigrationBudget`] is the static part: a byte allowance that
//! refills each quantum and is drawn down page by page.

use memsim::PAGE_SIZE;

/// A per-quantum migration byte budget.
///
/// # Examples
///
/// ```
/// use tierctl::MigrationBudget;
///
/// let mut b = MigrationBudget::new(8192); // two 4 KB pages per quantum
/// assert!(b.try_take(4096));
/// assert!(b.try_take(4096));
/// assert!(!b.try_take(4096), "budget exhausted");
/// b.refill();
/// assert!(b.try_take(4096));
/// ```
#[derive(Debug, Clone)]
pub struct MigrationBudget {
    per_quantum: u64,
    remaining: u64,
    taken_total: u64,
}

impl MigrationBudget {
    /// Creates a budget of `per_quantum` bytes per quantum.
    pub fn new(per_quantum: u64) -> Self {
        MigrationBudget {
            per_quantum,
            remaining: per_quantum,
            taken_total: 0,
        }
    }

    /// Builds a budget from a bandwidth (bytes/second) and quantum length.
    pub fn from_bandwidth(bytes_per_sec: f64, quantum: simkit::SimTime) -> Self {
        Self::new((bytes_per_sec * quantum.as_secs()) as u64)
    }

    /// Attempts to reserve `bytes`; returns whether the reservation fits.
    pub fn try_take(&mut self, bytes: u64) -> bool {
        if bytes <= self.remaining {
            self.remaining -= bytes;
            self.taken_total += bytes;
            true
        } else {
            false
        }
    }

    /// Reserves one base page if possible.
    pub fn try_take_page(&mut self) -> bool {
        self.try_take(PAGE_SIZE)
    }

    /// Bytes still available this quantum.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// The per-quantum allowance.
    pub fn per_quantum(&self) -> u64 {
        self.per_quantum
    }

    /// Total bytes reserved over the budget's lifetime.
    pub fn taken_total(&self) -> u64 {
        self.taken_total
    }

    /// Resets the allowance at a quantum boundary (unused budget does not
    /// roll over, matching kernel rate limiters).
    pub fn refill(&mut self) {
        self.remaining = self.per_quantum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;

    #[test]
    fn takes_until_exhausted() {
        let mut b = MigrationBudget::new(10_000);
        assert!(b.try_take(6_000));
        assert!(!b.try_take(6_000));
        assert!(b.try_take(4_000));
        assert_eq!(b.remaining(), 0);
        assert_eq!(b.taken_total(), 10_000);
    }

    #[test]
    fn refill_does_not_roll_over() {
        let mut b = MigrationBudget::new(100);
        b.refill();
        assert_eq!(b.remaining(), 100);
        assert!(b.try_take(40));
        b.refill();
        assert_eq!(b.remaining(), 100);
    }

    #[test]
    fn from_bandwidth_scales_with_quantum() {
        // 2.4 GB/s over 100 us = 240 KB.
        let b = MigrationBudget::from_bandwidth(2.4e9, SimTime::from_us(100.0));
        assert_eq!(b.per_quantum(), 240_000);
        // That is 58 whole pages.
        assert_eq!(b.per_quantum() / PAGE_SIZE, 58);
    }

    #[test]
    fn page_granularity() {
        let mut b = MigrationBudget::new(PAGE_SIZE * 2 + 100);
        assert!(b.try_take_page());
        assert!(b.try_take_page());
        assert!(!b.try_take_page());
    }

    #[test]
    fn zero_budget_blocks_everything() {
        let mut b = MigrationBudget::new(0);
        assert!(!b.try_take(1));
        assert!(b.try_take(0));
    }
}
