//! Per-tier, per-frequency-bin page lists.
//!
//! The Colloid/HeMem integration (paper §4.1) replaces HeMem's binary
//! hot/cold lists with one page list per frequency bin so the page-finding
//! procedure can "iterate over bins to find pages whose sum of access
//! probability is less than or equal to Δp". [`TierBins`] maintains, for
//! each tier, `n_bins` sets of pages partitioned by their frequency count;
//! membership updates are O(1) (swap-remove indexed by a page map).

use std::collections::HashMap;

use memsim::{TierId, Vpn};

/// Location of a page inside the bin structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    tier: u8,
    bin: u8,
    idx: u32,
}

/// Page lists per `(tier, frequency bin)`.
///
/// Bin `b` holds pages whose count `c` satisfies
/// `b = min(c * n_bins / cooling_threshold, n_bins - 1)`; bin 0 is the
/// coldest, bin `n_bins - 1` the hottest.
///
/// # Examples
///
/// ```
/// use memsim::TierId;
///
/// let mut bins = tierctl::TierBins::new(2, 5, 16);
/// bins.insert(7, TierId::DEFAULT, 0);
/// bins.update_count(7, 15); // hottest bin
/// assert_eq!(bins.bin_of_count(15), 4);
/// let hottest: Vec<u64> = bins.pages(TierId::DEFAULT, 4).to_vec();
/// assert_eq!(hottest, vec![7]);
/// ```
#[derive(Debug, Clone)]
pub struct TierBins {
    /// `lists[tier][bin]` = pages.
    lists: Vec<Vec<Vec<Vpn>>>,
    slots: HashMap<Vpn, Slot>,
    n_bins: usize,
    cooling_threshold: u32,
}

impl TierBins {
    /// Creates bins for `tiers` tiers, `n_bins` frequency bins, and the
    /// tracker's `cooling_threshold` (the top of the frequency space).
    ///
    /// # Panics
    ///
    /// Panics if `tiers`, `n_bins` are zero or `cooling_threshold < 2`.
    pub fn new(tiers: usize, n_bins: usize, cooling_threshold: u32) -> Self {
        assert!(tiers > 0 && n_bins > 0 && n_bins < 256);
        assert!(cooling_threshold >= 2);
        TierBins {
            lists: vec![vec![Vec::new(); n_bins]; tiers],
            slots: HashMap::new(),
            n_bins,
            cooling_threshold,
        }
    }

    /// The bin a page with frequency `count` belongs to.
    pub fn bin_of_count(&self, count: u32) -> usize {
        ((count as usize * self.n_bins) / self.cooling_threshold as usize).min(self.n_bins - 1)
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.n_bins
    }

    /// Inserts a page with frequency `count` into `tier`'s lists.
    ///
    /// # Panics
    ///
    /// Panics if the page is already tracked.
    pub fn insert(&mut self, vpn: Vpn, tier: TierId, count: u32) {
        assert!(!self.slots.contains_key(&vpn), "page {vpn} double-tracked");
        let bin = self.bin_of_count(count);
        let list = &mut self.lists[tier.index()][bin];
        list.push(vpn);
        self.slots.insert(
            vpn,
            Slot {
                tier: tier.0,
                bin: bin as u8,
                idx: (list.len() - 1) as u32,
            },
        );
    }

    /// Removes a page; no-op if untracked.
    pub fn remove(&mut self, vpn: Vpn) {
        let Some(slot) = self.slots.remove(&vpn) else {
            return;
        };
        let list = &mut self.lists[slot.tier as usize][slot.bin as usize];
        let idx = slot.idx as usize;
        let last = list.pop().expect("slot points into a non-empty list");
        if idx < list.len() {
            list[idx] = last;
            self.slots.get_mut(&last).expect("tracked page").idx = slot.idx;
        } else {
            debug_assert_eq!(last, vpn);
        }
    }

    /// Re-bins a page after its frequency count changed.
    ///
    /// No-op if the page is untracked (e.g. pinned pages never inserted).
    pub fn update_count(&mut self, vpn: Vpn, count: u32) {
        let Some(&slot) = self.slots.get(&vpn) else {
            return;
        };
        let new_bin = self.bin_of_count(count) as u8;
        if new_bin == slot.bin {
            return;
        }
        let tier = TierId(slot.tier);
        self.remove(vpn);
        self.insert(vpn, tier, count);
    }

    /// Moves a page to a different tier, keeping its bin.
    pub fn move_tier(&mut self, vpn: Vpn, dst: TierId) {
        let Some(&slot) = self.slots.get(&vpn) else {
            return;
        };
        if slot.tier == dst.0 {
            return;
        }
        // Reconstruct an equivalent count for the bin midpoint; the exact
        // count is re-applied by the next `update_count`.
        let bin = slot.bin;
        self.remove(vpn);
        // Smallest count that maps back into `bin`.
        let count = (bin as u32 * self.cooling_threshold).div_ceil(self.n_bins as u32);
        self.insert(vpn, dst, count);
        debug_assert_eq!(
            self.slots[&vpn].bin, bin,
            "bin must be preserved across tier moves"
        );
    }

    /// The tier a page is currently filed under, if tracked.
    pub fn tier_of(&self, vpn: Vpn) -> Option<TierId> {
        self.slots.get(&vpn).map(|s| TierId(s.tier))
    }

    /// Pages in `tier`'s bin `bin`.
    pub fn pages(&self, tier: TierId, bin: usize) -> &[Vpn] {
        &self.lists[tier.index()][bin]
    }

    /// Number of pages tracked in `tier`.
    pub fn tier_len(&self, tier: TierId) -> usize {
        self.lists[tier.index()].iter().map(Vec::len).sum()
    }

    /// Total tracked pages.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Rebuilds all bins from `(vpn, count)` pairs after a cooling pass
    /// halves every count (membership and tiers are preserved).
    pub fn rebin_all<'a>(&mut self, counts: impl Iterator<Item = (Vpn, u32)> + 'a) {
        let updates: Vec<(Vpn, u32)> = counts.collect();
        for (vpn, count) in updates {
            self.update_count(vpn, count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: TierId = TierId::DEFAULT;
    const A: TierId = TierId::ALTERNATE;

    fn bins() -> TierBins {
        TierBins::new(2, 5, 16)
    }

    #[test]
    fn bin_boundaries() {
        let b = bins();
        assert_eq!(b.bin_of_count(0), 0);
        assert_eq!(b.bin_of_count(3), 0);
        assert_eq!(b.bin_of_count(4), 1);
        assert_eq!(b.bin_of_count(15), 4);
        assert_eq!(b.bin_of_count(100), 4, "clamps to the hottest bin");
    }

    #[test]
    fn insert_and_query() {
        let mut b = bins();
        b.insert(1, D, 0);
        b.insert(2, D, 10);
        b.insert(3, A, 10);
        assert_eq!(b.pages(D, 0), &[1]);
        assert_eq!(b.pages(D, 3), &[2]);
        assert_eq!(b.pages(A, 3), &[3]);
        assert_eq!(b.tier_len(D), 2);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn remove_swaps_correctly() {
        let mut b = bins();
        for vpn in 0..10 {
            b.insert(vpn, D, 0);
        }
        b.remove(0);
        b.remove(9);
        b.remove(4);
        assert_eq!(b.tier_len(D), 7);
        // All remaining pages must still be findable and removable.
        for vpn in [1, 2, 3, 5, 6, 7, 8] {
            assert_eq!(b.tier_of(vpn), Some(D));
            b.remove(vpn);
        }
        assert!(b.is_empty());
    }

    #[test]
    fn update_count_rebins() {
        let mut b = bins();
        b.insert(1, D, 0);
        b.update_count(1, 15);
        assert!(b.pages(D, 0).is_empty());
        assert_eq!(b.pages(D, 4), &[1]);
        // Cooling halves 15 -> 7 -> bin 2.
        b.update_count(1, 7);
        assert_eq!(b.pages(D, 2), &[1]);
    }

    #[test]
    fn move_tier_preserves_bin() {
        let mut b = bins();
        b.insert(1, D, 13);
        let bin = b.bin_of_count(13);
        b.move_tier(1, A);
        assert_eq!(b.tier_of(1), Some(A));
        assert_eq!(b.pages(A, bin), &[1]);
        assert!(b.pages(D, bin).is_empty());
    }

    #[test]
    fn untracked_updates_are_noops() {
        let mut b = bins();
        b.update_count(99, 5);
        b.move_tier(99, A);
        b.remove(99);
        assert!(b.is_empty());
    }

    #[test]
    fn rebin_all_after_cooling() {
        let mut b = bins();
        let mut tracker = crate::FreqTracker::new(16);
        for vpn in 0..20u64 {
            b.insert(vpn, D, 0);
            for _ in 0..(vpn % 14) {
                tracker.record(vpn);
            }
            b.update_count(vpn, tracker.count(vpn));
        }
        tracker.cool();
        b.rebin_all(tracker.iter());
        for (vpn, c) in tracker.iter() {
            let bin = b.bin_of_count(c);
            assert!(b.pages(D, bin).contains(&vpn));
        }
    }

    #[test]
    #[should_panic]
    fn double_insert_panics() {
        let mut b = bins();
        b.insert(1, D, 0);
        b.insert(1, A, 0);
    }
}
