//! Per-page access-frequency tracking (HeMem/MEMTIS-style).
//!
//! HeMem maintains per-page frequency counts updated from PEBS samples and
//! *cools* pages by halving every count whenever any count reaches
//! `COOLING_THRESHOLD` (paper §4.1). The Colloid integrations derive each
//! page's **access probability** as its count divided by the cumulative
//! count over all pages — exactly what [`FreqTracker::access_prob`]
//! computes.

use std::collections::HashMap;

use memsim::Vpn;

/// Per-page access-frequency counts with cooling.
///
/// # Examples
///
/// ```
/// let mut t = tierctl::FreqTracker::new(8);
/// t.record(42);
/// t.record(42);
/// t.record(7);
/// assert_eq!(t.count(42), 2);
/// assert!((t.access_prob(42) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct FreqTracker {
    counts: HashMap<Vpn, u32>,
    total: u64,
    cooling_threshold: u32,
    coolings: u64,
}

impl FreqTracker {
    /// Creates a tracker that cools when any count reaches
    /// `cooling_threshold` (HeMem's `COOLING_THRESHOLD`; must be ≥ 2).
    ///
    /// # Panics
    ///
    /// Panics if `cooling_threshold < 2`.
    pub fn new(cooling_threshold: u32) -> Self {
        assert!(cooling_threshold >= 2, "cooling threshold must be >= 2");
        FreqTracker {
            counts: HashMap::new(),
            total: 0,
            cooling_threshold,
            coolings: 0,
        }
    }

    /// Records one sampled access to `vpn`; cools if the page's count
    /// reaches the threshold. Returns `true` if a cooling pass ran.
    pub fn record(&mut self, vpn: Vpn) -> bool {
        let c = self.counts.entry(vpn).or_insert(0);
        *c += 1;
        self.total += 1;
        if *c >= self.cooling_threshold {
            self.cool();
            true
        } else {
            false
        }
    }

    /// Halves every count (dropping pages that reach zero) — HeMem cooling.
    pub fn cool(&mut self) {
        self.total = 0;
        self.counts.retain(|_, c| {
            *c /= 2;
            self.total += *c as u64;
            *c > 0
        });
        self.coolings += 1;
    }

    /// Current count of `vpn` (0 if never sampled).
    pub fn count(&self, vpn: Vpn) -> u32 {
        self.counts.get(&vpn).copied().unwrap_or(0)
    }

    /// Access probability of `vpn`: its count over the cumulative count.
    ///
    /// Returns 0.0 when nothing has been sampled yet.
    pub fn access_prob(&self, vpn: Vpn) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(vpn) as f64 / self.total as f64
        }
    }

    /// Cumulative count across all pages.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of pages with a non-zero count.
    pub fn tracked_pages(&self) -> usize {
        self.counts.len()
    }

    /// Number of cooling passes performed.
    pub fn coolings(&self) -> u64 {
        self.coolings
    }

    /// The cooling threshold.
    pub fn cooling_threshold(&self) -> u32 {
        self.cooling_threshold
    }

    /// Iterates over `(vpn, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, u32)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// The `q`-quantile of non-zero counts (used by MEMTIS's dynamic hot
    /// threshold). Returns 0 if nothing is tracked.
    pub fn count_quantile(&self, q: f64) -> u32 {
        if self.counts.is_empty() {
            return 0;
        }
        let mut v: Vec<u32> = self.counts.values().copied().collect();
        v.sort_unstable();
        let idx = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
        v[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = FreqTracker::new(100);
        for _ in 0..5 {
            t.record(1);
        }
        t.record(2);
        assert_eq!(t.count(1), 5);
        assert_eq!(t.count(2), 1);
        assert_eq!(t.total(), 6);
        assert_eq!(t.tracked_pages(), 2);
    }

    #[test]
    fn access_probs_sum_to_one() {
        let mut t = FreqTracker::new(1000);
        for vpn in 0..50 {
            for _ in 0..=vpn {
                t.record(vpn);
            }
        }
        let sum: f64 = (0..50).map(|v| t.access_prob(v)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cooling_halves_counts() {
        let mut t = FreqTracker::new(8);
        for _ in 0..7 {
            assert!(!t.record(9));
        }
        // The 8th sample triggers cooling: 8/2 = 4.
        assert!(t.record(9));
        assert_eq!(t.count(9), 4);
        assert_eq!(t.coolings(), 1);
    }

    #[test]
    fn cooling_drops_cold_pages() {
        let mut t = FreqTracker::new(4);
        t.record(1); // count 1
        t.record(2);
        t.record(2);
        t.record(2);
        t.record(2); // triggers cooling: 2 -> 2, 1 -> 0 (dropped)
        assert_eq!(t.count(1), 0);
        assert_eq!(t.count(2), 2);
        assert_eq!(t.tracked_pages(), 1);
        assert_eq!(t.total(), 2);
    }

    #[test]
    fn total_consistent_after_cooling() {
        let mut t = FreqTracker::new(16);
        for i in 0..100u64 {
            for _ in 0..(i % 7) {
                t.record(i);
            }
        }
        t.cool();
        let recomputed: u64 = t.iter().map(|(_, c)| c as u64).sum();
        assert_eq!(recomputed, t.total());
    }

    #[test]
    fn quantile_of_counts() {
        let mut t = FreqTracker::new(1000);
        for vpn in 0..10u64 {
            for _ in 0..(vpn + 1) {
                t.record(vpn);
            }
        }
        assert_eq!(t.count_quantile(0.0), 1);
        assert_eq!(t.count_quantile(1.0), 10);
        let mid = t.count_quantile(0.5);
        assert!((5..=6).contains(&mid));
    }

    #[test]
    fn empty_tracker_is_sane() {
        let t = FreqTracker::new(8);
        assert_eq!(t.access_prob(1), 0.0);
        assert_eq!(t.count_quantile(0.5), 0);
        assert_eq!(t.total(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_threshold() {
        let _ = FreqTracker::new(1);
    }
}
