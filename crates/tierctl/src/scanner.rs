//! Page-table scanning for hint-fault access tracking (TPP).
//!
//! TPP "periodically scans process page tables and marks pages with a
//! special protection bit. Subsequent accesses to these pages result in a
//! hint page fault" (paper §4.3). [`RegionScanner`] walks the application's
//! page ranges round-robin, emitting a bounded batch of pages to mark per
//! call — the batch size bounds the scan's CPU cost, and the full-cycle
//! time determines TPP's (slow) reaction time to hot-set changes.

use memsim::Vpn;

/// Round-robin scanner over a set of page ranges.
///
/// # Examples
///
/// ```
/// let mut s = tierctl::RegionScanner::new(vec![0..4, 10..12]);
/// assert_eq!(s.next_batch(3), vec![0, 1, 2]);
/// assert_eq!(s.next_batch(3), vec![3, 10, 11]);
/// assert_eq!(s.next_batch(3), vec![0, 1, 2], "wraps around");
/// ```
#[derive(Debug, Clone)]
pub struct RegionScanner {
    ranges: Vec<std::ops::Range<Vpn>>,
    range_idx: usize,
    cursor: Vpn,
    total_pages: u64,
}

impl RegionScanner {
    /// Creates a scanner over `ranges` (empty ranges are dropped).
    pub fn new(ranges: Vec<std::ops::Range<Vpn>>) -> Self {
        let ranges: Vec<_> = ranges.into_iter().filter(|r| !r.is_empty()).collect();
        let total_pages = ranges.iter().map(|r| r.end - r.start).sum();
        let cursor = ranges.first().map(|r| r.start).unwrap_or(0);
        RegionScanner {
            ranges,
            range_idx: 0,
            cursor,
            total_pages,
        }
    }

    /// Total pages across all ranges (one scan cycle).
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Returns the next `batch` pages in scan order, wrapping around.
    pub fn next_batch(&mut self, batch: usize) -> Vec<Vpn> {
        let mut out = Vec::with_capacity(batch.min(self.total_pages as usize));
        if self.ranges.is_empty() {
            return out;
        }
        while out.len() < batch.min(self.total_pages as usize) {
            let range = &self.ranges[self.range_idx];
            if self.cursor >= range.end {
                self.range_idx = (self.range_idx + 1) % self.ranges.len();
                self.cursor = self.ranges[self.range_idx].start;
                continue;
            }
            out.push(self.cursor);
            self.cursor += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_pages_in_one_cycle() {
        let mut s = RegionScanner::new(vec![5..9, 20..23]);
        assert_eq!(s.total_pages(), 7);
        let mut seen = Vec::new();
        for _ in 0..7 {
            seen.extend(s.next_batch(1));
        }
        assert_eq!(seen, vec![5, 6, 7, 8, 20, 21, 22]);
    }

    #[test]
    fn batch_spans_range_boundary() {
        let mut s = RegionScanner::new(vec![0..2, 10..12]);
        assert_eq!(s.next_batch(4), vec![0, 1, 10, 11]);
    }

    #[test]
    fn empty_scanner_yields_nothing() {
        let mut s = RegionScanner::new(vec![]);
        assert!(s.next_batch(8).is_empty());
        let mut s2 = RegionScanner::new(vec![3..3]);
        assert!(s2.next_batch(8).is_empty());
    }

    #[test]
    fn batch_larger_than_cycle_does_not_loop_forever() {
        let mut s = RegionScanner::new(vec![0..3]);
        let batch = s.next_batch(100);
        assert_eq!(batch, vec![0, 1, 2]);
    }

    #[test]
    fn wraps_deterministically() {
        let mut s = RegionScanner::new(vec![0..4]);
        let a: Vec<_> = (0..8).flat_map(|_| s.next_batch(1)).collect();
        assert_eq!(a, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
