//! Property-based tests for the page-management substrate: the binned page
//! lists must behave exactly like a naive reference model under arbitrary
//! operation sequences, and the frequency tracker's invariants must survive
//! cooling.

use std::collections::HashMap;

use memsim::TierId;
use proptest::prelude::*;
use tierctl::{FreqTracker, TierBins};

/// Operations the fuzzer drives against TierBins.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u8, u32),
    Remove(u64),
    UpdateCount(u64, u32),
    MoveTier(u64, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, 0u8..2, 0u32..20).prop_map(|(v, t, c)| Op::Insert(v, t, c)),
        (0u64..64).prop_map(Op::Remove),
        (0u64..64, 0u32..20).prop_map(|(v, c)| Op::UpdateCount(v, c)),
        (0u64..64, 0u8..2).prop_map(|(v, t)| Op::MoveTier(v, t)),
    ]
}

proptest! {
    /// TierBins agrees with a plain HashMap model under arbitrary op
    /// sequences: same membership, same tier, and the page is always filed
    /// in the bin its count maps to (except after move_tier, which
    /// preserves the *bin*).
    #[test]
    fn bins_match_reference_model(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut bins = TierBins::new(2, 5, 16);
        // Model: vpn -> (tier, bin).
        let mut model: HashMap<u64, (u8, usize)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(v, t, c) => {
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(v) {
                        bins.insert(v, TierId(t), c);
                        e.insert((t, bins.bin_of_count(c)));
                    }
                }
                Op::Remove(v) => {
                    bins.remove(v);
                    model.remove(&v);
                }
                Op::UpdateCount(v, c) => {
                    bins.update_count(v, c);
                    if let Some(e) = model.get_mut(&v) {
                        e.1 = bins.bin_of_count(c);
                    }
                }
                Op::MoveTier(v, t) => {
                    bins.move_tier(v, TierId(t));
                    if let Some(e) = model.get_mut(&v) {
                        e.0 = t;
                    }
                }
            }
            // Full consistency check.
            prop_assert_eq!(bins.len(), model.len());
            for (&v, &(t, b)) in &model {
                prop_assert_eq!(bins.tier_of(v), Some(TierId(t)), "vpn {}", v);
                prop_assert!(
                    bins.pages(TierId(t), b).contains(&v),
                    "vpn {} missing from tier {} bin {}", v, t, b
                );
            }
            // No phantom pages: every listed page is in the model.
            for t in 0..2u8 {
                for b in 0..5 {
                    for &v in bins.pages(TierId(t), b) {
                        prop_assert_eq!(model.get(&v), Some(&(t, b)));
                    }
                }
            }
        }
    }

    /// FreqTracker's running total always equals the sum of its counts,
    /// through arbitrary record/cool interleavings.
    #[test]
    fn tracker_total_is_consistent(
        records in prop::collection::vec((0u64..128, prop::bool::ANY), 1..500),
        threshold in 2u32..64,
    ) {
        let mut t = FreqTracker::new(threshold);
        for (vpn, cool) in records {
            t.record(vpn);
            if cool {
                t.cool();
            }
            let sum: u64 = t.iter().map(|(_, c)| c as u64).sum();
            prop_assert_eq!(sum, t.total());
            // No count may ever reach the threshold after record() returns.
            for (_, c) in t.iter() {
                prop_assert!(c < threshold * 2, "count {} vs threshold {}", c, threshold);
            }
        }
    }

    /// Access probabilities always sum to 1 (or 0 when empty).
    #[test]
    fn tracker_probabilities_normalise(
        records in prop::collection::vec(0u64..64, 0..300),
    ) {
        let mut t = FreqTracker::new(16);
        for vpn in &records {
            t.record(*vpn);
        }
        let sum: f64 = (0..64).map(|v| t.access_prob(v)).sum();
        if t.total() == 0 {
            prop_assert_eq!(sum, 0.0);
        } else {
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {}", sum);
        }
    }
}
