//! Access-trace recording and replay.
//!
//! Wrapping any [`AccessStream`] in a [`TraceRecorder`] captures the exact
//! object accesses it produced; a [`TraceReplayer`] plays a captured trace
//! back (optionally in a loop). This enables:
//!
//! - **reproducible A/B runs**: drive two tiering systems with *identical*
//!   access sequences, eliminating generator randomness from comparisons;
//! - **trace-driven evaluation**: import traces produced elsewhere by
//!   constructing a [`Trace`] from records;
//! - **debugging**: capture the window around a misbehaviour and replay it.

use std::sync::{Arc, Mutex, OnceLock};

use memsim::{AccessStream, ObjectAccess};
use rand::rngs::SmallRng;
use simkit::SimTime;

/// One recorded access (the time field records *when the stream was asked*,
/// useful for phase-aware analysis; replay is order-based, not time-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulated time at which the access was generated.
    pub at: SimTime,
    /// The generated access.
    pub access: ObjectAccess,
}

/// An immutable captured access trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    /// Lazily computed distinct-page count; reset whenever a record is
    /// appended so [`Trace::touched_pages`] never re-sorts an unchanged
    /// record set.
    touched: OnceLock<usize>,
}

impl PartialEq for Trace {
    /// Traces compare by their records; the lazily-computed cache is
    /// derived state and does not participate.
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl Trace {
    /// Builds a trace from records (e.g. imported from another tool).
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        Trace {
            records,
            touched: OnceLock::new(),
        }
    }

    /// Appends one record, invalidating the touched-pages cache.
    pub(crate) fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
        self.touched = OnceLock::new();
    }

    /// The recorded accesses.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct pages touched by the trace. Computed once per record set
    /// and cached; appending a record invalidates the cache.
    pub fn touched_pages(&self) -> usize {
        *self.touched.get_or_init(|| {
            let mut pages: Vec<u64> = self.records.iter().map(|r| r.access.first_vpn()).collect();
            pages.sort_unstable();
            pages.dedup();
            pages.len()
        })
    }
}

/// Shared handle for draining a recorder's trace after the machine (which
/// owns the stream) has been driven.
pub type TraceHandle = Arc<Mutex<Trace>>;

/// Records every access produced by an inner stream.
pub struct TraceRecorder<S> {
    inner: S,
    sink: TraceHandle,
    limit: usize,
}

impl<S: AccessStream> TraceRecorder<S> {
    /// Wraps `inner`, recording up to `limit` accesses (older accesses are
    /// never dropped; recording just stops at the cap).
    pub fn new(inner: S, limit: usize) -> (Self, TraceHandle) {
        let sink: TraceHandle = Arc::new(Mutex::new(Trace::default()));
        (
            TraceRecorder {
                inner,
                sink: Arc::clone(&sink),
                limit,
            },
            sink,
        )
    }
}

impl<S: AccessStream> AccessStream for TraceRecorder<S> {
    fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        let access = self.inner.next(now, rng);
        let mut trace = self.sink.lock().expect("trace sink poisoned");
        if trace.records.len() < self.limit {
            trace.push(TraceRecord { at: now, access });
        }
        access
    }
}

/// Why a [`TraceReplayer`] could not be constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace holds no records: an empty infinite stream cannot exist.
    EmptyTrace,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::EmptyTrace => {
                write!(f, "cannot replay an empty trace (streams are infinite)")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// Replays a captured trace in order; wraps around at the end (streams are
/// infinite by contract).
#[derive(Debug, Clone)]
pub struct TraceReplayer {
    trace: Arc<Trace>,
    cursor: usize,
}

impl TraceReplayer {
    /// Creates a replayer over a captured trace, rejecting an empty one
    /// with a typed error — the path for traces of untrusted provenance
    /// (e.g. imported NDJSON fixtures).
    pub fn try_new(trace: Arc<Trace>) -> Result<Self, ReplayError> {
        if trace.is_empty() {
            return Err(ReplayError::EmptyTrace);
        }
        Ok(TraceReplayer { trace, cursor: 0 })
    }

    /// Creates a replayer over a captured trace.
    ///
    /// Deprecation note: prefer [`TraceReplayer::try_new`] — this wrapper
    /// panics on an empty trace and is kept only for callers that already
    /// hold a trace they know is non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is empty.
    pub fn new(trace: Arc<Trace>) -> Self {
        Self::try_new(trace).expect("cannot replay an empty trace")
    }
}

impl AccessStream for TraceReplayer {
    fn next(&mut self, _now: SimTime, _rng: &mut SmallRng) -> ObjectAccess {
        let access = self.trace.records[self.cursor].access;
        self.cursor = (self.cursor + 1) % self.trace.len();
        access
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GupsConfig, GupsStream};
    use simkit::rng::seed_from;

    fn gups() -> GupsStream {
        let mut cfg = GupsConfig::paper_default(0);
        cfg.ws_pages = 256;
        cfg.hot_pages = 64;
        GupsStream::new(cfg).unwrap()
    }

    #[test]
    fn recorder_captures_accesses_transparently() {
        let (mut rec, handle) = TraceRecorder::new(gups(), 1000);
        let mut reference = gups();
        let mut rng_a = seed_from(9, 0);
        let mut rng_b = seed_from(9, 0);
        for _ in 0..100 {
            let a = rec.next(SimTime::ZERO, &mut rng_a);
            let b = reference.next(SimTime::ZERO, &mut rng_b);
            assert_eq!(a.vaddr, b.vaddr, "recording must not perturb the stream");
        }
        let trace = handle.lock().unwrap();
        assert_eq!(trace.len(), 100);
        assert!(trace.touched_pages() > 10);
    }

    #[test]
    fn recorder_respects_limit() {
        let (mut rec, handle) = TraceRecorder::new(gups(), 10);
        let mut rng = seed_from(1, 0);
        for _ in 0..50 {
            rec.next(SimTime::ZERO, &mut rng);
        }
        assert_eq!(handle.lock().unwrap().len(), 10);
    }

    #[test]
    fn replay_reproduces_exactly_and_wraps() {
        let (mut rec, handle) = TraceRecorder::new(gups(), 32);
        let mut rng = seed_from(2, 0);
        let original: Vec<u64> = (0..32)
            .map(|_| rec.next(SimTime::ZERO, &mut rng).vaddr)
            .collect();
        let trace = Arc::new(handle.lock().unwrap().clone());
        let mut replay = TraceReplayer::new(trace);
        let mut rng2 = seed_from(99, 7); // replay must ignore the RNG
        for round in 0..3 {
            for (i, &want) in original.iter().enumerate() {
                let got = replay.next(SimTime::ZERO, &mut rng2).vaddr;
                assert_eq!(got, want, "round {round} index {i}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_trace_cannot_replay() {
        let _ = TraceReplayer::new(Arc::new(Trace::default()));
    }

    #[test]
    fn try_new_rejects_empty_trace_with_typed_error() {
        let err = TraceReplayer::try_new(Arc::new(Trace::default())).unwrap_err();
        assert_eq!(err, ReplayError::EmptyTrace);
        assert!(err.to_string().contains("empty trace"));
        let t = Trace::from_records(vec![TraceRecord {
            at: SimTime::ZERO,
            access: memsim::ObjectAccess::read_line(0),
        }]);
        assert!(TraceReplayer::try_new(Arc::new(t)).is_ok());
    }

    #[test]
    fn touched_pages_cache_matches_direct_recomputation() {
        // Pin: the cached count equals a by-hand sort+dedup, both on the
        // initial record set and after the recorder appends more (the
        // append must invalidate the cache).
        let (mut rec, handle) = TraceRecorder::new(gups(), 1000);
        let mut rng = seed_from(11, 0);
        for _ in 0..50 {
            rec.next(SimTime::ZERO, &mut rng);
        }
        let by_hand = |t: &Trace| {
            let mut pages: Vec<u64> = t.records().iter().map(|r| r.access.first_vpn()).collect();
            pages.sort_unstable();
            pages.dedup();
            pages.len()
        };
        {
            let t = handle.lock().unwrap();
            let first = t.touched_pages();
            assert_eq!(first, by_hand(&t));
            // Second call hits the cache and must agree.
            assert_eq!(t.touched_pages(), first);
        }
        for _ in 0..200 {
            rec.next(SimTime::ZERO, &mut rng);
        }
        let t = handle.lock().unwrap();
        assert_eq!(t.touched_pages(), by_hand(&t), "stale cache after append");
    }

    #[test]
    fn imported_trace_roundtrips() {
        let records = vec![
            TraceRecord {
                at: SimTime::ZERO,
                access: memsim::ObjectAccess::read_line(4096),
            },
            TraceRecord {
                at: SimTime::from_ns(10.0),
                access: memsim::ObjectAccess::read_line(8192),
            },
        ];
        let t = Trace::from_records(records);
        assert_eq!(t.len(), 2);
        assert_eq!(t.touched_pages(), 2);
        let mut r = TraceReplayer::new(Arc::new(t));
        let mut rng = seed_from(0, 0);
        assert_eq!(r.next(SimTime::ZERO, &mut rng).vaddr, 4096);
        assert_eq!(r.next(SimTime::ZERO, &mut rng).vaddr, 8192);
        assert_eq!(r.next(SimTime::ZERO, &mut rng).vaddr, 4096);
    }
}
