//! On-disk NDJSON format for access traces.
//!
//! A serialized [`Trace`] is newline-delimited JSON: a schema-versioned
//! header object on the first line, then exactly one object per recorded
//! access. Everything is hand-rolled (no serde — the build is offline) in
//! the style of `telemetry::export`: the writer emits a canonical byte
//! form, and the parser is strict enough to double as a structural
//! validator, so a trace can be exported, committed as a fixture, and
//! re-imported bit-identically.
//!
//! ```text
//! {"schema":"colloid-trace","version":1,"records":3}
//! {"seq":0,"t_ps":0,"vaddr":4194304,"size":64,"is_write":true,"dependent":false,"llc_hit_prob":0.0}
//! {"seq":1,"t_ps":100000,"vaddr":8388608,"size":64,"is_write":false,"dependent":false,"llc_hit_prob":0.0}
//! {"seq":2,"t_ps":100000,"vaddr":4194368,"size":64,"is_write":true,"dependent":false,"llc_hit_prob":0.0}
//! ```
//!
//! Guarantees enforced on import (each violation is a typed
//! [`TraceParseError`], never a panic):
//!
//! - the header line names the `colloid-trace` schema at a supported
//!   version and declares the exact record count (truncated files fail);
//! - `seq` is dense and zero-based;
//! - `t_ps` is non-decreasing (traces are recorded in request order);
//! - every field of every record parses exactly (`t_ps`/`vaddr` as full
//!   `u64` — no float round-trip).

use simkit::SimTime;

use crate::trace::{Trace, TraceRecord};
use memsim::ObjectAccess;

/// Schema name emitted in (and required of) the header line.
pub const SCHEMA: &str = "colloid-trace";
/// Current format version.
pub const VERSION: u64 = 1;

/// Why an NDJSON trace failed to import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The input is empty or the first line is not a valid header object.
    MissingHeader,
    /// The header parsed but is malformed (wrong fields or types).
    BadHeader(String),
    /// The header names a schema other than [`SCHEMA`].
    BadSchema(String),
    /// The header's version is newer than this parser understands.
    UnsupportedVersion(u64),
    /// A record line failed to parse (1-based line number + reason).
    Record {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A record's `seq` broke the dense zero-based ordering.
    SeqOutOfOrder {
        /// 1-based line number of the offending line.
        line: usize,
        /// Expected sequence number.
        expected: u64,
        /// Sequence number found.
        found: u64,
    },
    /// A record's `t_ps` went backwards relative to its predecessor.
    NonMonotoneTime {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// The file ended before the header's declared record count.
    Truncated {
        /// Records the header promised.
        expected: u64,
        /// Records actually present.
        found: u64,
    },
    /// Extra non-empty lines follow the declared record count.
    TrailingData {
        /// 1-based line number of the first extra line.
        line: usize,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::MissingHeader => write!(f, "missing or unparsable header line"),
            TraceParseError::BadHeader(why) => write!(f, "bad header: {why}"),
            TraceParseError::BadSchema(got) => {
                write!(f, "schema {got:?} is not {SCHEMA:?}")
            }
            TraceParseError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "version {v} unsupported (parser understands <= {VERSION})"
                )
            }
            TraceParseError::Record { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            TraceParseError::SeqOutOfOrder {
                line,
                expected,
                found,
            } => write!(
                f,
                "line {line}: seq {found} out of order (expected {expected})"
            ),
            TraceParseError::NonMonotoneTime { line } => {
                write!(
                    f,
                    "line {line}: t_ps decreased (trace times are non-decreasing)"
                )
            }
            TraceParseError::Truncated { expected, found } => {
                write!(
                    f,
                    "truncated: header declares {expected} records, found {found}"
                )
            }
            TraceParseError::TrailingData { line } => {
                write!(f, "line {line}: data after the declared record count")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

// --- writer --------------------------------------------------------------

/// Serializes a trace in the canonical NDJSON form. The output re-imports
/// via [`trace_from_ndjson`] to a record-identical trace, and re-exporting
/// that import reproduces the same bytes.
pub fn trace_to_ndjson(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + trace.len() * 96);
    let _ = writeln!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"version\":{VERSION},\"records\":{}}}",
        trace.len()
    );
    for (seq, r) in trace.records().iter().enumerate() {
        let a = &r.access;
        // f32 via `{:?}` keeps the shortest representation that parses
        // back to the identical value.
        let _ = writeln!(
            out,
            "{{\"seq\":{seq},\"t_ps\":{},\"vaddr\":{},\"size\":{},\"is_write\":{},\
             \"dependent\":{},\"llc_hit_prob\":{:?}}}",
            r.at.as_ps(),
            a.vaddr,
            a.size,
            a.is_write,
            a.dependent,
            a.llc_hit_prob,
        );
    }
    out
}

// --- parser --------------------------------------------------------------

/// One parsed scalar of a flat record object. Integers keep full `u64`
/// precision (a float round-trip would corrupt large `t_ps`/`vaddr`).
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Scalar {
    fn type_name(&self) -> &'static str {
        match self {
            Scalar::U64(_) => "integer",
            Scalar::F64(_) => "number",
            Scalar::Bool(_) => "bool",
            Scalar::Str(_) => "string",
        }
    }
}

/// Parses one flat JSON object (string/number/bool scalars only — trace
/// lines never nest) into its fields, in order.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let b = line.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r') {
            *pos += 1;
        }
    };
    let err = |pos: usize, msg: &str| format!("{msg} at byte {pos}");
    skip_ws(&mut pos);
    if pos >= b.len() || b[pos] != b'{' {
        return Err(err(pos, "expected '{'"));
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(&mut pos);
    if pos < b.len() && b[pos] == b'}' {
        pos += 1;
    } else {
        loop {
            skip_ws(&mut pos);
            let key = parse_string(b, &mut pos).map_err(|m| err(pos, &m))?;
            skip_ws(&mut pos);
            if pos >= b.len() || b[pos] != b':' {
                return Err(err(pos, "expected ':'"));
            }
            pos += 1;
            skip_ws(&mut pos);
            let val = parse_scalar(b, &mut pos).map_err(|m| err(pos, &m))?;
            fields.push((key, val));
            skip_ws(&mut pos);
            match b.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {
                    pos += 1;
                    break;
                }
                _ => return Err(err(pos, "expected ',' or '}'")),
            }
        }
    }
    skip_ws(&mut pos);
    if pos != b.len() {
        return Err(err(pos, "trailing characters after object"));
    }
    Ok(fields)
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err("expected '\"'".into());
    }
    *pos += 1;
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                // Trace strings (schema names) never contain escapes; the
                // writer emits none, so a backslash is a format error.
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
                *pos += 1;
                return Ok(s.to_string());
            }
            b'\\' => return Err("escape sequences are not part of the trace schema".into()),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_scalar(b: &[u8], pos: &mut usize) -> Result<Scalar, String> {
    match b.get(*pos) {
        Some(b'"') => Ok(Scalar::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Scalar::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Scalar::Bool(false))
        }
        Some(&c) if c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            let mut fractional = false;
            if c == b'-' {
                *pos += 1;
            }
            while let Some(&d) = b.get(*pos) {
                match d {
                    b'0'..=b'9' => *pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        fractional = true;
                        *pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid utf-8")?;
            if fractional || text.starts_with('-') {
                text.parse::<f64>()
                    .map(Scalar::F64)
                    .map_err(|_| format!("bad number {text:?}"))
            } else {
                text.parse::<u64>()
                    .map(Scalar::U64)
                    .map_err(|_| format!("integer {text:?} out of range"))
            }
        }
        _ => Err("expected a scalar value".into()),
    }
}

/// Looks a field up and removes it, so leftovers can be flagged as unknown.
fn take(fields: &mut Vec<(String, Scalar)>, key: &str) -> Option<Scalar> {
    let i = fields.iter().position(|(k, _)| k == key)?;
    Some(fields.remove(i).1)
}

fn want_u64(fields: &mut Vec<(String, Scalar)>, key: &str) -> Result<u64, String> {
    match take(fields, key) {
        Some(Scalar::U64(v)) => Ok(v),
        Some(other) => Err(format!(
            "field {key:?}: expected integer, got {}",
            other.type_name()
        )),
        None => Err(format!("missing field {key:?}")),
    }
}

fn want_bool(fields: &mut Vec<(String, Scalar)>, key: &str) -> Result<bool, String> {
    match take(fields, key) {
        Some(Scalar::Bool(v)) => Ok(v),
        Some(other) => Err(format!(
            "field {key:?}: expected bool, got {}",
            other.type_name()
        )),
        None => Err(format!("missing field {key:?}")),
    }
}

fn want_f64(fields: &mut Vec<(String, Scalar)>, key: &str) -> Result<f64, String> {
    match take(fields, key) {
        Some(Scalar::F64(v)) => Ok(v),
        Some(Scalar::U64(v)) => Ok(v as f64),
        Some(other) => Err(format!(
            "field {key:?}: expected number, got {}",
            other.type_name()
        )),
        None => Err(format!("missing field {key:?}")),
    }
}

/// Imports a trace serialized by [`trace_to_ndjson`] (or written by another
/// tool to the same schema). Strict: any structural violation is a typed
/// error naming the offending line.
pub fn trace_from_ndjson(input: &str) -> Result<Trace, TraceParseError> {
    let mut lines = input.lines().enumerate();
    // Header.
    let (_, header_line) = lines
        .by_ref()
        .find(|(_, l)| !l.trim().is_empty())
        .ok_or(TraceParseError::MissingHeader)?;
    let mut header = parse_flat_object(header_line).map_err(|_| TraceParseError::MissingHeader)?;
    let schema = match take(&mut header, "schema") {
        Some(Scalar::Str(s)) => s,
        Some(_) => {
            return Err(TraceParseError::BadHeader(
                "\"schema\" is not a string".into(),
            ))
        }
        None => return Err(TraceParseError::BadHeader("missing \"schema\"".into())),
    };
    if schema != SCHEMA {
        return Err(TraceParseError::BadSchema(schema));
    }
    let version = want_u64(&mut header, "version").map_err(TraceParseError::BadHeader)?;
    if version == 0 || version > VERSION {
        return Err(TraceParseError::UnsupportedVersion(version));
    }
    let expected = want_u64(&mut header, "records").map_err(TraceParseError::BadHeader)?;
    if let Some((key, _)) = header.first() {
        return Err(TraceParseError::BadHeader(format!("unknown field {key:?}")));
    }

    // Records.
    let mut records = Vec::with_capacity(expected.min(1 << 20) as usize);
    let mut last_t: u64 = 0;
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if records.len() as u64 == expected {
            return Err(TraceParseError::TrailingData { line: lineno });
        }
        let record = |reason: String| TraceParseError::Record {
            line: lineno,
            reason,
        };
        let mut fields = parse_flat_object(line).map_err(&record)?;
        let seq = want_u64(&mut fields, "seq").map_err(&record)?;
        if seq != records.len() as u64 {
            return Err(TraceParseError::SeqOutOfOrder {
                line: lineno,
                expected: records.len() as u64,
                found: seq,
            });
        }
        let t_ps = want_u64(&mut fields, "t_ps").map_err(&record)?;
        if t_ps < last_t {
            return Err(TraceParseError::NonMonotoneTime { line: lineno });
        }
        last_t = t_ps;
        let vaddr = want_u64(&mut fields, "vaddr").map_err(&record)?;
        let size = want_u64(&mut fields, "size").map_err(&record)?;
        if size == 0 || size > u32::MAX as u64 {
            return Err(record(format!("size {size} out of range")));
        }
        let is_write = want_bool(&mut fields, "is_write").map_err(&record)?;
        let dependent = want_bool(&mut fields, "dependent").map_err(&record)?;
        let llc = want_f64(&mut fields, "llc_hit_prob").map_err(&record)?;
        if !(0.0..=1.0).contains(&llc) {
            return Err(record(format!("llc_hit_prob {llc} not in [0,1]")));
        }
        if let Some((key, _)) = fields.first() {
            return Err(record(format!("unknown field {key:?}")));
        }
        records.push(TraceRecord {
            at: SimTime::from_ps(t_ps),
            access: ObjectAccess {
                vaddr,
                size: size as u32,
                is_write,
                dependent,
                llc_hit_prob: llc as f32,
            },
        });
    }
    if (records.len() as u64) < expected {
        return Err(TraceParseError::Truncated {
            expected,
            found: records.len() as u64,
        });
    }
    Ok(Trace::from_records(records))
}

/// Structural validator: parses the full document and returns the record
/// count, in the style of `telemetry::validate_ndjson`.
pub fn validate_trace_ndjson(input: &str) -> Result<usize, TraceParseError> {
    trace_from_ndjson(input).map(|t| t.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let rec = |t_ns: f64, vaddr: u64, size: u32, w: bool| TraceRecord {
            at: SimTime::from_ns(t_ns),
            access: ObjectAccess {
                vaddr,
                size,
                is_write: w,
                dependent: false,
                llc_hit_prob: 0.0,
            },
        };
        Trace::from_records(vec![
            rec(0.0, 4096 * 1024, 64, true),
            rec(100.0, 4096 * 2048, 256, false),
            rec(100.0, 4096 * 1024 + 64, 64, true),
        ])
    }

    #[test]
    fn round_trip_is_record_identical_and_byte_stable() {
        let t = sample_trace();
        let ndjson = trace_to_ndjson(&t);
        assert!(ndjson.starts_with(&format!(
            "{{\"schema\":\"{SCHEMA}\",\"version\":{VERSION},\"records\":3}}"
        )));
        let back = trace_from_ndjson(&ndjson).unwrap();
        assert_eq!(back.records(), t.records());
        // Export of the import reproduces the same bytes.
        assert_eq!(trace_to_ndjson(&back), ndjson);
        assert_eq!(validate_trace_ndjson(&ndjson), Ok(3));
    }

    #[test]
    fn fractional_llc_hit_prob_survives() {
        let t = Trace::from_records(vec![TraceRecord {
            at: SimTime::ZERO,
            access: ObjectAccess {
                vaddr: 4096,
                size: 64,
                is_write: false,
                dependent: true,
                llc_hit_prob: 0.01,
            },
        }]);
        let back = trace_from_ndjson(&trace_to_ndjson(&t)).unwrap();
        assert_eq!(back.records()[0].access.llc_hit_prob, 0.01f32);
        assert!(back.records()[0].access.dependent);
    }

    #[test]
    fn empty_trace_round_trips() {
        let ndjson = trace_to_ndjson(&Trace::default());
        assert_eq!(ndjson.lines().count(), 1);
        let back = trace_from_ndjson(&ndjson).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn missing_or_garbage_header() {
        assert_eq!(trace_from_ndjson(""), Err(TraceParseError::MissingHeader));
        assert_eq!(
            trace_from_ndjson("not json\n"),
            Err(TraceParseError::MissingHeader)
        );
        let e = trace_from_ndjson("{\"schema\":\"other\",\"version\":1,\"records\":0}\n");
        assert_eq!(e, Err(TraceParseError::BadSchema("other".into())));
        let e = trace_from_ndjson(&format!(
            "{{\"schema\":\"{SCHEMA}\",\"version\":9,\"records\":0}}\n"
        ));
        assert_eq!(e, Err(TraceParseError::UnsupportedVersion(9)));
        let e = trace_from_ndjson(&format!("{{\"schema\":\"{SCHEMA}\",\"records\":0}}\n"));
        assert!(matches!(e, Err(TraceParseError::BadHeader(_))));
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let full = trace_to_ndjson(&sample_trace());
        // Drop the last record line.
        let cut = full.lines().take(3).collect::<Vec<_>>().join("\n");
        assert_eq!(
            trace_from_ndjson(&cut),
            Err(TraceParseError::Truncated {
                expected: 3,
                found: 2
            })
        );
    }

    #[test]
    fn truncated_line_is_a_typed_error() {
        let full = trace_to_ndjson(&sample_trace());
        // Chop the final line mid-object (no trailing newline).
        let cut = &full[..full.len() - 10];
        assert!(matches!(
            trace_from_ndjson(cut),
            Err(TraceParseError::Record { .. })
        ));
    }

    #[test]
    fn non_monotone_time_is_a_typed_error() {
        let mut t = sample_trace();
        let mut records = t.records().to_vec();
        records[2].at = SimTime::ZERO; // goes backwards
        t = Trace::from_records(records);
        assert_eq!(
            trace_from_ndjson(&trace_to_ndjson(&t)),
            Err(TraceParseError::NonMonotoneTime { line: 4 })
        );
    }

    #[test]
    fn seq_gap_and_trailing_data_are_typed_errors() {
        let full = trace_to_ndjson(&sample_trace());
        let swapped: Vec<&str> = {
            let mut ls: Vec<&str> = full.lines().collect();
            ls.swap(1, 2);
            ls
        };
        assert!(matches!(
            trace_from_ndjson(&swapped.join("\n")),
            Err(TraceParseError::SeqOutOfOrder { .. })
        ));
        let mut extra = full.clone();
        extra.push_str("{\"seq\":3,\"t_ps\":1,\"vaddr\":0,\"size\":64,\"is_write\":false,\"dependent\":false,\"llc_hit_prob\":0.0}\n");
        assert!(matches!(
            trace_from_ndjson(&extra),
            Err(TraceParseError::TrailingData { .. })
        ));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let mut bad = String::from("{\"schema\":\"colloid-trace\",\"version\":1,\"records\":1}\n");
        bad.push_str("{\"seq\":0,\"t_ps\":0,\"vaddr\":0,\"size\":64,\"is_write\":false,\"dependent\":false,\"llc_hit_prob\":0.0,\"extra\":1}\n");
        assert!(matches!(
            trace_from_ndjson(&bad),
            Err(TraceParseError::Record { .. })
        ));
    }

    #[test]
    fn errors_display_their_context() {
        let e = TraceParseError::SeqOutOfOrder {
            line: 7,
            expected: 5,
            found: 9,
        };
        let s = e.to_string();
        assert!(s.contains("line 7") && s.contains('9') && s.contains('5'));
        assert!(TraceParseError::Truncated {
            expected: 10,
            found: 3
        }
        .to_string()
        .contains("10"));
    }
}
