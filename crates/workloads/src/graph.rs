//! GAPBS PageRank on a power-law graph (paper §5.3, Figure 11a).
//!
//! The paper runs GAPBS PageRank over the Twitter graph; "access locality
//! arises from skew in the degree distribution of graph nodes". The memory
//! behaviour of pull-based PageRank is two-fold:
//!
//! 1. a **sequential stream** over the CSR edge array (prefetch-friendly,
//!    huge footprint);
//! 2. **random reads** of the source nodes' rank entries, whose per-node
//!    frequency is proportional to node degree — a power law.
//!
//! [`PageRankStream`] reproduces exactly that mix: one edge-chunk read
//! followed by a batch of degree-skewed rank reads. GAPBS relabels nodes by
//! degree, so hot nodes cluster at the start of the rank array (strong
//! page-level skew), which we model with an unscrambled Zipf sampler.

use memsim::{AccessStream, ObjectAccess, Vpn, PAGE_SIZE};
use rand::rngs::SmallRng;
use simkit::rng::Zipf;
use simkit::SimTime;

/// Bytes per rank entry (one f64 per node, as in GAPBS `pvector<ScoreT>`).
const RANK_BYTES: u64 = 8;

/// Configuration of one PageRank worker thread.
#[derive(Debug, Clone)]
pub struct PageRankConfig {
    /// First page of the rank (per-node score) array.
    pub rank_base_vpn: Vpn,
    /// Number of graph nodes.
    pub nodes: u64,
    /// First page of the CSR edge array.
    pub edge_base_vpn: Vpn,
    /// Edge-array region size in pages.
    pub edge_pages: u64,
    /// Degree-skew of the graph (Zipf theta; Twitter-like graphs are
    /// heavily skewed).
    pub theta: f64,
    /// Bytes of edge array consumed per chunk (sequential burst).
    pub edge_chunk_bytes: u32,
    /// Rank reads per edge chunk (edges per chunk: chunk/8 bytes-per-edge).
    pub rank_reads_per_chunk: u32,
    /// LLC hit probability for rank reads (hubs partially cache).
    pub rank_llc_hit_prob: f32,
}

impl PageRankConfig {
    /// Twitter-like setup scaled 1024×: ~38 MB working set — a 32 MB edge
    /// array plus a 6 MB rank array over 786 432 nodes.
    pub fn paper_default(base_vpn: Vpn) -> Self {
        let rank_pages = (6 << 20) / PAGE_SIZE;
        let nodes = rank_pages * PAGE_SIZE / RANK_BYTES;
        PageRankConfig {
            rank_base_vpn: base_vpn,
            nodes,
            edge_base_vpn: base_vpn + rank_pages,
            edge_pages: (32 << 20) / PAGE_SIZE,
            theta: 0.8,
            edge_chunk_bytes: 256,
            rank_reads_per_chunk: 32,
            rank_llc_hit_prob: 0.1,
        }
    }

    /// Pages of the rank array.
    pub fn rank_range(&self) -> std::ops::Range<Vpn> {
        self.rank_base_vpn..self.rank_base_vpn + self.nodes * RANK_BYTES / PAGE_SIZE
    }

    /// Pages of the edge array.
    pub fn edge_range(&self) -> std::ops::Range<Vpn> {
        self.edge_base_vpn..self.edge_base_vpn + self.edge_pages
    }

    /// Full working-set range (ranks followed by edges, contiguous).
    pub fn ws_range(&self) -> std::ops::Range<Vpn> {
        self.rank_range().start..self.edge_range().end
    }
}

/// One PageRank worker: alternating edge streaming and rank gathers.
pub struct PageRankStream {
    cfg: PageRankConfig,
    zipf: Zipf,
    edge_cursor: u64,
    rank_reads_left: u32,
}

impl PageRankStream {
    /// Creates a stream; each worker starts at a staggered edge offset.
    pub fn new(cfg: PageRankConfig, thread_idx: u64) -> Self {
        let edge_bytes = cfg.edge_pages * PAGE_SIZE;
        let stride = edge_bytes / 97; // co-prime-ish stagger
        PageRankStream {
            zipf: Zipf::new(cfg.nodes, cfg.theta),
            edge_cursor: (thread_idx * stride) % edge_bytes / cfg.edge_chunk_bytes as u64
                * cfg.edge_chunk_bytes as u64,
            rank_reads_left: 0,
            cfg,
        }
    }
}

impl AccessStream for PageRankStream {
    fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        if self.rank_reads_left == 0 {
            // Sequential edge chunk.
            self.rank_reads_left = self.cfg.rank_reads_per_chunk;
            let edge_bytes = self.cfg.edge_pages * PAGE_SIZE;
            let vaddr = self.cfg.edge_base_vpn * PAGE_SIZE + self.edge_cursor;
            self.edge_cursor = (self.edge_cursor + self.cfg.edge_chunk_bytes as u64) % edge_bytes;
            return ObjectAccess {
                vaddr,
                size: self.cfg.edge_chunk_bytes,
                is_write: false,
                dependent: false,
                llc_hit_prob: 0.0,
            };
        }
        // Degree-skewed rank read.
        self.rank_reads_left -= 1;
        let node = self.zipf.sample(rng);
        ObjectAccess {
            vaddr: self.cfg.rank_base_vpn * PAGE_SIZE + node * RANK_BYTES,
            size: RANK_BYTES as u32,
            is_write: false,
            dependent: false,
            llc_hit_prob: self.cfg.rank_llc_hit_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::seed_from;

    #[test]
    fn regions_are_disjoint_and_contiguous() {
        let cfg = PageRankConfig::paper_default(100);
        assert_eq!(cfg.rank_range().end, cfg.edge_range().start);
        assert_eq!(cfg.ws_range().start, 100);
        assert_eq!(
            cfg.ws_range().end - cfg.ws_range().start,
            ((6 + 32) << 20) / PAGE_SIZE
        );
    }

    #[test]
    fn mixes_edge_chunks_and_rank_reads() {
        let cfg = PageRankConfig::paper_default(0);
        let mut s = PageRankStream::new(cfg.clone(), 0);
        let mut rng = seed_from(1, 0);
        let mut edge = 0;
        let mut rank = 0;
        for _ in 0..3300 {
            let a = s.next(SimTime::ZERO, &mut rng);
            let vpn = a.vaddr / PAGE_SIZE;
            if cfg.edge_range().contains(&vpn) {
                edge += 1;
                assert_eq!(a.size, 256);
            } else {
                assert!(cfg.rank_range().contains(&vpn));
                rank += 1;
                assert_eq!(a.size, 8);
            }
        }
        // 1 edge chunk per 32 rank reads.
        assert_eq!(edge, 100);
        assert_eq!(rank, 3200);
    }

    #[test]
    fn rank_reads_are_skewed_to_low_pages() {
        let cfg = PageRankConfig::paper_default(0);
        let mut s = PageRankStream::new(cfg.clone(), 0);
        let mut rng = seed_from(2, 0);
        let rank_pages = cfg.rank_range().end - cfg.rank_range().start;
        let mut first_decile = 0u64;
        let mut total = 0u64;
        for _ in 0..100_000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            let vpn = a.vaddr / PAGE_SIZE;
            if cfg.rank_range().contains(&vpn) {
                total += 1;
                if vpn - cfg.rank_range().start < rank_pages / 10 {
                    first_decile += 1;
                }
            }
        }
        let share = first_decile as f64 / total as f64;
        assert!(
            share > 0.5,
            "hot decile should absorb most rank reads, got {share}"
        );
    }

    #[test]
    fn edge_stream_is_sequential() {
        let cfg = PageRankConfig::paper_default(0);
        let mut s = PageRankStream::new(cfg.clone(), 0);
        let mut rng = seed_from(3, 0);
        let mut last_edge_addr = None;
        for _ in 0..1000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            if cfg.edge_range().contains(&(a.vaddr / PAGE_SIZE)) {
                if let Some(prev) = last_edge_addr {
                    assert_eq!(a.vaddr, prev + 256, "edge chunks advance by 256B");
                }
                last_edge_addr = Some(a.vaddr);
            }
        }
    }

    #[test]
    fn threads_start_staggered() {
        let cfg = PageRankConfig::paper_default(0);
        let mut a = PageRankStream::new(cfg.clone(), 0);
        let mut b = PageRankStream::new(cfg, 1);
        let mut rng = seed_from(4, 0);
        let ea = a.next(SimTime::ZERO, &mut rng);
        let eb = b.next(SimTime::ZERO, &mut rng);
        assert_ne!(ea.vaddr, eb.vaddr);
    }
}
