//! Workload generators for the Colloid reproduction.
//!
//! Each workload implements [`memsim::AccessStream`] and reproduces the
//! *memory access distribution over pages* of the corresponding application
//! in the paper's evaluation (skew, object size, read/write mix, dependence
//! structure) — see DESIGN.md §2 for the substitution argument.
//!
//! - [`gups::GupsStream`] — the GUPS microbenchmark from HeMem adapted as in
//!   paper §2.1: hot-set/working-set split, configurable object size,
//!   read-update behaviour, and a schedule of hot-set moves for the
//!   convergence experiments (Figure 9).
//! - [`antagonist::AntagonistStream`] — the sequential 1:1 read/write memory
//!   antagonist pinned to the default tier that generates controlled memory
//!   interconnect contention.
//! - [`graph::PageRankStream`] — GAPBS PageRank on a power-law (Twitter-like)
//!   graph: streaming edge reads plus degree-skewed random rank reads.
//! - [`silo::SiloStream`] — Silo running YCSB-C: Zipfian key lookups with
//!   dependent B⁺-tree descents and small value reads.
//! - [`kvcache::KvCacheStream`] — CacheLib running the HeMemKV CacheBench
//!   workload: 64 B keys, 4 KB values, 20 % hot keys, 90/10 GET/UPDATE.
//! - [`trace`] — record the accesses any stream produces and replay them
//!   verbatim (A/B comparisons with identical access sequences, imported
//!   traces, debugging).

pub mod antagonist;
pub mod graph;
pub mod gups;
pub mod kvcache;
pub mod silo;
pub mod trace;

pub use antagonist::{AntagonistConfig, AntagonistStream};
pub use graph::{PageRankConfig, PageRankStream};
pub use gups::{GupsConfig, GupsStream};
pub use kvcache::{KvCacheConfig, KvCacheStream};
pub use silo::{SiloConfig, SiloStream};
pub use trace::{Trace, TraceRecord, TraceRecorder, TraceReplayer};
