//! Workload generators for the Colloid reproduction.
//!
//! Each workload implements [`memsim::AccessStream`] and reproduces the
//! *memory access distribution over pages* of the corresponding application
//! in the paper's evaluation (skew, object size, read/write mix, dependence
//! structure) — see DESIGN.md §2 for the substitution argument.
//!
//! - [`gups::GupsStream`] — the GUPS microbenchmark from HeMem adapted as in
//!   paper §2.1: hot-set/working-set split, configurable object size,
//!   read-update behaviour, and a schedule of hot-set moves for the
//!   convergence experiments (Figure 9).
//! - [`antagonist::AntagonistStream`] — the sequential 1:1 read/write memory
//!   antagonist pinned to the default tier that generates controlled memory
//!   interconnect contention.
//! - [`graph::PageRankStream`] — GAPBS PageRank on a power-law (Twitter-like)
//!   graph: streaming edge reads plus degree-skewed random rank reads.
//! - [`silo::SiloStream`] — Silo running YCSB-C: Zipfian key lookups with
//!   dependent B⁺-tree descents and small value reads.
//! - [`kvcache::KvCacheStream`] — CacheLib running the HeMemKV CacheBench
//!   workload: 64 B keys, 4 KB values, 20 % hot keys, 90/10 GET/UPDATE.
//! - [`trace`] — record the accesses any stream produces and replay them
//!   verbatim (A/B comparisons with identical access sequences, imported
//!   traces, debugging).
//! - [`ndjson`] — the schema-versioned NDJSON on-disk trace format:
//!   export captures, commit them as fixtures, re-import bit-identically.
//! - [`adaptive`] — the gauntlet generators (phase-shifting, diurnal,
//!   adversarial anti-phase) whose workloads keep changing under the
//!   tiering system (DESIGN.md §14).

pub mod adaptive;
pub mod antagonist;
pub mod graph;
pub mod gups;
pub mod kvcache;
pub mod ndjson;
pub mod silo;
pub mod trace;

pub use adaptive::{
    AdversarialConfig, AdversarialStream, DiurnalConfig, DiurnalStream, PhaseShiftConfig,
    PhaseShiftStream,
};
pub use antagonist::{AntagonistConfig, AntagonistStream};
pub use graph::{PageRankConfig, PageRankStream};
pub use gups::{GupsConfig, GupsStream};
pub use kvcache::{KvCacheConfig, KvCacheStream};
pub use ndjson::{trace_from_ndjson, trace_to_ndjson, validate_trace_ndjson, TraceParseError};
pub use silo::{SiloConfig, SiloStream};
pub use trace::{ReplayError, Trace, TraceRecord, TraceRecorder, TraceReplayer};
