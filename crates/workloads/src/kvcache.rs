//! CacheLib running the HeMemKV CacheBench workload (paper §5.3,
//! Figure 11c).
//!
//! "The key and the value sizes are fixed to 64B and 4KB, respectively, 20%
//! of keys are in the hot set, and remaining are in the cold set. The hot
//! set is accessed uniformly at random with 90% probability, and cold set
//! with 10% probability. The GET/UPDATE ratio is 90/10. We populate 15
//! million KV pairs leading to working set size of ~75GB."
//!
//! Scaled 1024×: ~15 K pairs, ~75 MB (values dominate: one 4 KB page per
//! value, plus a hash-index region). Each GET reads the index entry and then
//! the whole 4 KB value (dependent on the index lookup, internally
//! prefetched); UPDATEs additionally dirty the value.

use memsim::{AccessStream, ObjectAccess, Vpn, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::Rng;
use simkit::SimTime;

/// Configuration of one CacheBench worker thread.
#[derive(Debug, Clone)]
pub struct KvCacheConfig {
    /// First page of the hash-index region.
    pub base_vpn: Vpn,
    /// Number of KV pairs (one 4 KB value page each).
    pub items: u64,
    /// Fraction of keys in the hot set (paper: 0.2).
    pub hot_fraction: f64,
    /// Probability a request targets the hot set (paper: 0.9).
    pub hot_prob: f64,
    /// Fraction of UPDATE operations (paper: 0.1).
    pub update_fraction: f64,
    /// LLC hit probability of index entries.
    pub index_llc_hit_prob: f32,
}

impl KvCacheConfig {
    /// The paper's HeMemKV setup, scaled 1024×: 18 K items ≈ 75 MB.
    pub fn paper_default(base_vpn: Vpn) -> Self {
        KvCacheConfig {
            base_vpn,
            items: 18_000,
            hot_fraction: 0.2,
            hot_prob: 0.9,
            update_fraction: 0.1,
            index_llc_hit_prob: 0.3,
        }
    }

    /// Pages of the hash-index region (64 B entry per item).
    pub fn index_range(&self) -> std::ops::Range<Vpn> {
        self.base_vpn..self.base_vpn + self.index_pages()
    }

    fn index_pages(&self) -> u64 {
        self.items * 64 / PAGE_SIZE + 1
    }

    /// Pages of the value region (one page per item).
    pub fn value_range(&self) -> std::ops::Range<Vpn> {
        let start = self.base_vpn + self.index_pages();
        start..start + self.items
    }

    /// Full working set.
    pub fn ws_range(&self) -> std::ops::Range<Vpn> {
        self.index_range().start..self.value_range().end
    }
}

/// One CacheBench worker: GET/UPDATE requests over the KV pool.
pub struct KvCacheStream {
    cfg: KvCacheConfig,
    hot_items: u64,
    /// Pending value access (item, is_update) after the index read.
    pending_value: Option<(u64, bool)>,
}

impl KvCacheStream {
    /// Creates a stream from its configuration.
    pub fn new(cfg: KvCacheConfig) -> Self {
        KvCacheStream {
            hot_items: ((cfg.items as f64) * cfg.hot_fraction) as u64,
            pending_value: None,
            cfg,
        }
    }

    /// The hot items occupy the first `hot_items` value pages. CacheBench
    /// draws hot keys uniformly; placing them contiguously loses no
    /// generality because placement operates on whole pages and every value
    /// is exactly one page.
    fn sample_item<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if rng.gen_bool(self.cfg.hot_prob) {
            rng.gen_range(0..self.hot_items)
        } else {
            self.hot_items + rng.gen_range(0..self.cfg.items - self.hot_items)
        }
    }
}

impl AccessStream for KvCacheStream {
    fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        if let Some((item, is_update)) = self.pending_value.take() {
            let vpn = self.cfg.value_range().start + item;
            return ObjectAccess {
                vaddr: vpn * PAGE_SIZE,
                size: PAGE_SIZE as u32,
                is_write: is_update,
                dependent: true,
                llc_hit_prob: 0.02,
            };
        }
        let item = self.sample_item(rng);
        let is_update = rng.gen_bool(self.cfg.update_fraction);
        self.pending_value = Some((item, is_update));
        ObjectAccess {
            vaddr: self.cfg.index_range().start * PAGE_SIZE + item * 64,
            size: 64,
            is_write: false,
            dependent: false,
            llc_hit_prob: self.cfg.index_llc_hit_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::seed_from;

    #[test]
    fn working_set_is_about_75mb() {
        let cfg = KvCacheConfig::paper_default(0);
        let pages = cfg.ws_range().end - cfg.ws_range().start;
        let mb = pages * PAGE_SIZE / (1 << 20);
        assert!((70..80).contains(&mb), "ws = {mb} MB");
    }

    #[test]
    fn regions_are_disjoint() {
        let cfg = KvCacheConfig::paper_default(10);
        assert_eq!(cfg.index_range().end, cfg.value_range().start);
        assert!(cfg.index_range().start >= 10);
    }

    #[test]
    fn gets_alternate_index_and_value() {
        let mut s = KvCacheStream::new(KvCacheConfig::paper_default(0));
        let mut rng = seed_from(1, 0);
        for _ in 0..100 {
            let idx = s.next(SimTime::ZERO, &mut rng);
            assert_eq!(idx.size, 64);
            assert!(!idx.is_write);
            let val = s.next(SimTime::ZERO, &mut rng);
            assert_eq!(val.size as u64, PAGE_SIZE);
            assert!(val.dependent);
            assert_eq!(val.vaddr % PAGE_SIZE, 0);
        }
    }

    #[test]
    fn update_ratio_is_about_ten_percent() {
        let mut s = KvCacheStream::new(KvCacheConfig::paper_default(0));
        let mut rng = seed_from(2, 0);
        let mut updates = 0;
        let n = 20_000;
        for _ in 0..n {
            let _idx = s.next(SimTime::ZERO, &mut rng);
            let val = s.next(SimTime::ZERO, &mut rng);
            if val.is_write {
                updates += 1;
            }
        }
        let frac = updates as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "update fraction {frac}");
    }

    #[test]
    fn hot_values_get_ninety_percent() {
        let cfg = KvCacheConfig::paper_default(0);
        let hot_end = cfg.value_range().start + (cfg.items as f64 * 0.2) as u64;
        let mut s = KvCacheStream::new(cfg.clone());
        let mut rng = seed_from(3, 0);
        let mut hot = 0;
        let n = 50_000;
        for _ in 0..n {
            let _idx = s.next(SimTime::ZERO, &mut rng);
            let val = s.next(SimTime::ZERO, &mut rng);
            if (cfg.value_range().start..hot_end).contains(&(val.vaddr / PAGE_SIZE)) {
                hot += 1;
            }
        }
        let share = hot as f64 / n as f64;
        assert!((share - 0.9).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn accesses_stay_in_working_set() {
        let cfg = KvCacheConfig::paper_default(777);
        let range = cfg.ws_range();
        let mut s = KvCacheStream::new(cfg);
        let mut rng = seed_from(4, 0);
        for _ in 0..10_000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            let first = a.vaddr / PAGE_SIZE;
            let last = (a.vaddr + a.size as u64 - 1) / PAGE_SIZE;
            assert!(range.contains(&first) && range.contains(&last));
        }
    }
}
