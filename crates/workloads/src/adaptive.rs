//! Adaptive traffic generators for the gauntlet (DESIGN.md §14).
//!
//! The paper-figure generators shift at most once; these streams *keep*
//! shifting, producing the phase-shifting / diurnal / adversarial shapes
//! that ARMS-style adaptivity scoring needs:
//!
//! - [`PhaseShiftStream`] — the hot set rotates through the working set on
//!   a fixed schedule (MaxMem-style phase churn);
//! - [`DiurnalStream`] — the active window breathes sinusoidally over a
//!   simulated day (diurnal load);
//! - [`AdversarialStream`] — the hot set flips between two anti-phase
//!   regions on a period chosen near the controller's observation
//!   quantum, maximising ping-pong and wasted migration.
//!
//! Every stream derives its schedule purely from simulated time and its
//! config, and draws pages only from the per-core RNG the machine hands
//! it — so a given (config, machine seed) pair is fully deterministic and
//! recordable to NDJSON. Configs default `llc_hit_prob` to `0.0`: the
//! machine's LLC-hit sampling draws from the *same* per-core RNG as the
//! stream, so a recorded run replays bit-identically only when no LLC
//! draws are taken (see DESIGN.md §14).

use memsim::{AccessStream, ObjectAccess, Vpn, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::Rng;
use simkit::SimTime;

/// Shift instants of a periodic schedule within `[0, horizon)`, excluding
/// the trivial shift at `t = 0`. Used by the gauntlet to cut the run into
/// per-shift scoring windows.
fn periodic_shift_times(period: SimTime, horizon: SimTime) -> Vec<SimTime> {
    let p = period.as_ps().max(1);
    (1..)
        .map(|k| SimTime::from_ps(k * p))
        .take_while(|t| *t < horizon)
        .collect()
}

fn draw_object(
    rng: &mut SmallRng,
    page: Vpn,
    object_size: u32,
    write_fraction: f64,
    llc_hit_prob: f32,
) -> ObjectAccess {
    let objects_per_page = PAGE_SIZE / object_size.next_power_of_two().max(64) as u64;
    let slot = rng.gen_range(0..objects_per_page);
    let stride = PAGE_SIZE / objects_per_page;
    ObjectAccess {
        vaddr: page * PAGE_SIZE + slot * stride,
        size: object_size,
        is_write: rng.gen_bool(write_fraction),
        dependent: false,
        llc_hit_prob,
    }
}

fn validate_common(
    ws_pages: u64,
    hot_pages: u64,
    hot_prob: f64,
    object_size: u32,
    write_fraction: f64,
    llc_hit_prob: f32,
) -> Result<(), String> {
    if hot_pages == 0 || hot_pages > ws_pages {
        return Err("hot set must be non-empty and fit in the working set".into());
    }
    if !(0.0..=1.0).contains(&hot_prob) || !(0.0..=1.0).contains(&write_fraction) {
        return Err("probabilities must be in [0,1]".into());
    }
    if !(0.0..=1.0).contains(&llc_hit_prob) {
        return Err("llc_hit_prob must be in [0,1]".into());
    }
    if object_size == 0 || object_size as u64 > PAGE_SIZE {
        return Err("object size must be in 1..=4096".into());
    }
    Ok(())
}

// --- phase shift ---------------------------------------------------------

/// Configuration of a [`PhaseShiftStream`].
#[derive(Debug, Clone)]
pub struct PhaseShiftConfig {
    /// First page of the working-set buffer.
    pub base_vpn: Vpn,
    /// Working-set size in pages.
    pub ws_pages: u64,
    /// Hot-set size in pages.
    pub hot_pages: u64,
    /// Probability of drawing from the current hot region.
    pub hot_prob: f64,
    /// How long each phase lasts before the hot set rotates.
    pub period: SimTime,
    /// Pages the hot region advances per rotation (wraps within the
    /// working set). Defaults to `hot_pages` (fully disjoint phases).
    pub stride_pages: u64,
    /// Object size in bytes.
    pub object_size: u32,
    /// Fraction of operations that write.
    pub write_fraction: f64,
    /// Per-line LLC hit probability. Keep `0.0` for replayable captures.
    pub llc_hit_prob: f32,
}

impl PhaseShiftConfig {
    /// A gauntlet-scale default: 4096-page working set, 1024-page hot set
    /// rotating by a full hot-set width each period.
    pub fn gauntlet_default(base_vpn: Vpn, period: SimTime) -> Self {
        PhaseShiftConfig {
            base_vpn,
            ws_pages: 4096,
            hot_pages: 1024,
            hot_prob: 0.9,
            period,
            stride_pages: 1024,
            object_size: 64,
            write_fraction: 0.5,
            llc_hit_prob: 0.0,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        validate_common(
            self.ws_pages,
            self.hot_pages,
            self.hot_prob,
            self.object_size,
            self.write_fraction,
            self.llc_hit_prob,
        )?;
        if self.period == SimTime::ZERO {
            return Err("phase period must be positive".into());
        }
        if self.stride_pages == 0 {
            return Err("stride must be positive".into());
        }
        Ok(())
    }

    /// Offset (pages within the working set) of the hot region at `now`.
    pub fn offset_at(&self, now: SimTime) -> u64 {
        let k = now.as_ps() / self.period.as_ps();
        // Rotate within the positions where the hot region still fits.
        (k * self.stride_pages) % (self.ws_pages - self.hot_pages + 1)
    }

    /// Shift instants within `[0, horizon)` (for per-shift scoring).
    pub fn shift_times(&self, horizon: SimTime) -> Vec<SimTime> {
        periodic_shift_times(self.period, horizon)
    }
}

/// Hot-set rotation on a schedule: every `period` the hot region advances
/// `stride_pages` through the working set.
#[derive(Debug, Clone)]
pub struct PhaseShiftStream {
    cfg: PhaseShiftConfig,
}

impl PhaseShiftStream {
    /// Creates a stream; fails if the configuration is inconsistent.
    pub fn new(cfg: PhaseShiftConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(PhaseShiftStream { cfg })
    }

    /// Current hot region at `now`.
    pub fn hot_range_at(&self, now: SimTime) -> std::ops::Range<Vpn> {
        let off = self.cfg.offset_at(now);
        self.cfg.base_vpn + off..self.cfg.base_vpn + off + self.cfg.hot_pages
    }
}

impl AccessStream for PhaseShiftStream {
    fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        let page = if rng.gen_bool(self.cfg.hot_prob) {
            self.cfg.base_vpn + self.cfg.offset_at(now) + rng.gen_range(0..self.cfg.hot_pages)
        } else {
            self.cfg.base_vpn + rng.gen_range(0..self.cfg.ws_pages)
        };
        draw_object(
            rng,
            page,
            self.cfg.object_size,
            self.cfg.write_fraction,
            self.cfg.llc_hit_prob,
        )
    }
}

// --- diurnal -------------------------------------------------------------

/// Configuration of a [`DiurnalStream`].
#[derive(Debug, Clone)]
pub struct DiurnalConfig {
    /// First page of the working-set buffer.
    pub base_vpn: Vpn,
    /// Working-set size in pages.
    pub ws_pages: u64,
    /// Probability of drawing from the active window.
    pub hot_prob: f64,
    /// Length of one simulated day.
    pub period: SimTime,
    /// Smallest active window (pages, "night").
    pub min_active_pages: u64,
    /// Largest active window (pages, "peak").
    pub max_active_pages: u64,
    /// Object size in bytes.
    pub object_size: u32,
    /// Fraction of operations that write.
    pub write_fraction: f64,
    /// Per-line LLC hit probability. Keep `0.0` for replayable captures.
    pub llc_hit_prob: f32,
}

impl DiurnalConfig {
    /// A gauntlet-scale default: the active window breathes between 512
    /// and 2048 pages of a 4096-page working set over one period.
    pub fn gauntlet_default(base_vpn: Vpn, period: SimTime) -> Self {
        DiurnalConfig {
            base_vpn,
            ws_pages: 4096,
            hot_prob: 0.9,
            period,
            min_active_pages: 512,
            max_active_pages: 2048,
            object_size: 64,
            write_fraction: 0.5,
            llc_hit_prob: 0.0,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        validate_common(
            self.ws_pages,
            self.max_active_pages,
            self.hot_prob,
            self.object_size,
            self.write_fraction,
            self.llc_hit_prob,
        )?;
        if self.min_active_pages == 0 || self.min_active_pages > self.max_active_pages {
            return Err("need 0 < min_active_pages <= max_active_pages".into());
        }
        if self.period == SimTime::ZERO {
            return Err("diurnal period must be positive".into());
        }
        Ok(())
    }

    /// Active-window size (pages) at `now`: sinusoidal between min and
    /// max, starting at the minimum ("midnight") at `t = 0`.
    pub fn active_pages_at(&self, now: SimTime) -> u64 {
        let frac = (now.as_ps() % self.period.as_ps()) as f64 / self.period.as_ps() as f64;
        let wave = 0.5 - 0.5 * (std::f64::consts::TAU * frac).cos(); // 0 at t=0, 1 at half period
        let span = (self.max_active_pages - self.min_active_pages) as f64;
        self.min_active_pages + (wave * span).round() as u64
    }

    /// Quarter-period instants within `[0, horizon)` — the steepest points
    /// of the sinusoid, used as nominal "shift" markers for scoring.
    pub fn shift_times(&self, horizon: SimTime) -> Vec<SimTime> {
        periodic_shift_times(SimTime::from_ps(self.period.as_ps() / 4), horizon)
    }
}

/// Sinusoidal intensity over simulated hours: the active window (always
/// anchored at the start of the buffer) grows and shrinks smoothly, so
/// tier pressure rises through the "day" and falls at "night".
#[derive(Debug, Clone)]
pub struct DiurnalStream {
    cfg: DiurnalConfig,
}

impl DiurnalStream {
    /// Creates a stream; fails if the configuration is inconsistent.
    pub fn new(cfg: DiurnalConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(DiurnalStream { cfg })
    }
}

impl AccessStream for DiurnalStream {
    fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        let active = self.cfg.active_pages_at(now);
        let page = if rng.gen_bool(self.cfg.hot_prob) {
            self.cfg.base_vpn + rng.gen_range(0..active)
        } else {
            self.cfg.base_vpn + rng.gen_range(0..self.cfg.ws_pages)
        };
        draw_object(
            rng,
            page,
            self.cfg.object_size,
            self.cfg.write_fraction,
            self.cfg.llc_hit_prob,
        )
    }
}

// --- adversarial ---------------------------------------------------------

/// Configuration of an [`AdversarialStream`].
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// First page of the working-set buffer.
    pub base_vpn: Vpn,
    /// Working-set size in pages.
    pub ws_pages: u64,
    /// Hot-set size in pages (each of the two regions).
    pub hot_pages: u64,
    /// Offset (pages) of region A.
    pub offset_a: u64,
    /// Offset (pages) of region B. Must not overlap region A.
    pub offset_b: u64,
    /// Probability of drawing from the currently-hot region.
    pub hot_prob: f64,
    /// Flip period. Chosen near the tiering controller's observation
    /// quantum, each flip lands just as the controller has committed to
    /// the previous region — the anti-phase worst case.
    pub flip_period: SimTime,
    /// Object size in bytes.
    pub object_size: u32,
    /// Fraction of operations that write.
    pub write_fraction: f64,
    /// Per-line LLC hit probability. Keep `0.0` for replayable captures.
    pub llc_hit_prob: f32,
}

impl AdversarialConfig {
    /// A gauntlet-scale default: two disjoint 1024-page regions at the
    /// two ends of a 4096-page working set, flipping every `flip_period`.
    pub fn gauntlet_default(base_vpn: Vpn, flip_period: SimTime) -> Self {
        AdversarialConfig {
            base_vpn,
            ws_pages: 4096,
            hot_pages: 1024,
            offset_a: 0,
            offset_b: 3072,
            hot_prob: 0.95,
            flip_period,
            object_size: 64,
            write_fraction: 0.5,
            llc_hit_prob: 0.0,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        validate_common(
            self.ws_pages,
            self.hot_pages,
            self.hot_prob,
            self.object_size,
            self.write_fraction,
            self.llc_hit_prob,
        )?;
        for off in [self.offset_a, self.offset_b] {
            if off + self.hot_pages > self.ws_pages {
                return Err("hot region exceeds working set".into());
            }
        }
        let (lo, hi) = if self.offset_a <= self.offset_b {
            (self.offset_a, self.offset_b)
        } else {
            (self.offset_b, self.offset_a)
        };
        if lo + self.hot_pages > hi {
            return Err("regions A and B overlap".into());
        }
        if self.flip_period == SimTime::ZERO {
            return Err("flip period must be positive".into());
        }
        Ok(())
    }

    /// Offset of the hot region at `now` (A on even flips, B on odd).
    pub fn offset_at(&self, now: SimTime) -> u64 {
        if (now.as_ps() / self.flip_period.as_ps()).is_multiple_of(2) {
            self.offset_a
        } else {
            self.offset_b
        }
    }

    /// Flip instants within `[0, horizon)` (for per-shift scoring).
    pub fn shift_times(&self, horizon: SimTime) -> Vec<SimTime> {
        periodic_shift_times(self.flip_period, horizon)
    }
}

/// Anti-phase hot-set flips: all heat concentrates on region A, then —
/// just as the controller finishes pulling A into the default tier — the
/// heat jumps to region B, and back again. Migration work done for the
/// previous phase is wasted by construction.
#[derive(Debug, Clone)]
pub struct AdversarialStream {
    cfg: AdversarialConfig,
}

impl AdversarialStream {
    /// Creates a stream; fails if the configuration is inconsistent.
    pub fn new(cfg: AdversarialConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(AdversarialStream { cfg })
    }

    /// Current hot region at `now`.
    pub fn hot_range_at(&self, now: SimTime) -> std::ops::Range<Vpn> {
        let off = self.cfg.offset_at(now);
        self.cfg.base_vpn + off..self.cfg.base_vpn + off + self.cfg.hot_pages
    }
}

impl AccessStream for AdversarialStream {
    fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        let page = if rng.gen_bool(self.cfg.hot_prob) {
            self.cfg.base_vpn + self.cfg.offset_at(now) + rng.gen_range(0..self.cfg.hot_pages)
        } else {
            self.cfg.base_vpn + rng.gen_range(0..self.cfg.ws_pages)
        };
        draw_object(
            rng,
            page,
            self.cfg.object_size,
            self.cfg.write_fraction,
            self.cfg.llc_hit_prob,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::seed_from;

    #[test]
    fn phase_shift_rotates_on_schedule() {
        let period = SimTime::from_us(100.0);
        let cfg = PhaseShiftConfig::gauntlet_default(0, period);
        cfg.validate().unwrap();
        assert_eq!(cfg.offset_at(SimTime::ZERO), 0);
        assert_eq!(cfg.offset_at(SimTime::from_us(99.0)), 0);
        assert_eq!(cfg.offset_at(SimTime::from_us(101.0)), 1024);
        // Rotation wraps within positions where the hot region fits.
        let wrapped = cfg.offset_at(SimTime::from_us(100.0) * 4);
        assert!(wrapped + cfg.hot_pages <= cfg.ws_pages);
        let shifts = cfg.shift_times(SimTime::from_us(350.0));
        assert_eq!(
            shifts,
            vec![
                SimTime::from_us(100.0),
                SimTime::from_us(200.0),
                SimTime::from_us(300.0)
            ]
        );
    }

    #[test]
    fn phase_shift_draws_follow_current_region() {
        let period = SimTime::from_us(100.0);
        let mut s = PhaseShiftStream::new(PhaseShiftConfig::gauntlet_default(0, period)).unwrap();
        let mut rng = seed_from(3, 0);
        let late = SimTime::from_us(150.0); // phase 1 ⇒ offset 1024
        let hot = s.hot_range_at(late);
        assert_eq!(hot, 1024..2048);
        let mut in_hot = 0;
        for _ in 0..10_000 {
            let a = s.next(late, &mut rng);
            if hot.contains(&(a.vaddr / PAGE_SIZE)) {
                in_hot += 1;
            }
        }
        assert!(in_hot > 8_500, "hot draws {in_hot}/10000");
    }

    #[test]
    fn diurnal_window_breathes() {
        let period = SimTime::from_ms(1.0);
        let cfg = DiurnalConfig::gauntlet_default(0, period);
        cfg.validate().unwrap();
        assert_eq!(cfg.active_pages_at(SimTime::ZERO), 512);
        assert_eq!(cfg.active_pages_at(SimTime::from_us(500.0)), 2048);
        let quarter = cfg.active_pages_at(SimTime::from_us(250.0));
        assert!((quarter as i64 - 1280).abs() <= 1, "quarter {quarter}");
        // One full period later the window is back to the minimum.
        assert_eq!(cfg.active_pages_at(period), 512);
    }

    #[test]
    fn diurnal_draws_stay_in_working_set() {
        let period = SimTime::from_ms(1.0);
        let mut s = DiurnalStream::new(DiurnalConfig::gauntlet_default(64, period)).unwrap();
        let mut rng = seed_from(4, 0);
        for i in 0..5_000u64 {
            let now = SimTime::from_ps(i * period.as_ps() / 1000);
            let a = s.next(now, &mut rng);
            let vpn = a.vaddr / PAGE_SIZE;
            assert!((64..64 + 4096).contains(&vpn), "vpn {vpn}");
        }
    }

    #[test]
    fn adversarial_flips_anti_phase() {
        let flip = SimTime::from_us(200.0);
        let cfg = AdversarialConfig::gauntlet_default(0, flip);
        cfg.validate().unwrap();
        assert_eq!(cfg.offset_at(SimTime::from_us(50.0)), 0);
        assert_eq!(cfg.offset_at(SimTime::from_us(250.0)), 3072);
        assert_eq!(cfg.offset_at(SimTime::from_us(450.0)), 0);
        let s = AdversarialStream::new(cfg).unwrap();
        assert_eq!(s.hot_range_at(SimTime::from_us(250.0)), 3072..4096);
    }

    #[test]
    fn streams_are_deterministic_from_seed() {
        let period = SimTime::from_us(100.0);
        let run = |seed| {
            let mut s =
                PhaseShiftStream::new(PhaseShiftConfig::gauntlet_default(0, period)).unwrap();
            let mut rng = seed_from(seed, 0);
            (0..64u64)
                .map(|i| s.next(SimTime::from_us(i as f64 * 10.0), &mut rng).vaddr)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn invalid_configs_rejected() {
        let t = SimTime::from_us(100.0);
        let mut c = PhaseShiftConfig::gauntlet_default(0, t);
        c.period = SimTime::ZERO;
        assert!(c.validate().is_err());
        let mut c = DiurnalConfig::gauntlet_default(0, t);
        c.min_active_pages = 0;
        assert!(c.validate().is_err());
        let mut c = AdversarialConfig::gauntlet_default(0, t);
        c.offset_b = 512; // overlaps region A
        assert!(c.validate().is_err());
    }
}
