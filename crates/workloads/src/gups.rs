//! The GUPS microbenchmark (paper §2.1).
//!
//! "The working set consists of a virtually contiguous buffer of size 72GB.
//! A random 24GB region of this buffer constitutes the hot set [...] reading
//! and updating (1:1 RW ratio) a 64 byte object chosen at random from the
//! hot set with 90% probability and from the full working set with 10%
//! probability."
//!
//! Capacities are scaled 1024× in this reproduction (72 GB → 72 MB), so the
//! default working set is 18 432 pages with a 6 144-page hot set.
//!
//! For the convergence experiments (Figure 9), the hot set can be scheduled
//! to jump to a different region of the buffer at given times.

use memsim::{AccessStream, ObjectAccess, Vpn, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::Rng;
use simkit::SimTime;

/// Configuration of one GUPS thread.
#[derive(Debug, Clone)]
pub struct GupsConfig {
    /// First page of the working-set buffer.
    pub base_vpn: Vpn,
    /// Working-set size in pages.
    pub ws_pages: u64,
    /// Hot-set size in pages.
    pub hot_pages: u64,
    /// Offset (in pages, within the working set) where the hot region
    /// starts initially.
    pub hot_offset: u64,
    /// Probability of drawing from the hot set (paper: 0.9).
    pub hot_prob: f64,
    /// Object size in bytes (paper sweeps 64–4096 in Figure 8).
    pub object_size: u32,
    /// Fraction of operations that update the object (paper: every
    /// operation reads *and* updates, i.e. 1.0).
    pub write_fraction: f64,
    /// Per-line LLC hit probability (the 48 MB LLC covers a sliver of the
    /// multi-GB working set).
    pub llc_hit_prob: f32,
    /// Scheduled hot-set moves: at each `(time, new_offset)` the hot region
    /// jumps to `new_offset` (pages, within the working set). Must be
    /// sorted by time.
    pub phases: Vec<(SimTime, u64)>,
}

impl GupsConfig {
    /// The paper's default GUPS setup, scaled 1024×: 72 MB working set,
    /// 24 MB hot set at offset 0, 64 B objects, read+update, 90 % hot.
    pub fn paper_default(base_vpn: Vpn) -> Self {
        GupsConfig {
            base_vpn,
            ws_pages: (72 << 20) / PAGE_SIZE,
            hot_pages: (24 << 20) / PAGE_SIZE,
            hot_offset: 0,
            hot_prob: 0.9,
            object_size: 64,
            write_fraction: 1.0,
            llc_hit_prob: 0.01,
            phases: Vec::new(),
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.hot_pages > self.ws_pages {
            return Err("hot set larger than working set".into());
        }
        if self.hot_offset + self.hot_pages > self.ws_pages {
            return Err("hot region exceeds working set".into());
        }
        if !(0.0..=1.0).contains(&self.hot_prob) || !(0.0..=1.0).contains(&self.write_fraction) {
            return Err("probabilities must be in [0,1]".into());
        }
        if self.object_size == 0 || self.object_size as u64 > PAGE_SIZE {
            return Err("object size must be in 1..=4096".into());
        }
        for (t, off) in &self.phases {
            let _ = t;
            if off + self.hot_pages > self.ws_pages {
                return Err("phase hot region exceeds working set".into());
            }
        }
        Ok(())
    }

    /// Pages of the hot region when it sits at `offset`.
    pub fn hot_range_at(&self, offset: u64) -> std::ops::Range<Vpn> {
        self.base_vpn + offset..self.base_vpn + offset + self.hot_pages
    }

    /// Pages of the initial hot region.
    pub fn hot_range(&self) -> std::ops::Range<Vpn> {
        self.hot_range_at(self.hot_offset)
    }

    /// Pages of the whole working set.
    pub fn ws_range(&self) -> std::ops::Range<Vpn> {
        self.base_vpn..self.base_vpn + self.ws_pages
    }
}

/// One GUPS thread: an infinite stream of read-update accesses.
///
/// # Examples
///
/// ```
/// use memsim::AccessStream;
/// use simkit::SimTime;
/// use workloads::gups::{GupsConfig, GupsStream};
///
/// let cfg = GupsConfig::paper_default(0);
/// let mut s = GupsStream::new(cfg).unwrap();
/// let mut rng = simkit::rng::seed_from(1, 0);
/// let a = s.next(SimTime::ZERO, &mut rng);
/// assert_eq!(a.size, 64);
/// ```
#[derive(Debug, Clone)]
pub struct GupsStream {
    cfg: GupsConfig,
    cur_offset: u64,
    next_phase: usize,
    objects_per_page: u64,
}

impl GupsStream {
    /// Creates a stream; fails if the configuration is inconsistent.
    pub fn new(cfg: GupsConfig) -> Result<Self, String> {
        cfg.validate()?;
        Ok(GupsStream {
            cur_offset: cfg.hot_offset,
            next_phase: 0,
            objects_per_page: PAGE_SIZE / cfg.object_size.next_power_of_two().max(64) as u64,
            cfg,
        })
    }

    fn advance_phase(&mut self, now: SimTime) {
        while self.next_phase < self.cfg.phases.len() && self.cfg.phases[self.next_phase].0 <= now {
            self.cur_offset = self.cfg.phases[self.next_phase].1;
            self.next_phase += 1;
        }
    }

    /// Current hot region (moves when phases fire).
    pub fn current_hot_range(&self) -> std::ops::Range<Vpn> {
        self.cfg.hot_range_at(self.cur_offset)
    }
}

impl AccessStream for GupsStream {
    fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        self.advance_phase(now);
        let page = if rng.gen_bool(self.cfg.hot_prob) {
            self.cfg.base_vpn + self.cur_offset + rng.gen_range(0..self.cfg.hot_pages)
        } else {
            self.cfg.base_vpn + rng.gen_range(0..self.cfg.ws_pages)
        };
        // Objects are size-aligned within the page.
        let slot = rng.gen_range(0..self.objects_per_page);
        let stride = PAGE_SIZE / self.objects_per_page;
        ObjectAccess {
            vaddr: page * PAGE_SIZE + slot * stride,
            size: self.cfg.object_size,
            is_write: rng.gen_bool(self.cfg.write_fraction),
            dependent: false,
            llc_hit_prob: self.cfg.llc_hit_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::seed_from;

    fn small_cfg() -> GupsConfig {
        GupsConfig {
            base_vpn: 100,
            ws_pages: 1000,
            hot_pages: 200,
            hot_offset: 0,
            hot_prob: 0.9,
            object_size: 64,
            write_fraction: 1.0,
            llc_hit_prob: 0.0,
            phases: Vec::new(),
        }
    }

    #[test]
    fn paper_default_sizes() {
        let cfg = GupsConfig::paper_default(0);
        assert_eq!(cfg.ws_pages, 18_432);
        assert_eq!(cfg.hot_pages, 6_144);
        cfg.validate().unwrap();
    }

    #[test]
    fn accesses_stay_in_working_set() {
        let mut s = GupsStream::new(small_cfg()).unwrap();
        let mut rng = seed_from(1, 0);
        for _ in 0..10_000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            let vpn = a.vaddr / PAGE_SIZE;
            assert!((100..1100).contains(&vpn), "vpn {vpn} out of range");
            assert!(a.is_write);
        }
    }

    #[test]
    fn hot_set_receives_ninety_percent() {
        let mut s = GupsStream::new(small_cfg()).unwrap();
        let mut rng = seed_from(2, 0);
        let mut hot = 0;
        let n = 100_000;
        for _ in 0..n {
            let a = s.next(SimTime::ZERO, &mut rng);
            let vpn = a.vaddr / PAGE_SIZE;
            if (100..300).contains(&vpn) {
                hot += 1;
            }
        }
        // 90% hot draws + 10% * 20% uniform draws landing in the hot range.
        let expected = 0.9 + 0.1 * 0.2;
        let got = hot as f64 / n as f64;
        assert!((got - expected).abs() < 0.01, "hot share {got}");
    }

    #[test]
    fn phase_moves_hot_set() {
        let mut cfg = small_cfg();
        cfg.phases = vec![(SimTime::from_us(100.0), 500)];
        let mut s = GupsStream::new(cfg).unwrap();
        let mut rng = seed_from(3, 0);
        // Before the switch.
        let mut early_hot = 0;
        for _ in 0..10_000 {
            let a = s.next(SimTime::from_us(50.0), &mut rng);
            if (100..300).contains(&(a.vaddr / PAGE_SIZE)) {
                early_hot += 1;
            }
        }
        assert!(early_hot > 8_000);
        // After the switch the new region [600, 800) is hot.
        let mut late_new = 0;
        for _ in 0..10_000 {
            let a = s.next(SimTime::from_us(200.0), &mut rng);
            if (600..800).contains(&(a.vaddr / PAGE_SIZE)) {
                late_new += 1;
            }
        }
        assert!(late_new > 8_000, "new hot region share {late_new}/10000");
        assert_eq!(s.current_hot_range(), 600..800);
    }

    #[test]
    fn object_sizes_align() {
        let mut cfg = small_cfg();
        cfg.object_size = 4096;
        let mut s = GupsStream::new(cfg).unwrap();
        let mut rng = seed_from(4, 0);
        for _ in 0..1000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            assert_eq!(a.vaddr % 4096, 0);
            assert_eq!(a.num_lines(), 64);
        }
    }

    #[test]
    fn write_fraction_zero_yields_reads() {
        let mut cfg = small_cfg();
        cfg.write_fraction = 0.0;
        let mut s = GupsStream::new(cfg).unwrap();
        let mut rng = seed_from(5, 0);
        for _ in 0..1000 {
            assert!(!s.next(SimTime::ZERO, &mut rng).is_write);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_cfg();
        cfg.hot_pages = 2000;
        assert!(cfg.validate().is_err());
        let mut cfg = small_cfg();
        cfg.hot_offset = 900;
        assert!(cfg.validate().is_err());
        let mut cfg = small_cfg();
        cfg.object_size = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = small_cfg();
        cfg.phases = vec![(SimTime::ZERO, 900)];
        assert!(cfg.validate().is_err());
    }
}
