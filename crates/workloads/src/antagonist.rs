//! The memory antagonist (paper §2.1).
//!
//! "To generate controlled memory interconnect contention [...] we use a
//! memory antagonist on cores 16-30 that generates sequential 1:1
//! read/write memory traffic to a 500MB buffer that is pinned to the
//! default tier memory."
//!
//! The buffer is scaled 1024× to 512 KB. Contention *intensity* is
//! controlled by how many cores run an [`AntagonistStream`]: the paper's
//! 0×/1×/2×/3× intensities correspond to 0/5/10/15 antagonist cores.

use memsim::{AccessStream, ObjectAccess, Vpn, LINE_SIZE, PAGE_SIZE};
use rand::rngs::SmallRng;
use simkit::SimTime;

/// Configuration of one antagonist thread.
#[derive(Debug, Clone)]
pub struct AntagonistConfig {
    /// First page of the (pinned) buffer.
    pub base_vpn: Vpn,
    /// Buffer size in pages.
    pub buffer_pages: u64,
    /// Bytes each sequential burst covers before the next burst starts
    /// (larger bursts stream more row-hits and raise effective MLP).
    pub chunk_bytes: u32,
    /// Offset stagger between threads so they do not walk in lockstep.
    pub start_offset: u64,
}

impl AntagonistConfig {
    /// The paper's antagonist, scaled: a 512 KB pinned buffer walked in
    /// 1 KB chunks.
    pub fn paper_default(base_vpn: Vpn, thread_idx: u64) -> Self {
        let buffer_pages = (512 << 10) / PAGE_SIZE;
        AntagonistConfig {
            base_vpn,
            buffer_pages,
            chunk_bytes: 1024,
            start_offset: (thread_idx * 17) % (buffer_pages * PAGE_SIZE / 1024) * 1024,
        }
    }

    /// Pages of the buffer (to pin at setup).
    pub fn range(&self) -> std::ops::Range<Vpn> {
        self.base_vpn..self.base_vpn + self.buffer_pages
    }
}

/// One antagonist thread: alternating sequential read and write bursts.
///
/// Each call yields one `chunk_bytes` burst at the next sequential offset;
/// bursts alternate read/write (1:1 RW). The buffer wraps around.
#[derive(Debug, Clone)]
pub struct AntagonistStream {
    cfg: AntagonistConfig,
    cursor: u64,
    write_next: bool,
}

impl AntagonistStream {
    /// Creates a stream from its configuration.
    pub fn new(cfg: AntagonistConfig) -> Self {
        AntagonistStream {
            cursor: cfg.start_offset % (cfg.buffer_pages * PAGE_SIZE),
            cfg,
            write_next: false,
        }
    }
}

impl AccessStream for AntagonistStream {
    fn next(&mut self, _now: SimTime, _rng: &mut SmallRng) -> ObjectAccess {
        let buf_bytes = self.cfg.buffer_pages * PAGE_SIZE;
        let vaddr = self.cfg.base_vpn * PAGE_SIZE + self.cursor;
        let size = (self.cfg.chunk_bytes as u64).min(buf_bytes - self.cursor) as u32;
        self.cursor = (self.cursor + size as u64) % buf_bytes;
        let is_write = self.write_next;
        self.write_next = !self.write_next;
        ObjectAccess {
            vaddr,
            size: size.max(LINE_SIZE as u32),
            is_write,
            dependent: false,
            // The buffer is re-streamed constantly from many cores; lines
            // are evicted before reuse.
            llc_hit_prob: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::seed_from;

    #[test]
    fn alternates_reads_and_writes() {
        let mut s = AntagonistStream::new(AntagonistConfig::paper_default(0, 0));
        let mut rng = seed_from(1, 0);
        let a = s.next(SimTime::ZERO, &mut rng);
        let b = s.next(SimTime::ZERO, &mut rng);
        assert!(!a.is_write);
        assert!(b.is_write);
    }

    #[test]
    fn walks_sequentially_and_wraps() {
        let cfg = AntagonistConfig {
            base_vpn: 10,
            buffer_pages: 2,
            chunk_bytes: 4096,
            start_offset: 0,
        };
        let mut s = AntagonistStream::new(cfg);
        let mut rng = seed_from(2, 0);
        let a = s.next(SimTime::ZERO, &mut rng);
        let b = s.next(SimTime::ZERO, &mut rng);
        let c = s.next(SimTime::ZERO, &mut rng);
        assert_eq!(a.vaddr, 10 * PAGE_SIZE);
        assert_eq!(b.vaddr, 11 * PAGE_SIZE);
        assert_eq!(c.vaddr, 10 * PAGE_SIZE, "wraps to the start");
    }

    #[test]
    fn stays_inside_buffer() {
        let cfg = AntagonistConfig::paper_default(1000, 3);
        let range = cfg.range();
        let mut s = AntagonistStream::new(cfg);
        let mut rng = seed_from(3, 0);
        for _ in 0..10_000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            let first = a.vaddr / PAGE_SIZE;
            let last = (a.vaddr + a.size as u64 - 1) / PAGE_SIZE;
            assert!(range.contains(&first) && range.contains(&last));
        }
    }

    #[test]
    fn threads_are_staggered() {
        let a = AntagonistConfig::paper_default(0, 0);
        let b = AntagonistConfig::paper_default(0, 1);
        assert_ne!(a.start_offset, b.start_offset);
    }

    #[test]
    fn buffer_is_512kb_scaled() {
        let cfg = AntagonistConfig::paper_default(0, 0);
        assert_eq!(cfg.buffer_pages * PAGE_SIZE, 512 << 10);
    }
}
