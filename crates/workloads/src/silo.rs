//! Silo (in-memory transactional database) running YCSB-C (paper §5.3,
//! Figure 11b).
//!
//! "The working set consists of 400 million key-value pairs with 64 byte
//! keys and 100 byte values; the total working set size is thus ~60GB. [...]
//! 15 billion lookup operations using a Zipfian access distribution."
//!
//! Scaled 1024×: ~400 K records, ~64 MB working set. Each lookup walks a
//! Masstree-style index: the upper levels are effectively always cached, so
//! a lookup costs one dependent leaf-node read plus one dependent record
//! read. Hot keys are scattered over the key space (YCSB hashes keys), which
//! [`SiloStream`] reproduces with a scrambled Zipfian sampler.

use memsim::{AccessStream, ObjectAccess, Vpn, PAGE_SIZE};
use rand::rngs::SmallRng;
use simkit::rng::ScrambledZipf;
use simkit::SimTime;

/// Bytes per record: 64 B key + 100 B value (padded to 164 B slots).
const RECORD_BYTES: u64 = 164;

/// Configuration of one Silo worker thread.
#[derive(Debug, Clone)]
pub struct SiloConfig {
    /// First page of the record heap.
    pub base_vpn: Vpn,
    /// Number of key-value records.
    pub records: u64,
    /// Zipfian skew of YCSB-C lookups (YCSB default 0.99).
    pub theta: f64,
    /// LLC hit probability of the leaf index node (upper tree levels are
    /// modelled as always cached and elided).
    pub leaf_llc_hit_prob: f32,
    /// Fraction of operations that update the record (YCSB-C: 0, read-only).
    pub update_fraction: f64,
}

impl SiloConfig {
    /// The paper's YCSB-C setup, scaled 1024×: 400 K records (~64 MB).
    pub fn paper_default(base_vpn: Vpn) -> Self {
        SiloConfig {
            base_vpn,
            records: 400_000,
            theta: 0.99,
            leaf_llc_hit_prob: 0.4,
            update_fraction: 0.0,
        }
    }

    /// Pages of the record heap.
    pub fn ws_range(&self) -> std::ops::Range<Vpn> {
        self.base_vpn..self.base_vpn + self.ws_pages()
    }

    /// Working-set size in pages.
    pub fn ws_pages(&self) -> u64 {
        self.records * RECORD_BYTES / PAGE_SIZE + 1
    }
}

/// One Silo worker: Zipfian lookups with dependent index + record reads.
pub struct SiloStream {
    cfg: SiloConfig,
    zipf: ScrambledZipf,
    /// Pending record read for the in-progress lookup.
    pending_record: Option<u64>,
}

impl SiloStream {
    /// Creates a stream from its configuration.
    pub fn new(cfg: SiloConfig) -> Self {
        SiloStream {
            zipf: ScrambledZipf::new(cfg.records, cfg.theta),
            pending_record: None,
            cfg,
        }
    }

    fn record_vaddr(&self, record: u64) -> u64 {
        self.cfg.base_vpn * PAGE_SIZE + record * RECORD_BYTES
    }
}

impl AccessStream for SiloStream {
    fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        use rand::Rng;
        if let Some(record) = self.pending_record.take() {
            // Second half of the lookup: read (or update) the record.
            return ObjectAccess {
                vaddr: self.record_vaddr(record),
                size: RECORD_BYTES as u32,
                is_write: rng.gen_bool(self.cfg.update_fraction),
                dependent: true,
                llc_hit_prob: 0.02,
            };
        }
        // First half: the leaf index node read. The leaf sits near the
        // record (Masstree leaves cluster by key hash); model it as a line
        // in the record's page neighbourhood.
        let record = self.zipf.sample(rng);
        self.pending_record = Some(record);
        ObjectAccess {
            vaddr: self.record_vaddr(record) / 64 * 64,
            size: 64,
            is_write: false,
            dependent: true,
            llc_hit_prob: self.cfg.leaf_llc_hit_prob,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::rng::seed_from;

    #[test]
    fn working_set_is_about_64mb() {
        let cfg = SiloConfig::paper_default(0);
        let mb = cfg.ws_pages() * PAGE_SIZE / (1 << 20);
        assert!((60..66).contains(&mb), "ws = {mb} MB");
    }

    #[test]
    fn lookups_alternate_index_and_record() {
        let mut s = SiloStream::new(SiloConfig::paper_default(0));
        let mut rng = seed_from(1, 0);
        for _ in 0..100 {
            let idx = s.next(SimTime::ZERO, &mut rng);
            assert_eq!(idx.size, 64);
            assert!(idx.dependent);
            let rec = s.next(SimTime::ZERO, &mut rng);
            assert_eq!(rec.size, 164);
            assert!(rec.dependent);
            assert!(!rec.is_write, "YCSB-C is read-only");
            // The record access lands within a line of the index access.
            assert!(rec.vaddr >= idx.vaddr && rec.vaddr < idx.vaddr + 64);
        }
    }

    #[test]
    fn accesses_stay_in_working_set() {
        let cfg = SiloConfig::paper_default(500);
        let range = cfg.ws_range();
        let mut s = SiloStream::new(cfg);
        let mut rng = seed_from(2, 0);
        for _ in 0..20_000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            let first = a.vaddr / PAGE_SIZE;
            let last = (a.vaddr + a.size as u64 - 1) / PAGE_SIZE;
            assert!(range.contains(&first) && range.contains(&last));
        }
    }

    #[test]
    fn access_distribution_is_skewed_but_scattered() {
        let cfg = SiloConfig::paper_default(0);
        let pages = cfg.ws_pages() as usize;
        let mut s = SiloStream::new(cfg);
        let mut rng = seed_from(3, 0);
        let mut counts = vec![0u32; pages];
        for _ in 0..200_000 {
            let a = s.next(SimTime::ZERO, &mut rng);
            counts[(a.vaddr / PAGE_SIZE) as usize] += 1;
        }
        // Zipf over records creates page-level skew: the top 10% of pages
        // should carry well above 10% of accesses...
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        let top_decile: u64 = sorted[..pages / 10].iter().map(|&c| c as u64).sum();
        let share = top_decile as f64 / total as f64;
        assert!(share > 0.2, "top-decile share {share}");
        // ...but the very hottest pages must not be adjacent (scrambling).
        let hottest = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .unwrap()
            .0;
        let mut rest = counts.clone();
        rest[hottest] = 0;
        let second = rest.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert!((hottest as i64 - second as i64).abs() > 1);
    }

    #[test]
    fn update_fraction_produces_writes() {
        let mut cfg = SiloConfig::paper_default(0);
        cfg.update_fraction = 1.0;
        let mut s = SiloStream::new(cfg);
        let mut rng = seed_from(4, 0);
        let _idx = s.next(SimTime::ZERO, &mut rng);
        let rec = s.next(SimTime::ZERO, &mut rng);
        assert!(rec.is_write);
    }
}
