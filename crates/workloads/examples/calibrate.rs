//! Calibration probe for the memory-system model.
//!
//! Prints the quantities the paper reports for its testbed (§2) so the
//! simulator's constants can be tuned to land in the same bands:
//!
//! - antagonist-only bandwidth at 5/10/15 cores (paper: 51/65/70 % of the
//!   205 GB/s theoretical maximum);
//! - GUPS + antagonist default/alternate tier loaded latencies with the
//!   hot set packed into the default tier (paper Figure 2a: default-tier
//!   latency inflates 2.5×/3.8×/5× at 1×/2×/3× intensity, exceeding the
//!   alternate tier by 1.2×/1.8×/2.4×).
//!
//! Run: `cargo run -p workloads --example calibrate --release`

use memsim::{CoreConfig, Machine, MachineConfig, TierId, TrafficClass};
use simkit::SimTime as ST;

fn knob(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
use simkit::SimTime;
use workloads::{AntagonistConfig, AntagonistStream, GupsConfig, GupsStream};

const APP_CORES: usize = 15;

fn setup(antagonist_cores: usize, with_gups: bool) -> Machine {
    let mut cfg = MachineConfig::icelake_two_tier();
    for t in &mut cfg.tiers {
        t.dram.t_write_turnaround = ST::from_ns(knob("WT", 3.0));
        t.dram.t_faw = ST::from_ns(knob("FAW", 18.0));
    }
    let mut m = Machine::new(cfg);

    // Antagonist buffer: 128 pages pinned to the default tier.
    let ant = AntagonistConfig::paper_default(0, 0);
    m.place_range(ant.range(), TierId::DEFAULT);
    for vpn in ant.range() {
        m.pin(vpn);
    }

    // GUPS working set: hot set packed in default tier (existing systems'
    // placement), remainder of default filled with cold pages, rest in alt.
    let gups = GupsConfig::paper_default(1024);
    if with_gups {
        let hot = gups.hot_range();
        m.place_range(hot.clone(), TierId::DEFAULT);
        let default_left = m.free_pages(TierId::DEFAULT);
        let cold_start = hot.end;
        m.place_range(cold_start..cold_start + default_left, TierId::DEFAULT);
        m.place_range(
            cold_start + default_left..gups.ws_range().end,
            TierId::ALTERNATE,
        );
        for i in 0..APP_CORES {
            let mut c = gups.clone();
            c.hot_offset = 0;
            let _ = i;
            m.add_core(
                Box::new(GupsStream::new(c).unwrap()),
                CoreConfig::app_default(),
                TrafficClass::App,
            );
        }
    }

    for i in 0..antagonist_cores {
        m.add_core(
            Box::new(AntagonistStream::new(AntagonistConfig::paper_default(
                0, i as u64,
            ))),
            CoreConfig {
                demand_slots: knob("AD", 8.0) as usize,
                prefetch_slots: knob("AP", 20.0) as usize,
                think_time: ST::ZERO,
            },
            TrafficClass::Antagonist,
        );
    }
    m
}

fn run(m: &mut Machine) -> (f64, f64, f64, f64, f64) {
    // Warm up, then measure.
    m.run_tick(SimTime::from_us(200.0));
    let rep = m.run_tick(SimTime::from_us(400.0));
    let dur = rep.duration();
    let bw_total: f64 = rep
        .tiers
        .iter()
        .map(|t| t.bandwidth_bytes_per_sec(dur))
        .sum();
    let bw_def = rep.tiers[0].bandwidth_bytes_per_sec(dur);
    let l_def = rep.littles_latency_ns(TierId::DEFAULT).unwrap_or(0.0);
    let l_alt = rep.littles_latency_ns(TierId::ALTERNATE).unwrap_or(0.0);
    (bw_total, bw_def, l_def, l_alt, rep.app_ops_per_sec())
}

fn main() {
    println!("== antagonist in isolation (target: 51/65/70% of 205 GB/s) ==");
    for cores in [5, 10, 15] {
        let mut m = setup(cores, false);
        let (bw, _, l, _, _) = run(&mut m);
        println!(
            "  {cores:2} cores: {:6.1} GB/s ({:4.1}%)  L_D={l:6.1}ns",
            bw / 1e9,
            bw / 205e9 * 100.0
        );
    }

    println!("== GUPS(15 cores, hot in default) + antagonist ==");
    println!("   target L_D: ~100ns @0x, 175 @1x, 266 @2x, 350 @3x; L_A ~140-150ns");
    for (label, cores) in [("0x", 0), ("1x", 5), ("2x", 10), ("3x", 15)] {
        let mut m = setup(cores, true);
        let (bw, bw_def, l_d, l_a, ops) = run(&mut m);
        println!(
            "  {label}: L_D={l_d:6.1}ns L_A={l_a:6.1}ns ratio={:4.2}  bw={:6.1} GB/s (def {:5.1})  GUPS={:6.1} Mops/s",
            l_d / l_a.max(1.0),
            bw / 1e9,
            bw_def / 1e9,
            ops / 1e6
        );
    }
}
