//! Property-based tests for the workload generators: every access must land
//! inside the workload's declared working set, for arbitrary valid
//! configurations — a page placed outside its range would corrupt another
//! experiment region (or panic the machine on an unmapped page).

use memsim::machine::AccessStream;
use memsim::PAGE_SIZE;
use proptest::prelude::*;
use simkit::rng::seed_from;
use simkit::SimTime;
use workloads::{
    AntagonistConfig, AntagonistStream, GupsConfig, GupsStream, KvCacheConfig, KvCacheStream,
    PageRankConfig, PageRankStream, SiloConfig, SiloStream,
};

fn contains_object(range: &std::ops::Range<u64>, vaddr: u64, size: u32) -> bool {
    let first = vaddr / PAGE_SIZE;
    let last = (vaddr + size as u64 - 1) / PAGE_SIZE;
    range.contains(&first) && range.contains(&last)
}

proptest! {
    #[test]
    fn gups_respects_bounds(
        base in 0u64..10_000,
        ws in 64u64..4_096,
        hot_frac in 0.05f64..0.9,
        offset_frac in 0.0f64..1.0,
        object_log in 6u32..13, // 64..4096 bytes
        seed in 0u64..100,
    ) {
        let hot = ((ws as f64 * hot_frac) as u64).max(1);
        let offset = ((ws - hot) as f64 * offset_frac) as u64;
        let cfg = GupsConfig {
            base_vpn: base,
            ws_pages: ws,
            hot_pages: hot,
            hot_offset: offset,
            hot_prob: 0.9,
            object_size: 1 << object_log,
            write_fraction: 0.5,
            llc_hit_prob: 0.0,
            phases: vec![],
        };
        prop_assert!(cfg.validate().is_ok());
        let range = cfg.ws_range();
        let mut s = GupsStream::new(cfg).unwrap();
        let mut rng = seed_from(seed, 0);
        for _ in 0..200 {
            let a = s.next(SimTime::ZERO, &mut rng);
            prop_assert!(contains_object(&range, a.vaddr, a.size));
        }
    }

    #[test]
    fn antagonist_respects_bounds(
        base in 0u64..10_000,
        pages in 1u64..512,
        chunk_log in 6u32..13,
        thread in 0u64..32,
        seed in 0u64..100,
    ) {
        let cfg = AntagonistConfig {
            base_vpn: base,
            buffer_pages: pages,
            chunk_bytes: 1 << chunk_log,
            start_offset: thread * 64 % (pages * PAGE_SIZE),
        };
        let range = cfg.range();
        let mut s = AntagonistStream::new(cfg);
        let mut rng = seed_from(seed, 1);
        for _ in 0..300 {
            let a = s.next(SimTime::ZERO, &mut rng);
            prop_assert!(contains_object(&range, a.vaddr, a.size));
        }
    }

    #[test]
    fn silo_respects_bounds(records in 100u64..100_000, seed in 0u64..50) {
        let cfg = SiloConfig {
            records,
            ..SiloConfig::paper_default(123)
        };
        let range = cfg.ws_range();
        let mut s = SiloStream::new(cfg);
        let mut rng = seed_from(seed, 2);
        for _ in 0..200 {
            let a = s.next(SimTime::ZERO, &mut rng);
            prop_assert!(contains_object(&range, a.vaddr, a.size));
        }
    }

    #[test]
    fn kvcache_respects_bounds(items in 16u64..50_000, seed in 0u64..50) {
        let cfg = KvCacheConfig {
            items,
            ..KvCacheConfig::paper_default(77)
        };
        let range = cfg.ws_range();
        let mut s = KvCacheStream::new(cfg);
        let mut rng = seed_from(seed, 3);
        for _ in 0..200 {
            let a = s.next(SimTime::ZERO, &mut rng);
            prop_assert!(contains_object(&range, a.vaddr, a.size));
        }
    }

    #[test]
    fn pagerank_respects_bounds(thread in 0u64..64, seed in 0u64..50) {
        let cfg = PageRankConfig::paper_default(5_000);
        let range = cfg.ws_range();
        let mut s = PageRankStream::new(cfg, thread);
        let mut rng = seed_from(seed, 4);
        for _ in 0..300 {
            let a = s.next(SimTime::ZERO, &mut rng);
            prop_assert!(contains_object(&range, a.vaddr, a.size));
        }
    }
}
