//! Property-based round-trip tests for the NDJSON trace format: any trace
//! must survive export → import with byte-identical records and an
//! identical replay access sequence, and structurally broken inputs must
//! produce typed errors — never panics, never silently-wrong traces.

use std::sync::Arc;

use memsim::machine::AccessStream;
use memsim::ObjectAccess;
use proptest::prelude::*;
use simkit::rng::seed_from;
use simkit::SimTime;
use workloads::{
    trace_from_ndjson, trace_to_ndjson, Trace, TraceParseError, TraceRecord, TraceReplayer,
};

/// Strategy for one access record (everything the schema carries).
fn access_strategy() -> impl Strategy<Value = ObjectAccess> {
    (
        (0u64..u64::MAX, 1u32..=4096),
        (prop::bool::ANY, prop::bool::ANY),
        0.0f32..=1.0,
    )
        .prop_map(
            |((vaddr, size), (is_write, dependent), llc_hit_prob)| ObjectAccess {
                vaddr,
                size,
                is_write,
                dependent,
                llc_hit_prob,
            },
        )
}

/// Strategy for a whole trace: per-record time *deltas* keep `t_ps`
/// non-decreasing (the format's invariant) while still reaching huge
/// timestamps that would corrupt under any float round-trip.
fn trace_strategy(max_len: usize) -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u64..=(1u64 << 40), access_strategy()), 0..max_len).prop_map(|steps| {
        let mut t = 0u64;
        let records = steps
            .into_iter()
            .map(|(dt, access)| {
                t = t.saturating_add(dt);
                TraceRecord {
                    at: SimTime::from_ps(t),
                    access,
                }
            })
            .collect();
        Trace::from_records(records)
    })
}

proptest! {
    #[test]
    fn export_import_round_trips_records_exactly(trace in trace_strategy(64)) {
        let ndjson = trace_to_ndjson(&trace);
        let back = trace_from_ndjson(&ndjson).expect("canonical export must import");
        prop_assert_eq!(back.records(), trace.records());
        // Canonical form: exporting the import reproduces the same bytes.
        prop_assert_eq!(trace_to_ndjson(&back), ndjson);
    }

    #[test]
    fn replay_of_imported_trace_reproduces_the_access_sequence(
        trace in trace_strategy(64),
        laps in 1usize..3,
    ) {
        prop_assume!(!trace.is_empty());
        let ndjson = trace_to_ndjson(&trace);
        let back = trace_from_ndjson(&ndjson).unwrap();
        let mut a = TraceReplayer::try_new(Arc::new(trace.clone())).unwrap();
        let mut b = TraceReplayer::try_new(Arc::new(back)).unwrap();
        // Replayers ignore the RNG, so mismatched seeds must not matter.
        let mut rng_a = seed_from(1, 0);
        let mut rng_b = seed_from(999, 7);
        for i in 0..trace.len() * laps {
            let x = a.next(SimTime::ZERO, &mut rng_a);
            let y = b.next(SimTime::ZERO, &mut rng_b);
            prop_assert_eq!(x, y, "replay diverged at access {}: {:?} != {:?}", i, x, y);
        }
    }

    #[test]
    fn truncation_yields_typed_errors_never_panics(
        trace in trace_strategy(32),
        cut_frac in 0.0f64..1.0,
    ) {
        prop_assume!(!trace.is_empty());
        let ndjson = trace_to_ndjson(&trace);
        let cut = (ndjson.len() as f64 * cut_frac) as usize;
        // Any prefix must either import to a (shorter) valid document or
        // fail with a typed error — never panic, never import wrong data.
        if let Ok(t) = trace_from_ndjson(&ndjson[..cut]) {
            prop_assert!(t.len() <= trace.len());
            prop_assert_eq!(t.records(), &trace.records()[..t.len()]);
        }
    }

    #[test]
    fn unsupported_version_is_typed(trace in trace_strategy(8), v in 2u64..1000) {
        let ndjson = trace_to_ndjson(&trace);
        let bumped = ndjson.replacen("\"version\":1", &format!("\"version\":{v}"), 1);
        prop_assert_eq!(
            trace_from_ndjson(&bumped).unwrap_err(),
            TraceParseError::UnsupportedVersion(v)
        );
    }

    #[test]
    fn non_monotone_time_is_typed(
        trace in trace_strategy(32),
        pos in 1usize..31,
    ) {
        prop_assume!(trace.len() >= 2);
        let pos = pos.min(trace.len() - 1);
        let mut records = trace.records().to_vec();
        // Force a strict decrease at `pos` (skip if the prefix is all-zero).
        let prev = records[pos - 1].at;
        prop_assume!(prev > SimTime::ZERO);
        records[pos].at = SimTime::from_ps(prev.as_ps() - 1);
        let truncated = Trace::from_records(records[..=pos].to_vec());
        let ndjson = trace_to_ndjson(&truncated);
        prop_assert_eq!(
            trace_from_ndjson(&ndjson).unwrap_err(),
            TraceParseError::NonMonotoneTime { line: pos + 2 }
        );
    }
}
