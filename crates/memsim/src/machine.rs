//! The simulated machine: closed-loop cores driving the tiered memory
//! system, with the hardware facilities tiering systems rely on.
//!
//! A [`Machine`] assembles:
//!
//! - **cores** running [`AccessStream`] workloads with bounded in-flight
//!   demand misses (LFBs) and prefetch misses — the per-core memory-level
//!   parallelism bound `N` that makes per-core throughput `T = N·64/L`
//!   (paper §3.1);
//! - **tiers**, each a [`MemoryController`] optionally behind a serial
//!   [`Link`] (UPI/CXL);
//! - the **CHA** with per-tier occupancy/arrival counters (the Colloid
//!   measurement vantage point) and MBM-style per-class byte counters;
//! - a **page-placement map** (virtual page → tier) that tiering systems
//!   mutate through migrations;
//! - a **migration DMA engine** that copies pages between tiers at a
//!   configurable bandwidth, injecting real read/write traffic;
//! - **access-tracking hardware**: PEBS-style sampling of demand misses and
//!   page-table-protection hint faults (TPP).
//!
//! Control software (the tiering systems in `tiersys`) advances the machine
//! one *tick* at a time with [`Machine::run_tick`], receives a
//! [`TickReport`] of everything the hardware observed, and reacts by
//! enqueueing migrations or re-marking pages.

use rand::rngs::SmallRng;
use rand::Rng;
use simkit::rng::seed_from;
use simkit::stats::LatencyHist;
use simkit::{EventQueue, SimTime};

use std::collections::VecDeque;

use crate::cha::{Cha, ChaCounters, TierWindow};
use crate::config::{CoreConfig, MachineConfig};
use crate::controller::{Link, MemoryController};
use crate::faults::{FaultInjector, FaultStats};
use crate::request::{
    AccessKind, HintFault, ObjectAccess, PebsSample, TierId, TrafficClass, Vpn, LINES_PER_PAGE,
    LINE_SIZE, PAGE_SIZE,
};

/// A workload: an infinite stream of object-granularity memory accesses.
///
/// Implementations live in the `workloads` crate (GUPS, antagonist,
/// PageRank, ...). `now` lets time-varying workloads switch phases.
pub trait AccessStream {
    /// Produces the next object access issued by this core.
    fn next(&mut self, now: SimTime, rng: &mut SmallRng) -> ObjectAccess;
}

/// Identifier of a simulated core.
pub type CoreId = usize;

/// Internal per-object in-flight state.
#[derive(Debug, Clone, Copy)]
struct ObjectState {
    vaddr: u64,
    lines_total: u16,
    lines_issued: u16,
    lines_done: u16,
    is_write: bool,
    llc_hit_prob: f32,
    live: bool,
}

/// Internal per-core state.
struct Core {
    cfg: CoreConfig,
    class: TrafficClass,
    stream: Box<dyn AccessStream>,
    rng: SmallRng,
    active: bool,
    demand_free: usize,
    prefetch_free: usize,
    /// Object currently being issued (may be partially issued).
    cur: Option<u32>,
    /// Next object pulled from the stream but blocked on dependence.
    pending: Option<ObjectAccess>,
    /// Number of live (incomplete) objects.
    live_objects: u32,
    objects: Vec<ObjectState>,
    free_objects: Vec<u32>,
    think_until: SimTime,
    wake_scheduled: bool,
    ops_completed: u64,
    lines_issued_total: u64,
}

impl Core {
    fn alloc_object(&mut self, acc: &ObjectAccess) -> u32 {
        debug_assert!(acc.size >= 1, "zero-sized object access");
        let st = ObjectState {
            vaddr: acc.vaddr,
            lines_total: acc.num_lines() as u16,
            lines_issued: 0,
            lines_done: 0,
            is_write: acc.is_write,
            llc_hit_prob: acc.llc_hit_prob,
            live: true,
        };
        self.live_objects += 1;
        if let Some(idx) = self.free_objects.pop() {
            self.objects[idx as usize] = st;
            idx
        } else {
            self.objects.push(st);
            (self.objects.len() - 1) as u32
        }
    }

    fn free_object(&mut self, idx: u32) {
        self.objects[idx as usize].live = false;
        self.live_objects -= 1;
        self.free_objects.push(idx);
    }
}

/// One in-flight migration page job (a copy transaction on the
/// transactional engine; a plain exclusive copy on the legacy engine,
/// which ignores the transactional fields).
#[derive(Debug, Clone, Copy)]
struct MigJob {
    vpn: Vpn,
    dst: TierId,
    lines_read: u16,
    lines_done: u16,
    live: bool,
    /// When the copy left the queue and the engine started it (for the
    /// per-page copy-time telemetry in [`TickReport::mig_copy_ns`]).
    started: SimTime,
    /// Open async telemetry span covering this copy ([`SpanId::NONE`]
    /// when tracing is off).
    span: telemetry::SpanId,
    /// DMA channel the transaction is assigned to.
    channel: u32,
    /// Copy pass number, 1-based; bumped by each dirty retry.
    attempt: u32,
    /// The snapshot was invalidated by a concurrent write this pass.
    dirty: bool,
    /// Validated and parked in the commit batch, waiting for the
    /// shootdown flush; immune to further dirtying (the PTE is
    /// write-protected for the shootdown).
    committing: bool,
    /// Failovers consumed (capped at the channel count).
    failovers: u32,
    /// Generation counter: copy/watchdog events stamped with an older
    /// epoch belong to an abandoned pass and are ignored.
    epoch: u32,
}

/// Simulator events.
enum Ev {
    /// A core's cache line completed (LLC hit or memory read).
    LineDone {
        core: CoreId,
        obj: u32,
        demand: bool,
        tier: Option<TierId>,
    },
    /// Re-try issuing on a core (think time expiry / activation).
    CoreWake { core: CoreId },
    /// Dirty lines written back to memory.
    Writeback {
        vaddr: u64,
        lines: u16,
        class: TrafficClass,
    },
    /// Migration engine: issue the next read of job `job`.
    MigRead { job: u32 },
    /// Migration engine: a page-copy read returned; write to destination.
    MigLineDone { job: u32, src: TierId },
    /// Migration engine: start the next queued page.
    MigStart,
    /// Transactional engine: channel `ch` picks up the next queued page.
    TxnStart { ch: u32 },
    /// Transactional engine: issue the next snapshot read of a copy pass.
    /// Stale epochs (abandoned passes) are ignored.
    TxnRead { job: u32, epoch: u32 },
    /// Transactional engine: a snapshot read returned; write to the
    /// destination if the pass is still current.
    TxnLineDone { job: u32, src: TierId, epoch: u32 },
    /// Transactional engine: dirty-retry backoff expired; start a fresh
    /// copy pass.
    TxnRetry { job: u32, epoch: u32 },
    /// Transactional engine: watchdog deadline for one copy pass.
    TxnWatchdog { job: u32, epoch: u32 },
    /// Transactional engine: batched TLB-shootdown commit flush.
    TxnFlush,
    /// CHA read-queue departure decoupled from the core's completion (used
    /// when a hint fault delays the core beyond the memory response).
    ChaDepart { tier: TierId },
}

/// Per-tier hardware of one memory tier.
struct TierHw {
    controller: MemoryController,
    link: Option<Link>,
    t_req: SimTime,
    t_rsp: SimTime,
}

impl TierHw {
    /// Full read path: CHA → (link) → controller → (link) → CHA.
    fn read(&mut self, t: SimTime, line_addr: u64) -> SimTime {
        let at_mc = match &mut self.link {
            Some(l) => l.send_request(t + self.t_req),
            None => t + self.t_req,
        };
        let out = self.controller.schedule(at_mc, line_addr, AccessKind::Read);
        let back = match &mut self.link {
            Some(l) => l.send_response(out.done),
            None => out.done,
        };
        back + self.t_rsp
    }

    /// Fire-and-forget write path (writeback / migration copy-in).
    fn write(&mut self, t: SimTime, line_addr: u64) {
        let at_mc = match &mut self.link {
            Some(l) => l.send_request(t + self.t_req),
            None => t + self.t_req,
        };
        self.controller
            .schedule(at_mc, line_addr, AccessKind::Write);
    }
}

/// Everything in the machine except the cores (split for borrow hygiene).
struct Shared {
    cfg: MachineConfig,
    events: EventQueue<Ev>,
    tiers: Vec<TierHw>,
    cha: Cha,
    /// Virtual page → tier (u8::MAX = unmapped).
    placement: Vec<u8>,
    /// Pages that must never migrate (e.g. the antagonist's pinned buffer).
    pinned: Vec<bool>,
    used_pages: Vec<u64>,
    /// Usable frames per tier: starts at the configured capacity and only
    /// decreases, when a [`crate::TierShrink`] hard fault fires.
    effective_capacity: Vec<u64>,
    // Access tracking.
    marked: Vec<bool>,
    marked_at: Vec<SimTime>,
    pebs_counter: u64,
    pebs_period: u64,
    pebs_buf: Vec<PebsSample>,
    fault_buf: Vec<HintFault>,
    // Migration engine.
    /// Queued migrations; each entry carries the causal span id captured
    /// from the sink at enqueue time, so the copy that eventually runs
    /// chains back to the controller decision that issued it.
    mig_queue: VecDeque<(Vpn, TierId, telemetry::SpanId)>,
    mig_jobs: Vec<MigJob>,
    mig_free_jobs: Vec<u32>,
    mig_engine_free: SimTime,
    mig_engine_idle: bool,
    mig_inflight_to: Vec<u64>,
    migrated_pages: u64,
    migrated_bytes: u64,
    /// Per-page count of queued or in-flight migrations (rejects duplicate
    /// enqueues); decremented on every exit path: drop, abort, commit.
    mig_pending: Vec<u16>,
    /// Migrations admitted (successfully enqueued) this tick.
    mig_admitted_tick: u64,
    /// Per-tick cap on admitted migrations (`None` = unlimited); set by a
    /// supervisor's admission controller.
    mig_admission_limit: Option<u64>,
    /// Migrations aborted this tick, with typed reasons (drained into the
    /// tick report).
    tick_failed: Vec<FailedMigration>,
    /// Cumulative engine accounting (see [`MigrationCounters`]).
    mig_started: u64,
    mig_aborted: [u64; 4],
    txn_dirty_retries: u64,
    txn_failovers: u64,
    txn_batches: u64,
    txn_batched_pages: u64,
    // Transactional engine (used only when `cfg.engine.transactional`).
    /// Per-channel pacing: when each DMA channel next has bandwidth budget.
    txn_channel_free: Vec<SimTime>,
    /// Channels with no pending `TxnStart` pickup event.
    txn_channel_idle: Vec<bool>,
    /// Validated transactions parked for the next batched shootdown.
    txn_commit_batch: Vec<u32>,
    /// A `TxnFlush` event is already scheduled.
    txn_flush_scheduled: bool,
    /// Runtime override of the shootdown batch size (supervisor lever).
    txn_batch_override: Option<u32>,
    /// Runtime override of the in-flight transaction cap (supervisor
    /// lever; default = channel count).
    txn_inflight_override: Option<u32>,
    // Fault injection (no-op unless cfg.faults configures something).
    faults: FaultInjector,
    // Telemetry.
    lat_hist: Vec<LatencyHist>,
    /// Event sink (disabled by default: zero-cost, no behavioral effect).
    sink: telemetry::Sink,
    hint_fault_cost: SimTime,
    llc_hit_latency: SimTime,
}

impl Shared {
    fn tier_of(&self, vpn: Vpn) -> TierId {
        let t = self.placement[vpn as usize];
        debug_assert!(t != u8::MAX, "access to unmapped page {vpn}");
        TierId(t)
    }
}

/// Why [`Machine::enqueue_migration`] rejected a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueError {
    /// The page is unmapped or already resident at the destination.
    Moot,
    /// The page is pinned and must never migrate.
    Pinned,
    /// The page is already queued or mid-copy: a second migration would
    /// race the first for the same frame.
    DuplicateInFlight,
    /// The destination tier has no free frames (counting in-flight
    /// reservations).
    DestinationFull,
    /// The per-tick admission limit is reached (supervisor throttle).
    EngineFrozen,
}

impl EnqueueError {
    /// Display name (snake_case, for telemetry and reports).
    pub fn name(self) -> &'static str {
        match self {
            EnqueueError::Moot => "moot",
            EnqueueError::Pinned => "pinned",
            EnqueueError::DuplicateInFlight => "duplicate_in_flight",
            EnqueueError::DestinationFull => "destination_full",
            EnqueueError::EngineFrozen => "engine_frozen",
        }
    }
}

/// Why an accepted migration aborted instead of completing. Every abort
/// is clean: the page is intact at its source and the destination
/// reservation has been released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The engine was in an injected outage window.
    Outage,
    /// An injected transient in-flight failure.
    Transient,
    /// The copy transaction exhausted its dirty-retry budget: the page is
    /// write-hot and migrating it would only ping-pong.
    WriteConflict,
    /// The copy transaction hit the watchdog bound with no healthy channel
    /// left to fail over to.
    Watchdog,
}

impl AbortReason {
    /// Display name (snake_case, matching `telemetry::FailReason`).
    pub fn name(self) -> &'static str {
        self.fail_reason().name()
    }

    fn fail_reason(self) -> telemetry::FailReason {
        match self {
            AbortReason::Outage => telemetry::FailReason::Outage,
            AbortReason::Transient => telemetry::FailReason::Transient,
            AbortReason::WriteConflict => telemetry::FailReason::WriteConflict,
            AbortReason::Watchdog => telemetry::FailReason::Watchdog,
        }
    }

    fn index(self) -> usize {
        match self {
            AbortReason::Outage => 0,
            AbortReason::Transient => 1,
            AbortReason::WriteConflict => 2,
            AbortReason::Watchdog => 3,
        }
    }
}

/// One migration that aborted this tick, with its typed reason. The page
/// stays at its source and the destination reservation has been released;
/// control software decides per reason whether (and how eagerly) to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedMigration {
    /// The page that stayed put.
    pub vpn: Vpn,
    /// The destination it never reached.
    pub dst: TierId,
    /// Why the copy aborted.
    pub reason: AbortReason,
}

/// Cumulative migration-engine accounting since machine construction.
/// The books must balance: `started == completed + aborted() + in_flight`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationCounters {
    /// Migrations the engine accepted from the queue and began processing
    /// (including ones aborted immediately by an injected fault).
    pub started: u64,
    /// Migrations whose mapping flipped.
    pub completed: u64,
    /// Aborts from engine-outage windows.
    pub aborted_outage: u64,
    /// Aborts from injected transient failures.
    pub aborted_transient: u64,
    /// Transactions aborted at the dirty-retry cap.
    pub aborted_write_conflict: u64,
    /// Transactions aborted at the watchdog with no healthy channel.
    pub aborted_watchdog: u64,
    /// Copy passes restarted after a dirtied snapshot.
    pub dirty_retries: u64,
    /// Transactions moved to a healthy channel by the watchdog.
    pub failovers: u64,
    /// Batched TLB-shootdown flushes issued.
    pub commit_batches: u64,
    /// Transactions committed across all flushes.
    pub batched_pages: u64,
}

impl MigrationCounters {
    /// Total aborts across all reasons.
    pub fn aborted(&self) -> u64 {
        self.aborted_outage
            + self.aborted_transient
            + self.aborted_write_conflict
            + self.aborted_watchdog
    }

    /// Migrations started but neither completed nor aborted yet.
    pub fn in_flight(&self) -> u64 {
        self.started - self.completed - self.aborted()
    }
}

/// Per-tick transactional-engine deltas, reported in [`TickReport::txn`].
/// On the exclusive legacy engine only `begun` and `committed` are
/// populated (legacy copies count too); the rest stay zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnTickStats {
    /// Copies the engine began this tick.
    pub begun: u64,
    /// Transactions committed (mapping flipped) this tick.
    pub committed: u64,
    /// Transactions aborted at the dirty-retry cap this tick.
    pub aborted_write_conflict: u64,
    /// Transactions aborted at the watchdog this tick.
    pub aborted_watchdog: u64,
    /// Copy passes restarted after a dirtied snapshot this tick.
    pub dirty_retries: u64,
    /// Channel failovers this tick.
    pub failovers: u64,
    /// Batched shootdown flushes this tick.
    pub commit_batches: u64,
}

/// Hardware counters and tracking data collected over one tick.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Tick start time.
    pub t_start: SimTime,
    /// Tick end time.
    pub t_end: SimTime,
    /// Per-tier CHA window (occupancy, arrivals, rate, per-class bytes).
    pub tiers: Vec<TierWindow>,
    /// PEBS samples captured this tick (drained).
    pub pebs: Vec<PebsSample>,
    /// Hint faults fired this tick (drained).
    pub faults: Vec<HintFault>,
    /// Application object accesses completed this tick.
    pub app_ops: u64,
    /// Bytes of pages copied by the migration engine this tick.
    pub migrated_bytes: u64,
    /// Pages still waiting in the migration queue at tick end.
    pub migration_backlog: usize,
    /// Mean wall-clock duration of page copies *completed* this tick, in
    /// ns, from engine start to mapping flip (`None` if no copy finished).
    /// The real-world analog is a tiering daemon timing its own
    /// `move_pages` calls: a healthy engine copies a page in roughly
    /// `PAGE_SIZE / migration_bandwidth`, so a large ratio between this
    /// and that expectation is direct, observable evidence of a
    /// migration-bandwidth collapse.
    pub mig_copy_ns: Option<f64>,
    /// Per-(src, dst)-tier-pair mean copy duration of page copies
    /// completed this tick, in ns: `(src, dst, mean_ns)` for every ordered
    /// pair that finished at least one copy. In an N-tier machine the
    /// links have different bandwidths, so a supervisor watching for a
    /// bandwidth collapse must compare each pair against its own
    /// expectation rather than a single global mean.
    pub mig_copy_pair_ns: Vec<(u8, u8, f64)>,
    /// Mean *measured per-request* read latency per tier this tick, in ns
    /// (ground truth for validating Little's-Law estimates); `None` if the
    /// tier was idle. Unlike [`TickReport::tiers`], never perturbed by
    /// fault injection.
    pub true_latency_ns: Vec<Option<f64>>,
    /// Faults injected during this tick (all-zero without a fault plan).
    pub fault_stats: FaultStats,
    /// Migrations aborted this tick, each with its typed reason; the page
    /// stays at its source and the destination reservation has been
    /// released. Tiering systems decide per reason whether to retry.
    pub failed_migrations: Vec<FailedMigration>,
    /// Transactional-engine deltas for this tick (all-zero except `begun`
    /// on the exclusive legacy engine).
    pub txn: TxnTickStats,
    /// Pages force-evacuated by a tier-shrink hard fault this tick, with
    /// the tier each page landed in. Tiering systems must re-sync any
    /// per-page tier metadata with these moves.
    pub evacuated: Vec<(Vpn, TierId)>,
}

impl TickReport {
    /// Tick duration.
    pub fn duration(&self) -> SimTime {
        self.t_end.saturating_sub(self.t_start)
    }

    /// Application throughput in operations per (simulated) second.
    pub fn app_ops_per_sec(&self) -> f64 {
        let s = self.duration().as_secs();
        if s > 0.0 {
            self.app_ops as f64 / s
        } else {
            0.0
        }
    }

    /// Little's-Law latency estimate for `tier`, if measurable.
    pub fn littles_latency_ns(&self, tier: TierId) -> Option<f64> {
        self.tiers[tier.index()].littles_latency_ns()
    }
}

/// The simulated tiered-memory machine.
pub struct Machine {
    cores: Vec<Core>,
    sh: Shared,
    now: SimTime,
    tick_app_ops: u64,
    tick_mig_bytes: u64,
    tick_copy_ns: f64,
    tick_copies: u64,
    /// Per-(src, dst) copy-time accumulator: `(src, dst, total_ns, count)`.
    tick_pair_copy: Vec<(u8, u8, f64, u64)>,
    /// Per-tick engine deltas (see [`TxnTickStats`]).
    tick_txn: TxnTickStats,
    rng_streams: u64,
}

impl Machine {
    /// Builds an empty machine (no cores yet) from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        if let Err(e) = cfg.engine.validate() {
            panic!("invalid MigrationEngineConfig: {e}");
        }
        if let Some(ch) = cfg.faults.max_stalled_channel() {
            assert!(
                ch < cfg.engine.channels,
                "FaultPlan stalls channel {ch} but the engine has only {} channels",
                cfg.engine.channels
            );
        }
        let vp = cfg.virtual_pages as usize;
        let tiers = cfg
            .tiers
            .iter()
            .map(|t| TierHw {
                controller: MemoryController::new(t.dram.clone()),
                link: t.link.as_ref().map(Link::new),
                t_req: t.t_fixed / 2,
                t_rsp: t.t_fixed - t.t_fixed / 2,
            })
            .collect::<Vec<_>>();
        let n_tiers = tiers.len();
        let effective_capacity = cfg.tiers.iter().map(|t| t.capacity_pages()).collect();
        let sh = Shared {
            events: EventQueue::new(),
            tiers,
            cha: Cha::new(n_tiers),
            placement: vec![u8::MAX; vp],
            pinned: vec![false; vp],
            used_pages: vec![0; n_tiers],
            effective_capacity,
            marked: vec![false; vp],
            marked_at: vec![SimTime::ZERO; vp],
            pebs_counter: 0,
            pebs_period: cfg.pebs_period,
            pebs_buf: Vec::new(),
            fault_buf: Vec::new(),
            mig_queue: VecDeque::new(),
            mig_jobs: Vec::new(),
            mig_free_jobs: Vec::new(),
            mig_engine_free: SimTime::ZERO,
            mig_engine_idle: true,
            mig_inflight_to: vec![0; n_tiers],
            migrated_pages: 0,
            migrated_bytes: 0,
            mig_pending: vec![0; vp],
            mig_admitted_tick: 0,
            mig_admission_limit: None,
            tick_failed: Vec::new(),
            mig_started: 0,
            mig_aborted: [0; 4],
            txn_dirty_retries: 0,
            txn_failovers: 0,
            txn_batches: 0,
            txn_batched_pages: 0,
            txn_channel_free: vec![SimTime::ZERO; cfg.engine.channels as usize],
            txn_channel_idle: vec![true; cfg.engine.channels as usize],
            txn_commit_batch: Vec::new(),
            txn_flush_scheduled: false,
            txn_batch_override: None,
            txn_inflight_override: None,
            faults: FaultInjector::new(cfg.faults.clone(), cfg.seed, n_tiers),
            lat_hist: vec![LatencyHist::new(); n_tiers],
            sink: telemetry::Sink::default(),
            hint_fault_cost: cfg.hint_fault_cost,
            llc_hit_latency: cfg.llc_hit_latency,
            cfg,
        };
        Machine {
            cores: Vec::new(),
            sh,
            now: SimTime::ZERO,
            tick_app_ops: 0,
            tick_mig_bytes: 0,
            tick_copy_ns: 0.0,
            tick_copies: 0,
            tick_pair_copy: Vec::new(),
            tick_txn: TxnTickStats::default(),
            rng_streams: 0,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.sh.cfg
    }

    /// Attaches a telemetry sink. Recording is passive — it never mutates
    /// machine state or draws randomness — so attaching a sink does not
    /// change a run. The machine also refreshes the sink's shared clock at
    /// every tick boundary, so clock-less layers holding clones of the same
    /// sink stamp their events at quantum granularity.
    pub fn set_telemetry(&mut self, sink: telemetry::Sink) {
        self.sh.sink = sink;
    }

    /// The attached telemetry sink (disabled unless one was attached).
    pub fn telemetry(&self) -> &telemetry::Sink {
        &self.sh.sink
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Adds a core running `stream`; returns its id. Cores start active.
    pub fn add_core(
        &mut self,
        stream: Box<dyn AccessStream>,
        cfg: CoreConfig,
        class: TrafficClass,
    ) -> CoreId {
        let id = self.cores.len();
        let rng = seed_from(self.sh.cfg.seed, self.rng_streams);
        self.rng_streams += 1;
        self.cores.push(Core {
            demand_free: cfg.demand_slots,
            prefetch_free: cfg.prefetch_slots,
            cfg,
            class,
            stream,
            rng,
            active: true,
            cur: None,
            pending: None,
            live_objects: 0,
            objects: Vec::new(),
            free_objects: Vec::new(),
            think_until: SimTime::ZERO,
            wake_scheduled: false,
            ops_completed: 0,
            lines_issued_total: 0,
        });
        // Kick the core off at the current time.
        self.sh.events.push(self.now, Ev::CoreWake { core: id });
        self.cores[id].wake_scheduled = true;
        id
    }

    /// Activates or deactivates a core (used to change antagonist
    /// intensity mid-experiment). A deactivated core finishes its in-flight
    /// requests but issues no new ones.
    pub fn set_core_active(&mut self, core: CoreId, active: bool) {
        let was = self.cores[core].active;
        self.cores[core].active = active;
        if active && !was && !self.cores[core].wake_scheduled {
            self.sh.events.push(self.now, Ev::CoreWake { core });
            self.cores[core].wake_scheduled = true;
        }
    }

    /// Total object accesses completed by `core`.
    pub fn core_ops(&self, core: CoreId) -> u64 {
        self.cores[core].ops_completed
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    // ---- Placement management -------------------------------------------

    /// Maps `vpn` to `tier` without generating traffic (initial placement).
    ///
    /// # Panics
    ///
    /// Panics if the tier is out of capacity or the page is already mapped.
    pub fn place(&mut self, vpn: Vpn, tier: TierId) {
        assert_eq!(self.sh.placement[vpn as usize], u8::MAX, "page remapped");
        assert!(
            self.sh.used_pages[tier.index()] < self.sh.effective_capacity[tier.index()],
            "tier {tier:?} out of capacity"
        );
        self.sh.placement[vpn as usize] = tier.0;
        self.sh.used_pages[tier.index()] += 1;
    }

    /// Maps a contiguous range of pages to `tier`.
    pub fn place_range(&mut self, vpns: std::ops::Range<Vpn>, tier: TierId) {
        for vpn in vpns {
            self.place(vpn, tier);
        }
    }

    /// Pins `vpn` so that migrations of it are rejected.
    pub fn pin(&mut self, vpn: Vpn) {
        self.sh.pinned[vpn as usize] = true;
    }

    /// Tier currently holding `vpn` (`None` if unmapped).
    pub fn tier_of(&self, vpn: Vpn) -> Option<TierId> {
        let t = self.sh.placement[vpn as usize];
        if t == u8::MAX {
            None
        } else {
            Some(TierId(t))
        }
    }

    /// Pages currently mapped to `tier` (including in-flight migrations'
    /// reservations at the destination).
    pub fn used_pages(&self, tier: TierId) -> u64 {
        self.sh.used_pages[tier.index()] + self.sh.mig_inflight_to[tier.index()]
    }

    /// Free page frames in `tier`, accounting for in-flight migrations.
    pub fn free_pages(&self, tier: TierId) -> u64 {
        self.sh.effective_capacity[tier.index()].saturating_sub(self.used_pages(tier))
    }

    /// Currently usable frames in `tier`: the configured capacity, reduced
    /// by any tier-shrink hard faults that have already fired.
    pub fn capacity_pages(&self, tier: TierId) -> u64 {
        self.sh.effective_capacity[tier.index()]
    }

    /// Checks that this machine's placement can survive the configured
    /// hard-fault plan: every planned tier shrink must leave room for the
    /// tier's pinned pages, and the post-shrink machine must still hold
    /// every mapped page somewhere. Call after initial placement.
    pub fn validate_fault_feasibility(&self) -> Result<(), String> {
        let plan = self.sh.faults.plan();
        if plan.tier_shrinks.is_empty() {
            return Ok(());
        }
        let n_tiers = self.sh.tiers.len();
        let mut pinned_per_tier = vec![0u64; n_tiers];
        for (p, &pin) in self.sh.placement.iter().zip(self.sh.pinned.iter()) {
            if pin && *p != u8::MAX {
                pinned_per_tier[*p as usize] += 1;
            }
        }
        let mut final_cap: Vec<u64> = self.sh.effective_capacity.clone();
        for s in &plan.tier_shrinks {
            let i = s.tier.index();
            final_cap[i] = final_cap[i].min(s.new_frames);
            if pinned_per_tier[i] > s.new_frames {
                return Err(format!(
                    "tier {i} shrinks to {} frames at {:?} but {} pinned pages reside \
                     there; pin fewer pages or shrink less",
                    s.new_frames, s.at, pinned_per_tier[i]
                ));
            }
        }
        let mapped: u64 = self.sh.used_pages.iter().sum();
        let total: u64 = final_cap.iter().sum();
        if mapped > total {
            return Err(format!(
                "hard-fault plan leaves {total} total frames for {mapped} mapped pages; \
                 evacuation would have nowhere to put the overflow"
            ));
        }
        Ok(())
    }

    // ---- Access tracking hooks ------------------------------------------

    /// Sets the PEBS sampling period (one sample per `period` demand
    /// misses; 0 disables).
    pub fn set_pebs_period(&mut self, period: u64) {
        self.sh.pebs_period = period;
    }

    /// Marks `vpn` for hint-fault tracking (TPP page-table scan).
    pub fn mark_page(&mut self, vpn: Vpn) {
        self.sh.marked[vpn as usize] = true;
        self.sh.marked_at[vpn as usize] = self.now;
    }

    /// Whether `vpn` is currently marked.
    pub fn is_marked(&self, vpn: Vpn) -> bool {
        self.sh.marked[vpn as usize]
    }

    // ---- Migration -------------------------------------------------------

    /// Enqueues a page migration to `dst`. Rejects (and does nothing) with
    /// a typed [`EnqueueError`] if the page is unmapped, pinned, already at
    /// `dst`, already in flight, `dst` has no free frames left, or the
    /// per-tick admission limit is reached.
    pub fn enqueue_migration(&mut self, vpn: Vpn, dst: TierId) -> Result<(), EnqueueError> {
        let cur = self.sh.placement[vpn as usize];
        if cur == u8::MAX || cur == dst.0 {
            return Err(EnqueueError::Moot);
        }
        if self.sh.pinned[vpn as usize] {
            return Err(EnqueueError::Pinned);
        }
        // Only the transactional engine rejects duplicates up front. The
        // legacy engine historically admitted them (reserving a second
        // frame and dropping the stale entry at dequeue revalidation);
        // golden outputs pin that behavior bit-for-bit.
        if self.sh.cfg.engine.transactional && self.sh.mig_pending[vpn as usize] > 0 {
            return Err(EnqueueError::DuplicateInFlight);
        }
        if self.free_pages(dst) == 0 {
            return Err(EnqueueError::DestinationFull);
        }
        if let Some(limit) = self.sh.mig_admission_limit {
            if self.sh.mig_admitted_tick >= limit {
                return Err(EnqueueError::EngineFrozen);
            }
        }
        self.sh.mig_admitted_tick += 1;
        // Reserve the destination frame now so capacity cannot oversubscribe.
        self.sh.mig_inflight_to[dst.index()] += 1;
        self.sh.mig_pending[vpn as usize] += 1;
        self.sh
            .mig_queue
            .push_back((vpn, dst, self.sh.sink.cause()));
        if self.sh.cfg.engine.transactional {
            self.txn_kick(self.now);
        } else if self.sh.mig_engine_idle {
            self.sh.mig_engine_idle = false;
            let t = self.now.max(self.sh.mig_engine_free);
            self.sh.events.push(t, Ev::MigStart);
        }
        Ok(())
    }

    /// Pages waiting in the migration queue.
    pub fn migration_backlog(&self) -> usize {
        self.sh.mig_queue.len()
    }

    /// Caps the number of migrations admitted per tick (`None` lifts the
    /// cap). The counter resets at each `run_tick`; with `Some(0)` every
    /// `enqueue_migration` is rejected. Admission control is a supervisor
    /// lever: the machine itself never sets a limit.
    pub fn set_migration_admission_limit(&mut self, limit: Option<u64>) {
        self.sh.mig_admission_limit = limit;
    }

    /// The current per-tick migration admission limit.
    pub fn migration_admission_limit(&self) -> Option<u64> {
        self.sh.mig_admission_limit
    }

    /// Total pages migrated since construction.
    pub fn migrated_pages(&self) -> u64 {
        self.sh.migrated_pages
    }

    /// Cumulative migration-engine accounting. The books always balance:
    /// `started == completed + aborted() + in_flight()`.
    pub fn migration_counters(&self) -> MigrationCounters {
        MigrationCounters {
            started: self.sh.mig_started,
            completed: self.sh.migrated_pages,
            aborted_outage: self.sh.mig_aborted[AbortReason::Outage.index()],
            aborted_transient: self.sh.mig_aborted[AbortReason::Transient.index()],
            aborted_write_conflict: self.sh.mig_aborted[AbortReason::WriteConflict.index()],
            aborted_watchdog: self.sh.mig_aborted[AbortReason::Watchdog.index()],
            dirty_retries: self.sh.txn_dirty_retries,
            failovers: self.sh.txn_failovers,
            commit_batches: self.sh.txn_batches,
            batched_pages: self.sh.txn_batched_pages,
        }
    }

    /// Overrides the transactional engine's shootdown batch size at
    /// runtime (`None` restores the configured value; clamped to ≥ 1).
    /// A supervisor lever: smaller batches commit sooner under churn,
    /// larger ones amortize shootdown cost. No-op on the legacy engine.
    pub fn set_shootdown_batch(&mut self, batch: Option<u32>) {
        self.sh.txn_batch_override = batch.map(|b| b.max(1));
    }

    /// Overrides the transactional engine's in-flight transaction cap at
    /// runtime (`None` restores the default — the channel count; clamped
    /// to `1..=channels`). No-op on the legacy engine.
    pub fn set_max_inflight_txns(&mut self, limit: Option<u32>) {
        let ch = self.sh.cfg.engine.channels;
        self.sh.txn_inflight_override = limit.map(|l| l.clamp(1, ch));
    }

    /// Effective `(shootdown_batch, max_inflight_txns)` after overrides.
    pub fn engine_tuning(&self) -> (u32, u32) {
        (self.txn_batch_limit(), self.txn_inflight_limit())
    }

    fn txn_batch_limit(&self) -> u32 {
        self.sh
            .txn_batch_override
            .unwrap_or(self.sh.cfg.engine.shootdown_batch)
            .max(1)
    }

    fn txn_inflight_limit(&self) -> u32 {
        let ch = self.sh.cfg.engine.channels;
        self.sh.txn_inflight_override.unwrap_or(ch).clamp(1, ch)
    }

    // ---- Simulation loop --------------------------------------------------

    /// Runs the machine for `dur` of simulated time and reports what the
    /// hardware observed.
    pub fn run_tick(&mut self, dur: SimTime) -> TickReport {
        let _prof = simkit::profile::scope("machine.run_tick");
        let t_start = self.now;
        let t_end = t_start + dur;
        let tick_span =
            self.sh
                .sink
                .span_enter_at(t_start, telemetry::Source::Machine, "machine.tick");
        let n_tiers = self.sh.tiers.len();
        let snap_before: Vec<ChaCounters> = {
            let _prof = simkit::profile::scope("machine.cha_sample");
            (0..n_tiers)
                .map(|i| self.sh.cha.snapshot(TierId(i as u8), t_start))
                .collect()
        };
        let hist_before: Vec<(u64, f64)> = self
            .sh
            .lat_hist
            .iter()
            .map(|h| (h.count(), h.mean_ns() * h.count() as f64))
            .collect();
        self.tick_app_ops = 0;
        self.tick_mig_bytes = 0;
        self.tick_copy_ns = 0.0;
        self.tick_copies = 0;
        self.tick_pair_copy.clear();
        self.tick_txn = TxnTickStats::default();
        self.sh.mig_admitted_tick = 0;

        // Hard faults fire at tick boundaries: apply due tier shrinks, then
        // evacuate any tier left over its (new) capacity. The sweep re-runs
        // every tick while shrinks are configured, so pages deferred one
        // tick (mid-copy, or no free frames anywhere) leave on a later one.
        let evacuated = if self.sh.faults.plan().tier_shrinks.is_empty() {
            Vec::new()
        } else {
            for s in self.sh.faults.due_shrinks(t_start) {
                let i = s.tier.index();
                let cap = &mut self.sh.effective_capacity[i];
                *cap = (*cap).min(s.new_frames);
            }
            self.evacuate_over_capacity()
        };
        if !evacuated.is_empty() {
            self.sh
                .sink
                .emit_at(t_start, telemetry::Source::Machine, || {
                    telemetry::EventKind::TierEvacuation {
                        pages: evacuated.len() as u64,
                    }
                });
        }

        {
            let _prof = simkit::profile::scope("machine.event_loop");
            while let Some(t) = self.sh.events.peek_time() {
                if t > t_end {
                    break;
                }
                let (t, ev) = self.sh.events.pop().expect("peeked event");
                self.now = t;
                self.dispatch(t, ev);
            }
        }
        self.now = t_end;

        let tiers: Vec<TierWindow> = {
            let _prof = simkit::profile::scope("machine.cha_sample");
            (0..n_tiers)
                .map(|i| {
                    let after = self.sh.cha.snapshot(TierId(i as u8), t_end);
                    Cha::window(&snap_before[i], &after, t_start, t_end)
                })
                .collect()
        };
        // Counter faults perturb only what the control software sees; the
        // CHA's internal counters (and true_latency_ns below) stay exact.
        let tiers = self.sh.faults.perturb_windows(tiers);
        let true_latency_ns = self
            .sh
            .lat_hist
            .iter()
            .zip(hist_before.iter())
            .map(|(h, (c0, sum0))| {
                let dc = h.count() - c0;
                if dc == 0 {
                    None
                } else {
                    Some((h.mean_ns() * h.count() as f64 - sum0) / dc as f64)
                }
            })
            .collect();

        let fault_stats = self.sh.faults.take_tick();
        let failed_migrations = std::mem::take(&mut self.sh.tick_failed);
        // Advance the shared telemetry clock so downstream layers (which
        // run between ticks and hold no clock of their own) stamp events
        // at this tick's end time.
        self.sh.sink.set_now(t_end);
        if fault_stats.total() > 0 {
            self.sh.sink.emit_at(t_end, telemetry::Source::Machine, || {
                telemetry::EventKind::FaultsInjected {
                    noisy: fault_stats.windows_noisy,
                    stale: fault_stats.windows_stale,
                    dropped: fault_stats.windows_dropped,
                    migration_failures: fault_stats.migration_failures,
                    pebs_dropped: fault_stats.pebs_dropped,
                    evacuated: fault_stats.pages_evacuated,
                    outage_aborts: fault_stats.engine_outage_aborts,
                    storm_dirties: fault_stats.storm_dirties,
                }
            });
        }
        self.sh.sink.span_exit_at(t_end, tick_span);
        TickReport {
            t_start,
            t_end,
            tiers,
            pebs: std::mem::take(&mut self.sh.pebs_buf),
            faults: std::mem::take(&mut self.sh.fault_buf),
            app_ops: self.tick_app_ops,
            migrated_bytes: self.tick_mig_bytes,
            migration_backlog: self.sh.mig_queue.len(),
            mig_copy_ns: (self.tick_copies > 0)
                .then(|| self.tick_copy_ns / self.tick_copies as f64),
            mig_copy_pair_ns: self
                .tick_pair_copy
                .iter()
                .map(|&(s, d, total, n)| (s, d, total / n as f64))
                .collect(),
            true_latency_ns,
            fault_stats,
            failed_migrations,
            txn: self.tick_txn,
            evacuated,
        }
    }

    /// Force-moves pages out of any tier holding more than its effective
    /// capacity (after a shrink), hardware memory-failure style: the page
    /// teleports to the first other tier with a free frame, synchronously
    /// and without generating interconnect traffic. Pinned pages never
    /// move; pages mid-copy in the migration engine are skipped until the
    /// copy completes (their accounting flips at `mig_line_done`).
    fn evacuate_over_capacity(&mut self) -> Vec<(Vpn, TierId)> {
        let n_tiers = self.sh.tiers.len();
        let mut out = Vec::new();
        let busy: Vec<Vpn> = self
            .sh
            .mig_jobs
            .iter()
            .filter(|j| j.live)
            .map(|j| j.vpn)
            .collect();
        for i in 0..n_tiers {
            let cap = self.sh.effective_capacity[i];
            let occupied = self.sh.used_pages[i] + self.sh.mig_inflight_to[i];
            if occupied <= cap {
                continue;
            }
            let mut excess = occupied - cap;
            let before = out.len();
            for vpn in 0..self.sh.placement.len() as u64 {
                if excess == 0 {
                    break;
                }
                if self.sh.placement[vpn as usize] != i as u8
                    || self.sh.pinned[vpn as usize]
                    || busy.contains(&vpn)
                {
                    continue;
                }
                let Some(dst) = (0..n_tiers)
                    .map(|d| TierId(d as u8))
                    .find(|&d| d.index() != i && self.free_pages(d) > 0)
                else {
                    break; // nowhere to go: defer to a later tick
                };
                self.sh.placement[vpn as usize] = dst.0;
                self.sh.used_pages[i] -= 1;
                self.sh.used_pages[dst.index()] += 1;
                out.push((vpn, dst));
                excess -= 1;
            }
            self.sh.faults.note_evacuated((out.len() - before) as u64);
        }
        out
    }

    fn dispatch(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::LineDone {
                core,
                obj,
                demand,
                tier,
            } => {
                if let Some(tier) = tier {
                    self.sh.cha.on_read_departure(tier, t);
                }
                let c = &mut self.cores[core];
                if demand {
                    c.demand_free += 1;
                } else {
                    c.prefetch_free += 1;
                }
                let st = &mut c.objects[obj as usize];
                st.lines_done += 1;
                if st.lines_done == st.lines_total {
                    let (vaddr, lines, is_write) = (st.vaddr, st.lines_total, st.is_write);
                    let class = c.class;
                    c.ops_completed += 1;
                    if class == TrafficClass::App {
                        self.tick_app_ops += 1;
                    }
                    c.free_object(obj);
                    if is_write {
                        // Dirty lines leave the cache a little later.
                        self.sh.events.push(
                            t + SimTime::from_ns(40.0),
                            Ev::Writeback {
                                vaddr,
                                lines,
                                class,
                            },
                        );
                    }
                }
                Self::try_issue(&mut self.cores[core], &mut self.sh, core, t);
            }
            Ev::CoreWake { core } => {
                self.cores[core].wake_scheduled = false;
                Self::try_issue(&mut self.cores[core], &mut self.sh, core, t);
            }
            Ev::Writeback {
                vaddr,
                lines,
                class,
            } => {
                for i in 0..lines as u64 {
                    let line_addr = vaddr / LINE_SIZE + i;
                    let vpn = line_addr * LINE_SIZE / PAGE_SIZE;
                    let tier = self.sh.tier_of(vpn);
                    self.sh.cha.on_write(tier, class);
                    self.sh.tiers[tier.index()].write(t, line_addr);
                    // A write to a page mid-copy invalidates the
                    // transaction's snapshot (Nomad-style non-exclusive
                    // copy: the app keeps writing the source unhindered).
                    if self.sh.cfg.engine.transactional && self.sh.mig_pending[vpn as usize] > 0 {
                        self.txn_note_write(vpn);
                    }
                }
            }
            Ev::MigStart => {
                self.mig_start(t);
            }
            Ev::MigRead { job } => {
                self.mig_read(t, job);
            }
            Ev::MigLineDone { job, src } => {
                self.sh.cha.on_read_departure(src, t);
                self.mig_line_done(t, job);
            }
            Ev::TxnStart { ch } => {
                self.txn_start(t, ch);
            }
            Ev::TxnRead { job, epoch } => {
                self.txn_read(t, job, epoch);
            }
            Ev::TxnLineDone { job, src, epoch } => {
                // The DMA read completed and leaves the source queue even
                // if the pass it belonged to has been abandoned.
                self.sh.cha.on_read_departure(src, t);
                self.txn_line_done(t, job, epoch);
            }
            Ev::TxnRetry { job, epoch } => {
                self.txn_retry(t, job, epoch);
            }
            Ev::TxnWatchdog { job, epoch } => {
                self.txn_watchdog(t, job, epoch);
            }
            Ev::TxnFlush => {
                self.txn_flush(t);
            }
            Ev::ChaDepart { tier } => {
                self.sh.cha.on_read_departure(tier, t);
            }
        }
    }

    // ---- Core issue path ---------------------------------------------------

    /// Issues as many cache-line requests as slots and dependences allow.
    fn try_issue(core: &mut Core, sh: &mut Shared, core_id: CoreId, t: SimTime) {
        loop {
            // Respect think time between objects.
            if t < core.think_until {
                if !core.wake_scheduled {
                    sh.events
                        .push(core.think_until, Ev::CoreWake { core: core_id });
                    core.wake_scheduled = true;
                }
                return;
            }
            // Ensure there is a current object to issue from.
            if core.cur.is_none() {
                let acc = if let Some(p) = core.pending.take() {
                    p
                } else {
                    if !core.active {
                        return;
                    }
                    core.stream.next(t, &mut core.rng)
                };
                if acc.dependent && core.live_objects > 0 {
                    // Pointer chase: wait for in-flight work to finish.
                    core.pending = Some(acc);
                    return;
                }
                let idx = core.alloc_object(&acc);
                core.cur = Some(idx);
            }
            let idx = core.cur.expect("current object");
            let st = core.objects[idx as usize];
            // Issue remaining lines: the first line is a demand miss, the
            // rest ride the prefetcher.
            let mut i = st.lines_issued;
            while i < st.lines_total {
                let demand = i == 0;
                if demand && core.demand_free == 0 {
                    core.objects[idx as usize].lines_issued = i;
                    return;
                }
                if !demand && core.prefetch_free == 0 {
                    core.objects[idx as usize].lines_issued = i;
                    return;
                }
                let line_addr = st.vaddr / LINE_SIZE + i as u64;
                Self::issue_line(
                    core,
                    sh,
                    core_id,
                    t,
                    line_addr,
                    demand,
                    idx,
                    st.llc_hit_prob,
                );
                i += 1;
            }
            core.objects[idx as usize].lines_issued = i;
            core.cur = None;
            if !core.cfg.think_time.is_zero() {
                core.think_until = t + core.cfg.think_time;
            }
        }
    }

    /// Issues one cache-line read and schedules its completion.
    #[allow(clippy::too_many_arguments)]
    fn issue_line(
        core: &mut Core,
        sh: &mut Shared,
        core_id: CoreId,
        t: SimTime,
        line_addr: u64,
        demand: bool,
        obj: u32,
        llc_hit_prob: f32,
    ) {
        if demand {
            core.demand_free -= 1;
        } else {
            core.prefetch_free -= 1;
        }
        core.lines_issued_total += 1;

        // LLC hit: never reaches memory.
        if llc_hit_prob > 0.0 && core.rng.gen::<f32>() < llc_hit_prob {
            sh.events.push(
                t + sh.llc_hit_latency,
                Ev::LineDone {
                    core: core_id,
                    obj,
                    demand,
                    tier: None,
                },
            );
            return;
        }

        let vpn = line_addr * LINE_SIZE / PAGE_SIZE;
        let tier = sh.tier_of(vpn);

        // Hint fault (TPP): demand access to a marked page traps.
        let mut fault_cost = SimTime::ZERO;
        if demand && sh.marked[vpn as usize] {
            sh.marked[vpn as usize] = false;
            sh.fault_buf.push(HintFault {
                vpn,
                time_to_fault_ns: t.saturating_sub(sh.marked_at[vpn as usize]).as_ns(),
                tier,
            });
            fault_cost = sh.hint_fault_cost;
        }

        // PEBS sampling of application demand misses.
        if demand && core.class == TrafficClass::App && sh.pebs_period > 0 {
            sh.pebs_counter += 1;
            if sh.pebs_counter.is_multiple_of(sh.pebs_period) && !sh.faults.pebs_sample_lost() {
                sh.pebs_buf.push(PebsSample {
                    vpn,
                    is_write: core.objects[obj as usize].is_write,
                    tier,
                });
            }
        }

        sh.cha.on_read_arrival(tier, t, core.class);
        let mem_done = sh.tiers[tier.index()].read(t, line_addr);
        sh.lat_hist[tier.index()].record(mem_done.saturating_sub(t));
        if fault_cost.is_zero() {
            sh.events.push(
                mem_done,
                Ev::LineDone {
                    core: core_id,
                    obj,
                    demand,
                    tier: Some(tier),
                },
            );
        } else {
            // The kernel's fault handler runs on the CPU side: the CHA sees
            // the memory read complete at `mem_done`, while the core's slot
            // is held until the handler returns.
            sh.events.push(mem_done, Ev::ChaDepart { tier });
            sh.events.push(
                mem_done + fault_cost,
                Ev::LineDone {
                    core: core_id,
                    obj,
                    demand,
                    tier: None,
                },
            );
        }
    }

    // ---- Migration engine ---------------------------------------------------

    fn mig_start(&mut self, t: SimTime) {
        let _prof = simkit::profile::scope("machine.mig_engine");
        let Some((vpn, dst, cause)) = self.sh.mig_queue.pop_front() else {
            self.sh.mig_engine_idle = true;
            return;
        };
        // Re-validate: the page may have been migrated or unmapped since.
        let src = self.sh.placement[vpn as usize];
        if src == u8::MAX || src == dst.0 {
            self.sh.mig_inflight_to[dst.index()] -= 1;
            self.sh.mig_pending[vpn as usize] -= 1;
            // Try the next queued page immediately.
            self.sh.events.push(t, Ev::MigStart);
            return;
        }
        self.sh.mig_started += 1;
        self.tick_txn.begun += 1;
        // Engine outage (hard fault): the copy thread is wedged — the
        // migration aborts *and still burns the engine's time budget*, so a
        // backlog builds up exactly as it would behind a hung kthread.
        if self.sh.faults.outage_aborts(t) {
            self.record_abort(t, vpn, dst, AbortReason::Outage);
            let bw = self
                .sh
                .faults
                .migration_bandwidth_at(self.sh.cfg.migration_bandwidth, t);
            self.sh.mig_engine_free = t + SimTime::from_ns(PAGE_SIZE as f64 / bw * 1e9);
            self.sh.events.push(self.sh.mig_engine_free, Ev::MigStart);
            return;
        }
        // Transient migration failure: the copy aborts before touching the
        // DMA engine. The reserved destination frame is released and the
        // failure is surfaced in the next TickReport so control software can
        // retry.
        if self.sh.faults.migration_aborts() {
            self.record_abort(t, vpn, dst, AbortReason::Transient);
            self.sh.events.push(t, Ev::MigStart);
            return;
        }
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::MigrationStart {
                vpn,
                src,
                dst: dst.0,
            }
        });
        // One async span per copy: it outlives this tick if the copy does,
        // and carries the decision span captured at enqueue as its cause.
        let span = self.sh.sink.span_open_at(
            t,
            telemetry::Source::Machine,
            "migration",
            telemetry::SpanPayload::Migration {
                vpn,
                src,
                dst: dst.0,
            },
            cause,
        );
        let job = MigJob {
            vpn,
            dst,
            lines_read: 0,
            lines_done: 0,
            live: true,
            started: t,
            span,
            channel: 0,
            attempt: 1,
            dirty: false,
            committing: false,
            failovers: 0,
            epoch: 0,
        };
        let id = self.alloc_job(job);
        // Pace the copy at the configured migration bandwidth (possibly
        // degraded by an active fault phase).
        let bw = self
            .sh
            .faults
            .migration_bandwidth_at(self.sh.cfg.migration_bandwidth, t);
        let page_time = SimTime::from_ns(PAGE_SIZE as f64 / bw * 1e9);
        self.sh.mig_engine_free = t + page_time;
        self.sh.events.push(t, Ev::MigRead { job: id });
        // The next page starts when the engine has bandwidth budget again.
        self.sh.events.push(self.sh.mig_engine_free, Ev::MigStart);
    }

    fn mig_read(&mut self, t: SimTime, job_id: u32) {
        let job = self.sh.mig_jobs[job_id as usize];
        let src = self.sh.tier_of(job.vpn);
        let line_addr = job.vpn * LINES_PER_PAGE + job.lines_read as u64;
        self.sh.cha.on_read_arrival(src, t, TrafficClass::Migration);
        let done = self.sh.tiers[src.index()].read(t, line_addr);
        self.sh
            .events
            .push(done, Ev::MigLineDone { job: job_id, src });
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.lines_read += 1;
        if (j.lines_read as u64) < LINES_PER_PAGE {
            // Space the copy's reads evenly across the page's time budget.
            let bw = self
                .sh
                .faults
                .migration_bandwidth_at(self.sh.cfg.migration_bandwidth, t);
            let spacing = SimTime::from_ns(PAGE_SIZE as f64 / bw * 1e9) / LINES_PER_PAGE;
            self.sh
                .events
                .push(t + spacing, Ev::MigRead { job: job_id });
        }
    }

    fn mig_line_done(&mut self, t: SimTime, job_id: u32) {
        let _prof = simkit::profile::scope("machine.mig_engine");
        let job = self.sh.mig_jobs[job_id as usize];
        debug_assert!(job.live);
        // Write the line into the destination tier.
        let line_addr = job.vpn * LINES_PER_PAGE + job.lines_done as u64;
        self.sh.cha.on_write(job.dst, TrafficClass::Migration);
        self.sh.tiers[job.dst.index()].write(t, line_addr);
        self.tick_mig_bytes += LINE_SIZE;
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.lines_done += 1;
        if j.lines_done as u64 == LINES_PER_PAGE {
            // Copy complete: flip the mapping.
            self.commit_job(t, job_id);
        }
    }

    /// Flips the mapping of a fully copied job and retires it (shared by
    /// the legacy engine and the transactional commit flush).
    fn commit_job(&mut self, t: SimTime, job_id: u32) {
        let job = self.sh.mig_jobs[job_id as usize];
        let src = self.sh.tier_of(job.vpn);
        self.sh.placement[job.vpn as usize] = job.dst.0;
        self.sh.used_pages[src.index()] -= 1;
        self.sh.used_pages[job.dst.index()] += 1;
        self.sh.mig_inflight_to[job.dst.index()] -= 1;
        self.sh.mig_pending[job.vpn as usize] -= 1;
        self.sh.migrated_pages += 1;
        self.sh.migrated_bytes += PAGE_SIZE;
        self.tick_txn.committed += 1;
        let copy_ns = t.saturating_sub(job.started).as_ns();
        self.tick_copy_ns += copy_ns;
        self.tick_copies += 1;
        // Per-(src, dst)-pair copy-time accumulation: a multi-tier
        // supervisor needs to see which link is slow, not just that
        // some copy somewhere was.
        let pair = (src.0, job.dst.0);
        match self.tick_pair_copy.iter_mut().find(|e| (e.0, e.1) == pair) {
            Some(e) => {
                e.2 += copy_ns;
                e.3 += 1;
            }
            None => self.tick_pair_copy.push((pair.0, pair.1, copy_ns, 1)),
        }
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::MigrationComplete {
                vpn: job.vpn,
                src: src.0,
                dst: job.dst.0,
                copy_ns,
            }
        });
        self.sh.sink.span_close_at(t, job.span);
        self.sh.mig_jobs[job_id as usize].live = false;
        self.sh.mig_free_jobs.push(job_id);
    }

    /// Records one clean abort: the destination reservation is released,
    /// the page's pending count drops, the typed failure lands in this
    /// tick's report, and accounting/telemetry are updated.
    fn record_abort(&mut self, t: SimTime, vpn: Vpn, dst: TierId, reason: AbortReason) {
        self.sh.mig_inflight_to[dst.index()] -= 1;
        self.sh.mig_pending[vpn as usize] -= 1;
        self.sh.mig_aborted[reason.index()] += 1;
        match reason {
            AbortReason::WriteConflict => self.tick_txn.aborted_write_conflict += 1,
            AbortReason::Watchdog => self.tick_txn.aborted_watchdog += 1,
            _ => {}
        }
        self.sh
            .tick_failed
            .push(FailedMigration { vpn, dst, reason });
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::MigrationFail {
                vpn,
                dst: dst.0,
                reason: reason.fail_reason(),
            }
        });
    }

    /// Allocates a job slot, preserving each slot's epoch monotonicity so
    /// events stamped for a retired occupant can never match its successor.
    fn alloc_job(&mut self, mut job: MigJob) -> u32 {
        if let Some(i) = self.sh.mig_free_jobs.pop() {
            job.epoch = self.sh.mig_jobs[i as usize].epoch.wrapping_add(1);
            self.sh.mig_jobs[i as usize] = job;
            i
        } else {
            self.sh.mig_jobs.push(job);
            (self.sh.mig_jobs.len() - 1) as u32
        }
    }

    // ---- Transactional migration engine -------------------------------------
    //
    // N concurrent DMA channels each run copy *transactions*:
    // snapshot-copy → validate → batched-shootdown commit. The source page
    // stays readable and writable throughout; a write to an in-flight page
    // dirties the transaction, which backs off exponentially and re-copies
    // up to `dirty_retry_max` times before aborting cleanly with
    // `AbortReason::WriteConflict`. A watchdog bounds every pass; stuck
    // passes fail over to a healthy channel or abort with
    // `AbortReason::Watchdog`. Validated transactions commit in batches
    // under one TLB shootdown.

    /// Marks every live, not-yet-committing transaction on `vpn` dirty.
    fn txn_note_write(&mut self, vpn: Vpn) {
        for j in self.sh.mig_jobs.iter_mut() {
            if j.live && !j.committing && j.vpn == vpn {
                j.dirty = true;
            }
        }
    }

    /// Live (not yet retired) transactions.
    fn txn_live(&self) -> usize {
        self.sh.mig_jobs.iter().filter(|j| j.live).count()
    }

    /// Schedules pickup events on idle channels while queued pages remain.
    fn txn_kick(&mut self, now: SimTime) {
        let mut want = self.sh.mig_queue.len();
        for ch in 0..self.sh.txn_channel_idle.len() {
            if want == 0 {
                break;
            }
            if self.sh.txn_channel_idle[ch] {
                self.sh.txn_channel_idle[ch] = false;
                let t = now.max(self.sh.txn_channel_free[ch]);
                self.sh.events.push(t, Ev::TxnStart { ch: ch as u32 });
                want -= 1;
            }
        }
    }

    /// Channel `ch` tries to pick up the next queued migration.
    fn txn_start(&mut self, t: SimTime, ch: u32) {
        let _prof = simkit::profile::scope("machine.mig_engine");
        // A stalled channel takes nothing until its stall lifts.
        if let Some(end) = self.sh.faults.channel_stalled_until(ch, t) {
            self.sh.events.push(end, Ev::TxnStart { ch });
            return;
        }
        if self.txn_live() >= self.txn_inflight_limit() as usize {
            // At the in-flight cap: go idle; retiring a transaction re-kicks.
            self.sh.txn_channel_idle[ch as usize] = true;
            return;
        }
        let Some((vpn, dst, cause)) = self.sh.mig_queue.pop_front() else {
            self.sh.txn_channel_idle[ch as usize] = true;
            return;
        };
        // Re-validate: the page may have been migrated or unmapped since.
        let src = self.sh.placement[vpn as usize];
        if src == u8::MAX || src == dst.0 {
            self.sh.mig_inflight_to[dst.index()] -= 1;
            self.sh.mig_pending[vpn as usize] -= 1;
            self.sh.events.push(t, Ev::TxnStart { ch });
            return;
        }
        self.sh.mig_started += 1;
        self.tick_txn.begun += 1;
        // The injected engine faults hit the transactional engine too: an
        // outage wedges the channel for a page time, a transient failure
        // aborts before the copy starts.
        if self.sh.faults.outage_aborts(t) {
            self.record_abort(t, vpn, dst, AbortReason::Outage);
            let bw = self
                .sh
                .faults
                .migration_bandwidth_at(self.sh.cfg.migration_bandwidth, t);
            let free = t + SimTime::from_ns(PAGE_SIZE as f64 / bw * 1e9);
            self.sh.txn_channel_free[ch as usize] = free;
            self.sh.events.push(free, Ev::TxnStart { ch });
            return;
        }
        if self.sh.faults.migration_aborts() {
            self.record_abort(t, vpn, dst, AbortReason::Transient);
            self.sh.events.push(t, Ev::TxnStart { ch });
            return;
        }
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::MigrationStart {
                vpn,
                src,
                dst: dst.0,
            }
        });
        let span = self.sh.sink.span_open_at(
            t,
            telemetry::Source::Machine,
            "migration",
            telemetry::SpanPayload::Migration {
                vpn,
                src,
                dst: dst.0,
            },
            cause,
        );
        let id = self.alloc_job(MigJob {
            vpn,
            dst,
            lines_read: 0,
            lines_done: 0,
            live: true,
            started: t,
            span,
            channel: ch,
            attempt: 1,
            dirty: false,
            committing: false,
            failovers: 0,
            epoch: 0,
        });
        let epoch = self.sh.mig_jobs[id as usize].epoch;
        // Pace this channel at the configured per-channel bandwidth; other
        // channels copy concurrently (aggregate engine bandwidth scales
        // with the channel count).
        let bw = self
            .sh
            .faults
            .migration_bandwidth_at(self.sh.cfg.migration_bandwidth, t);
        let page_time = SimTime::from_ns(PAGE_SIZE as f64 / bw * 1e9);
        self.sh.txn_channel_free[ch as usize] = t + page_time;
        self.sh.events.push(t, Ev::TxnRead { job: id, epoch });
        self.sh.events.push(
            t + self.sh.cfg.engine.watchdog,
            Ev::TxnWatchdog { job: id, epoch },
        );
        // The channel picks up its next transaction when it has bandwidth
        // budget again (passes pipeline behind the in-flight cap).
        self.sh
            .events
            .push(self.sh.txn_channel_free[ch as usize], Ev::TxnStart { ch });
    }

    /// Issues the next snapshot read of a copy pass.
    fn txn_read(&mut self, t: SimTime, job_id: u32, epoch: u32) {
        let job = self.sh.mig_jobs[job_id as usize];
        if !job.live || job.epoch != epoch || job.committing {
            return; // abandoned pass
        }
        // A stall freezes the channel mid-pass: reads defer to the stall's
        // end (the watchdog rescues the transaction before then).
        if let Some(end) = self.sh.faults.channel_stalled_until(job.channel, t) {
            self.sh.events.push(end, Ev::TxnRead { job: job_id, epoch });
            return;
        }
        let src = self.sh.tier_of(job.vpn);
        let line_addr = job.vpn * LINES_PER_PAGE + job.lines_read as u64;
        self.sh.cha.on_read_arrival(src, t, TrafficClass::Migration);
        let done = self.sh.tiers[src.index()].read(t, line_addr);
        self.sh.events.push(
            done,
            Ev::TxnLineDone {
                job: job_id,
                src,
                epoch,
            },
        );
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.lines_read += 1;
        if (j.lines_read as u64) < LINES_PER_PAGE {
            let bw = self
                .sh
                .faults
                .migration_bandwidth_at(self.sh.cfg.migration_bandwidth, t);
            let spacing = SimTime::from_ns(PAGE_SIZE as f64 / bw * 1e9) / LINES_PER_PAGE;
            self.sh
                .events
                .push(t + spacing, Ev::TxnRead { job: job_id, epoch });
        }
    }

    /// A snapshot read returned: write it out and validate at page end.
    fn txn_line_done(&mut self, t: SimTime, job_id: u32, epoch: u32) {
        let _prof = simkit::profile::scope("machine.mig_engine");
        let job = self.sh.mig_jobs[job_id as usize];
        if !job.live || job.epoch != epoch {
            return; // the pass was abandoned while this read was in flight
        }
        let line_addr = job.vpn * LINES_PER_PAGE + job.lines_done as u64;
        self.sh.cha.on_write(job.dst, TrafficClass::Migration);
        self.sh.tiers[job.dst.index()].write(t, line_addr);
        self.tick_mig_bytes += LINE_SIZE;
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.lines_done += 1;
        if j.lines_done as u64 == LINES_PER_PAGE {
            self.txn_validate(t, job_id);
        }
    }

    /// Validates a fully copied pass: clean snapshots join the commit
    /// batch; dirty ones retry with exponential backoff or abort.
    fn txn_validate(&mut self, t: SimTime, job_id: u32) {
        let job = self.sh.mig_jobs[job_id as usize];
        let dirty = job.dirty || self.sh.faults.storm_dirties(job.vpn, job.attempt, t);
        if !dirty {
            self.sh.mig_jobs[job_id as usize].committing = true;
            self.sh.txn_commit_batch.push(job_id);
            if !self.sh.txn_flush_scheduled {
                // The shootdown cost doubles as the batch linger window:
                // transactions validated while the IPI is in flight ride
                // the same flush.
                self.sh.txn_flush_scheduled = true;
                self.sh
                    .events
                    .push(t + self.sh.cfg.engine.shootdown_cost, Ev::TxnFlush);
            }
            return;
        }
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::TxnDirty {
                vpn: job.vpn,
                attempt: job.attempt,
            }
        });
        if job.attempt > self.sh.cfg.engine.dirty_retry_max {
            // Out of retries: the page is write-hot; keep it at the source
            // rather than ping-ponging.
            self.txn_abort(t, job_id, AbortReason::WriteConflict);
            return;
        }
        self.sh.txn_dirty_retries += 1;
        self.tick_txn.dirty_retries += 1;
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.attempt += 1;
        j.dirty = false;
        j.lines_read = 0;
        j.lines_done = 0;
        j.epoch = j.epoch.wrapping_add(1);
        let epoch = j.epoch;
        // Exponential backoff, capped at 8 doublings.
        let shift = (j.attempt - 2).min(8);
        let delay = self.sh.cfg.engine.dirty_retry_backoff * (1u64 << shift);
        self.sh
            .events
            .push(t + delay, Ev::TxnRetry { job: job_id, epoch });
    }

    /// Backoff expired: start a fresh copy pass with a fresh deadline.
    fn txn_retry(&mut self, t: SimTime, job_id: u32, epoch: u32) {
        let job = self.sh.mig_jobs[job_id as usize];
        if !job.live || job.epoch != epoch {
            return;
        }
        self.sh.events.push(t, Ev::TxnRead { job: job_id, epoch });
        self.sh.events.push(
            t + self.sh.cfg.engine.watchdog,
            Ev::TxnWatchdog { job: job_id, epoch },
        );
    }

    /// Watchdog deadline hit while the pass is still copying: fail over to
    /// a healthy channel, or abort when none is left.
    fn txn_watchdog(&mut self, t: SimTime, job_id: u32, epoch: u32) {
        let job = self.sh.mig_jobs[job_id as usize];
        if !job.live || job.epoch != epoch || job.committing {
            return; // the pass finished (or moved on) before the deadline
        }
        let channels = self.sh.txn_channel_free.len() as u32;
        let healthy = (0..channels)
            .filter(|&c| self.sh.faults.channel_stalled_until(c, t).is_none())
            .min_by_key(|&c| self.sh.txn_channel_free[c as usize]);
        let (Some(to), true) = (healthy, job.failovers < channels) else {
            // Every channel is stalled, or this transaction has already
            // burned a failover per channel: give up cleanly.
            self.txn_abort(t, job_id, AbortReason::Watchdog);
            return;
        };
        self.sh.txn_failovers += 1;
        self.tick_txn.failovers += 1;
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::TxnFailover {
                vpn: job.vpn,
                from_channel: job.channel,
                to_channel: to,
            }
        });
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.failovers += 1;
        j.channel = to;
        j.lines_read = 0;
        j.lines_done = 0;
        j.dirty = false;
        j.epoch = j.epoch.wrapping_add(1);
        let epoch = j.epoch;
        self.sh.events.push(t, Ev::TxnRead { job: job_id, epoch });
        self.sh.events.push(
            t + self.sh.cfg.engine.watchdog,
            Ev::TxnWatchdog { job: job_id, epoch },
        );
    }

    /// Aborts a live transaction cleanly: the page is intact at its
    /// source, the reservation is released, and the span closes with the
    /// typed reason in this tick's report.
    fn txn_abort(&mut self, t: SimTime, job_id: u32, reason: AbortReason) {
        let job = self.sh.mig_jobs[job_id as usize];
        self.record_abort(t, job.vpn, job.dst, reason);
        self.sh.sink.span_close_at(t, job.span);
        let j = &mut self.sh.mig_jobs[job_id as usize];
        j.live = false;
        j.epoch = j.epoch.wrapping_add(1);
        self.sh.mig_free_jobs.push(job_id);
        // Retiring a transaction frees an in-flight slot.
        self.txn_kick(t);
    }

    /// Batched commit: up to `shootdown_batch` parked transactions flip
    /// under one shootdown; any overflow pipelines into the next flush.
    fn txn_flush(&mut self, t: SimTime) {
        let _prof = simkit::profile::scope("machine.mig_engine");
        self.sh.txn_flush_scheduled = false;
        if self.sh.txn_commit_batch.is_empty() {
            return;
        }
        let n = self
            .sh
            .txn_commit_batch
            .len()
            .min(self.txn_batch_limit() as usize);
        let batch: Vec<u32> = self.sh.txn_commit_batch.drain(..n).collect();
        self.sh.txn_batches += 1;
        self.sh.txn_batched_pages += batch.len() as u64;
        self.tick_txn.commit_batches += 1;
        let pages = batch.len() as u64;
        let cost_ns = self.sh.cfg.engine.shootdown_cost.as_ns();
        for job_id in batch {
            self.commit_job(t, job_id);
        }
        self.sh.sink.emit_at(t, telemetry::Source::Machine, || {
            telemetry::EventKind::BatchCommit { pages, cost_ns }
        });
        if !self.sh.txn_commit_batch.is_empty() {
            self.sh.txn_flush_scheduled = true;
            self.sh
                .events
                .push(t + self.sh.cfg.engine.shootdown_cost, Ev::TxnFlush);
        }
        self.txn_kick(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    /// A stream that reads one fixed line forever (always LLC-missing).
    struct FixedLine(u64);
    impl AccessStream for FixedLine {
        fn next(&mut self, _now: SimTime, _rng: &mut SmallRng) -> ObjectAccess {
            ObjectAccess::read_line(self.0)
        }
    }

    /// A stream reading random lines over a page range.
    struct RandomPages {
        start: Vpn,
        pages: u64,
    }
    impl AccessStream for RandomPages {
        fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
            let vpn = self.start + rng.gen_range(0..self.pages);
            let off = rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE;
            ObjectAccess::read_line(vpn * PAGE_SIZE + off)
        }
    }

    fn machine_one_core(mlp: usize) -> Machine {
        let cfg = MachineConfig::icelake_two_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..1024, TierId::DEFAULT);
        m.add_core(
            Box::new(RandomPages {
                start: 0,
                pages: 1024,
            }),
            CoreConfig {
                demand_slots: mlp,
                prefetch_slots: 0,
                think_time: SimTime::ZERO,
            },
            TrafficClass::App,
        );
        m
    }

    #[test]
    fn single_inflight_latency_is_unloaded() {
        // One core, one slot: measured latency must sit at the unloaded
        // latency of the default tier (~70 ns, with some row-hit luck below).
        let mut m = machine_one_core(1);
        let rep = m.run_tick(SimTime::from_us(100.0));
        let l = rep.littles_latency_ns(TierId::DEFAULT).unwrap();
        assert!(l > 50.0 && l < 75.0, "unloaded latency = {l}ns");
    }

    #[test]
    fn throughput_matches_n64_over_l() {
        // The paper's core identity: T = N * 64 / L.
        let mut m = machine_one_core(10);
        m.run_tick(SimTime::from_us(20.0)); // warm up
        let rep = m.run_tick(SimTime::from_us(100.0));
        let l_ns = rep.littles_latency_ns(TierId::DEFAULT).unwrap();
        let ops_per_ns = rep.app_ops as f64 / rep.duration().as_ns();
        let predicted = 10.0 / l_ns;
        assert!(
            (ops_per_ns - predicted).abs() / predicted < 0.1,
            "T = {ops_per_ns}/ns vs N/L = {predicted}/ns"
        );
    }

    #[test]
    fn littles_law_matches_true_latency() {
        let mut m = machine_one_core(10);
        m.run_tick(SimTime::from_us(20.0));
        let rep = m.run_tick(SimTime::from_us(100.0));
        let est = rep.littles_latency_ns(TierId::DEFAULT).unwrap();
        let truth = rep.true_latency_ns[0].unwrap();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "Little's law {est}ns vs true {truth}ns"
        );
    }

    #[test]
    fn remote_tier_latency_is_higher() {
        let cfg = MachineConfig::icelake_two_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..512, TierId::DEFAULT);
        m.place_range(512..1024, TierId::ALTERNATE);
        m.add_core(
            Box::new(RandomPages {
                start: 0,
                pages: 512,
            }),
            CoreConfig {
                demand_slots: 1,
                ..CoreConfig::default()
            },
            TrafficClass::App,
        );
        m.add_core(
            Box::new(RandomPages {
                start: 512,
                pages: 512,
            }),
            CoreConfig {
                demand_slots: 1,
                ..CoreConfig::default()
            },
            TrafficClass::App,
        );
        let rep = m.run_tick(SimTime::from_us(200.0));
        let l_def = rep.littles_latency_ns(TierId::DEFAULT).unwrap();
        let l_alt = rep.littles_latency_ns(TierId::ALTERNATE).unwrap();
        assert!(
            l_alt > l_def * 1.6,
            "default {l_def}ns, alternate {l_alt}ns"
        );
        assert!(l_alt < 150.0, "alternate unloaded {l_alt}ns");
    }

    #[test]
    fn loaded_latency_inflates_with_cores() {
        // More cores hammering the same tier must inflate its latency well
        // beyond unloaded — the §3.1 memory interconnect contention regime.
        let cfg = MachineConfig::icelake_two_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..4096, TierId::DEFAULT);
        for i in 0..24 {
            m.add_core(
                Box::new(RandomPages {
                    start: (i % 4) * 1024,
                    pages: 1024,
                }),
                CoreConfig::default(),
                TrafficClass::App,
            );
        }
        m.run_tick(SimTime::from_us(20.0));
        let rep = m.run_tick(SimTime::from_us(100.0));
        let l = rep.littles_latency_ns(TierId::DEFAULT).unwrap();
        assert!(l > 100.0, "loaded latency should inflate, got {l}ns");
    }

    #[test]
    fn migration_moves_page_and_respects_capacity() {
        let cfg = MachineConfig::icelake_two_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..128, TierId::DEFAULT);
        m.add_core(
            Box::new(FixedLine(0)),
            CoreConfig::default(),
            TrafficClass::App,
        );
        m.enqueue_migration(5, TierId::ALTERNATE).unwrap();
        // A pinned page refuses outright.
        m.pin(6);
        assert_eq!(
            m.enqueue_migration(6, TierId::ALTERNATE),
            Err(EnqueueError::Pinned)
        );
        // Give the engine time: 4 KB at 2.4 GB/s is ~1.7 us.
        m.run_tick(SimTime::from_us(20.0));
        assert_eq!(m.tier_of(5), Some(TierId::ALTERNATE));
        assert_eq!(m.migrated_pages(), 1);
        assert_eq!(m.used_pages(TierId::ALTERNATE), 1);
        assert_eq!(m.used_pages(TierId::DEFAULT), 127);
    }

    #[test]
    fn migration_to_same_tier_is_rejected() {
        let cfg = MachineConfig::icelake_two_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..8, TierId::DEFAULT);
        assert_eq!(
            m.enqueue_migration(0, TierId::DEFAULT),
            Err(EnqueueError::Moot)
        );
    }

    #[test]
    fn migration_respects_destination_capacity() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[1].capacity_bytes = 2 * PAGE_SIZE;
        let mut m = Machine::new(cfg);
        m.place_range(0..8, TierId::DEFAULT);
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
        m.enqueue_migration(1, TierId::ALTERNATE).unwrap();
        // Third must fail: both frames are reserved by in-flight migrations.
        assert_eq!(
            m.enqueue_migration(2, TierId::ALTERNATE),
            Err(EnqueueError::DestinationFull)
        );
    }

    #[test]
    fn migration_generates_traffic() {
        let cfg = MachineConfig::icelake_two_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..128, TierId::DEFAULT);
        for vpn in 0..32 {
            m.enqueue_migration(vpn, TierId::ALTERNATE).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(1.0));
        assert_eq!(rep.migrated_bytes, 32 * PAGE_SIZE);
        let mig = TrafficClass::Migration.index();
        // Reads from the default tier, writes into the alternate tier.
        assert_eq!(rep.tiers[0].bytes_by_class[mig], 32 * PAGE_SIZE);
        assert_eq!(rep.tiers[1].bytes_by_class[mig], 32 * PAGE_SIZE);
    }

    #[test]
    fn migration_is_rate_limited() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.migration_bandwidth = 1e9; // 1 GB/s
        let mut m = Machine::new(cfg);
        m.place_range(0..2048, TierId::DEFAULT);
        for vpn in 0..2048 {
            let _ = m.enqueue_migration(vpn, TierId::ALTERNATE);
        }
        let rep = m.run_tick(SimTime::from_ms(1.0));
        // At 1 GB/s, one millisecond moves ~1 MB.
        let mb = rep.migrated_bytes as f64 / 1e6;
        assert!((mb - 1.0).abs() < 0.1, "migrated {mb} MB in 1 ms at 1 GB/s");
        assert!(rep.migration_backlog > 0);
    }

    #[test]
    fn pebs_sampling_rate() {
        let mut m = machine_one_core(10);
        m.set_pebs_period(64);
        let rep = m.run_tick(SimTime::from_us(100.0));
        // ~10 slots / ~70ns => ~0.14 lines/ns => 14k lines per 100us; one
        // sample per 64 demand misses => on the order of 200 samples.
        assert!(
            rep.pebs.len() > 50 && rep.pebs.len() < 1_000,
            "samples = {}",
            rep.pebs.len()
        );
        for s in &rep.pebs {
            assert!(s.vpn < 1024);
            assert_eq!(s.tier, TierId::DEFAULT);
        }
    }

    #[test]
    fn hint_fault_fires_once_per_mark() {
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..4, TierId::DEFAULT);
        m.add_core(
            Box::new(FixedLine(0)),
            CoreConfig {
                demand_slots: 1,
                ..CoreConfig::default()
            },
            TrafficClass::App,
        );
        m.mark_page(0);
        let rep = m.run_tick(SimTime::from_us(50.0));
        assert_eq!(rep.faults.len(), 1, "exactly one fault per marking");
        assert_eq!(rep.faults[0].vpn, 0);
        assert!(!m.is_marked(0));
        // Re-marking faults again.
        m.mark_page(0);
        let rep2 = m.run_tick(SimTime::from_us(50.0));
        assert_eq!(rep2.faults.len(), 1);
        assert!(rep2.faults[0].time_to_fault_ns < 10_000.0);
    }

    #[test]
    fn deactivated_core_stops_issuing() {
        let mut m = machine_one_core(10);
        let r1 = m.run_tick(SimTime::from_us(50.0));
        assert!(r1.app_ops > 0);
        m.set_core_active(0, false);
        m.run_tick(SimTime::from_us(10.0)); // drain in-flight
        let r2 = m.run_tick(SimTime::from_us(50.0));
        assert_eq!(r2.app_ops, 0);
        m.set_core_active(0, true);
        let r3 = m.run_tick(SimTime::from_us(50.0));
        assert!(r3.app_ops > 0);
    }

    #[test]
    fn llc_hits_do_not_touch_memory() {
        struct AlwaysHit;
        impl AccessStream for AlwaysHit {
            fn next(&mut self, _now: SimTime, _rng: &mut SmallRng) -> ObjectAccess {
                ObjectAccess {
                    vaddr: 0,
                    size: 64,
                    is_write: false,
                    dependent: false,
                    llc_hit_prob: 1.0,
                }
            }
        }
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..4, TierId::DEFAULT);
        m.add_core(
            Box::new(AlwaysHit),
            CoreConfig::default(),
            TrafficClass::App,
        );
        let rep = m.run_tick(SimTime::from_us(10.0));
        assert!(rep.app_ops > 0);
        assert_eq!(rep.tiers[0].arrivals, 0, "no memory traffic on LLC hits");
    }

    #[test]
    fn writes_produce_writeback_traffic() {
        struct WriteLine;
        impl AccessStream for WriteLine {
            fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
                ObjectAccess {
                    vaddr: rng.gen_range(0u64..256) * 64,
                    size: 64,
                    is_write: true,
                    dependent: false,
                    llc_hit_prob: 0.0,
                }
            }
        }
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..4, TierId::DEFAULT);
        m.add_core(
            Box::new(WriteLine),
            CoreConfig::default(),
            TrafficClass::App,
        );
        m.run_tick(SimTime::from_us(10.0));
        let rep = m.run_tick(SimTime::from_us(50.0));
        let app = TrafficClass::App.index();
        let bytes = rep.tiers[0].bytes_by_class[app];
        // Writeback bytes roughly double the traffic vs reads alone.
        assert!(
            bytes as f64 > 1.8 * rep.tiers[0].arrivals as f64 * 64.0,
            "bytes {bytes} vs reads {}",
            rep.tiers[0].arrivals
        );
    }

    #[test]
    fn dependent_stream_limits_parallelism() {
        struct Chase {
            pages: u64,
        }
        impl AccessStream for Chase {
            fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
                let vpn = rng.gen_range(0..self.pages);
                ObjectAccess {
                    vaddr: vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE,
                    size: 64,
                    is_write: false,
                    dependent: true,
                    llc_hit_prob: 0.0,
                }
            }
        }
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..1024, TierId::DEFAULT);
        m.add_core(
            Box::new(Chase { pages: 1024 }),
            CoreConfig::default(),
            TrafficClass::App,
        );
        m.run_tick(SimTime::from_us(20.0));
        let rep = m.run_tick(SimTime::from_us(100.0));
        // With full dependence, occupancy must hover near 1 despite 10
        // demand slots.
        assert!(
            rep.tiers[0].occupancy < 1.2,
            "occupancy {} should be ~1 for a pointer chase",
            rep.tiers[0].occupancy
        );
    }

    #[test]
    fn multi_line_objects_use_prefetch_slots() {
        struct BigObjects;
        impl AccessStream for BigObjects {
            fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
                let vpn = rng.gen_range(0u64..512);
                ObjectAccess {
                    vaddr: vpn * PAGE_SIZE,
                    size: 4096,
                    is_write: false,
                    dependent: false,
                    llc_hit_prob: 0.0,
                }
            }
        }
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..512, TierId::DEFAULT);
        m.add_core(
            Box::new(BigObjects),
            CoreConfig::default(),
            TrafficClass::App,
        );
        m.run_tick(SimTime::from_us(20.0));
        let rep = m.run_tick(SimTime::from_us(100.0));
        // Effective parallelism beyond the 10 demand slots (paper §5.1:
        // larger objects raise in-flight misses via prefetching).
        assert!(
            rep.tiers[0].occupancy > 12.0,
            "occupancy {} should exceed demand slots",
            rep.tiers[0].occupancy
        );
    }

    #[test]
    fn accesses_follow_migrated_page() {
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..8, TierId::DEFAULT);
        m.add_core(
            Box::new(FixedLine(0)),
            CoreConfig {
                demand_slots: 1,
                ..CoreConfig::default()
            },
            TrafficClass::App,
        );
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
        m.run_tick(SimTime::from_us(50.0));
        let rep = m.run_tick(SimTime::from_us(50.0));
        // All post-migration app reads land on the alternate tier.
        let app = TrafficClass::App.index();
        assert!(rep.tiers[1].bytes_by_class[app] > 0);
        assert_eq!(rep.tiers[0].bytes_by_class[app], 0);
    }

    // ---- Fault injection ----------------------------------------------------

    #[test]
    fn certain_migration_failure_aborts_and_releases_reservation() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.faults.migration_fail_prob = 1.0;
        let mut m = Machine::new(cfg);
        m.place_range(0..8, TierId::DEFAULT);
        for vpn in 0..8 {
            m.enqueue_migration(vpn, TierId::ALTERNATE).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(1.0));
        // Every migration aborted: pages stay put, reservations are released,
        // and every failure is reported for the control software to retry.
        assert_eq!(m.migrated_pages(), 0);
        assert_eq!(m.used_pages(TierId::ALTERNATE), 0);
        assert_eq!(rep.migrated_bytes, 0);
        assert_eq!(rep.failed_migrations.len(), 8);
        assert_eq!(rep.fault_stats.migration_failures, 8);
        for f in &rep.failed_migrations {
            assert!(f.vpn < 8);
            assert_eq!(f.dst, TierId::ALTERNATE);
            assert_eq!(f.reason, AbortReason::Transient);
            assert_eq!(m.tier_of(f.vpn), Some(TierId::DEFAULT));
        }
        // The books balance across total failure.
        let c = m.migration_counters();
        assert_eq!(c.started, 8);
        assert_eq!(c.aborted_transient, 8);
        assert_eq!(c.in_flight(), 0);
        // Released frames are immediately reusable.
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
    }

    #[test]
    fn partial_migration_failure_is_reported_per_page() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.faults.migration_fail_prob = 0.5;
        let mut m = Machine::new(cfg);
        m.place_range(0..64, TierId::DEFAULT);
        for vpn in 0..64 {
            m.enqueue_migration(vpn, TierId::ALTERNATE).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(2.0));
        let failed = rep.failed_migrations.len() as u64;
        assert_eq!(rep.fault_stats.migration_failures, failed);
        assert!(failed > 0 && failed < 64, "expected a mix, got {failed}");
        assert_eq!(m.migrated_pages() + failed, 64);
        // A failed page is still at the source; a migrated one at the dest.
        for f in &rep.failed_migrations {
            assert_eq!(m.tier_of(f.vpn), Some(TierId::DEFAULT));
        }
    }

    #[test]
    fn counter_faults_do_not_perturb_execution() {
        // Counter noise corrupts only what the control software reads; the
        // machine itself (app progress, true latency) is bit-identical.
        let mut noisy_cfg = MachineConfig::icelake_two_tier();
        noisy_cfg.faults.counter_noise = 0.5;
        noisy_cfg.faults.counter_drop_prob = 0.2;
        noisy_cfg.faults.counter_stale_prob = 0.2;
        let mut clean = machine_one_core(10);
        let mut noisy = Machine::new(noisy_cfg);
        noisy.place_range(0..1024, TierId::DEFAULT);
        noisy.add_core(
            Box::new(RandomPages {
                start: 0,
                pages: 1024,
            }),
            CoreConfig {
                demand_slots: 10,
                prefetch_slots: 0,
                think_time: SimTime::ZERO,
            },
            TrafficClass::App,
        );
        let mut saw_perturbed = false;
        for _ in 0..20 {
            let a = clean.run_tick(SimTime::from_us(50.0));
            let b = noisy.run_tick(SimTime::from_us(50.0));
            assert_eq!(a.app_ops, b.app_ops);
            assert_eq!(a.true_latency_ns, b.true_latency_ns);
            if b.fault_stats.total() > 0 {
                saw_perturbed = true;
            }
        }
        assert!(saw_perturbed, "fault plan never fired in 20 ticks");
    }

    #[test]
    fn bandwidth_degradation_phase_slows_migration() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.migration_bandwidth = 1e9; // 1 GB/s nominal
        cfg.faults
            .bandwidth_phases
            .push(crate::faults::BandwidthPhase {
                start: SimTime::ZERO,
                end: Some(SimTime::from_ms(10.0)),
                factor: 0.25,
            });
        let mut m = Machine::new(cfg);
        m.place_range(0..2048, TierId::DEFAULT);
        for vpn in 0..2048 {
            let _ = m.enqueue_migration(vpn, TierId::ALTERNATE);
        }
        let rep = m.run_tick(SimTime::from_ms(1.0));
        // Degraded to 250 MB/s: one millisecond moves ~0.25 MB.
        let mb = rep.migrated_bytes as f64 / 1e6;
        assert!(
            (mb - 0.25).abs() < 0.05,
            "migrated {mb} MB under 0.25x phase"
        );
    }

    #[test]
    fn pebs_loss_thins_samples_without_changing_execution() {
        let mut lossy_cfg = MachineConfig::icelake_two_tier();
        lossy_cfg.faults.pebs_loss_prob = 0.5;
        let mut clean = machine_one_core(10);
        clean.set_pebs_period(64);
        let mut lossy = Machine::new(lossy_cfg);
        lossy.place_range(0..1024, TierId::DEFAULT);
        lossy.add_core(
            Box::new(RandomPages {
                start: 0,
                pages: 1024,
            }),
            CoreConfig {
                demand_slots: 10,
                prefetch_slots: 0,
                think_time: SimTime::ZERO,
            },
            TrafficClass::App,
        );
        lossy.set_pebs_period(64);
        let a = clean.run_tick(SimTime::from_ms(1.0));
        let b = lossy.run_tick(SimTime::from_ms(1.0));
        assert_eq!(a.app_ops, b.app_ops);
        assert!(b.pebs.len() < a.pebs.len());
        assert!(
            b.pebs.len() + b.fault_stats.pebs_dropped as usize == a.pebs.len(),
            "dropped + delivered must equal the fault-free sample count"
        );
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let build = || {
            let mut cfg = MachineConfig::icelake_two_tier();
            cfg.faults.counter_noise = 0.3;
            cfg.faults.counter_stale_prob = 0.1;
            cfg.faults.counter_drop_prob = 0.05;
            cfg.faults.migration_fail_prob = 0.2;
            cfg.faults.pebs_loss_prob = 0.3;
            let mut m = Machine::new(cfg);
            m.place_range(0..1024, TierId::DEFAULT);
            m.add_core(
                Box::new(RandomPages {
                    start: 0,
                    pages: 1024,
                }),
                CoreConfig::default(),
                TrafficClass::App,
            );
            m.set_pebs_period(64);
            m
        };
        let (mut a, mut b) = (build(), build());
        for i in 0..10 {
            if i % 3 == 0 {
                let _ = a.enqueue_migration(i, TierId::ALTERNATE);
                let _ = b.enqueue_migration(i, TierId::ALTERNATE);
            }
            let ra = a.run_tick(SimTime::from_us(100.0));
            let rb = b.run_tick(SimTime::from_us(100.0));
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "tick {i} diverged");
        }
    }

    /// Recounts placement and checks it against the used-page accounting:
    /// no page lost or duplicated.
    fn assert_pages_conserved(m: &Machine, expect_mapped: u64) {
        let mut by_tier = vec![0u64; m.config().tiers.len()];
        let mut mapped = 0u64;
        for vpn in 0..m.config().virtual_pages {
            if let Some(t) = m.tier_of(vpn) {
                by_tier[t.index()] += 1;
                mapped += 1;
            }
        }
        assert_eq!(mapped, expect_mapped, "pages lost or duplicated");
        for (i, &n) in by_tier.iter().enumerate() {
            assert_eq!(
                n, m.sh.used_pages[i],
                "tier {i} used-page accounting diverged from placement"
            );
        }
    }

    #[test]
    fn tier_shrink_evacuates_resident_pages() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 1024 * PAGE_SIZE;
        cfg.faults.tier_shrinks.push(crate::TierShrink {
            tier: TierId::DEFAULT,
            at: SimTime::from_us(100.0),
            new_frames: 16,
        });
        let mut m = Machine::new(cfg);
        m.place_range(0..64, TierId::DEFAULT);
        m.place_range(64..128, TierId::ALTERNATE);
        m.validate_fault_feasibility().unwrap();

        // Before the shrink fires, nothing moves.
        let rep = m.run_tick(SimTime::from_us(100.0));
        assert!(rep.evacuated.is_empty());
        assert_eq!(m.capacity_pages(TierId::DEFAULT), 64);

        // The first tick at/after t=150us applies the shrink and evacuates.
        let rep = m.run_tick(SimTime::from_us(100.0));
        assert_eq!(m.capacity_pages(TierId::DEFAULT), 16);
        assert_eq!(rep.evacuated.len(), 48);
        assert_eq!(rep.fault_stats.pages_evacuated, 48);
        for &(vpn, dst) in &rep.evacuated {
            assert_eq!(dst, TierId::ALTERNATE);
            assert_eq!(m.tier_of(vpn), Some(TierId::ALTERNATE));
        }
        assert!(m.used_pages(TierId::DEFAULT) <= 16);
        assert_pages_conserved(&m, 128);

        // Later ticks: already applied, nothing further to do.
        let rep = m.run_tick(SimTime::from_us(100.0));
        assert!(rep.evacuated.is_empty());
        assert_eq!(rep.fault_stats.pages_evacuated, 0);
    }

    #[test]
    fn shrink_below_pinned_pages_is_rejected() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.faults.tier_shrinks.push(crate::TierShrink {
            tier: TierId::DEFAULT,
            at: SimTime::ZERO,
            new_frames: 4,
        });
        let mut m = Machine::new(cfg);
        m.place_range(0..32, TierId::DEFAULT);
        for vpn in 0..8 {
            m.pin(vpn);
        }
        let err = m.validate_fault_feasibility().unwrap_err();
        assert!(err.contains("pinned"), "unhelpful error: {err}");
    }

    #[test]
    fn shrink_that_overflows_total_capacity_is_rejected() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[0].capacity_bytes = 64 * PAGE_SIZE;
        cfg.tiers[1].capacity_bytes = 64 * PAGE_SIZE;
        cfg.faults.tier_shrinks.push(crate::TierShrink {
            tier: TierId::DEFAULT,
            at: SimTime::ZERO,
            new_frames: 16,
        });
        let mut m = Machine::new(cfg);
        m.place_range(0..64, TierId::DEFAULT);
        m.place_range(64..128, TierId::ALTERNATE);
        let err = m.validate_fault_feasibility().unwrap_err();
        assert!(err.contains("frames"), "unhelpful error: {err}");
    }

    #[test]
    fn engine_outage_fails_migrations_then_recovers() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.faults.engine_outages.push(crate::EngineOutage {
            start: SimTime::ZERO,
            end: SimTime::from_us(500.0),
        });
        let mut m = Machine::new(cfg);
        m.place_range(0..64, TierId::DEFAULT);
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
        let rep = m.run_tick(SimTime::from_us(100.0));
        assert_eq!(rep.fault_stats.engine_outage_aborts, 1);
        assert_eq!(
            rep.failed_migrations,
            vec![FailedMigration {
                vpn: 0,
                dst: TierId::ALTERNATE,
                reason: AbortReason::Outage,
            }]
        );
        assert_eq!(m.tier_of(0), Some(TierId::DEFAULT));
        assert_eq!(m.migrated_pages(), 0);
        // Past the outage window the engine works again.
        for _ in 0..4 {
            m.run_tick(SimTime::from_us(100.0));
        }
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
        m.run_tick(SimTime::from_us(100.0));
        assert_eq!(m.tier_of(0), Some(TierId::ALTERNATE));
        assert_eq!(m.migrated_pages(), 1);
    }

    #[test]
    fn admission_limit_caps_migrations_per_tick() {
        let mut m = Machine::new(MachineConfig::icelake_two_tier());
        m.place_range(0..64, TierId::DEFAULT);
        m.set_migration_admission_limit(Some(2));
        let admitted = (0..5)
            .filter(|&v| m.enqueue_migration(v, TierId::ALTERNATE).is_ok())
            .count();
        assert_eq!(admitted, 2);
        assert_eq!(
            m.enqueue_migration(5, TierId::ALTERNATE),
            Err(EnqueueError::EngineFrozen)
        );
        // The counter resets at each tick boundary …
        m.run_tick(SimTime::from_us(100.0));
        m.enqueue_migration(10, TierId::ALTERNATE).unwrap();
        m.run_tick(SimTime::from_ms(1.0));
        // … and lifting the cap restores unlimited admission.
        m.set_migration_admission_limit(None);
        let admitted = (20..40)
            .filter(|&v| m.enqueue_migration(v, TierId::ALTERNATE).is_ok())
            .count();
        assert_eq!(admitted, 20);
    }

    #[test]
    fn copy_time_telemetry_reveals_bandwidth_collapse() {
        // The mean per-page copy time reported in `mig_copy_ns` must track
        // the *effective* migration bandwidth: with a permanent collapse to
        // 10 % the copies take ~10x longer — the observable a supervisor
        // uses to detect the fault without any injection oracle.
        use crate::faults::{BandwidthPhase, FaultPlan};
        let healthy = {
            let mut m = Machine::new(MachineConfig::icelake_two_tier());
            m.place_range(0..64, TierId::DEFAULT);
            for v in 0..32 {
                m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
            }
            let rep = m.run_tick(SimTime::from_ms(1.0));
            rep.mig_copy_ns.expect("copies completed")
        };
        let collapsed = {
            let mut cfg = MachineConfig::icelake_two_tier();
            cfg.faults = FaultPlan {
                bandwidth_phases: vec![BandwidthPhase {
                    start: SimTime::ZERO,
                    end: None,
                    factor: 0.1,
                }],
                ..FaultPlan::none()
            };
            let mut m = Machine::new(cfg);
            m.place_range(0..64, TierId::DEFAULT);
            for v in 0..32 {
                m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
            }
            let rep = m.run_tick(SimTime::from_ms(1.0));
            rep.mig_copy_ns.expect("copies completed")
        };
        let expected = PAGE_SIZE as f64 / MachineConfig::icelake_two_tier().migration_bandwidth;
        let expected_ns = expected * 1e9;
        assert!(
            healthy < 2.5 * expected_ns,
            "healthy copy {healthy}ns vs expectation {expected_ns}ns"
        );
        assert!(
            collapsed > 5.0 * expected_ns,
            "collapsed copy {collapsed}ns should reveal the 10x slowdown \
             (expectation {expected_ns}ns)"
        );
        assert!(collapsed > 4.0 * healthy);
    }

    #[test]
    fn three_tier_machine_reports_per_pair_copy_times() {
        let cfg = MachineConfig::cxl_three_tier();
        let mut m = Machine::new(cfg);
        m.place_range(0..64, TierId::DEFAULT);
        m.place_range(64..128, TierId(2));
        for v in 0..16 {
            m.enqueue_migration(v, TierId(1)).unwrap();
        }
        for v in 64..80 {
            m.enqueue_migration(v, TierId(1)).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(2.0));
        assert_eq!(rep.tiers.len(), 3);
        assert_eq!(rep.true_latency_ns.len(), 3);
        let pairs: Vec<(u8, u8)> = rep
            .mig_copy_pair_ns
            .iter()
            .map(|&(s, d, _)| (s, d))
            .collect();
        assert!(
            pairs.contains(&(0, 1)),
            "demotions 0->1 finished: {pairs:?}"
        );
        assert!(
            pairs.contains(&(2, 1)),
            "promotions 2->1 finished: {pairs:?}"
        );
        for &(_, _, mean_ns) in &rep.mig_copy_pair_ns {
            assert!(mean_ns.is_finite() && mean_ns > 0.0);
        }
    }

    #[test]
    fn zero_duration_report_has_zero_ops_rate() {
        // Pin the division guard: a degenerate zero-length tick reports
        // 0 ops/s, never NaN or infinity.
        let rep = TickReport {
            t_start: SimTime::from_us(5.0),
            t_end: SimTime::from_us(5.0),
            tiers: Vec::new(),
            pebs: Vec::new(),
            faults: Vec::new(),
            app_ops: 1234,
            migrated_bytes: 0,
            migration_backlog: 0,
            mig_copy_ns: None,
            mig_copy_pair_ns: Vec::new(),
            true_latency_ns: Vec::new(),
            fault_stats: FaultStats::default(),
            failed_migrations: Vec::new(),
            txn: TxnTickStats::default(),
            evacuated: Vec::new(),
        };
        assert_eq!(rep.app_ops_per_sec(), 0.0);
        assert!(rep.app_ops_per_sec().is_finite());
    }

    /// A two-tier config running the transactional pipeline.
    fn txn_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.engine = crate::config::MigrationEngineConfig::transactional();
        cfg
    }

    #[test]
    fn transactional_engine_commits_and_reconciles() {
        let mut m = Machine::new(txn_cfg());
        m.place_range(0..64, TierId::DEFAULT);
        for v in 0..32 {
            m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
        }
        // The transactional engine rejects duplicate in-flight pages.
        assert_eq!(
            m.enqueue_migration(0, TierId::ALTERNATE),
            Err(EnqueueError::DuplicateInFlight)
        );
        let rep = m.run_tick(SimTime::from_ms(2.0));
        assert_eq!(m.migrated_pages(), 32);
        assert_eq!(m.used_pages(TierId::ALTERNATE), 32);
        assert!(rep.failed_migrations.is_empty());
        assert_eq!(rep.txn.begun, 32);
        assert_eq!(rep.txn.committed, 32);
        // Commits were batched: strictly fewer shootdowns than pages.
        let c = m.migration_counters();
        assert_eq!(c.started, 32);
        assert_eq!(c.completed, 32);
        assert_eq!(c.aborted(), 0);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.batched_pages, 32);
        assert!(
            c.commit_batches >= 1 && c.commit_batches < 32,
            "expected amortized shootdowns, got {} batches",
            c.commit_batches
        );
        // Accesses land on the destination tier afterwards.
        for v in 0..32 {
            assert_eq!(m.tier_of(v), Some(TierId::ALTERNATE));
        }
    }

    #[test]
    fn write_conflict_storm_drives_dirty_retries_then_commit() {
        use crate::faults::{FaultPlan, WriteConflictStorm};
        // The storm dirties the first two copy passes of every transaction;
        // with a retry budget of 3 the third pass validates clean, so every
        // page still commits — after observable retries.
        let mut cfg = txn_cfg();
        cfg.faults = FaultPlan {
            write_conflict_storms: vec![WriteConflictStorm {
                start: SimTime::ZERO,
                end: SimTime::from_ms(100.0),
                hot_fraction: 1.0,
                dirties_per_txn: 2,
            }],
            ..FaultPlan::none()
        };
        let mut m = Machine::new(cfg);
        m.place_range(0..32, TierId::DEFAULT);
        for v in 0..8 {
            m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(5.0));
        assert_eq!(m.migrated_pages(), 8);
        assert!(rep.failed_migrations.is_empty());
        let c = m.migration_counters();
        assert_eq!(c.completed, 8);
        assert_eq!(c.aborted(), 0);
        assert_eq!(
            c.dirty_retries, 16,
            "each of 8 transactions re-copies twice"
        );
        assert_eq!(rep.txn.dirty_retries, 16);
        assert_eq!(rep.fault_stats.storm_dirties, 16);
    }

    #[test]
    fn retry_exhaustion_aborts_cleanly_and_releases_reservation() {
        use crate::faults::{FaultPlan, WriteConflictStorm};
        // The storm outlasts the retry budget: every pass dirties, so every
        // transaction aborts with `WriteConflict` — source page intact,
        // reservation released, abort typed in the report.
        let mut cfg = txn_cfg();
        cfg.engine.dirty_retry_max = 2;
        cfg.faults = FaultPlan {
            write_conflict_storms: vec![WriteConflictStorm {
                start: SimTime::ZERO,
                end: SimTime::from_ms(100.0),
                hot_fraction: 1.0,
                dirties_per_txn: u32::MAX,
            }],
            ..FaultPlan::none()
        };
        let mut m = Machine::new(cfg);
        m.place_range(0..16, TierId::DEFAULT);
        for v in 0..4 {
            m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(5.0));
        assert_eq!(m.migrated_pages(), 0);
        assert_eq!(m.used_pages(TierId::ALTERNATE), 0);
        assert_eq!(rep.failed_migrations.len(), 4);
        for f in &rep.failed_migrations {
            assert_eq!(f.reason, AbortReason::WriteConflict);
            assert_eq!(m.tier_of(f.vpn), Some(TierId::DEFAULT));
        }
        let c = m.migration_counters();
        assert_eq!(c.aborted_write_conflict, 4);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(rep.txn.aborted_write_conflict, 4);
        // Released frames are immediately reusable.
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
    }

    #[test]
    fn stalled_channel_fails_over_to_healthy_one() {
        use crate::faults::{ChannelStall, FaultPlan};
        // Slow copies (1 ms/page) so the stall lands mid-copy: channel 0
        // freezes shortly after its first pass begins, the watchdog fires,
        // and the transaction finishes on channel 1. The watchdog must
        // outlast a healthy copy pass or it punishes the innocent.
        let mut cfg = txn_cfg();
        cfg.engine.channels = 2;
        cfg.engine.watchdog = SimTime::from_ms(2.0);
        cfg.migration_bandwidth = PAGE_SIZE as f64 * 1000.0; // 1 ms/page
        cfg.faults = FaultPlan {
            channel_stalls: vec![ChannelStall {
                channel: 0,
                start: SimTime::from_us(10.0),
                end: SimTime::from_ms(50.0),
            }],
            ..FaultPlan::none()
        };
        let mut m = Machine::new(cfg);
        m.place_range(0..8, TierId::DEFAULT);
        for v in 0..4 {
            m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
        }
        let rep = m.run_tick(SimTime::from_ms(20.0));
        assert_eq!(m.migrated_pages(), 4, "failover rescued every page");
        assert!(rep.failed_migrations.is_empty());
        let c = m.migration_counters();
        assert!(c.failovers >= 1, "watchdog should have fired: {c:?}");
        assert_eq!(c.completed, 4);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(rep.txn.failovers, c.failovers);
    }

    #[test]
    fn watchdog_aborts_when_no_healthy_channel_exists() {
        use crate::faults::{ChannelStall, FaultPlan};
        // Single channel, stalled mid-copy with nowhere to fail over: the
        // watchdog bounds the transaction's lifetime by aborting it.
        let mut cfg = txn_cfg();
        cfg.engine.channels = 1;
        cfg.migration_bandwidth = PAGE_SIZE as f64 * 1000.0; // 1 ms/page
        cfg.faults = FaultPlan {
            channel_stalls: vec![ChannelStall {
                channel: 0,
                start: SimTime::from_us(10.0),
                end: SimTime::from_ms(50.0),
            }],
            ..FaultPlan::none()
        };
        let mut m = Machine::new(cfg);
        m.place_range(0..8, TierId::DEFAULT);
        m.enqueue_migration(0, TierId::ALTERNATE).unwrap();
        let rep = m.run_tick(SimTime::from_ms(10.0));
        assert_eq!(m.migrated_pages(), 0);
        assert_eq!(
            rep.failed_migrations,
            vec![FailedMigration {
                vpn: 0,
                dst: TierId::ALTERNATE,
                reason: AbortReason::Watchdog,
            }]
        );
        assert_eq!(m.tier_of(0), Some(TierId::DEFAULT));
        let c = m.migration_counters();
        assert_eq!(c.aborted_watchdog, 1);
        assert_eq!(c.in_flight(), 0);
        assert_eq!(rep.txn.aborted_watchdog, 1);
    }

    #[test]
    fn supervisor_tuning_overrides_batch_and_inflight() {
        let mut m = Machine::new(txn_cfg());
        assert_eq!(m.engine_tuning(), (8, 4));
        m.set_shootdown_batch(Some(2));
        m.set_max_inflight_txns(Some(1));
        assert_eq!(m.engine_tuning(), (2, 1));
        // Overrides are clamped to sane floors/ceilings.
        m.set_shootdown_batch(Some(0));
        m.set_max_inflight_txns(Some(99));
        assert_eq!(m.engine_tuning(), (1, 4));
        m.set_shootdown_batch(None);
        m.set_max_inflight_txns(None);
        assert_eq!(m.engine_tuning(), (8, 4));
        // A throttled engine still moves every page, just more serially.
        m.set_max_inflight_txns(Some(1));
        m.place_range(0..16, TierId::DEFAULT);
        for v in 0..8 {
            m.enqueue_migration(v, TierId::ALTERNATE).unwrap();
        }
        m.run_tick(SimTime::from_ms(5.0));
        assert_eq!(m.migrated_pages(), 8);
    }

    #[test]
    fn transactional_flag_off_leaves_legacy_engine_bit_identical() {
        // Exotic engine knobs must be inert while `transactional` is off:
        // the legacy engine's report stream may not move by a single byte.
        let mut exotic = MachineConfig::icelake_two_tier();
        exotic.engine.channels = 7;
        exotic.engine.dirty_retry_max = 1;
        exotic.engine.shootdown_batch = 3;
        exotic.engine.shootdown_cost = SimTime::from_us(123.0);
        exotic.engine.watchdog = SimTime::from_us(5.0);
        let mut a = Machine::new(MachineConfig::icelake_two_tier());
        let mut b = Machine::new(exotic);
        for m in [&mut a, &mut b] {
            m.place_range(0..256, TierId::DEFAULT);
        }
        for tick in 0..4u64 {
            for v in (tick * 32)..(tick * 32 + 16) {
                let ra = a.enqueue_migration(v, TierId::ALTERNATE);
                let rb = b.enqueue_migration(v, TierId::ALTERNATE);
                assert_eq!(ra, rb);
            }
            let ra = a.run_tick(SimTime::from_ms(1.0));
            let rb = b.run_tick(SimTime::from_ms(1.0));
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
        assert_eq!(a.migrated_pages(), b.migrated_pages());
    }
}
