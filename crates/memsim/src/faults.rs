//! Fault injection: perturbs what the control software *observes*.
//!
//! The paper's argument is that Colloid is robust where hotness-based
//! policies are fragile — but a reproduction that only ever feeds the
//! controllers perfect CHA counters and an infallible migration engine
//! cannot test that claim. [`FaultPlan`] (configured via
//! [`crate::MachineConfig::faults`]) injects the failure modes a real
//! tiered-memory node exhibits:
//!
//! - **Counter noise / staleness / dropped windows** — uncore PMU reads
//!   race the counters they sample; a busy PMU driver returns the previous
//!   window or zeros. Modeled as multiplicative noise on the reported
//!   [`crate::TierWindow`]s, replaying the previous tick's window, or
//!   zeroing a window outright. The machine's internal counters stay
//!   exact: only the [`crate::TickReport`] the tiering system sees is
//!   perturbed, and `TickReport::true_latency_ns` remains ground truth.
//! - **Transient migration failures** — page migration is a failable
//!   transaction (refcount pinning, concurrent unmaps): a queued `MigJob`
//!   aborts with probability [`FaultPlan::migration_fail_prob`] when the
//!   engine picks it up. The reserved destination frame is released and
//!   the failure reported in `TickReport::failed_migrations` so tiering
//!   systems can retry.
//! - **Migration-bandwidth degradation phases** — the kernel copy path
//!   competes with other work; during a [`BandwidthPhase`] the migration
//!   engine is paced at `factor ×` the configured bandwidth.
//! - **PEBS sample loss** — the sampling buffer overflows under load;
//!   each sample is dropped with probability [`FaultPlan::pebs_loss_prob`].
//!
//! All faults are deterministic: the injector draws from a dedicated RNG
//! stream derived from `MachineConfig::seed`, so the same seed + plan
//! yields identical `TickReport` streams. With every probability at zero
//! and no phases, the injector draws nothing and perturbs nothing — runs
//! are bit-identical to a machine without fault injection.

use rand::rngs::SmallRng;
use rand::Rng;
use simkit::rng::seed_from;
use simkit::SimTime;

use crate::cha::TierWindow;
use crate::request::{TierId, Vpn};

/// RNG stream id reserved for fault injection (cores use 0, 1, 2, …).
const FAULT_RNG_STREAM: u64 = 0xFA17_0000_0000_0001;

/// One migration-bandwidth degradation window.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPhase {
    /// Phase start (inclusive, simulated time).
    pub start: SimTime,
    /// Phase end (exclusive).
    pub end: SimTime,
    /// Multiplier on `MachineConfig::migration_bandwidth` while active;
    /// must be in `(0, 1]`.
    pub factor: f64,
}

/// What to inject. The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Amplitude of multiplicative noise on reported CHA windows: each
    /// reported occupancy and arrival rate is scaled by `1 + a·u` with `u`
    /// uniform in `[-1, 1]`. `0` disables.
    pub counter_noise: f64,
    /// Probability that a tier's reported window is replaced by the
    /// previous tick's reported window (stale PMU read).
    pub counter_stale_prob: f64,
    /// Probability that a tier's reported window is zeroed (dropped PMU
    /// read). Checked after staleness.
    pub counter_drop_prob: f64,
    /// Probability that a queued migration aborts when the engine starts
    /// it (transient migration failure).
    pub migration_fail_prob: f64,
    /// Probability that a captured PEBS sample is lost before the tiering
    /// system sees it.
    pub pebs_loss_prob: f64,
    /// Migration-bandwidth degradation phases (may overlap; the smallest
    /// active factor wins).
    pub bandwidth_phases: Vec<BandwidthPhase>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured at all.
    pub fn is_active(&self) -> bool {
        self.counter_noise > 0.0
            || self.counter_stale_prob > 0.0
            || self.counter_drop_prob > 0.0
            || self.migration_fail_prob > 0.0
            || self.pebs_loss_prob > 0.0
            || !self.bandwidth_phases.is_empty()
    }

    /// Whether any counter-observation fault is configured.
    fn perturbs_counters(&self) -> bool {
        self.counter_noise > 0.0 || self.counter_stale_prob > 0.0 || self.counter_drop_prob > 0.0
    }

    /// Validates probabilities and phases.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("counter_stale_prob", self.counter_stale_prob),
            ("counter_drop_prob", self.counter_drop_prob),
            ("migration_fail_prob", self.migration_fail_prob),
            ("pebs_loss_prob", self.pebs_loss_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if !(0.0..=1.0).contains(&self.counter_noise) || self.counter_noise.is_nan() {
            return Err(format!(
                "counter_noise must be in [0, 1], got {}",
                self.counter_noise
            ));
        }
        for (i, ph) in self.bandwidth_phases.iter().enumerate() {
            if ph.end <= ph.start {
                return Err(format!("bandwidth_phases[{i}]: end <= start"));
            }
            if !(ph.factor > 0.0 && ph.factor <= 1.0) {
                return Err(format!(
                    "bandwidth_phases[{i}]: factor must be in (0, 1], got {}",
                    ph.factor
                ));
            }
        }
        Ok(())
    }

    /// The bandwidth multiplier active at `t` (1.0 outside all phases).
    pub fn bandwidth_factor(&self, t: SimTime) -> f64 {
        let mut f = 1.0;
        for ph in &self.bandwidth_phases {
            if t >= ph.start && t < ph.end && ph.factor < f {
                f = ph.factor;
            }
        }
        f
    }
}

/// Per-tick fault counters, reported in [`crate::TickReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Migrations aborted by injected transient failures this tick.
    pub migration_failures: u64,
    /// Reported tier windows replaced by the previous tick's window.
    pub windows_stale: u64,
    /// Reported tier windows zeroed.
    pub windows_dropped: u64,
    /// Reported tier windows with multiplicative noise applied.
    pub windows_noisy: u64,
    /// PEBS samples lost.
    pub pebs_dropped: u64,
}

impl FaultStats {
    /// Accumulates `other` into `self` (for run-level totals).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.migration_failures += other.migration_failures;
        self.windows_stale += other.windows_stale;
        self.windows_dropped += other.windows_dropped;
        self.windows_noisy += other.windows_noisy;
        self.pebs_dropped += other.pebs_dropped;
    }

    /// Total number of injected events.
    pub fn total(&self) -> u64 {
        self.migration_failures
            + self.windows_stale
            + self.windows_dropped
            + self.windows_noisy
            + self.pebs_dropped
    }
}

/// Runtime state of fault injection inside a machine: the plan, a
/// dedicated RNG stream, per-tick counters, and the last reported windows
/// (for staleness).
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    tick_stats: FaultStats,
    tick_failed: Vec<(Vpn, TierId)>,
    last_reported: Vec<Option<TierWindow>>,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, seed: u64, n_tiers: usize) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid FaultPlan: {e}");
        }
        FaultInjector {
            plan,
            rng: seed_from(seed, FAULT_RNG_STREAM),
            tick_stats: FaultStats::default(),
            tick_failed: Vec::new(),
            last_reported: vec![None; n_tiers],
        }
    }

    /// Whether the migration the engine is about to start should abort.
    /// Never draws when the probability is zero.
    pub(crate) fn migration_aborts(&mut self, vpn: Vpn, dst: TierId) -> bool {
        if self.plan.migration_fail_prob <= 0.0 {
            return false;
        }
        if self.rng.gen_bool(self.plan.migration_fail_prob) {
            self.tick_stats.migration_failures += 1;
            self.tick_failed.push((vpn, dst));
            true
        } else {
            false
        }
    }

    /// Whether the PEBS sample about to be buffered should be lost.
    pub(crate) fn pebs_sample_lost(&mut self) -> bool {
        if self.plan.pebs_loss_prob <= 0.0 {
            return false;
        }
        if self.rng.gen_bool(self.plan.pebs_loss_prob) {
            self.tick_stats.pebs_dropped += 1;
            true
        } else {
            false
        }
    }

    /// Effective migration bandwidth at `t` given the configured base.
    pub(crate) fn migration_bandwidth_at(&self, base: f64, t: SimTime) -> f64 {
        if self.plan.bandwidth_phases.is_empty() {
            base
        } else {
            base * self.plan.bandwidth_factor(t)
        }
    }

    /// Perturbs the reported tier windows for one tick. The input windows
    /// are the exact measurements; the return value is what the control
    /// software sees. Identity when no counter fault is configured.
    pub(crate) fn perturb_windows(&mut self, windows: Vec<TierWindow>) -> Vec<TierWindow> {
        if !self.plan.perturbs_counters() {
            return windows;
        }
        let reported: Vec<TierWindow> = windows
            .into_iter()
            .enumerate()
            .map(|(i, w)| self.perturb_one(i, w))
            .collect();
        for (slot, w) in self.last_reported.iter_mut().zip(reported.iter()) {
            *slot = Some(*w);
        }
        reported
    }

    fn perturb_one(&mut self, tier: usize, w: TierWindow) -> TierWindow {
        // Stale read: replay the previous reported window.
        if self.plan.counter_stale_prob > 0.0 && self.rng.gen_bool(self.plan.counter_stale_prob) {
            if let Some(prev) = self.last_reported[tier] {
                self.tick_stats.windows_stale += 1;
                return prev;
            }
        }
        // Dropped read: all counters come back zero.
        if self.plan.counter_drop_prob > 0.0 && self.rng.gen_bool(self.plan.counter_drop_prob) {
            self.tick_stats.windows_dropped += 1;
            return TierWindow {
                occupancy: 0.0,
                arrivals: 0,
                rate_per_ns: 0.0,
                bytes_by_class: [0; crate::TrafficClass::COUNT],
            };
        }
        // Multiplicative noise on occupancy and rate (arrivals scale with
        // the rate so Little's-Law consumers see a consistent pair).
        if self.plan.counter_noise > 0.0 {
            self.tick_stats.windows_noisy += 1;
            let a = self.plan.counter_noise;
            let occ_scale = 1.0 + a * (self.rng.gen::<f64>() * 2.0 - 1.0);
            let rate_scale = 1.0 + a * (self.rng.gen::<f64>() * 2.0 - 1.0);
            return TierWindow {
                occupancy: (w.occupancy * occ_scale).max(0.0),
                arrivals: (w.arrivals as f64 * rate_scale).round().max(0.0) as u64,
                rate_per_ns: (w.rate_per_ns * rate_scale).max(0.0),
                bytes_by_class: w.bytes_by_class,
            };
        }
        w
    }

    /// Drains the per-tick counters and failed-migration list.
    pub(crate) fn take_tick(&mut self) -> (FaultStats, Vec<(Vpn, TierId)>) {
        (
            std::mem::take(&mut self.tick_stats),
            std::mem::take(&mut self.tick_failed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(occ: f64, arrivals: u64, rate: f64) -> TierWindow {
        TierWindow {
            occupancy: occ,
            arrivals,
            rate_per_ns: rate,
            bytes_by_class: [0; crate::TrafficClass::COUNT],
        }
    }

    #[test]
    fn inactive_plan_is_identity_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7, 2);
        let rng_before = format!("{:?}", inj.rng);
        assert!(!inj.migration_aborts(1, TierId::ALTERNATE));
        assert!(!inj.pebs_sample_lost());
        let ws = vec![window(1.5, 10, 0.01), window(0.0, 0, 0.0)];
        let out = inj.perturb_windows(ws.clone());
        assert_eq!(out[0].occupancy, ws[0].occupancy);
        assert_eq!(out[0].arrivals, ws[0].arrivals);
        assert_eq!(
            inj.migration_bandwidth_at(2.4e9, SimTime::from_us(5.0)),
            2.4e9
        );
        // No RNG draws happened: state unchanged.
        assert_eq!(format!("{:?}", inj.rng), rng_before);
        let (stats, failed) = inj.take_tick();
        assert_eq!(stats, FaultStats::default());
        assert!(failed.is_empty());
    }

    #[test]
    fn migration_failures_are_counted_and_reported() {
        let plan = FaultPlan {
            migration_fail_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 2);
        assert!(inj.migration_aborts(42, TierId::DEFAULT));
        let (stats, failed) = inj.take_tick();
        assert_eq!(stats.migration_failures, 1);
        assert_eq!(failed, vec![(42, TierId::DEFAULT)]);
        // Drained: next tick starts clean.
        let (stats2, failed2) = inj.take_tick();
        assert_eq!(stats2.migration_failures, 0);
        assert!(failed2.is_empty());
    }

    #[test]
    fn dropped_windows_are_zeroed() {
        let plan = FaultPlan {
            counter_drop_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        let out = inj.perturb_windows(vec![window(3.0, 100, 0.5)]);
        assert_eq!(out[0].occupancy, 0.0);
        assert_eq!(out[0].arrivals, 0);
        assert!(out[0].littles_latency_ns().is_none());
        assert_eq!(inj.take_tick().0.windows_dropped, 1);
    }

    #[test]
    fn stale_windows_replay_previous_report() {
        let plan = FaultPlan {
            counter_stale_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        // First tick: no previous window exists, so the real one passes
        // through (and is remembered).
        let first = inj.perturb_windows(vec![window(3.0, 100, 0.5)]);
        assert_eq!(first[0].arrivals, 100);
        // Second tick: replay of tick one, not the new measurement.
        let second = inj.perturb_windows(vec![window(9.0, 500, 2.5)]);
        assert_eq!(second[0].arrivals, 100);
        assert_eq!(second[0].occupancy, 3.0);
        let (stats, _) = inj.take_tick();
        assert_eq!(stats.windows_stale, 1);
    }

    #[test]
    fn noise_stays_within_amplitude_and_nonnegative() {
        let plan = FaultPlan {
            counter_noise: 0.2,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        for _ in 0..200 {
            let out = inj.perturb_windows(vec![window(2.0, 100, 1.0)]);
            assert!(out[0].occupancy >= 2.0 * 0.8 - 1e-9 && out[0].occupancy <= 2.0 * 1.2 + 1e-9);
            assert!(out[0].rate_per_ns >= 0.8 - 1e-9 && out[0].rate_per_ns <= 1.2 + 1e-9);
            // Arrivals scale with the rate.
            assert!(out[0].arrivals >= 80 && out[0].arrivals <= 120);
        }
    }

    #[test]
    fn bandwidth_phases_pick_smallest_active_factor() {
        let plan = FaultPlan {
            bandwidth_phases: vec![
                BandwidthPhase {
                    start: SimTime::from_us(10.0),
                    end: SimTime::from_us(20.0),
                    factor: 0.5,
                },
                BandwidthPhase {
                    start: SimTime::from_us(15.0),
                    end: SimTime::from_us(30.0),
                    factor: 0.25,
                },
            ],
            ..FaultPlan::none()
        };
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(5.0)), 1.0);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(12.0)), 0.5);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(17.0)), 0.25);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(25.0)), 0.25);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(30.0)), 1.0);
    }

    #[test]
    fn determinism_same_seed_same_decisions() {
        let plan = FaultPlan {
            migration_fail_prob: 0.3,
            pebs_loss_prob: 0.2,
            counter_noise: 0.1,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone(), 99, 2);
        let mut b = FaultInjector::new(plan, 99, 2);
        for i in 0..100 {
            assert_eq!(
                a.migration_aborts(i, TierId::DEFAULT),
                b.migration_aborts(i, TierId::DEFAULT)
            );
            assert_eq!(a.pebs_sample_lost(), b.pebs_sample_lost());
            let wa = a.perturb_windows(vec![window(1.0, 50, 0.5), window(2.0, 60, 0.6)]);
            let wb = b.perturb_windows(vec![window(1.0, 50, 0.5), window(2.0, 60, 0.6)]);
            assert_eq!(wa[0].occupancy, wb[0].occupancy);
            assert_eq!(wa[1].rate_per_ns, wb[1].rate_per_ns);
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let bad_prob = FaultPlan {
            migration_fail_prob: 1.5,
            ..FaultPlan::none()
        };
        assert!(bad_prob.validate().is_err());
        let bad_noise = FaultPlan {
            counter_noise: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(bad_noise.validate().is_err());
        let bad_phase = FaultPlan {
            bandwidth_phases: vec![BandwidthPhase {
                start: SimTime::from_us(2.0),
                end: SimTime::from_us(1.0),
                factor: 0.5,
            }],
            ..FaultPlan::none()
        };
        assert!(bad_phase.validate().is_err());
        let zero_factor = FaultPlan {
            bandwidth_phases: vec![BandwidthPhase {
                start: SimTime::ZERO,
                end: SimTime::from_us(1.0),
                factor: 0.0,
            }],
            ..FaultPlan::none()
        };
        assert!(zero_factor.validate().is_err());
    }
}
