//! Fault injection: perturbs what the control software *observes*, and —
//! for hard faults — what the hardware can still do.
//!
//! The paper's argument is that Colloid is robust where hotness-based
//! policies are fragile — but a reproduction that only ever feeds the
//! controllers perfect CHA counters and an infallible migration engine
//! cannot test that claim. [`FaultPlan`] (configured via
//! [`crate::MachineConfig::faults`]) injects the failure modes a real
//! tiered-memory node exhibits:
//!
//! - **Counter noise / staleness / dropped windows** — uncore PMU reads
//!   race the counters they sample; a busy PMU driver returns the previous
//!   window or zeros. Modeled as multiplicative noise on the reported
//!   [`crate::TierWindow`]s, replaying the previous tick's window, or
//!   zeroing a window outright. The machine's internal counters stay
//!   exact: only the [`crate::TickReport`] the tiering system sees is
//!   perturbed, and `TickReport::true_latency_ns` remains ground truth.
//! - **Transient migration failures** — page migration is a failable
//!   transaction (refcount pinning, concurrent unmaps): a queued `MigJob`
//!   aborts with probability [`FaultPlan::migration_fail_prob`] when the
//!   engine picks it up. The reserved destination frame is released and
//!   the failure reported in `TickReport::failed_migrations` so tiering
//!   systems can retry.
//! - **Migration-bandwidth degradation phases** — the kernel copy path
//!   competes with other work; during a [`BandwidthPhase`] the migration
//!   engine is paced at `factor ×` the configured bandwidth. A phase with
//!   `end: None` never lifts: a **permanent bandwidth collapse** (link
//!   retrained at a lower width, persistent thermal throttling).
//! - **PEBS sample loss** — the sampling buffer overflows under load;
//!   each sample is dropped with probability [`FaultPlan::pebs_loss_prob`].
//! - **Write-conflict storms** ([`WriteConflictStorm`]) — deterministic
//!   bursts of application writes aimed at pages whose copy is in flight:
//!   while the window is active, validating a copy transaction on a
//!   "write-hot" page (a hash-selected subset of the address space) fails
//!   for the transaction's first `dirties_per_txn` passes, driving the
//!   transactional engine's dirty-retry and abort paths. Inert on the
//!   exclusive engine, which never validates.
//! - **Channel stalls** ([`ChannelStall`]) — one DMA channel of the
//!   transactional engine stops making copy progress during the window;
//!   the engine's watchdog fails in-flight transactions over to a healthy
//!   channel (or aborts them when none exists). Inert on the exclusive
//!   engine, which models a single wedgeable copy thread via
//!   [`EngineOutage`] instead.
//!
//! The *hard* faults model terminal conditions rather than observation
//! noise:
//!
//! - **Tier capacity loss** ([`TierShrink`]) — at time `at`, frames above
//!   `new_frames` become permanently unusable (DIMM ECC retirement, a CXL
//!   device offlining media). Resident pages above the new capacity are
//!   force-evacuated by the machine to any tier with free frames and
//!   surfaced in `TickReport::evacuated` so tiering systems can re-sync
//!   their metadata.
//! - **Migration-engine outage** ([`EngineOutage`]) — during the window
//!   every migration the engine picks up aborts (and still burns engine
//!   time, as a wedged copy thread would), reported both in
//!   `failed_migrations` and the `engine_outage_aborts` counter.
//!
//! All probabilistic faults are deterministic: the injector draws from a
//! dedicated RNG stream derived from `MachineConfig::seed`, so the same
//! seed + plan yields identical `TickReport` streams. Hard faults are
//! purely time-driven and never touch the RNG. With every probability at
//! zero and no phases/shrinks/outages, the injector draws nothing and
//! perturbs nothing — runs are bit-identical to a machine without fault
//! injection.

use rand::rngs::SmallRng;
use rand::Rng;
use simkit::rng::seed_from;
use simkit::SimTime;

use crate::cha::TierWindow;
use crate::request::{TierId, Vpn};

/// RNG stream id reserved for fault injection (cores use 0, 1, 2, …).
const FAULT_RNG_STREAM: u64 = 0xFA17_0000_0000_0001;

/// One migration-bandwidth degradation window.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthPhase {
    /// Phase start (inclusive, simulated time).
    pub start: SimTime,
    /// Phase end (exclusive); `None` means the degradation is permanent
    /// (a hard bandwidth collapse that never lifts).
    pub end: Option<SimTime>,
    /// Multiplier on `MachineConfig::migration_bandwidth` while active;
    /// must be in `(0, 1]`.
    pub factor: f64,
}

/// A permanent tier capacity loss: at `at`, the tier's usable capacity
/// drops to `new_frames` pages and never recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierShrink {
    /// The tier losing frames.
    pub tier: TierId,
    /// When the capacity loss takes effect (applied at the start of the
    /// first tick at or after this time).
    pub at: SimTime,
    /// The tier's new capacity in pages; must be ≥ 1 and strictly smaller
    /// than the previous capacity.
    pub new_frames: u64,
}

/// A migration-engine outage window: every migration started in
/// `[start, end)` aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineOutage {
    /// Outage start (inclusive).
    pub start: SimTime,
    /// Outage end (exclusive); must be after `start`.
    pub end: SimTime,
}

/// A deterministic burst of application writes targeted at in-flight
/// pages: while `[start, end)` is active, validating a copy transaction on
/// a write-hot page fails (the transaction re-copies or aborts). Hotness
/// is a pure hash of the page number, so the same plan always storms the
/// same pages — no RNG draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteConflictStorm {
    /// Storm start (inclusive).
    pub start: SimTime,
    /// Storm end (exclusive); must be after `start`.
    pub end: SimTime,
    /// Fraction of the page-number space treated as write-hot; must be in
    /// `(0, 1]`.
    pub hot_fraction: f64,
    /// How many consecutive validation passes of one transaction the storm
    /// dirties; must be ≥ 1. A value above the engine's `dirty_retry_max`
    /// forces the abort path, a smaller one exercises retry-then-commit.
    pub dirties_per_txn: u32,
}

impl WriteConflictStorm {
    /// Whether `vpn` is in this storm's write-hot subset (stateless hash).
    pub fn is_hot(&self, vpn: Vpn) -> bool {
        let mut x = vpn.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x % 1000) < (self.hot_fraction * 1000.0).round() as u64
    }
}

/// A DMA-channel stall window: channel `channel` of the transactional
/// migration engine makes no copy progress in `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelStall {
    /// The stalled channel (must be below the engine's channel count;
    /// checked when the machine is built).
    pub channel: u32,
    /// Stall start (inclusive).
    pub start: SimTime,
    /// Stall end (exclusive); must be after `start`.
    pub end: SimTime,
}

/// What to inject. The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Amplitude of multiplicative noise on reported CHA windows: each
    /// reported occupancy and arrival rate is scaled by `1 + a·u` with `u`
    /// uniform in `[-1, 1]`. `0` disables.
    pub counter_noise: f64,
    /// Probability that a tier's reported window is replaced by the
    /// previous tick's reported window (stale PMU read).
    pub counter_stale_prob: f64,
    /// Probability that a tier's reported window is zeroed (dropped PMU
    /// read). Checked after staleness.
    pub counter_drop_prob: f64,
    /// Probability that a queued migration aborts when the engine starts
    /// it (transient migration failure).
    pub migration_fail_prob: f64,
    /// Probability that a captured PEBS sample is lost before the tiering
    /// system sees it.
    pub pebs_loss_prob: f64,
    /// Migration-bandwidth degradation phases (may overlap; the smallest
    /// active factor wins).
    pub bandwidth_phases: Vec<BandwidthPhase>,
    /// Permanent tier capacity losses (hard fault).
    pub tier_shrinks: Vec<TierShrink>,
    /// Migration-engine outage windows (hard fault); must not overlap.
    pub engine_outages: Vec<EngineOutage>,
    /// Write-conflict storms against in-flight copy transactions
    /// (transactional engine only).
    pub write_conflict_storms: Vec<WriteConflictStorm>,
    /// DMA-channel stall windows (transactional engine only); windows on
    /// the same channel must not overlap.
    pub channel_stalls: Vec<ChannelStall>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault is configured at all.
    pub fn is_active(&self) -> bool {
        self.counter_noise > 0.0
            || self.counter_stale_prob > 0.0
            || self.counter_drop_prob > 0.0
            || self.migration_fail_prob > 0.0
            || self.pebs_loss_prob > 0.0
            || !self.bandwidth_phases.is_empty()
            || !self.write_conflict_storms.is_empty()
            || !self.channel_stalls.is_empty()
            || self.has_hard_faults()
    }

    /// Whether any *hard* (terminal) fault is configured: a tier shrink,
    /// an engine outage, or a permanent bandwidth collapse.
    pub fn has_hard_faults(&self) -> bool {
        !self.tier_shrinks.is_empty()
            || !self.engine_outages.is_empty()
            || self.bandwidth_phases.iter().any(|p| p.end.is_none())
    }

    /// Whether any counter-observation fault is configured.
    fn perturbs_counters(&self) -> bool {
        self.counter_noise > 0.0 || self.counter_stale_prob > 0.0 || self.counter_drop_prob > 0.0
    }

    /// Validates probabilities, phases, and hard-fault plans.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("counter_stale_prob", self.counter_stale_prob),
            ("counter_drop_prob", self.counter_drop_prob),
            ("migration_fail_prob", self.migration_fail_prob),
            ("pebs_loss_prob", self.pebs_loss_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if !(0.0..=1.0).contains(&self.counter_noise) || self.counter_noise.is_nan() {
            return Err(format!(
                "counter_noise must be in [0, 1], got {}",
                self.counter_noise
            ));
        }
        for (i, ph) in self.bandwidth_phases.iter().enumerate() {
            if let Some(end) = ph.end {
                if end <= ph.start {
                    return Err(format!("bandwidth_phases[{i}]: end <= start"));
                }
            }
            if !(ph.factor > 0.0 && ph.factor <= 1.0) {
                return Err(format!(
                    "bandwidth_phases[{i}]: factor must be in (0, 1], got {}",
                    ph.factor
                ));
            }
        }
        for (i, s) in self.tier_shrinks.iter().enumerate() {
            if s.new_frames == 0 {
                return Err(format!(
                    "tier_shrinks[{i}]: new_frames must be >= 1 (a tier cannot shrink \
                     to zero frames; remove the tier from the config instead)"
                ));
            }
        }
        // Same-tier shrinks must be consistent: a later shrink cannot
        // *grow* the tier back (capacity loss is permanent by definition).
        let mut sorted: Vec<&TierShrink> = self.tier_shrinks.iter().collect();
        sorted.sort_by_key(|s| (s.tier.index(), s.at));
        for w in sorted.windows(2) {
            if w[0].tier == w[1].tier {
                if w[0].at == w[1].at {
                    return Err(format!(
                        "tier_shrinks: two shrinks of tier {} at the same time {:?}; \
                         merge them into one",
                        w[0].tier.index(),
                        w[0].at
                    ));
                }
                if w[1].new_frames >= w[0].new_frames {
                    return Err(format!(
                        "tier_shrinks: tier {} shrinks to {} frames at {:?} but a later \
                         shrink at {:?} sets {} frames; capacity loss is permanent, so \
                         later shrinks must be strictly smaller",
                        w[0].tier.index(),
                        w[0].new_frames,
                        w[0].at,
                        w[1].at,
                        w[1].new_frames
                    ));
                }
            }
        }
        let mut outages: Vec<&EngineOutage> = self.engine_outages.iter().collect();
        outages.sort_by_key(|o| o.start);
        for (i, o) in outages.iter().enumerate() {
            if o.end <= o.start {
                return Err(format!(
                    "engine_outages: window starting at {:?} has end {:?} <= start",
                    o.start, o.end
                ));
            }
            if i > 0 && o.start < outages[i - 1].end {
                return Err(format!(
                    "engine_outages: window [{:?}, {:?}) overlaps the window ending at \
                     {:?}; merge overlapping outages into one window",
                    o.start,
                    o.end,
                    outages[i - 1].end
                ));
            }
        }
        for (i, s) in self.write_conflict_storms.iter().enumerate() {
            if s.end <= s.start {
                return Err(format!("write_conflict_storms[{i}]: end <= start"));
            }
            if !(s.hot_fraction > 0.0 && s.hot_fraction <= 1.0) {
                return Err(format!(
                    "write_conflict_storms[{i}]: hot_fraction must be in (0, 1], got {}",
                    s.hot_fraction
                ));
            }
            if s.dirties_per_txn == 0 {
                return Err(format!(
                    "write_conflict_storms[{i}]: dirties_per_txn must be >= 1 \
                     (a storm that never dirties is a no-op; remove it instead)"
                ));
            }
        }
        let mut stalls: Vec<&ChannelStall> = self.channel_stalls.iter().collect();
        stalls.sort_by_key(|s| (s.channel, s.start));
        for (i, s) in stalls.iter().enumerate() {
            if s.end <= s.start {
                return Err(format!(
                    "channel_stalls: window on channel {} starting at {:?} has end <= start",
                    s.channel, s.start
                ));
            }
            if i > 0 && stalls[i - 1].channel == s.channel && s.start < stalls[i - 1].end {
                return Err(format!(
                    "channel_stalls: overlapping windows on channel {}; merge them into one",
                    s.channel
                ));
            }
        }
        Ok(())
    }

    /// The highest channel index named by a [`ChannelStall`], if any (the
    /// machine checks it against the engine's channel count).
    pub fn max_stalled_channel(&self) -> Option<u32> {
        self.channel_stalls.iter().map(|s| s.channel).max()
    }

    /// The bandwidth multiplier active at `t` (1.0 outside all phases).
    pub fn bandwidth_factor(&self, t: SimTime) -> f64 {
        let mut f = 1.0;
        for ph in &self.bandwidth_phases {
            if t >= ph.start && ph.end.is_none_or(|end| t < end) && ph.factor < f {
                f = ph.factor;
            }
        }
        f
    }

    /// Whether a migration-engine outage is active at `t`.
    pub fn engine_outage_at(&self, t: SimTime) -> bool {
        self.engine_outages
            .iter()
            .any(|o| t >= o.start && t < o.end)
    }
}

/// Per-tick fault counters, reported in [`crate::TickReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Migrations aborted by injected transient failures this tick
    /// (includes engine-outage aborts).
    pub migration_failures: u64,
    /// Reported tier windows replaced by the previous tick's window.
    pub windows_stale: u64,
    /// Reported tier windows zeroed.
    pub windows_dropped: u64,
    /// Reported tier windows with multiplicative noise applied.
    pub windows_noisy: u64,
    /// PEBS samples lost.
    pub pebs_dropped: u64,
    /// Pages force-evacuated by tier shrinks this tick.
    pub pages_evacuated: u64,
    /// Migrations aborted because the engine was in an outage window
    /// (also counted in `migration_failures`).
    pub engine_outage_aborts: u64,
    /// Copy-transaction validations forced dirty by a write-conflict storm
    /// this tick.
    pub storm_dirties: u64,
}

impl FaultStats {
    /// Accumulates `other` into `self` (for run-level totals).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.migration_failures += other.migration_failures;
        self.windows_stale += other.windows_stale;
        self.windows_dropped += other.windows_dropped;
        self.windows_noisy += other.windows_noisy;
        self.pebs_dropped += other.pebs_dropped;
        self.pages_evacuated += other.pages_evacuated;
        self.engine_outage_aborts += other.engine_outage_aborts;
        self.storm_dirties += other.storm_dirties;
    }

    /// Total number of injected events (outage aborts are already part of
    /// `migration_failures`).
    pub fn total(&self) -> u64 {
        self.migration_failures
            + self.windows_stale
            + self.windows_dropped
            + self.windows_noisy
            + self.pebs_dropped
            + self.pages_evacuated
            + self.storm_dirties
    }
}

/// Runtime state of fault injection inside a machine: the plan, a
/// dedicated RNG stream, per-tick counters, and the last reported windows
/// (for staleness).
#[derive(Debug, Clone)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    tick_stats: FaultStats,
    last_reported: Vec<Option<TierWindow>>,
    /// Tier shrinks sorted by activation time; `shrink_cursor` indexes the
    /// next not-yet-applied entry.
    shrinks: Vec<TierShrink>,
    shrink_cursor: usize,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan, seed: u64, n_tiers: usize) -> Self {
        if let Err(e) = plan.validate() {
            panic!("invalid FaultPlan: {e}");
        }
        for s in &plan.tier_shrinks {
            assert!(
                s.tier.index() < n_tiers,
                "invalid FaultPlan: tier_shrinks names tier {} but the machine has {n_tiers} tiers",
                s.tier.index()
            );
        }
        let mut shrinks = plan.tier_shrinks.clone();
        shrinks.sort_by_key(|s| (s.at, s.tier.index()));
        FaultInjector {
            plan,
            rng: seed_from(seed, FAULT_RNG_STREAM),
            tick_stats: FaultStats::default(),
            last_reported: vec![None; n_tiers],
            shrinks,
            shrink_cursor: 0,
        }
    }

    /// Read-only view of the plan (for feasibility checks against machine
    /// state the plan cannot see, e.g. pinned pages).
    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether the migration the engine is about to start should abort.
    /// Never draws when the probability is zero.
    pub(crate) fn migration_aborts(&mut self) -> bool {
        if self.plan.migration_fail_prob <= 0.0 {
            return false;
        }
        if self.rng.gen_bool(self.plan.migration_fail_prob) {
            self.tick_stats.migration_failures += 1;
            true
        } else {
            false
        }
    }

    /// Whether the migration the engine is about to start at `t` falls in
    /// an engine-outage window. Purely time-driven: no RNG draw.
    pub(crate) fn outage_aborts(&mut self, t: SimTime) -> bool {
        if self.plan.engine_outages.is_empty() || !self.plan.engine_outage_at(t) {
            return false;
        }
        self.tick_stats.migration_failures += 1;
        self.tick_stats.engine_outage_aborts += 1;
        true
    }

    /// Whether validation of the copy transaction on `vpn` — running its
    /// `attempt`-th copy pass (1-based) — is forced dirty by a storm
    /// active at `t`. Purely time- and hash-driven: no RNG draw.
    pub(crate) fn storm_dirties(&mut self, vpn: Vpn, attempt: u32, t: SimTime) -> bool {
        for s in &self.plan.write_conflict_storms {
            if t >= s.start && t < s.end && attempt <= s.dirties_per_txn && s.is_hot(vpn) {
                self.tick_stats.storm_dirties += 1;
                return true;
            }
        }
        false
    }

    /// The end of the stall window covering `channel` at `t`, if any.
    /// Purely time-driven: no RNG draw.
    pub(crate) fn channel_stalled_until(&self, channel: u32, t: SimTime) -> Option<SimTime> {
        self.plan
            .channel_stalls
            .iter()
            .filter(|s| s.channel == channel && t >= s.start && t < s.end)
            .map(|s| s.end)
            .max()
    }

    /// Tier shrinks that become due at or before `t` and have not been
    /// handed out yet. Purely time-driven: no RNG draw.
    pub(crate) fn due_shrinks(&mut self, t: SimTime) -> Vec<TierShrink> {
        if self.shrink_cursor >= self.shrinks.len() {
            return Vec::new();
        }
        let mut due = Vec::new();
        while self.shrink_cursor < self.shrinks.len() && self.shrinks[self.shrink_cursor].at <= t {
            due.push(self.shrinks[self.shrink_cursor]);
            self.shrink_cursor += 1;
        }
        due
    }

    /// Records `n` pages force-evacuated by a tier shrink this tick.
    pub(crate) fn note_evacuated(&mut self, n: u64) {
        self.tick_stats.pages_evacuated += n;
    }

    /// Whether the PEBS sample about to be buffered should be lost.
    pub(crate) fn pebs_sample_lost(&mut self) -> bool {
        if self.plan.pebs_loss_prob <= 0.0 {
            return false;
        }
        if self.rng.gen_bool(self.plan.pebs_loss_prob) {
            self.tick_stats.pebs_dropped += 1;
            true
        } else {
            false
        }
    }

    /// Effective migration bandwidth at `t` given the configured base.
    pub(crate) fn migration_bandwidth_at(&self, base: f64, t: SimTime) -> f64 {
        if self.plan.bandwidth_phases.is_empty() {
            base
        } else {
            base * self.plan.bandwidth_factor(t)
        }
    }

    /// Perturbs the reported tier windows for one tick. The input windows
    /// are the exact measurements; the return value is what the control
    /// software sees. Identity when no counter fault is configured.
    pub(crate) fn perturb_windows(&mut self, windows: Vec<TierWindow>) -> Vec<TierWindow> {
        if !self.plan.perturbs_counters() {
            return windows;
        }
        let reported: Vec<TierWindow> = windows
            .into_iter()
            .enumerate()
            .map(|(i, w)| self.perturb_one(i, w))
            .collect();
        for (slot, w) in self.last_reported.iter_mut().zip(reported.iter()) {
            *slot = Some(*w);
        }
        reported
    }

    fn perturb_one(&mut self, tier: usize, w: TierWindow) -> TierWindow {
        // Stale read: replay the previous reported window.
        if self.plan.counter_stale_prob > 0.0 && self.rng.gen_bool(self.plan.counter_stale_prob) {
            if let Some(prev) = self.last_reported[tier] {
                self.tick_stats.windows_stale += 1;
                return prev;
            }
        }
        // Dropped read: all counters come back zero.
        if self.plan.counter_drop_prob > 0.0 && self.rng.gen_bool(self.plan.counter_drop_prob) {
            self.tick_stats.windows_dropped += 1;
            return TierWindow {
                occupancy: 0.0,
                arrivals: 0,
                rate_per_ns: 0.0,
                bytes_by_class: [0; crate::TrafficClass::COUNT],
            };
        }
        // Multiplicative noise on occupancy and rate (arrivals scale with
        // the rate so Little's-Law consumers see a consistent pair).
        if self.plan.counter_noise > 0.0 {
            self.tick_stats.windows_noisy += 1;
            let a = self.plan.counter_noise;
            let occ_scale = 1.0 + a * (self.rng.gen::<f64>() * 2.0 - 1.0);
            let rate_scale = 1.0 + a * (self.rng.gen::<f64>() * 2.0 - 1.0);
            return TierWindow {
                occupancy: (w.occupancy * occ_scale).max(0.0),
                arrivals: (w.arrivals as f64 * rate_scale).round().max(0.0) as u64,
                rate_per_ns: (w.rate_per_ns * rate_scale).max(0.0),
                bytes_by_class: w.bytes_by_class,
            };
        }
        w
    }

    /// Drains the per-tick counters. (The per-page failed-migration list —
    /// with typed abort reasons — is kept by the machine, which sees every
    /// abort path including the transactional ones the injector cannot.)
    pub(crate) fn take_tick(&mut self) -> FaultStats {
        std::mem::take(&mut self.tick_stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(occ: f64, arrivals: u64, rate: f64) -> TierWindow {
        TierWindow {
            occupancy: occ,
            arrivals,
            rate_per_ns: rate,
            bytes_by_class: [0; crate::TrafficClass::COUNT],
        }
    }

    #[test]
    fn inactive_plan_is_identity_and_draws_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7, 2);
        let rng_before = format!("{:?}", inj.rng);
        assert!(!inj.migration_aborts());
        assert!(!inj.outage_aborts(SimTime::from_us(5.0)));
        assert!(!inj.pebs_sample_lost());
        assert!(!inj.storm_dirties(1, 1, SimTime::from_us(5.0)));
        assert!(inj
            .channel_stalled_until(0, SimTime::from_us(5.0))
            .is_none());
        assert!(inj.due_shrinks(SimTime::from_ms(100.0)).is_empty());
        let ws = vec![window(1.5, 10, 0.01), window(0.0, 0, 0.0)];
        let out = inj.perturb_windows(ws.clone());
        assert_eq!(out[0].occupancy, ws[0].occupancy);
        assert_eq!(out[0].arrivals, ws[0].arrivals);
        assert_eq!(
            inj.migration_bandwidth_at(2.4e9, SimTime::from_us(5.0)),
            2.4e9
        );
        // No RNG draws happened: state unchanged.
        assert_eq!(format!("{:?}", inj.rng), rng_before);
        assert_eq!(inj.take_tick(), FaultStats::default());
    }

    #[test]
    fn migration_failures_are_counted_and_reported() {
        let plan = FaultPlan {
            migration_fail_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 2);
        assert!(inj.migration_aborts());
        let stats = inj.take_tick();
        assert_eq!(stats.migration_failures, 1);
        // Drained: next tick starts clean.
        assert_eq!(inj.take_tick().migration_failures, 0);
    }

    #[test]
    fn dropped_windows_are_zeroed() {
        let plan = FaultPlan {
            counter_drop_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        let out = inj.perturb_windows(vec![window(3.0, 100, 0.5)]);
        assert_eq!(out[0].occupancy, 0.0);
        assert_eq!(out[0].arrivals, 0);
        assert!(out[0].littles_latency_ns().is_none());
        assert_eq!(inj.take_tick().windows_dropped, 1);
    }

    #[test]
    fn stale_windows_replay_previous_report() {
        let plan = FaultPlan {
            counter_stale_prob: 1.0,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        // First tick: no previous window exists, so the real one passes
        // through (and is remembered).
        let first = inj.perturb_windows(vec![window(3.0, 100, 0.5)]);
        assert_eq!(first[0].arrivals, 100);
        // Second tick: replay of tick one, not the new measurement.
        let second = inj.perturb_windows(vec![window(9.0, 500, 2.5)]);
        assert_eq!(second[0].arrivals, 100);
        assert_eq!(second[0].occupancy, 3.0);
        assert_eq!(inj.take_tick().windows_stale, 1);
    }

    #[test]
    fn noise_stays_within_amplitude_and_nonnegative() {
        let plan = FaultPlan {
            counter_noise: 0.2,
            ..FaultPlan::none()
        };
        let mut inj = FaultInjector::new(plan, 7, 1);
        for _ in 0..200 {
            let out = inj.perturb_windows(vec![window(2.0, 100, 1.0)]);
            assert!(out[0].occupancy >= 2.0 * 0.8 - 1e-9 && out[0].occupancy <= 2.0 * 1.2 + 1e-9);
            assert!(out[0].rate_per_ns >= 0.8 - 1e-9 && out[0].rate_per_ns <= 1.2 + 1e-9);
            // Arrivals scale with the rate.
            assert!(out[0].arrivals >= 80 && out[0].arrivals <= 120);
        }
    }

    #[test]
    fn bandwidth_phases_pick_smallest_active_factor() {
        let plan = FaultPlan {
            bandwidth_phases: vec![
                BandwidthPhase {
                    start: SimTime::from_us(10.0),
                    end: Some(SimTime::from_us(20.0)),
                    factor: 0.5,
                },
                BandwidthPhase {
                    start: SimTime::from_us(15.0),
                    end: Some(SimTime::from_us(30.0)),
                    factor: 0.25,
                },
            ],
            ..FaultPlan::none()
        };
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(5.0)), 1.0);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(12.0)), 0.5);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(17.0)), 0.25);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(25.0)), 0.25);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(30.0)), 1.0);
    }

    #[test]
    fn permanent_bandwidth_collapse_never_lifts() {
        let plan = FaultPlan {
            bandwidth_phases: vec![BandwidthPhase {
                start: SimTime::from_us(10.0),
                end: None,
                factor: 0.1,
            }],
            ..FaultPlan::none()
        };
        plan.validate().unwrap();
        assert!(plan.has_hard_faults());
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(5.0)), 1.0);
        assert_eq!(plan.bandwidth_factor(SimTime::from_us(10.0)), 0.1);
        assert_eq!(plan.bandwidth_factor(SimTime::from_ms(1e6)), 0.1);
    }

    #[test]
    fn engine_outage_aborts_every_migration_in_window() {
        let plan = FaultPlan {
            engine_outages: vec![EngineOutage {
                start: SimTime::from_us(10.0),
                end: SimTime::from_us(20.0),
            }],
            ..FaultPlan::none()
        };
        assert!(plan.is_active() && plan.has_hard_faults());
        let mut inj = FaultInjector::new(plan, 7, 2);
        let rng_before = format!("{:?}", inj.rng);
        assert!(!inj.outage_aborts(SimTime::from_us(9.0)));
        assert!(inj.outage_aborts(SimTime::from_us(10.0)));
        assert!(inj.outage_aborts(SimTime::from_us(19.9)));
        assert!(!inj.outage_aborts(SimTime::from_us(20.0)));
        // Outage checks are time-driven: no RNG draws.
        assert_eq!(format!("{:?}", inj.rng), rng_before);
        let stats = inj.take_tick();
        assert_eq!(stats.engine_outage_aborts, 2);
        assert_eq!(stats.migration_failures, 2);
    }

    #[test]
    fn due_shrinks_hand_out_each_shrink_once_in_time_order() {
        let plan = FaultPlan {
            tier_shrinks: vec![
                TierShrink {
                    tier: TierId::DEFAULT,
                    at: SimTime::from_us(50.0),
                    new_frames: 100,
                },
                TierShrink {
                    tier: TierId::ALTERNATE,
                    at: SimTime::from_us(20.0),
                    new_frames: 500,
                },
            ],
            ..FaultPlan::none()
        };
        assert!(plan.is_active() && plan.has_hard_faults());
        let mut inj = FaultInjector::new(plan, 7, 2);
        assert!(inj.due_shrinks(SimTime::from_us(10.0)).is_empty());
        let first = inj.due_shrinks(SimTime::from_us(20.0));
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].tier, TierId::ALTERNATE);
        // Already handed out: not returned again.
        assert!(inj.due_shrinks(SimTime::from_us(30.0)).is_empty());
        let second = inj.due_shrinks(SimTime::from_us(100.0));
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].new_frames, 100);
        assert!(inj.due_shrinks(SimTime::from_ms(10.0)).is_empty());
        inj.note_evacuated(3);
        assert_eq!(inj.take_tick().pages_evacuated, 3);
    }

    #[test]
    fn storm_dirties_hot_pages_in_window_without_rng() {
        let storm = WriteConflictStorm {
            start: SimTime::from_us(10.0),
            end: SimTime::from_us(20.0),
            hot_fraction: 0.5,
            dirties_per_txn: 2,
        };
        let plan = FaultPlan {
            write_conflict_storms: vec![storm],
            ..FaultPlan::none()
        };
        plan.validate().unwrap();
        assert!(plan.is_active());
        // The hash splits a prefix of the page space roughly in half.
        let hot: Vec<Vpn> = (0..1000).filter(|&v| storm.is_hot(v)).collect();
        assert!(hot.len() > 300 && hot.len() < 700, "hot = {}", hot.len());
        let vpn = hot[0];
        let cold = (0..1000).find(|&v| !storm.is_hot(v)).unwrap();

        let mut inj = FaultInjector::new(plan, 7, 2);
        let rng_before = format!("{:?}", inj.rng);
        let mid = SimTime::from_us(15.0);
        assert!(!inj.storm_dirties(vpn, 1, SimTime::from_us(5.0)), "before");
        assert!(!inj.storm_dirties(vpn, 1, SimTime::from_us(20.0)), "after");
        assert!(!inj.storm_dirties(cold, 1, mid), "cold page");
        assert!(inj.storm_dirties(vpn, 1, mid));
        assert!(inj.storm_dirties(vpn, 2, mid));
        // Pass 3 exceeds dirties_per_txn: the transaction gets through.
        assert!(!inj.storm_dirties(vpn, 3, mid));
        assert_eq!(format!("{:?}", inj.rng), rng_before, "storm drew RNG");
        assert_eq!(inj.take_tick().storm_dirties, 2);
    }

    #[test]
    fn full_storm_dirties_every_page() {
        let storm = WriteConflictStorm {
            start: SimTime::ZERO,
            end: SimTime::from_ms(1.0),
            hot_fraction: 1.0,
            dirties_per_txn: 100,
        };
        assert!((0..512).all(|v| storm.is_hot(v)));
    }

    #[test]
    fn channel_stalls_cover_their_channel_and_window_only() {
        let plan = FaultPlan {
            channel_stalls: vec![
                ChannelStall {
                    channel: 1,
                    start: SimTime::from_us(10.0),
                    end: SimTime::from_us(20.0),
                },
                ChannelStall {
                    channel: 1,
                    start: SimTime::from_us(30.0),
                    end: SimTime::from_us(40.0),
                },
            ],
            ..FaultPlan::none()
        };
        plan.validate().unwrap();
        assert!(plan.is_active());
        assert_eq!(plan.max_stalled_channel(), Some(1));
        let inj = FaultInjector::new(plan, 7, 2);
        assert!(inj
            .channel_stalled_until(0, SimTime::from_us(15.0))
            .is_none());
        assert!(inj
            .channel_stalled_until(1, SimTime::from_us(9.0))
            .is_none());
        assert_eq!(
            inj.channel_stalled_until(1, SimTime::from_us(10.0)),
            Some(SimTime::from_us(20.0))
        );
        assert!(inj
            .channel_stalled_until(1, SimTime::from_us(20.0))
            .is_none());
        assert_eq!(
            inj.channel_stalled_until(1, SimTime::from_us(35.0)),
            Some(SimTime::from_us(40.0))
        );
    }

    #[test]
    fn validate_rejects_bad_storms_and_stalls() {
        let inverted = FaultPlan {
            write_conflict_storms: vec![WriteConflictStorm {
                start: SimTime::from_us(10.0),
                end: SimTime::from_us(10.0),
                hot_fraction: 0.5,
                dirties_per_txn: 1,
            }],
            ..FaultPlan::none()
        };
        assert!(inverted.validate().is_err());
        let cold = FaultPlan {
            write_conflict_storms: vec![WriteConflictStorm {
                start: SimTime::ZERO,
                end: SimTime::from_us(10.0),
                hot_fraction: 0.0,
                dirties_per_txn: 1,
            }],
            ..FaultPlan::none()
        };
        assert!(cold.validate().is_err());
        let noop = FaultPlan {
            write_conflict_storms: vec![WriteConflictStorm {
                start: SimTime::ZERO,
                end: SimTime::from_us(10.0),
                hot_fraction: 0.5,
                dirties_per_txn: 0,
            }],
            ..FaultPlan::none()
        };
        let err = noop.validate().unwrap_err();
        assert!(err.contains("no-op"), "unhelpful error: {err}");
        let overlap = FaultPlan {
            channel_stalls: vec![
                ChannelStall {
                    channel: 2,
                    start: SimTime::from_us(10.0),
                    end: SimTime::from_us(30.0),
                },
                ChannelStall {
                    channel: 2,
                    start: SimTime::from_us(20.0),
                    end: SimTime::from_us(40.0),
                },
            ],
            ..FaultPlan::none()
        };
        let err = overlap.validate().unwrap_err();
        assert!(err.contains("overlap"), "unhelpful error: {err}");
        // Same window on *different* channels is fine.
        let disjoint = FaultPlan {
            channel_stalls: vec![
                ChannelStall {
                    channel: 0,
                    start: SimTime::from_us(10.0),
                    end: SimTime::from_us(30.0),
                },
                ChannelStall {
                    channel: 1,
                    start: SimTime::from_us(10.0),
                    end: SimTime::from_us(30.0),
                },
            ],
            ..FaultPlan::none()
        };
        assert!(disjoint.validate().is_ok());
    }

    #[test]
    fn determinism_same_seed_same_decisions() {
        let plan = FaultPlan {
            migration_fail_prob: 0.3,
            pebs_loss_prob: 0.2,
            counter_noise: 0.1,
            ..FaultPlan::none()
        };
        let mut a = FaultInjector::new(plan.clone(), 99, 2);
        let mut b = FaultInjector::new(plan, 99, 2);
        for _ in 0..100 {
            assert_eq!(a.migration_aborts(), b.migration_aborts());
            assert_eq!(a.pebs_sample_lost(), b.pebs_sample_lost());
            let wa = a.perturb_windows(vec![window(1.0, 50, 0.5), window(2.0, 60, 0.6)]);
            let wb = b.perturb_windows(vec![window(1.0, 50, 0.5), window(2.0, 60, 0.6)]);
            assert_eq!(wa[0].occupancy, wb[0].occupancy);
            assert_eq!(wa[1].rate_per_ns, wb[1].rate_per_ns);
        }
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let bad_prob = FaultPlan {
            migration_fail_prob: 1.5,
            ..FaultPlan::none()
        };
        assert!(bad_prob.validate().is_err());
        let bad_noise = FaultPlan {
            counter_noise: f64::NAN,
            ..FaultPlan::none()
        };
        assert!(bad_noise.validate().is_err());
        let bad_phase = FaultPlan {
            bandwidth_phases: vec![BandwidthPhase {
                start: SimTime::from_us(2.0),
                end: Some(SimTime::from_us(1.0)),
                factor: 0.5,
            }],
            ..FaultPlan::none()
        };
        assert!(bad_phase.validate().is_err());
        let zero_factor = FaultPlan {
            bandwidth_phases: vec![BandwidthPhase {
                start: SimTime::ZERO,
                end: Some(SimTime::from_us(1.0)),
                factor: 0.0,
            }],
            ..FaultPlan::none()
        };
        assert!(zero_factor.validate().is_err());
    }

    #[test]
    fn validate_rejects_impossible_hard_faults() {
        let zero_frames = FaultPlan {
            tier_shrinks: vec![TierShrink {
                tier: TierId::DEFAULT,
                at: SimTime::ZERO,
                new_frames: 0,
            }],
            ..FaultPlan::none()
        };
        let err = zero_frames.validate().unwrap_err();
        assert!(err.contains("new_frames"), "unhelpful error: {err}");

        let regrow = FaultPlan {
            tier_shrinks: vec![
                TierShrink {
                    tier: TierId::DEFAULT,
                    at: SimTime::from_us(10.0),
                    new_frames: 100,
                },
                TierShrink {
                    tier: TierId::DEFAULT,
                    at: SimTime::from_us(20.0),
                    new_frames: 200,
                },
            ],
            ..FaultPlan::none()
        };
        let err = regrow.validate().unwrap_err();
        assert!(err.contains("permanent"), "unhelpful error: {err}");

        let overlap = FaultPlan {
            engine_outages: vec![
                EngineOutage {
                    start: SimTime::from_us(10.0),
                    end: SimTime::from_us(30.0),
                },
                EngineOutage {
                    start: SimTime::from_us(20.0),
                    end: SimTime::from_us(40.0),
                },
            ],
            ..FaultPlan::none()
        };
        let err = overlap.validate().unwrap_err();
        assert!(err.contains("overlap"), "unhelpful error: {err}");

        let inverted = FaultPlan {
            engine_outages: vec![EngineOutage {
                start: SimTime::from_us(10.0),
                end: SimTime::from_us(10.0),
            }],
            ..FaultPlan::none()
        };
        assert!(inverted.validate().is_err());

        let unknown_tier_is_machine_checked = FaultPlan {
            tier_shrinks: vec![TierShrink {
                tier: TierId(9),
                at: SimTime::ZERO,
                new_frames: 10,
            }],
            ..FaultPlan::none()
        };
        // Plan-level validate cannot know the tier count; the injector
        // (seeded with the machine's tier count) must reject it.
        assert!(unknown_tier_is_machine_checked.validate().is_ok());
        let result =
            std::panic::catch_unwind(|| FaultInjector::new(unknown_tier_is_machine_checked, 7, 2));
        assert!(result.is_err());
    }
}
