//! Machine configuration and presets.
//!
//! The preset [`MachineConfig::icelake_two_tier`] mirrors the paper's
//! testbed (§2.1): a dual-socket Intel Xeon 8362 where the default tier is
//! socket-local DDR4 (8 channels, ~70 ns unloaded, 205 GB/s theoretical) and
//! the alternate tier is the remote socket's memory behind a UPI link
//! (75 GB/s per direction, ~135 ns unloaded). Capacities are scaled 1024×
//! (GB → MB) to keep page counts tractable; latency/bandwidth parameters are
//! unscaled, so queueing behaviour matches the unscaled machine (see
//! DESIGN.md §5).

use simkit::SimTime;

use crate::faults::FaultPlan;
use crate::request::PAGE_SIZE;

/// Configuration of the DRAM devices behind one memory controller.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Number of independent memory channels.
    pub channels: usize,
    /// Banks per channel (DDR4: 16 across 4 bank groups).
    pub banks_per_channel: usize,
    /// Bank busy time for a row-buffer hit (CAS + transfer overlap).
    pub t_row_hit: SimTime,
    /// Bank busy time for a row-buffer miss (precharge + activate + CAS,
    /// ~tRC territory).
    pub t_row_miss: SimTime,
    /// Data-bus occupancy of one 64 B burst (64 B / 25.6 GB/s = 2.5 ns for
    /// DDR4-3200).
    pub t_bus: SimTime,
    /// Amortised read/write bus-turnaround penalty charged to writes
    /// (the controller batches writebacks; see `controller` module docs).
    pub t_write_turnaround: SimTime,
    /// Row-activation window: at most [`Self::faw_activations`] activations
    /// per channel per window (tFAW). This is what bounds *random-access*
    /// throughput well below the bus bandwidth.
    pub t_faw: SimTime,
    /// Activations allowed per tFAW window.
    pub faw_activations: u32,
    /// Row size in bytes (8 KiB typical for x8 DDR4 DIMMs).
    pub row_bytes: u64,
}

impl DramConfig {
    /// DDR4-3200, 8 channels, one DIMM per channel — the paper's local tier.
    pub fn ddr4_3200_8ch() -> Self {
        DramConfig {
            channels: 8,
            banks_per_channel: 16,
            t_row_hit: SimTime::from_ns(6.0),
            t_row_miss: SimTime::from_ns(45.0),
            t_bus: SimTime::from_ns(2.5),
            t_write_turnaround: SimTime::from_ns(3.0),
            t_faw: SimTime::from_ns(18.0),
            faw_activations: 4,
            row_bytes: 8192,
        }
    }

    /// Theoretical peak data-bus bandwidth in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        self.channels as f64 * 64.0 / self.t_bus.as_ns() * 1e9
    }
}

/// Configuration of a serial interconnect in front of a tier (UPI or CXL).
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way propagation latency added on both the request and response
    /// path.
    pub propagation: SimTime,
    /// Serialisation time of one 64 B flit in each direction
    /// (64 B / 75 GB/s ≈ 0.853 ns for UPI).
    pub t_serialize: SimTime,
}

impl LinkConfig {
    /// UPI cross-socket link as in the paper's testbed: 75 GB/s per
    /// direction; propagation chosen so the remote tier's unloaded latency
    /// lands at ~135 ns (1.9× the local tier).
    pub fn upi() -> Self {
        LinkConfig {
            propagation: SimTime::from_ns(32.0),
            t_serialize: SimTime::from_ns(64.0 / 75.0),
        }
    }

    /// CXL-like expansion link: 64 GB/s per direction, propagation chosen
    /// so a DDR4 tier behind it lands at ~180 ns unloaded (the middle tier
    /// of [`MachineConfig::cxl_three_tier`]).
    pub fn cxl() -> Self {
        LinkConfig {
            propagation: SimTime::from_ns(54.0),
            t_serialize: SimTime::from_ns(1.0),
        }
    }

    /// Far-memory link (pooled/fabric-attached): 32 GB/s per direction,
    /// propagation chosen so a DDR4 tier behind it lands at ~350 ns
    /// unloaded (the bottom tier of [`MachineConfig::cxl_three_tier`]).
    pub fn far() -> Self {
        LinkConfig {
            propagation: SimTime::from_ns(138.0),
            t_serialize: SimTime::from_ns(2.0),
        }
    }

    /// Peak one-direction bandwidth in bytes/second.
    pub fn peak_bandwidth(&self) -> f64 {
        64.0 / self.t_serialize.as_ns() * 1e9
    }
}

/// Configuration of one memory tier.
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Human-readable name ("local-ddr", "remote-upi", "cxl", ...).
    pub name: String,
    /// Capacity in bytes (scaled; must be a multiple of the page size).
    pub capacity_bytes: u64,
    /// Fixed CPU-side latency component: core → CHA → controller wire and
    /// response return, excluding DRAM service and any link.
    pub t_fixed: SimTime,
    /// DRAM device configuration.
    pub dram: DramConfig,
    /// Optional serial link between the CHA and this tier's controller.
    pub link: Option<LinkConfig>,
}

impl TierConfig {
    /// Capacity in base pages.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_bytes / PAGE_SIZE
    }

    /// Unloaded read latency of this tier: fixed + link round trip +
    /// row-miss service + one bus burst.
    pub fn unloaded_latency(&self) -> SimTime {
        let mut l = self.t_fixed + self.dram.t_row_miss + self.dram.t_bus;
        if let Some(link) = &self.link {
            l += link.propagation * 2 + link.t_serialize * 2;
        }
        l
    }
}

/// Per-core parameters of the simulated CPU.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Maximum in-flight demand misses (Line Fill Buffers; paper §3.1 cites
    /// LFBs as the per-core bound on memory-level parallelism).
    pub demand_slots: usize,
    /// Maximum additional in-flight prefetch misses (L2 prefetcher
    /// trackers). Sequential lines of multi-line objects use these.
    pub prefetch_slots: usize,
    /// Fixed compute time between finishing one object access and issuing
    /// the next from the same slot (models the non-memory instructions).
    pub think_time: SimTime,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            demand_slots: 10,
            prefetch_slots: 20,
            think_time: SimTime::ZERO,
        }
    }
}

impl CoreConfig {
    /// Calibrated configuration for application threads (GUPS-style
    /// read-modify-write loops sustain ~6 independent demand misses out of
    /// the 10–12 architectural LFBs).
    pub fn app_default() -> Self {
        CoreConfig {
            demand_slots: 3,
            prefetch_slots: 20,
            think_time: SimTime::ZERO,
        }
    }

    /// Calibrated configuration for antagonist threads, tuned so that
    /// 5/10/15 antagonist cores in isolation use ~51/65/70 % of the default
    /// tier's theoretical bandwidth, as in paper §2.1.
    pub fn antagonist_default() -> Self {
        CoreConfig {
            demand_slots: 8,
            prefetch_slots: 20,
            think_time: SimTime::ZERO,
        }
    }
}

/// Configuration of the page-migration engine (DESIGN.md §13).
///
/// The default is the *exclusive* legacy engine: one serial DMA channel,
/// no transactions — bit-identical to the pre-transactional engine, which
/// the golden-output tests pin. Setting [`Self::transactional`] switches to
/// the Nomad-style non-exclusive pipeline: up to [`Self::channels`]
/// concurrent copy transactions, each snapshot-copying while the source
/// page stays readable, validating against write conflicts, and committing
/// through a batched TLB shootdown.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationEngineConfig {
    /// Concurrent DMA copy channels. Only consulted by the transactional
    /// engine; the exclusive engine is always a single serial channel.
    pub channels: u32,
    /// Use the transactional (non-exclusive) pipeline instead of the
    /// exclusive legacy engine.
    pub transactional: bool,
    /// Dirty-retry budget: a transaction invalidated by a concurrent write
    /// re-copies at most this many times before aborting. `0` aborts on
    /// the first conflict.
    pub dirty_retry_max: u32,
    /// Base backoff before the first dirty re-copy; doubles per retry
    /// (capped at 8 doublings).
    pub dirty_retry_backoff: SimTime,
    /// Watchdog bound on one copy pass. A transaction that has not reached
    /// validation this long after (re)starting its copy — e.g. because its
    /// channel stalled — fails over to a healthy channel, or aborts when
    /// none exists.
    pub watchdog: SimTime,
    /// Validated transactions commit together once this many are pending
    /// (or when the batch linger timer fires), amortizing the shootdown.
    pub shootdown_batch: u32,
    /// Cost of one batched TLB-shootdown commit, charged once per batch
    /// between validation and the mapping flip.
    pub shootdown_cost: SimTime,
}

impl Default for MigrationEngineConfig {
    /// The exclusive legacy engine (provably inert: golden outputs pin it).
    fn default() -> Self {
        MigrationEngineConfig {
            channels: 1,
            transactional: false,
            dirty_retry_max: 3,
            dirty_retry_backoff: SimTime::from_us(2.0),
            watchdog: SimTime::from_us(200.0),
            shootdown_batch: 8,
            shootdown_cost: SimTime::from_us(4.0),
        }
    }
}

impl MigrationEngineConfig {
    /// The transactional pipeline at its paper-default operating point:
    /// four channels, three dirty retries, batch-of-8 shootdowns.
    pub fn transactional() -> Self {
        MigrationEngineConfig {
            channels: 4,
            transactional: true,
            ..MigrationEngineConfig::default()
        }
    }

    /// Hard validation errors (empty = valid).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 {
            return Err("migration engine needs at least 1 channel".into());
        }
        if self.shootdown_batch == 0 {
            return Err("shootdown batch size must be at least 1".into());
        }
        if self.watchdog <= SimTime::ZERO {
            return Err("watchdog bound must be positive".into());
        }
        Ok(())
    }

    /// Worst-case lifetime of one transaction under this config: every
    /// copy pass runs to the watchdog, every retry backs off fully. The
    /// proptest suite asserts all transactions terminate within this.
    pub fn max_txn_lifetime(&self) -> SimTime {
        let passes = self.dirty_retry_max as u64 + 1;
        // Each pass may burn the watchdog once per channel via failover.
        let pass = self.watchdog * self.channels.max(1) as u64;
        let backoff_total = self.dirty_retry_backoff * (1u64 << self.dirty_retry_max.min(8)) * 2;
        pass * passes + backoff_total + self.shootdown_cost * 2
    }
}

/// Full machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Memory tiers; index 0 is the default tier.
    pub tiers: Vec<TierConfig>,
    /// Size of the simulated virtual address space, in pages. The machine
    /// refuses accesses beyond it.
    pub virtual_pages: u64,
    /// Latency of an LLC hit (accesses that never reach memory).
    pub llc_hit_latency: SimTime,
    /// PEBS sampling period: one sample per `pebs_period` demand misses
    /// (0 disables sampling).
    pub pebs_period: u64,
    /// Page-migration copy bandwidth of the kernel's migration path
    /// (bytes/second); each DMA channel paces migration traffic at this
    /// rate.
    pub migration_bandwidth: f64,
    /// Migration-engine shape (exclusive legacy vs. transactional
    /// multi-channel pipeline; see [`MigrationEngineConfig`]).
    pub engine: MigrationEngineConfig,
    /// Extra latency charged to an access that triggers a hint page fault
    /// (kernel fault-handler cost; TPP promotes from the handler).
    pub hint_fault_cost: SimTime,
    /// Root seed; every core derives its RNG stream from it.
    pub seed: u64,
    /// Fault-injection plan (defaults to injecting nothing; see
    /// [`crate::faults`]). The plan's RNG stream also derives from `seed`.
    pub faults: FaultPlan,
}

impl MachineConfig {
    /// The paper's dual-socket testbed, capacities scaled 1024×.
    ///
    /// Default tier: 32 MB local DDR4 (scaled from 32 GB), ~70 ns unloaded.
    /// Alternate tier: 96 MB remote-socket DDR4 behind UPI, ~135 ns
    /// unloaded (1.9× the default tier, matching §5.1).
    pub fn icelake_two_tier() -> Self {
        let local = TierConfig {
            name: "local-ddr".into(),
            capacity_bytes: 32 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: DramConfig::ddr4_3200_8ch(),
            link: None,
        };
        let remote = TierConfig {
            name: "remote-upi".into(),
            capacity_bytes: 96 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: DramConfig::ddr4_3200_8ch(),
            link: Some(LinkConfig::upi()),
        };
        MachineConfig {
            tiers: vec![local, remote],
            virtual_pages: (192 << 20) / PAGE_SIZE,
            llc_hit_latency: SimTime::from_ns(20.0),
            pebs_period: 16,
            migration_bandwidth: 2.4e9,
            engine: MigrationEngineConfig::default(),
            hint_fault_cost: SimTime::from_us(0.4),
            seed: 0xC01_101D,
            faults: FaultPlan::none(),
        }
    }

    /// Variant of [`Self::icelake_two_tier`] with the alternate tier's
    /// unloaded latency scaled to `ratio` × the default tier's (paper
    /// Figure 7 sweeps 1.9–2.7×). As in the paper's uncore-frequency
    /// methodology, raising the latency also proportionally lowers the
    /// alternate tier's link bandwidth (the stated side effect).
    pub fn with_alt_latency_ratio(ratio: f64) -> Self {
        let mut cfg = Self::icelake_two_tier();
        let base = cfg.tiers[0].unloaded_latency().as_ns();
        let target = base * ratio;
        // Solve for the link propagation that yields the target unloaded
        // latency; serialisation slows by the same factor vs. the 1.9× base.
        let alt = &mut cfg.tiers[1];
        let no_link = (alt.t_fixed + alt.dram.t_row_miss + alt.dram.t_bus).as_ns();
        let link = alt.link.as_mut().expect("alternate tier has a link");
        let budget = (target - no_link).max(1.0);
        let slow_factor = ratio / 1.9;
        link.t_serialize = link.t_serialize.scale(slow_factor);
        link.propagation = SimTime::from_ns((budget - 2.0 * link.t_serialize.as_ns()) / 2.0);
        cfg
    }

    /// A CXL-era three-tier machine: socket-local DDR4 (~70 ns), a
    /// CXL-attached expander (~180 ns, 64 GB/s link), and far/pooled
    /// memory (~350 ns, 32 GB/s link). Capacities scaled 1024× like
    /// [`Self::icelake_two_tier`]; every non-local tier sits behind its
    /// own serial link, so each has an independent bandwidth ceiling.
    pub fn cxl_three_tier() -> Self {
        let local = TierConfig {
            name: "local-ddr".into(),
            capacity_bytes: 32 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: DramConfig::ddr4_3200_8ch(),
            link: None,
        };
        let cxl = TierConfig {
            name: "cxl".into(),
            capacity_bytes: 64 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: DramConfig::ddr4_3200_8ch(),
            link: Some(LinkConfig::cxl()),
        };
        let far = TierConfig {
            name: "far".into(),
            capacity_bytes: 96 << 20,
            t_fixed: SimTime::from_ns(22.5),
            dram: DramConfig::ddr4_3200_8ch(),
            link: Some(LinkConfig::far()),
        };
        MachineConfig {
            tiers: vec![local, cxl, far],
            virtual_pages: (192 << 20) / PAGE_SIZE,
            llc_hit_latency: SimTime::from_ns(20.0),
            pebs_period: 16,
            migration_bandwidth: 2.4e9,
            engine: MigrationEngineConfig::default(),
            hint_fault_cost: SimTime::from_us(0.4),
            seed: 0xC01_101D,
            faults: FaultPlan::none(),
        }
    }

    /// Checks the tier chain for hard errors and soft anomalies.
    ///
    /// Hard errors (`Err`): fewer than two tiers — a tiering system needs
    /// at least one pair to balance — or a tier whose capacity is not a
    /// whole number of pages.
    ///
    /// Soft anomalies (returned as warnings, never an error): unloaded
    /// latencies that do not increase monotonically with the tier index.
    /// Such chains are legal — bandwidth-inverted tiers exist, and Colloid
    /// explicitly handles loaded-latency inversions — but most presets are
    /// ordered fastest-first, so a non-monotone chain usually means a
    /// mis-ordered config.
    pub fn validate(&self) -> Result<Vec<String>, String> {
        if self.tiers.len() < 2 {
            return Err(format!(
                "machine config needs at least 2 memory tiers to tier between, got {}",
                self.tiers.len()
            ));
        }
        for t in &self.tiers {
            if t.capacity_bytes == 0 || t.capacity_bytes % PAGE_SIZE != 0 {
                return Err(format!(
                    "tier {:?} capacity {} B is not a positive multiple of the {} B page size",
                    t.name, t.capacity_bytes, PAGE_SIZE
                ));
            }
        }
        self.engine.validate()?;
        let mut warnings = Vec::new();
        for pair in self.tiers.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let (la, lb) = (a.unloaded_latency().as_ns(), b.unloaded_latency().as_ns());
            if lb <= la {
                warnings.push(format!(
                    "tier chain latency not monotone: {:?} ({la:.0} ns) -> {:?} ({lb:.0} ns); \
                     tiers are usually ordered fastest-first",
                    a.name, b.name
                ));
            }
        }
        Ok(warnings)
    }

    /// Total machine capacity in pages.
    pub fn total_capacity_pages(&self) -> u64 {
        self.tiers.iter().map(|t| t.capacity_pages()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_tier_unloaded_latency_is_about_70ns() {
        let cfg = MachineConfig::icelake_two_tier();
        let l = cfg.tiers[0].unloaded_latency().as_ns();
        assert!((l - 70.0).abs() < 1.0, "local unloaded = {l}ns");
    }

    #[test]
    fn remote_tier_unloaded_latency_is_about_135ns() {
        let cfg = MachineConfig::icelake_two_tier();
        let l = cfg.tiers[1].unloaded_latency().as_ns();
        assert!((l - 135.0).abs() < 2.0, "remote unloaded = {l}ns");
        let ratio = l / cfg.tiers[0].unloaded_latency().as_ns();
        assert!((ratio - 1.9).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn ddr4_peak_bandwidth_is_about_205gbs() {
        let d = DramConfig::ddr4_3200_8ch();
        let bw = d.peak_bandwidth() / 1e9;
        assert!((bw - 204.8).abs() < 1.0, "peak = {bw} GB/s");
    }

    #[test]
    fn upi_peak_bandwidth_is_about_75gbs() {
        let l = LinkConfig::upi();
        let bw = l.peak_bandwidth() / 1e9;
        assert!((bw - 75.0).abs() < 1.0, "peak = {bw} GB/s");
    }

    #[test]
    fn capacities_scale_to_pages() {
        let cfg = MachineConfig::icelake_two_tier();
        assert_eq!(cfg.tiers[0].capacity_pages(), 8192);
        assert_eq!(cfg.tiers[1].capacity_pages(), 24576);
    }

    #[test]
    fn alt_latency_ratio_sweep_hits_targets() {
        for ratio in [1.9, 2.1, 2.3, 2.5, 2.7] {
            let cfg = MachineConfig::with_alt_latency_ratio(ratio);
            let base = cfg.tiers[0].unloaded_latency().as_ns();
            let alt = cfg.tiers[1].unloaded_latency().as_ns();
            let got = alt / base;
            assert!(
                (got - ratio).abs() < 0.05,
                "requested {ratio}, got {got} ({alt}ns / {base}ns)"
            );
        }
    }

    #[test]
    fn three_tier_unloaded_latencies_hit_targets() {
        let cfg = MachineConfig::cxl_three_tier();
        let l: Vec<f64> = cfg
            .tiers
            .iter()
            .map(|t| t.unloaded_latency().as_ns())
            .collect();
        assert!((l[0] - 70.0).abs() < 1.0, "local = {} ns", l[0]);
        assert!((l[1] - 180.0).abs() < 2.0, "cxl = {} ns", l[1]);
        assert!((l[2] - 350.0).abs() < 4.0, "far = {} ns", l[2]);
    }

    #[test]
    fn three_tier_links_have_distinct_bandwidths() {
        let cfg = MachineConfig::cxl_three_tier();
        let bw_cxl = cfg.tiers[1].link.as_ref().unwrap().peak_bandwidth() / 1e9;
        let bw_far = cfg.tiers[2].link.as_ref().unwrap().peak_bandwidth() / 1e9;
        assert!((bw_cxl - 64.0).abs() < 1.0, "cxl = {bw_cxl} GB/s");
        assert!((bw_far - 32.0).abs() < 1.0, "far = {bw_far} GB/s");
    }

    #[test]
    fn validate_accepts_two_and_three_tier_presets() {
        assert!(MachineConfig::icelake_two_tier()
            .validate()
            .unwrap()
            .is_empty());
        assert!(MachineConfig::cxl_three_tier()
            .validate()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn validate_rejects_single_tier() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers.truncate(1);
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("at least 2"), "unhelpful error: {err}");
    }

    #[test]
    fn validate_warns_on_non_monotone_latency_chain() {
        let mut cfg = MachineConfig::cxl_three_tier();
        cfg.tiers.swap(1, 2); // far before cxl: legal but suspicious
        let warnings = cfg.validate().expect("non-monotone chain is not an error");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("not monotone"), "{}", warnings[0]);
    }

    #[test]
    fn validate_rejects_unaligned_capacity() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.tiers[1].capacity_bytes = PAGE_SIZE + 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn engine_default_is_the_exclusive_legacy_shape() {
        let e = MigrationEngineConfig::default();
        assert_eq!(e.channels, 1);
        assert!(!e.transactional);
        assert!(e.validate().is_ok());
        let t = MigrationEngineConfig::transactional();
        assert!(t.transactional);
        assert!(t.channels > 1);
        assert!(t.validate().is_ok());
        assert!(t.max_txn_lifetime() > t.watchdog);
    }

    #[test]
    fn validate_rejects_degenerate_engines() {
        let mut cfg = MachineConfig::icelake_two_tier();
        cfg.engine.channels = 0;
        assert!(cfg.validate().is_err());
        cfg.engine.channels = 1;
        cfg.engine.shootdown_batch = 0;
        assert!(cfg.validate().is_err());
        cfg.engine.shootdown_batch = 8;
        cfg.engine.watchdog = SimTime::ZERO;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn alt_latency_ratio_reduces_link_bandwidth() {
        let base = MachineConfig::with_alt_latency_ratio(1.9);
        let slow = MachineConfig::with_alt_latency_ratio(2.7);
        let bw_base = base.tiers[1].link.as_ref().unwrap().peak_bandwidth();
        let bw_slow = slow.tiers[1].link.as_ref().unwrap().peak_bandwidth();
        assert!(bw_slow < bw_base, "{bw_slow} !< {bw_base}");
    }
}
