//! Discrete-event model of a tiered-memory machine.
//!
//! This crate is the hardware substrate of the Colloid reproduction: it
//! stands in for the paper's dual-socket Xeon testbed (DESIGN.md §2). The
//! model is deliberately mechanistic — loaded-latency inflation is not a
//! formula but an emergent property of banks, buses, activation windows and
//! closed-loop cores with bounded memory-level parallelism.
//!
//! Module map:
//!
//! - [`config`]: machine/tier/DRAM/link/core parameters and the paper's
//!   testbed preset.
//! - [`request`]: request vocabulary (tiers, traffic classes, object
//!   accesses, PEBS samples, hint faults).
//! - [`controller`]: the DRAM timing model (channels × banks, row buffers,
//!   tFAW activation throttling, bus serialisation) and serial links.
//! - [`cha`]: the Caching-and-Home-Agent counter block — occupancy and
//!   arrival counters per tier, the vantage point Colloid measures from.
//! - [`machine`]: the event loop gluing cores, tiers, the CHA, page
//!   placement, the migration DMA engine, and access-tracking hardware.
//! - [`faults`]: deterministic fault injection — counter
//!   noise/staleness/drops, transient migration failures, bandwidth
//!   degradation phases, PEBS sample loss, and hard faults (permanent
//!   tier shrinks, engine outages, permanent bandwidth collapse).

pub mod cha;
pub mod config;
pub mod controller;
pub mod faults;
pub mod machine;
pub mod request;

pub use cha::{Cha, ChaCounters, TierWindow};
pub use config::{
    CoreConfig, DramConfig, LinkConfig, MachineConfig, MigrationEngineConfig, TierConfig,
};
pub use faults::{
    BandwidthPhase, ChannelStall, EngineOutage, FaultPlan, FaultStats, TierShrink,
    WriteConflictStorm,
};
pub use machine::{
    AbortReason, AccessStream, CoreId, EnqueueError, FailedMigration, Machine, MigrationCounters,
    TickReport, TxnTickStats,
};
pub use request::{
    AccessKind, HintFault, ObjectAccess, PebsSample, TierId, TrafficClass, Vpn, LINES_PER_PAGE,
    LINE_SIZE, PAGE_SIZE,
};
