//! Core identifier and request vocabulary shared across the simulator.

/// Identifier of a memory tier.
///
/// Tier 0 is by convention the *default* tier (lowest unloaded latency,
/// e.g. socket-local DDR); higher indices are *alternate* tiers (remote
/// socket over UPI, CXL-attached memory, ...). This matches the paper's
/// terminology (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TierId(pub u8);

impl TierId {
    /// The default tier (lowest unloaded latency).
    pub const DEFAULT: TierId = TierId(0);
    /// The first alternate tier.
    pub const ALTERNATE: TierId = TierId(1);

    /// Index usable for Vec-per-tier state.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Virtual page number. The simulated virtual address space is flat; the
/// experiment setup carves regions (application buffer, antagonist buffer)
/// out of it.
pub type Vpn = u64;

/// Base page size in bytes (4 KiB, as on x86-64).
pub const PAGE_SIZE: u64 = 4096;

/// Cache-line size in bytes.
pub const LINE_SIZE: u64 = 64;

/// Cache lines per base page.
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;

/// Who generated a memory request. Used to attribute bandwidth (the paper's
/// Figure 2b / 6a split GUPS traffic from antagonist traffic via Intel MBM)
/// and to keep migration traffic out of application throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// The measured application (GUPS, PageRank, Silo, CacheLib).
    App,
    /// The memory antagonist generating interconnect contention.
    Antagonist,
    /// Page-migration traffic issued by the tiering system.
    Migration,
}

impl TrafficClass {
    /// Number of traffic classes (for fixed-size per-class arrays).
    pub const COUNT: usize = 3;

    /// Index usable for per-class arrays.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::App => 0,
            TrafficClass::Antagonist => 1,
            TrafficClass::Migration => 2,
        }
    }
}

/// Read or write, at the memory-request level.
///
/// Stores first fetch the line with a read-for-ownership; the dirty line is
/// written back later. The simulator therefore issues `Read` requests on the
/// critical path and fire-and-forget `Write` requests for writebacks
/// (paper §3.1: "memory access throughput for write requests directly
/// depends on the latency of memory read requests").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand read or RFO; occupies a core slot and the CHA.
    Read,
    /// Asynchronous writeback; occupies banks/bus only.
    Write,
}

/// One object-granularity access produced by a workload stream.
///
/// The core model expands this into per-cacheline memory requests: the first
/// line is a demand miss; subsequent lines of a multi-line object are
/// prefetched (hardware next-line prefetcher), which raises the effective
/// memory-level parallelism for large objects (paper §5.1, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectAccess {
    /// Starting virtual byte address.
    pub vaddr: u64,
    /// Object size in bytes (>= 1).
    pub size: u32,
    /// Whether the application writes the object (RFO + later writeback).
    pub is_write: bool,
    /// If true, this access cannot issue until the previous access from the
    /// same stream has fully completed (pointer chasing, e.g. B-tree
    /// descent in Silo).
    pub dependent: bool,
    /// Probability that a line of this object hits in the LLC and never
    /// reaches memory.
    pub llc_hit_prob: f32,
}

impl ObjectAccess {
    /// A simple 64-byte independent read.
    pub fn read_line(vaddr: u64) -> Self {
        ObjectAccess {
            vaddr,
            size: LINE_SIZE as u32,
            is_write: false,
            dependent: false,
            llc_hit_prob: 0.0,
        }
    }

    /// Number of cache lines this object spans.
    pub fn num_lines(&self) -> u64 {
        let first = self.vaddr / LINE_SIZE;
        let last = (self.vaddr + self.size as u64 - 1) / LINE_SIZE;
        last - first + 1
    }

    /// Virtual page of the first line.
    pub fn first_vpn(&self) -> Vpn {
        self.vaddr / PAGE_SIZE
    }
}

/// A record of one PEBS-style access sample (HeMem/MEMTIS access tracking).
#[derive(Debug, Clone, Copy)]
pub struct PebsSample {
    /// Page the sampled load touched.
    pub vpn: Vpn,
    /// Whether the sampled access was a store.
    pub is_write: bool,
    /// Tier the page resided in at sample time.
    pub tier: TierId,
}

/// A record of one hint page fault (TPP access tracking).
#[derive(Debug, Clone, Copy)]
pub struct HintFault {
    /// Faulting page.
    pub vpn: Vpn,
    /// Time between the page being marked and the fault, in nanoseconds.
    pub time_to_fault_ns: f64,
    /// Tier the page resided in when the fault fired.
    pub tier: TierId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_constants() {
        assert_eq!(TierId::DEFAULT.index(), 0);
        assert_eq!(TierId::ALTERNATE.index(), 1);
        assert!(TierId::DEFAULT < TierId::ALTERNATE);
    }

    #[test]
    fn object_line_count_single() {
        let a = ObjectAccess::read_line(4096);
        assert_eq!(a.num_lines(), 1);
        assert_eq!(a.first_vpn(), 1);
    }

    #[test]
    fn object_line_count_spanning() {
        // 4096-byte object starting mid-line spans 65 lines.
        let a = ObjectAccess {
            vaddr: 32,
            size: 4096,
            is_write: false,
            dependent: false,
            llc_hit_prob: 0.0,
        };
        assert_eq!(a.num_lines(), 65);
    }

    #[test]
    fn object_line_count_aligned_4k() {
        let a = ObjectAccess {
            vaddr: 8192,
            size: 4096,
            is_write: true,
            dependent: false,
            llc_hit_prob: 0.0,
        };
        assert_eq!(a.num_lines(), 64);
        assert_eq!(a.first_vpn(), 2);
    }

    #[test]
    fn class_indices_are_distinct() {
        let mut seen = [false; TrafficClass::COUNT];
        for c in [
            TrafficClass::App,
            TrafficClass::Antagonist,
            TrafficClass::Migration,
        ] {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }
}
