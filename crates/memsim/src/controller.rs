//! Memory-controller and DRAM-device timing model.
//!
//! Each tier owns one [`MemoryController`]. A controller has `channels`
//! independent channels; each channel has a data bus (serialises 64 B
//! bursts), a set of banks with open-row state, and a tFAW activation
//! window. A request's service therefore pays, in order:
//!
//! 1. **bank wait** — the target bank may still be busy with an earlier
//!    request (row cycle time);
//! 2. **activation throttling** — a row-buffer miss needs an ACT command,
//!    and at most `faw_activations` ACTs may issue per `t_faw` window per
//!    channel. This is the mechanism that caps *random-access* throughput
//!    far below the bus bandwidth, producing the paper's "latency inflates
//!    even when interconnect bandwidth is far from saturated" regime
//!    (§3.1);
//! 3. **bank service** — row hit (CAS only) vs row miss (PRE+ACT+CAS);
//! 4. **bus wait + burst** — the 64 B transfer on the shared channel bus.
//!
//! The model is a *reservation* model: because the machine processes
//! arrivals in global time order and every per-resource queue is FCFS, each
//! request's completion time can be computed at arrival by advancing
//! per-resource `free_at` horizons. This keeps the event count at one event
//! per request while still producing real queueing behaviour (waits grow
//! without bound as the closed-loop load approaches the bottleneck
//! capacity).

use simkit::SimTime;

use crate::config::DramConfig;
use crate::request::AccessKind;

/// Open-row state and busy horizon of one DRAM bank.
#[derive(Debug, Clone)]
struct Bank {
    free_at: SimTime,
    open_row: u64,
}

/// One memory channel: banks + data bus + activation window.
#[derive(Debug, Clone)]
struct Channel {
    banks: Vec<Bank>,
    bus_free: SimTime,
    /// Ring buffer of the last `faw_activations` ACT issue times.
    act_times: Vec<SimTime>,
    act_head: usize,
}

impl Channel {
    fn new(cfg: &DramConfig) -> Self {
        Channel {
            banks: vec![
                Bank {
                    free_at: SimTime::ZERO,
                    open_row: u64::MAX,
                };
                cfg.banks_per_channel
            ],
            bus_free: SimTime::ZERO,
            act_times: vec![SimTime::ZERO; cfg.faw_activations as usize],
            act_head: 0,
        }
    }

    /// Earliest time a new activation may issue at or after `t`, respecting
    /// tFAW; records the activation.
    ///
    /// `act_times` is a ring of "slot reusable at" horizons: slot `i`
    /// becomes reusable `t_faw` after the activation that consumed it.
    fn reserve_activation(&mut self, t: SimTime, t_faw: SimTime) -> SimTime {
        let earliest = self.act_times[self.act_head].max(t);
        self.act_times[self.act_head] = earliest + t_faw;
        self.act_head = (self.act_head + 1) % self.act_times.len();
        earliest
    }
}

/// Outcome of scheduling one request at a controller.
#[derive(Debug, Clone, Copy)]
pub struct ServiceOutcome {
    /// Time the 64 B burst finishes on the channel bus (data available).
    pub done: SimTime,
    /// Whether the request hit the open row.
    pub row_hit: bool,
}

/// The per-tier memory controller.
///
/// # Examples
///
/// ```
/// use memsim::config::DramConfig;
/// use memsim::controller::MemoryController;
/// use memsim::request::AccessKind;
/// use simkit::SimTime;
///
/// let mut mc = MemoryController::new(DramConfig::ddr4_3200_8ch());
/// let t0 = SimTime::ZERO;
/// let first = mc.schedule(t0, 0x1000, AccessKind::Read);
/// // An unloaded row-miss read takes row-miss + bus time.
/// assert_eq!(first.done.as_ns(), 47.5);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    channels: Vec<Channel>,
    /// Total 64 B bursts served, for utilisation accounting.
    pub bursts_served: u64,
    /// Row hits observed, for locality diagnostics.
    pub row_hits: u64,
}

impl MemoryController {
    /// Creates a controller over the given DRAM devices.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels).map(|_| Channel::new(&cfg)).collect();
        MemoryController {
            cfg,
            channels,
            bursts_served: 0,
            row_hits: 0,
        }
    }

    /// Mixes bits of a line address (xor-shift hash) so channel/bank
    /// assignment is free of stride aliasing, as real address-hashing
    /// performs.
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x
    }

    /// Schedules one 64 B request arriving at `t` for line address
    /// `line_addr` (byte address / 64). Returns the completion outcome.
    pub fn schedule(&mut self, t: SimTime, line_addr: u64, kind: AccessKind) -> ServiceOutcome {
        let cfg = self.cfg.clone();
        let lines_per_row = cfg.row_bytes / 64;
        // Channels interleave at 256 B (4-line) granularity so sequential
        // streams spread across channels, like real Intel interleaving.
        let chunk = line_addr / 4;
        let ch_idx = (Self::mix(chunk) % cfg.channels as u64) as usize;
        // The global row this line belongs to; rows map to banks by hash.
        let row = line_addr / lines_per_row;
        let bank_idx = (Self::mix(row ^ 0x9E37_79B9) % cfg.banks_per_channel as u64) as usize;

        let ch = &mut self.channels[ch_idx];
        let row_hit = ch.banks[bank_idx].open_row == row;
        let bank_ready = ch.banks[bank_idx].free_at.max(t);
        let (svc_start, svc) = if row_hit {
            (bank_ready, cfg.t_row_hit)
        } else {
            // A row miss requires an activation slot (tFAW) in addition to
            // the bank being precharged.
            (ch.reserve_activation(bank_ready, cfg.t_faw), cfg.t_row_miss)
        };
        let bank = &mut ch.banks[bank_idx];
        let bank_done = svc_start + svc;
        bank.free_at = bank_done;
        bank.open_row = row;

        // Data burst on the shared channel bus; writes pay the amortised
        // read/write turnaround.
        let burst = match kind {
            AccessKind::Read => cfg.t_bus,
            AccessKind::Write => cfg.t_bus + cfg.t_write_turnaround,
        };
        let bus_start = ch.bus_free.max(bank_done);
        let done = bus_start + burst;
        ch.bus_free = done;

        self.bursts_served += 1;
        if row_hit {
            self.row_hits += 1;
        }
        ServiceOutcome { done, row_hit }
    }

    /// The DRAM configuration this controller models.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

/// A serial interconnect (UPI or CXL) between the CHA and a remote
/// controller, modelled as two independent directional FIFO servers plus
/// propagation delay.
#[derive(Debug, Clone)]
pub struct Link {
    t_serialize: SimTime,
    propagation: SimTime,
    req_free: SimTime,
    rsp_free: SimTime,
    /// Flits carried (both directions), for utilisation accounting.
    pub flits: u64,
}

impl Link {
    /// Creates a link from its configuration.
    pub fn new(cfg: &crate::config::LinkConfig) -> Self {
        Link {
            t_serialize: cfg.t_serialize,
            propagation: cfg.propagation,
            req_free: SimTime::ZERO,
            rsp_free: SimTime::ZERO,
            flits: 0,
        }
    }

    /// Sends a request flit at `t`; returns its arrival at the far side.
    pub fn send_request(&mut self, t: SimTime) -> SimTime {
        let start = self.req_free.max(t);
        self.req_free = start + self.t_serialize;
        self.flits += 1;
        self.req_free + self.propagation
    }

    /// Sends a response flit (64 B data) at `t`; returns its arrival back at
    /// the CHA.
    pub fn send_response(&mut self, t: SimTime) -> SimTime {
        let start = self.rsp_free.max(t);
        self.rsp_free = start + self.t_serialize;
        self.flits += 1;
        self.rsp_free + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LinkConfig;

    fn small_dram() -> DramConfig {
        DramConfig {
            channels: 1,
            banks_per_channel: 2,
            ..DramConfig::ddr4_3200_8ch()
        }
    }

    #[test]
    fn unloaded_read_pays_row_miss_plus_bus() {
        let mut mc = MemoryController::new(DramConfig::ddr4_3200_8ch());
        let out = mc.schedule(SimTime::ZERO, 0, AccessKind::Read);
        assert!(!out.row_hit);
        assert_eq!(out.done.as_ns(), 45.0 + 2.5);
    }

    #[test]
    fn second_access_to_same_row_hits() {
        let mut mc = MemoryController::new(DramConfig::ddr4_3200_8ch());
        let a = mc.schedule(SimTime::ZERO, 0, AccessKind::Read);
        // Same 4-line chunk => same channel, same row.
        let b = mc.schedule(a.done, 1, AccessKind::Read);
        assert!(b.row_hit);
        assert_eq!(mc.row_hits, 1);
    }

    #[test]
    fn bank_conflict_queues() {
        let mut mc = MemoryController::new(small_dram());
        // Find two line addresses mapping to the same bank but different
        // rows: with 2 banks, rows r and r' collide when their hashes agree.
        let lines_per_row = mc.config().row_bytes / 64;
        let mut conflicting = None;
        for row in 1..1_000 {
            let a = MemoryController::mix(0x9E37_79B9) % 2;
            let b = MemoryController::mix(row ^ 0x9E37_79B9) % 2;
            if a == b {
                conflicting = Some(row);
                break;
            }
        }
        let row = conflicting.expect("some row collides");
        let first = mc.schedule(SimTime::ZERO, 0, AccessKind::Read);
        let second = mc.schedule(SimTime::ZERO, row * lines_per_row, AccessKind::Read);
        // The second request waits for the first's bank busy time.
        assert!(second.done > first.done);
        assert!(second.done.as_ns() >= 2.0 * 45.0);
    }

    #[test]
    fn tfaw_throttles_activation_bursts() {
        let cfg = DramConfig {
            channels: 1,
            banks_per_channel: 64,
            ..DramConfig::ddr4_3200_8ch()
        };
        let lines_per_row = cfg.row_bytes / 64;
        let mut mc = MemoryController::new(cfg);
        // Issue 16 simultaneous row misses to (very likely) distinct banks:
        // only 4 ACTs may start per 25 ns window, so the last completion is
        // pushed out by roughly (16/4 - 1) * 25 ns of throttling.
        let mut last = SimTime::ZERO;
        for i in 0..16u64 {
            let out = mc.schedule(SimTime::ZERO, i * lines_per_row, AccessKind::Read);
            last = last.max(out.done);
        }
        assert!(
            last.as_ns() > 45.0 + 2.5 + 50.0,
            "tFAW should stretch a 16-activation burst, got {last:?}"
        );
    }

    #[test]
    fn bus_serializes_row_hits() {
        let mut mc = MemoryController::new(small_dram());
        // Warm the row.
        let warm = mc.schedule(SimTime::ZERO, 0, AccessKind::Read);
        // Two back-to-back row hits to lines in the same row must be spaced
        // by at least the burst time on the shared bus.
        let a = mc.schedule(warm.done, 1, AccessKind::Read);
        let b = mc.schedule(warm.done, 2, AccessKind::Read);
        assert!(b.done >= a.done + SimTime::from_ns(2.5));
    }

    #[test]
    fn writes_pay_turnaround() {
        let mut mc = MemoryController::new(small_dram());
        let warm = mc.schedule(SimTime::ZERO, 0, AccessKind::Read);
        let r = mc.schedule(warm.done, 1, AccessKind::Read);
        let mut mc2 = MemoryController::new(small_dram());
        let warm2 = mc2.schedule(SimTime::ZERO, 0, AccessKind::Read);
        let w = mc2.schedule(warm2.done, 1, AccessKind::Write);
        assert!(w.done > r.done);
    }

    #[test]
    fn link_serializes_flits() {
        let mut link = Link::new(&LinkConfig::upi());
        let t = SimTime::ZERO;
        let a = link.send_response(t);
        let b = link.send_response(t);
        assert!(b > a);
        assert_eq!(
            (b - a).as_ps(),
            LinkConfig::upi().t_serialize.as_ps(),
            "flits are spaced by the serialisation time"
        );
        assert_eq!(link.flits, 2);
    }

    #[test]
    fn link_directions_are_independent() {
        let mut link = Link::new(&LinkConfig::upi());
        let req = link.send_request(SimTime::ZERO);
        let rsp = link.send_response(SimTime::ZERO);
        // Both start immediately: no cross-direction contention.
        assert_eq!(req, rsp);
    }

    #[test]
    fn unloaded_throughput_matches_bus_rate() {
        // Stream row hits through one channel: steady-state spacing must be
        // the burst time (25.6 GB/s per channel).
        let mut mc = MemoryController::new(small_dram());
        let mut t = SimTime::ZERO;
        // Warm up.
        t = mc.schedule(t, 0, AccessKind::Read).done;
        let start = t;
        let n = 1000u64;
        for i in 1..=n {
            t = mc.schedule(t, i % 4, AccessKind::Read).done.max(t);
        }
        let per_line = (t - start).as_ns() / n as f64;
        // One request at a time: bank row-hit (6 ns) + bus burst (2.5 ns).
        assert!(
            (per_line - 8.5).abs() < 1.0,
            "closed-loop same-row hits pay bank + bus (~8.5ns), got {per_line}ns"
        );
    }
}
