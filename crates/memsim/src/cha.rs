//! Caching and Home Agent (CHA) counter model.
//!
//! The CHA is the vantage point Colloid measures from (paper §3.1): every
//! LLC-missing read enters the CHA when issued and leaves when its data
//! returns. Intel uncore PMUs expose, per tier, (a) a queue-occupancy
//! counter that accumulates the number of outstanding requests each cycle,
//! and (b) an arrival (insert) counter. Reading both over a quantum and
//! applying Little's Law yields the average CHA→memory read latency:
//! `L = O / R` with `O` the average occupancy and `R` the arrival rate.
//!
//! [`Cha`] reproduces exactly those two counters per tier (as exact
//! integrals rather than cycle-sampled sums), plus per-class byte counters
//! standing in for Intel MBM bandwidth monitoring.

use simkit::stats::TimeIntegrator;
use simkit::SimTime;

use crate::request::{TierId, TrafficClass};

/// Snapshot of one tier's CHA counters at an instant.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaCounters {
    /// Time-integral of read-queue occupancy, in request·ns.
    pub occupancy_integral: f64,
    /// Cumulative read arrivals.
    pub read_arrivals: u64,
    /// Cumulative bytes moved (reads + writes), per traffic class.
    pub bytes_by_class: [u64; TrafficClass::COUNT],
}

/// Per-tier measurement over a window, derived from two snapshots.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierWindow {
    /// Average read-queue occupancy `O` over the window.
    pub occupancy: f64,
    /// Read arrivals during the window.
    pub arrivals: u64,
    /// Arrival rate `R` in requests per nanosecond.
    pub rate_per_ns: f64,
    /// Bytes moved during the window, per traffic class.
    pub bytes_by_class: [u64; TrafficClass::COUNT],
}

impl TierWindow {
    /// Little's-Law latency estimate `L = O / R` in nanoseconds.
    ///
    /// Returns `None` when the window saw no arrivals (idle tier) — the
    /// measurement is undefined, and callers (the Colloid controller) must
    /// fall back to the previous estimate.
    pub fn littles_latency_ns(&self) -> Option<f64> {
        if self.arrivals == 0 || self.rate_per_ns <= 0.0 {
            None
        } else {
            Some(self.occupancy / self.rate_per_ns)
        }
    }

    /// Total bytes across classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_by_class.iter().sum()
    }

    /// Bandwidth in bytes/second over a window of `dur`.
    pub fn bandwidth_bytes_per_sec(&self, dur: SimTime) -> f64 {
        let s = dur.as_secs();
        if s <= 0.0 {
            0.0
        } else {
            self.total_bytes() as f64 / s
        }
    }
}

/// The CHA counter block: one occupancy integrator and one arrival counter
/// per tier, plus MBM-style per-class byte counters.
#[derive(Debug, Clone)]
pub struct Cha {
    occupancy: Vec<TimeIntegrator>,
    read_arrivals: Vec<u64>,
    bytes: Vec<[u64; TrafficClass::COUNT]>,
}

impl Cha {
    /// Creates counters for `tiers` memory tiers.
    pub fn new(tiers: usize) -> Self {
        Cha {
            occupancy: vec![TimeIntegrator::new(); tiers],
            read_arrivals: vec![0; tiers],
            bytes: vec![[0; TrafficClass::COUNT]; tiers],
        }
    }

    /// Records a read entering the CHA for `tier` at time `t`.
    pub fn on_read_arrival(&mut self, tier: TierId, t: SimTime, class: TrafficClass) {
        self.occupancy[tier.index()].add(t, 1.0);
        self.read_arrivals[tier.index()] += 1;
        self.bytes[tier.index()][class.index()] += 64;
    }

    /// Records a read's data returning from `tier` at time `t`.
    pub fn on_read_departure(&mut self, tier: TierId, t: SimTime) {
        debug_assert!(
            self.occupancy[tier.index()].current() >= 1.0,
            "departure without arrival"
        );
        self.occupancy[tier.index()].add(t, -1.0);
    }

    /// Records write (writeback) bytes flowing to `tier`; writes do not
    /// occupy the read queue (paper §3.1: writes are asynchronous and only
    /// read latency matters for throughput).
    pub fn on_write(&mut self, tier: TierId, class: TrafficClass) {
        self.bytes[tier.index()][class.index()] += 64;
    }

    /// Number of reads currently outstanding for `tier`.
    pub fn outstanding(&self, tier: TierId) -> f64 {
        self.occupancy[tier.index()].current()
    }

    /// Snapshots one tier's counters at time `t`.
    pub fn snapshot(&self, tier: TierId, t: SimTime) -> ChaCounters {
        ChaCounters {
            occupancy_integral: self.occupancy[tier.index()].integral_at(t),
            read_arrivals: self.read_arrivals[tier.index()],
            bytes_by_class: self.bytes[tier.index()],
        }
    }

    /// Derives a window measurement between two snapshots of the same tier.
    pub fn window(prev: &ChaCounters, cur: &ChaCounters, t0: SimTime, t1: SimTime) -> TierWindow {
        let dt_ns = t1.saturating_sub(t0).as_ns();
        let arrivals = cur.read_arrivals - prev.read_arrivals;
        let occupancy = if dt_ns > 0.0 {
            (cur.occupancy_integral - prev.occupancy_integral) / dt_ns
        } else {
            0.0
        };
        let mut bytes = [0u64; TrafficClass::COUNT];
        for (b, (c, p)) in bytes
            .iter_mut()
            .zip(cur.bytes_by_class.iter().zip(prev.bytes_by_class.iter()))
        {
            *b = c - p;
        }
        TierWindow {
            occupancy,
            arrivals,
            rate_per_ns: if dt_ns > 0.0 {
                arrivals as f64 / dt_ns
            } else {
                0.0
            },
            bytes_by_class: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: TierId = TierId::DEFAULT;

    #[test]
    fn littles_law_on_constant_stream() {
        // One request always in flight, each taking 100 ns: L = O/R must
        // recover exactly 100 ns.
        let mut cha = Cha::new(1);
        let before = cha.snapshot(D, SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            cha.on_read_arrival(D, t, TrafficClass::App);
            t += SimTime::from_ns(100.0);
            cha.on_read_departure(D, t);
        }
        let after = cha.snapshot(D, t);
        let w = Cha::window(&before, &after, SimTime::ZERO, t);
        let l = w.littles_latency_ns().unwrap();
        assert!((l - 100.0).abs() < 1e-6, "L = {l}");
        assert!((w.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn littles_law_with_overlap() {
        // Two overlapping requests of 100 ns each, arriving together every
        // 100 ns: occupancy 2, rate 0.02/ns, L = 100 ns.
        let mut cha = Cha::new(1);
        let mut t = SimTime::ZERO;
        for _ in 0..50 {
            cha.on_read_arrival(D, t, TrafficClass::App);
            cha.on_read_arrival(D, t, TrafficClass::App);
            t += SimTime::from_ns(100.0);
            cha.on_read_departure(D, t);
            cha.on_read_departure(D, t);
        }
        let after = cha.snapshot(D, t);
        let w = Cha::window(&ChaCounters::default(), &after, SimTime::ZERO, t);
        assert!((w.littles_latency_ns().unwrap() - 100.0).abs() < 1e-6);
        assert!((w.occupancy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_window_has_no_latency_estimate() {
        let cha = Cha::new(2);
        let s0 = cha.snapshot(TierId::ALTERNATE, SimTime::ZERO);
        let s1 = cha.snapshot(TierId::ALTERNATE, SimTime::from_us(1.0));
        let w = Cha::window(&s0, &s1, SimTime::ZERO, SimTime::from_us(1.0));
        assert!(w.littles_latency_ns().is_none());
    }

    #[test]
    fn zero_rate_window_has_no_latency_estimate() {
        // Pin the division guard: arrivals recorded but a zero rate (e.g. a
        // perturbed window) must yield `None`, never a division by zero.
        let w = TierWindow {
            occupancy: 5.0,
            arrivals: 3,
            rate_per_ns: 0.0,
            bytes_by_class: [0; TrafficClass::COUNT],
        };
        assert!(w.littles_latency_ns().is_none());
    }

    #[test]
    fn bytes_attributed_per_class() {
        let mut cha = Cha::new(1);
        cha.on_read_arrival(D, SimTime::ZERO, TrafficClass::App);
        cha.on_read_arrival(D, SimTime::ZERO, TrafficClass::Antagonist);
        cha.on_write(D, TrafficClass::Migration);
        let s = cha.snapshot(D, SimTime::from_ns(1.0));
        assert_eq!(s.bytes_by_class[TrafficClass::App.index()], 64);
        assert_eq!(s.bytes_by_class[TrafficClass::Antagonist.index()], 64);
        assert_eq!(s.bytes_by_class[TrafficClass::Migration.index()], 64);
    }

    #[test]
    fn writes_do_not_occupy_read_queue() {
        let mut cha = Cha::new(1);
        cha.on_write(D, TrafficClass::App);
        assert_eq!(cha.outstanding(D), 0.0);
        let s = cha.snapshot(D, SimTime::from_ns(10.0));
        assert_eq!(s.read_arrivals, 0);
        assert_eq!(s.occupancy_integral, 0.0);
    }

    #[test]
    fn window_bandwidth() {
        let mut cha = Cha::new(1);
        for _ in 0..1000 {
            cha.on_write(D, TrafficClass::App);
        }
        let s = cha.snapshot(D, SimTime::from_us(1.0));
        let w = Cha::window(
            &ChaCounters::default(),
            &s,
            SimTime::ZERO,
            SimTime::from_us(1.0),
        );
        // 64 KB in 1 us = 64 GB/s.
        let bw = w.bandwidth_bytes_per_sec(SimTime::from_us(1.0));
        assert!((bw - 64e9).abs() / 64e9 < 1e-9);
    }

    #[test]
    fn tiers_are_independent() {
        let mut cha = Cha::new(2);
        cha.on_read_arrival(TierId::DEFAULT, SimTime::ZERO, TrafficClass::App);
        let s_alt = cha.snapshot(TierId::ALTERNATE, SimTime::from_ns(5.0));
        assert_eq!(s_alt.read_arrivals, 0);
        let s_def = cha.snapshot(TierId::DEFAULT, SimTime::from_ns(5.0));
        assert_eq!(s_def.read_arrivals, 1);
    }
}
