//! Integration tests of the hardware model's contention behaviour — the
//! physical claims the paper's argument rests on (§3.1):
//!
//! - loaded latency rises monotonically with offered load, *well before*
//!   the data-bus bandwidth saturates;
//! - sequential traffic achieves far higher bandwidth than random traffic
//!   (row-buffer locality vs activation limits);
//! - a serial link caps the alternate tier's throughput at the link rate;
//! - read-write mixes cost more than read-only traffic.

use memsim::machine::AccessStream;
use memsim::{
    CoreConfig, LinkConfig, Machine, MachineConfig, ObjectAccess, TierId, TrafficClass,
    LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE,
};
use rand::rngs::SmallRng;
use rand::Rng;
use simkit::SimTime;

struct RandomReads {
    pages: u64,
    write_fraction: f64,
}

impl AccessStream for RandomReads {
    fn next(&mut self, _now: SimTime, rng: &mut SmallRng) -> ObjectAccess {
        let vpn = rng.gen_range(0..self.pages);
        ObjectAccess {
            vaddr: vpn * PAGE_SIZE + rng.gen_range(0..LINES_PER_PAGE) * LINE_SIZE,
            size: 64,
            is_write: rng.gen_bool(self.write_fraction),
            dependent: false,
            llc_hit_prob: 0.0,
        }
    }
}

struct Sequential {
    cursor: u64,
    bytes: u64,
}

impl AccessStream for Sequential {
    fn next(&mut self, _now: SimTime, _rng: &mut SmallRng) -> ObjectAccess {
        let vaddr = self.cursor;
        self.cursor = (self.cursor + 1024) % self.bytes;
        ObjectAccess {
            vaddr,
            size: 1024,
            is_write: false,
            dependent: false,
            llc_hit_prob: 0.0,
        }
    }
}

fn machine_with_cores(n: usize, stream: impl Fn() -> Box<dyn AccessStream>) -> Machine {
    let mut m = Machine::new(MachineConfig::icelake_two_tier());
    m.place_range(0..4096, TierId::DEFAULT);
    for _ in 0..n {
        m.add_core(stream(), CoreConfig::default(), TrafficClass::App);
    }
    m
}

fn measure(m: &mut Machine) -> (f64, f64) {
    m.run_tick(SimTime::from_us(50.0));
    let rep = m.run_tick(SimTime::from_us(200.0));
    let l = rep
        .littles_latency_ns(TierId::DEFAULT)
        .expect("default tier busy");
    let bw = rep.tiers[0].bandwidth_bytes_per_sec(rep.duration());
    (l, bw)
}

#[test]
fn latency_rises_monotonically_with_load() {
    let mut last = 0.0;
    for cores in [1usize, 4, 8, 16, 24] {
        let mut m = machine_with_cores(cores, || {
            Box::new(RandomReads {
                pages: 4096,
                write_fraction: 0.0,
            })
        });
        let (l, _) = measure(&mut m);
        assert!(
            l > last * 0.98,
            "latency must not fall as load rises: {l} ns at {cores} cores after {last} ns"
        );
        last = l;
    }
    // The end of the sweep must be well into the contention regime.
    assert!(
        last > 120.0,
        "24 random cores should contend, got {last} ns"
    );
}

#[test]
fn latency_inflates_before_bus_saturates() {
    // The paper's central §3.1 claim: at the load where random-access
    // latency has clearly inflated, the data bus is far from saturated.
    let mut m = machine_with_cores(24, || {
        Box::new(RandomReads {
            pages: 4096,
            write_fraction: 0.0,
        })
    });
    let (l, bw) = measure(&mut m);
    let peak = MachineConfig::icelake_two_tier().tiers[0]
        .dram
        .peak_bandwidth();
    assert!(l > 100.0, "latency inflated ({l} ns)");
    assert!(
        bw < 0.75 * peak,
        "bus far from saturated: {:.0} of {:.0} GB/s",
        bw / 1e9,
        peak / 1e9
    );
}

#[test]
fn sequential_beats_random_bandwidth() {
    let mut seq = machine_with_cores(12, || {
        Box::new(Sequential {
            cursor: 0,
            bytes: 4096 * PAGE_SIZE,
        })
    });
    let mut rnd = machine_with_cores(12, || {
        Box::new(RandomReads {
            pages: 4096,
            write_fraction: 0.0,
        })
    });
    let (_, bw_seq) = measure(&mut seq);
    let (_, bw_rnd) = measure(&mut rnd);
    assert!(
        bw_seq > bw_rnd * 1.3,
        "row locality must pay: sequential {:.0} GB/s vs random {:.0} GB/s",
        bw_seq / 1e9,
        bw_rnd / 1e9
    );
}

#[test]
fn writes_cost_more_than_reads() {
    let run = |wf: f64| {
        let mut m = machine_with_cores(16, move || {
            Box::new(RandomReads {
                pages: 4096,
                write_fraction: wf,
            })
        });
        let (l, _) = measure(&mut m);
        l
    };
    let read_only = run(0.0);
    let mixed = run(1.0);
    assert!(
        mixed > read_only,
        "writeback traffic must inflate latency: {mixed} !> {read_only}"
    );
}

#[test]
fn link_bandwidth_caps_alternate_tier() {
    // A narrow 10 GB/s link: closed-loop read throughput over the link must
    // not exceed it (response direction carries the 64 B data).
    let mut cfg = MachineConfig::icelake_two_tier();
    cfg.tiers[1].link = Some(LinkConfig {
        propagation: SimTime::from_ns(32.0),
        t_serialize: SimTime::from_ns(64.0 / 10.0),
    });
    let mut m = Machine::new(cfg);
    m.place_range(0..4096, TierId::ALTERNATE);
    for _ in 0..24 {
        m.add_core(
            Box::new(RandomReads {
                pages: 4096,
                write_fraction: 0.0,
            }),
            CoreConfig::default(),
            TrafficClass::App,
        );
    }
    m.run_tick(SimTime::from_us(50.0));
    let rep = m.run_tick(SimTime::from_us(200.0));
    let read_bw = rep.tiers[1].arrivals as f64 * 64.0 / rep.duration().as_secs();
    assert!(
        read_bw < 10.5e9,
        "link must cap read bandwidth at ~10 GB/s, got {:.1} GB/s",
        read_bw / 1e9
    );
    assert!(
        read_bw > 8.0e9,
        "and the link should saturate under 24 cores"
    );
    // Latency balloons as the closed loop queues on the link.
    let l = rep.littles_latency_ns(TierId::ALTERNATE).unwrap();
    assert!(l > 400.0, "link queueing should dominate, got {l} ns");
}

#[test]
fn alt_latency_ratio_presets_measure_correctly() {
    // The Figure 7 sweep's machine variants must *measure* at the requested
    // unloaded ratio, not just compute it in config space.
    for ratio in [1.9, 2.3, 2.7] {
        let cfg = MachineConfig::with_alt_latency_ratio(ratio);
        let mut m = Machine::new(cfg);
        m.place_range(0..512, TierId::DEFAULT);
        m.place_range(512..1024, TierId::ALTERNATE);
        m.add_core(
            Box::new(RandomReads {
                pages: 512,
                write_fraction: 0.0,
            }),
            CoreConfig {
                demand_slots: 1,
                ..CoreConfig::default()
            },
            TrafficClass::App,
        );
        let mut m2 = Machine::new(MachineConfig::with_alt_latency_ratio(ratio));
        m2.place_range(0..1024, TierId::ALTERNATE);
        m2.add_core(
            Box::new(RandomReads {
                pages: 1024,
                write_fraction: 0.0,
            }),
            CoreConfig {
                demand_slots: 1,
                ..CoreConfig::default()
            },
            TrafficClass::App,
        );
        let rep_d = m.run_tick(SimTime::from_us(200.0));
        let rep_a = m2.run_tick(SimTime::from_us(200.0));
        let l_d = rep_d.littles_latency_ns(TierId::DEFAULT).unwrap();
        let l_a = rep_a.littles_latency_ns(TierId::ALTERNATE).unwrap();
        let got = l_a / l_d;
        assert!(
            (got - ratio).abs() < 0.25,
            "requested ratio {ratio}, measured {got:.2} ({l_a:.0}/{l_d:.0} ns)"
        );
    }
}
