//! Property-based tests for the transactional migration engine.
//!
//! The tentpole's safety story rests on two invariants that must survive
//! *any* fault plan — write-conflict storms, channel stalls, engine
//! outages, transient failures — on any engine shape:
//!
//! 1. **Page conservation**: across commit, dirty-retry, abort, and
//!    failover, no page is ever lost or duplicated. Every page stays
//!    mapped to exactly one tier, and an aborted transaction leaves its
//!    page intact at the source with the destination reservation
//!    released.
//! 2. **Termination**: every opened transaction commits or aborts within
//!    the configured watchdog bound
//!    ([`memsim::MigrationEngineConfig::max_txn_lifetime`]); nothing
//!    stays in flight forever, even when every channel stalls.

use memsim::{
    ChannelStall, EngineOutage, FaultPlan, Machine, MachineConfig, MigrationEngineConfig, TierId,
    WriteConflictStorm,
};
use proptest::prelude::*;
use simkit::SimTime;

/// Pages placed on the default tier at the start of every case.
const PAGES: u64 = 128;
/// Pages enqueued for migration to the alternate tier.
const ENQUEUED: u64 = 64;
/// Per-case tick budget; far beyond any generated fault horizon (20 ms)
/// plus the worst-case transaction lifetime.
const MAX_TICKS: usize = 400;

/// A random engine shape: 1–4 channels, retry budget 0–4, a watchdog
/// spanning both sides of the page-copy time, and small-to-large
/// shootdown batches.
fn engine() -> impl Strategy<Value = MigrationEngineConfig> {
    ((1u32..=4, 0u32..=4), (50.0f64..500.0, 1u32..=16)).prop_map(
        |((channels, dirty_retry_max), (watchdog_us, shootdown_batch))| {
            let mut e = MigrationEngineConfig::transactional();
            e.channels = channels;
            e.dirty_retry_max = dirty_retry_max;
            e.watchdog = SimTime::from_us(watchdog_us);
            e.shootdown_batch = shootdown_batch;
            e
        },
    )
}

/// A random fault plan aimed at the migration path: storms that dirty
/// in-flight transactions (sometimes past the retry cap), channel stalls,
/// one optional outage window, and transient failures. All windows close
/// before 20 ms so the case horizon covers them.
fn plan(channels: u32) -> impl Strategy<Value = FaultPlan> {
    (
        prop::collection::vec(
            ((0.0f64..10.0, 0.5f64..10.0), (0.05f64..1.0, 1u32..6)),
            0..3,
        ),
        prop::collection::vec((0u32..4, (0.0f64..5.0, 0.5f64..1.9)), 0..3),
        (prop::bool::ANY, 0.0f64..0.25),
    )
        .prop_map(move |(storms, stalls, (outage, fail_prob))| FaultPlan {
            write_conflict_storms: storms
                .into_iter()
                .map(
                    |((start_ms, len_ms), (hot_fraction, dirties_per_txn))| WriteConflictStorm {
                        start: SimTime::from_ms(start_ms),
                        end: SimTime::from_ms(start_ms + len_ms),
                        hot_fraction,
                        dirties_per_txn,
                    },
                )
                .collect(),
            // Each stall lives in its own 7 ms slot so two stalls can
            // never overlap on one channel (the plan validator rejects
            // overlapping windows).
            channel_stalls: stalls
                .into_iter()
                .enumerate()
                .map(|(i, (ch, (start_ms, len_ms)))| {
                    let base = i as f64 * 7.0;
                    ChannelStall {
                        channel: ch % channels,
                        start: SimTime::from_ms(base + start_ms),
                        end: SimTime::from_ms(base + start_ms + len_ms),
                    }
                })
                .collect(),
            engine_outages: if outage {
                vec![EngineOutage {
                    start: SimTime::from_ms(2.0),
                    end: SimTime::from_ms(5.0),
                }]
            } else {
                Vec::new()
            },
            migration_fail_prob: fail_prob,
            ..FaultPlan::none()
        })
}

/// Builds the machine for one case and enqueues the working set.
fn build(engine: MigrationEngineConfig, faults: FaultPlan, seed: u64) -> Machine {
    let mut cfg = MachineConfig::icelake_two_tier();
    cfg.engine = engine;
    cfg.faults = faults;
    cfg.seed = seed;
    cfg.validate().expect("generated config must validate");
    let mut m = Machine::new(cfg);
    m.place_range(0..PAGES, TierId::DEFAULT);
    for v in 0..ENQUEUED {
        m.enqueue_migration(v, TierId::ALTERNATE)
            .expect("first enqueue of each page must be accepted");
    }
    m
}

proptest! {
    /// No fault plan may lose or duplicate a page: at every tick each
    /// working-set page is mapped to exactly one tier, the per-tier used
    /// counts sum to the working set, and the engine's books balance.
    #[test]
    fn pages_are_conserved_under_any_fault_plan(
        engine in engine(),
        seed in 0u64..1 << 32,
        plan in plan(4),
    ) {
        let mut plan = plan;
        for s in &mut plan.channel_stalls {
            s.channel %= engine.channels;
        }
        let mut m = build(engine, plan, seed);
        let tick = SimTime::from_us(100.0);
        for _ in 0..MAX_TICKS {
            let rep = m.run_tick(tick);
            // Mid-run, every page is mapped to exactly one tier; the
            // per-tier used counts may legitimately exceed the working
            // set while in-flight destination reservations are held.
            for v in 0..PAGES {
                prop_assert!(m.tier_of(v).is_some(), "page {} lost mid-run", v);
            }
            let c = m.migration_counters();
            prop_assert_eq!(c.started, c.completed + c.aborted() + c.in_flight());
            // An aborted page is intact at its source: still mapped.
            for f in &rep.failed_migrations {
                prop_assert!(m.tier_of(f.vpn).is_some(), "aborted page unmapped");
            }
            if rep.migration_backlog == 0 && c.in_flight() == 0 {
                break;
            }
        }
        for v in 0..PAGES {
            prop_assert!(m.tier_of(v).is_some(), "page {} lost", v);
        }
        let c = m.migration_counters();
        prop_assert_eq!(c.in_flight(), 0, "transactions leaked past the horizon");
        // With nothing in flight the reservations are all released, so the
        // per-tier used counts must sum exactly to the working set: no
        // page was duplicated into a second frame.
        prop_assert_eq!(
            m.used_pages(TierId::DEFAULT) + m.used_pages(TierId::ALTERNATE),
            PAGES
        );
        prop_assert_eq!(c.completed + c.aborted(), c.started);
        // Every committed transaction went through a shootdown batch.
        prop_assert_eq!(c.batched_pages, c.completed);
    }

    /// Every opened transaction terminates within the watchdog bound:
    /// once the queue drains, the remaining in-flight transactions all
    /// commit or abort within `max_txn_lifetime`.
    #[test]
    fn transactions_terminate_within_the_watchdog_bound(
        engine in engine(),
        seed in 0u64..1 << 32,
        plan in plan(4),
    ) {
        let mut plan = plan;
        for s in &mut plan.channel_stalls {
            s.channel %= engine.channels;
        }
        let lifetime = engine.max_txn_lifetime();
        let mut m = build(engine, plan, seed);
        let tick = SimTime::from_us(100.0);
        let lifetime_ticks = (lifetime.as_ns() / tick.as_ns()).ceil() as usize + 1;
        let mut drained_at = None;
        let mut done_at = None;
        for i in 0..MAX_TICKS {
            let rep = m.run_tick(tick);
            let c = m.migration_counters();
            if drained_at.is_none() && rep.migration_backlog == 0 {
                drained_at = Some(i);
            }
            if c.in_flight() == 0 && rep.migration_backlog == 0 {
                done_at = Some(i);
                break;
            }
        }
        let drained = drained_at.expect("the queue never drained within the horizon");
        let done = done_at.expect("in-flight transactions never terminated");
        // Once no new transactions can start, the stragglers must resolve
        // within one watchdog-bounded lifetime.
        prop_assert!(
            done <= drained + lifetime_ticks,
            "transactions lived {} ticks past queue drain (bound {})",
            done - drained,
            lifetime_ticks
        );
    }
}
