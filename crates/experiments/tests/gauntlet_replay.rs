//! Golden replay pin for the committed gauntlet fixture.
//!
//! The fixture under `tests/fixtures/` is a recorded phase-shift capture
//! serialized with `workloads::trace_to_ndjson`; this test re-imports it,
//! replays it through the gauntlet's capture-shape cell, and compares the
//! `RunResult` digest against the committed golden. Any change to the
//! NDJSON schema, the replayer, or the machine's replay semantics will
//! surface here instead of silently shifting the gauntlet's fixture
//! column. Regenerate both files with
//! `cargo run -p experiments --release --bin gauntlet -- --quick --gen-fixture`
//! (the scenario is pinned to quick mode).

use std::path::Path;
use std::sync::Arc;

use experiments::gauntlet::{self, GauntletScenario};
use workloads::{trace_from_ndjson, trace_to_ndjson, TraceParseError};

fn fixture_text() -> String {
    let p =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/gauntlet_phase_shift.ndjson");
    std::fs::read_to_string(p).expect("committed gauntlet fixture")
}

fn golden_digest() -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/gauntlet_fixture_digest.txt");
    std::fs::read_to_string(p).expect("golden fixture digest")
}

#[test]
fn fixture_replay_matches_golden_digest() {
    let trace = Arc::new(trace_from_ndjson(&fixture_text()).expect("fixture parses"));
    let sc = GauntletScenario::paper_default(true);
    let digest = gauntlet::fixture_replay_digest(&sc, &trace);
    let golden = golden_digest();
    let pinned = golden
        .split_whitespace()
        .last()
        .expect("digest field in golden");
    assert_eq!(
        digest, pinned,
        "fixture replay drifted from the committed golden (regenerate with \
         `cargo run -p experiments --release --bin gauntlet -- --quick --gen-fixture` \
         if the change is intentional)"
    );
    // Two replays of the same fixture are bit-identical.
    assert_eq!(digest, gauntlet::fixture_replay_digest(&sc, &trace));
}

#[test]
fn fixture_round_trips_byte_identically() {
    let text = fixture_text();
    let trace = trace_from_ndjson(&text).expect("fixture parses");
    assert_eq!(trace_to_ndjson(&trace), text, "fixture is not canonical");
}

#[test]
fn truncated_fixture_is_a_typed_error_not_a_panic() {
    let text = fixture_text();
    let cut: String =
        text.lines()
            .take(text.lines().count() / 2)
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
    match trace_from_ndjson(&cut) {
        Err(TraceParseError::Truncated { expected, found }) => {
            assert!(found < expected);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}
