//! Golden bit-identity tests: replication runs with telemetry recorders
//! attached must reproduce the committed baseline outputs byte for byte.
//!
//! The baselines (`figures_output.txt` for Figure 4 and the files under
//! `tests/golden/`) were captured from the pre-telemetry tree, so these
//! tests pin the subsystem's core contract — recording is passive and a
//! disabled sink is free: attaching a `NoopRecorder` or even a full
//! `RingRecorder` changes nothing about simulated behaviour.
//!
//! The full Figure 1 / Figure 9 grids take minutes and are `#[ignore]`d;
//! CI and `cargo test` always run the quickstart, Figure 4, and one
//! Figure 9 cell.

use std::path::Path;

use experiments::figures::fig9::Dynamic;
use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use simkit::SimTime;
use tiersys::SystemKind;

/// Reads the committed all-figures baseline.
fn figures_baseline() -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../figures_output.txt");
    std::fs::read_to_string(p).expect("figures_output.txt baseline")
}

/// Extracts one section: from the line starting with `header` up to the
/// next `== ` section header (exclusive), trailing whitespace trimmed.
fn section(text: &str, header: &str) -> String {
    let mut out = String::new();
    let mut inside = false;
    for line in text.lines() {
        if line.starts_with(header) {
            inside = true;
        } else if inside && line.starts_with("== ") {
            break;
        }
        if inside {
            out.push_str(line);
            out.push('\n');
        }
    }
    assert!(!out.is_empty(), "section {header:?} not found in baseline");
    out.trim_end().to_string()
}

/// Reads one of the pre-telemetry goldens under `tests/golden/`.
fn golden(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}"));
    std::fs::read_to_string(p).expect("golden baseline")
}

#[test]
fn fig4_matches_golden() {
    let got = experiments::figures::fig4::run(false);
    assert_eq!(
        got.trim_end(),
        section(&figures_baseline(), "== Figure 4"),
        "Figure 4 output drifted from the committed baseline"
    );
}

/// Replicates examples/quickstart.rs line for line, optionally with a live
/// RingRecorder attached to every layer. Returns the rendered output plus
/// the recorded event/span counts (zero when no recorder is attached).
fn run_quickstart(with_recorder: bool) -> (String, usize, usize) {
    let scenario = GupsScenario::intensity(2);
    let mut out = String::new();
    let mut recorded_events = 0usize;
    let mut recorded_spans = 0usize;
    for (label, colloid) in [
        ("HeMem (packs hottest pages into the default tier)", false),
        ("HeMem+Colloid (balances access latencies)", true),
    ] {
        out.push_str(&format!("==> {label}\n"));
        let mut exp = build_gups(
            &scenario,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid,
            },
        );
        if with_recorder {
            exp.attach_telemetry(telemetry::Sink::ring(1 << 16, 1 << 12));
        }
        let result = run(&mut exp, &RunConfig::steady_state());
        recorded_events += exp
            .sink
            .with(|r| r.events().len() + r.dropped_events() as usize)
            .unwrap_or(0);
        recorded_spans += exp
            .sink
            .with(|r| r.spans().len() + r.dropped_spans() as usize)
            .unwrap_or(0);
        out.push_str(&format!(
            "    GUPS throughput : {:.1} Mops/s (converged after {} quanta)\n",
            result.ops_per_sec / 1e6,
            result.warmup_ticks_used
        ));
        out.push_str(&format!(
            "    tier latencies  : default {:.0} ns vs alternate {:.0} ns\n",
            result.l_default_ns.unwrap_or(f64::NAN),
            result.l_alternate_ns.unwrap_or(f64::NAN)
        ));
        out.push_str(&format!(
            "    placement       : {:.0}% of GUPS traffic served by the default tier\n\n",
            result.default_tier_app_share() * 100.0
        ));
    }
    out.push_str("Colloid's principle: when the default tier's loaded latency exceeds the\n");
    out.push_str("alternate tier's, hot pages belong in the alternate tier — packing them\n");
    out.push_str("into the \"fast\" tier only makes it slower.\n");
    (out, recorded_events, recorded_spans)
}

#[test]
fn quickstart_with_ring_recorder_matches_golden() {
    // The recorded run must be byte-identical to the baseline captured
    // without telemetry. Since PR 4 the sink also records causal spans
    // (`Sink::ring` allots span capacity), so this doubles as the proof
    // that span tracing is passive: a span-recording run leaves figure
    // outputs untouched.
    let golden = golden("quickstart.txt");
    let (out, recorded_events, recorded_spans) = run_quickstart(true);
    assert_eq!(
        out.trim_end(),
        golden.trim_end(),
        "recorded quickstart run drifted from the telemetry-free baseline"
    );
    assert!(
        recorded_events > 0,
        "the recorder must actually have seen the migration traffic"
    );
    assert!(
        recorded_spans > 0,
        "the recorder must actually have closed tick/migration spans"
    );
}

#[test]
fn quickstart_stays_byte_identical_after_n_tier_refactor() {
    // The N-tier refactor routes every system through `TierMove` decisions
    // and the `ColloidDriver` dispatch; on a two-tier machine that must
    // collapse to the verbatim Algorithm-1 controller and the original
    // promote/demote paths. A plain run (no recorder at all) pins the
    // n == 2 special case byte for byte against the pre-refactor baseline.
    let golden = golden("quickstart.txt");
    let (out, _, _) = run_quickstart(false);
    assert_eq!(
        out.trim_end(),
        golden.trim_end(),
        "two-tier quickstart output drifted across the N-tier refactor"
    );
}

#[test]
fn fig9_contention_cell_with_noop_recorder_matches_golden() {
    // One Figure 9 cell (HeMem, contention 0x -> 3x) with a NoopRecorder
    // attached: the zero-cost disabled-recording path must be bit-identical
    // to the baseline (captured in quick mode: 150 pre + 150 post ticks).
    let tick = SimTime::from_us(100.0);
    let sc = Dynamic::ContentionOn.scenario(tick, 150);
    let mut exp = build_gups(
        &sc,
        Policy::System {
            kind: SystemKind::Hemem,
            colloid: false,
        },
    );
    exp.attach_telemetry(telemetry::Sink::new(Box::new(telemetry::NoopRecorder)));
    let r = run(&mut exp, &RunConfig::timeline(300));
    let pts: Vec<(f64, f64)> = r
        .series
        .iter()
        .map(|s| (s.t.as_ns() / 1e6, s.ops_per_sec / 1e6))
        .collect();
    let got = experiments::report::series(
        "HeMem | contention 0x -> 3x | Mops/s over time (ms)",
        &pts,
        20,
    );
    assert_eq!(
        got.trim_end(),
        golden("fig9_contention_hemem.txt").trim_end(),
        "Figure 9 contention cell drifted under an attached NoopRecorder"
    );
}

#[test]
#[ignore = "full Figure 1 grid takes minutes; run with --ignored"]
fn fig1_matches_golden() {
    // The baseline was captured from the pre-telemetry tree in quick mode.
    let got = experiments::figures::fig1::run(true);
    assert_eq!(got.trim_end(), golden("fig1_quick.txt").trim_end());
}

#[test]
#[ignore = "full Figure 9 grid takes minutes; run with --ignored"]
fn fig9_matches_golden() {
    // The baseline was captured from the pre-telemetry tree in quick mode.
    let got = experiments::figures::fig9::run(true);
    assert_eq!(got.trim_end(), golden("fig9_quick.txt").trim_end());
}
