//! End-to-end checks for the graceful-degradation work.
//!
//! Two obligations:
//!
//! 1. **The pin**: with hard faults disabled, every default-configured
//!    system run is bit-identical to the pre-degradation baseline. The
//!    supervisor plumbing, copy-time telemetry, admission-control hooks
//!    and first-touch headroom knob must all be exact no-ops when unused
//!    — checked against golden `f64::to_bits` throughput constants.
//! 2. **The degradation matrix**: under each hard-fault scenario the
//!    supervised system runs to completion without panicking, conserves
//!    every working-set page, and does no worse than its unsupervised
//!    twin on post-fault latency while wasting far less migration work.

use experiments::degradation::{run_cell, HardFault};
use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, GupsScenario, Policy};
use tiersys::SystemKind;

/// The baseline measurement config (mirrors the steady-state preset at
/// reduced length; changing it invalidates the golden bits below).
fn pin_config() -> RunConfig {
    RunConfig {
        min_warmup_ticks: 100,
        max_warmup_ticks: 250,
        measure_ticks: 50,
        window: 40,
        tolerance: 0.03,
        collect_series: false,
    }
}

/// Golden `ops_per_sec.to_bits()` for every (system, colloid) pair on the
/// fault-free GUPS @ 2x baseline, captured before the degradation work
/// landed. These runs exercise none of the new machinery, so they must
/// not move by a single bit.
const GOLDEN_BITS: [(SystemKind, bool, u64); 6] = [
    (SystemKind::Hemem, false, 0x41b0953ae8000000),
    (SystemKind::Hemem, true, 0x41b07bcfe0000000),
    (SystemKind::Tpp, false, 0x41af4c8000000000),
    (SystemKind::Tpp, true, 0x41ae672aa0000000),
    (SystemKind::Memtis, false, 0x41ade394b0000000),
    (SystemKind::Memtis, true, 0x41b0566a70000000),
];

#[test]
fn fault_free_defaults_are_bit_identical_to_golden() {
    for (kind, colloid, bits) in GOLDEN_BITS {
        let sc = GupsScenario::intensity(2);
        let mut exp = build_gups(&sc, Policy::System { kind, colloid });
        let r = run(&mut exp, &pin_config());
        assert_eq!(
            r.ops_per_sec.to_bits(),
            bits,
            "{} (colloid={}) drifted from the golden baseline: \
             {} ops/s (bits 0x{:x}, expected 0x{:x})",
            kind.name(),
            colloid,
            r.ops_per_sec,
            r.ops_per_sec.to_bits(),
            bits,
        );
    }
}

/// Runs one supervised/unsupervised pair and applies the shared
/// invariants: completion without panic, page conservation, and a
/// supervision report on exactly the supervised run.
fn check_pair(fault: HardFault, kind: SystemKind) -> (f64, f64, u64, u64) {
    let base = run_cell(fault, kind, false, false, true);
    let sup = run_cell(fault, kind, true, false, true);
    for cell in [&base, &sup] {
        assert_eq!(
            cell.pages_mapped,
            cell.pages_expected,
            "{} lost pages under {}",
            cell.name,
            fault.label()
        );
        assert!(cell.result.ops_per_sec.is_finite() && cell.result.ops_per_sec > 0.0);
    }
    assert!(base.result.supervision.is_none());
    let report = sup
        .result
        .supervision
        .as_ref()
        .expect("supervised run must carry a supervision report");
    assert!(
        report.timeline.len() > 1,
        "the supervisor never reacted to {}",
        fault.label()
    );
    (
        base.post_fault_latency_ns.expect("post-fault traffic"),
        sup.post_fault_latency_ns.expect("post-fault traffic"),
        base.post_fault_mig_bytes,
        sup.post_fault_mig_bytes,
    )
}

#[test]
fn tier_shrink_supervised_beats_unsupervised() {
    let (base_lat, sup_lat, _, _) = check_pair(HardFault::TierShrink, SystemKind::Hemem);
    assert!(
        sup_lat < base_lat,
        "supervised post-fault latency {sup_lat:.2}ns must beat unsupervised {base_lat:.2}ns"
    );
}

#[test]
fn bw_collapse_supervised_beats_unsupervised() {
    let (base_lat, sup_lat, base_mig, sup_mig) =
        check_pair(HardFault::BwCollapse, SystemKind::Hemem);
    assert!(
        sup_lat < base_lat,
        "supervised post-fault latency {sup_lat:.2}ns must beat unsupervised {base_lat:.2}ns"
    );
    assert!(
        sup_mig < base_mig,
        "supervised must waste less work on the collapsed link \
         ({sup_mig} vs {base_mig} post-fault bytes)"
    );
}

#[test]
fn engine_outage_supervised_beats_unsupervised() {
    let (base_lat, sup_lat, _, _) = check_pair(HardFault::EngineOutage, SystemKind::Hemem);
    assert!(
        sup_lat < base_lat,
        "supervised post-fault latency {sup_lat:.2}ns must beat unsupervised {base_lat:.2}ns"
    );
}
