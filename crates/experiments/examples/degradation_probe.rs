//! Tuning probes behind the degradation matrix and the TPP
//! fast-discovery preset (not part of any figure). Modes:
//!
//! - *(default)* / `contention` / `hotmove` — per-tick migration volume
//!   and tier latencies around a mid-run change (used to design the
//!   hard-fault scenarios: post-convergence the systems go
//!   migration-quiet, so a fault alone touches nothing).
//! - `outage` — tick-by-tick supervisor trace of the engine-outage cell
//!   around the outage end.
//! - `sweepdisc` / `convdisc` / `phasedisc` — the (scan, boost) sweeps
//!   behind `TppConfig::fast_discovery()`: steady-state throughput,
//!   convergence trajectory, and hot-set-shift recovery respectively.
//! - `fastdisc` — renders the Fig 1 fast-discovery comparison row.

use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups, build_tpp_with_config, GupsScenario, Policy};
use simkit::SimTime;
use tiersys::tpp::TppConfig;
use tiersys::SystemKind;

fn tpp_cfg(scan: usize, boost: f64) -> TppConfig {
    TppConfig {
        scan_pages_per_tick: scan,
        promotion_boost: boost,
        ..TppConfig::default()
    }
}

/// Mean Mops/s over `series[a..b]`.
fn window_mops(series: &[experiments::runner::TickSample], a: usize, b: usize) -> f64 {
    let w = &series[a..b];
    w.iter().map(|s| s.ops_per_sec).sum::<f64>() / w.len() as f64 / 1e6
}

fn main() {
    let tick = SimTime::from_us(100.0);
    let which = std::env::args().nth(1).unwrap_or_default();
    match which.as_str() {
        "outage" => outage_trace(),
        "sweepdisc" => sweepdisc(),
        "sharedisc" => sharedisc(),
        "convdisc" => convdisc(),
        "phasedisc" => phasedisc(tick),
        "fastdisc" => println!(
            "{}",
            experiments::figures::fig1::render_fast_discovery(&[0, 3], true)
        ),
        _ => migration_trace(tick, &which),
    }
}

/// Default-tier traffic share per (scan, boost) pair: does eager
/// discovery pack the hot set into the default tier like the paper's
/// TPP (>75 % share)?
fn sharedisc() {
    let full = std::env::args().nth(2).as_deref() == Some("full");
    for (scan, boost) in [(1024usize, 1.0f64), (6144, 4.0)] {
        for level in [0usize, 2, 3] {
            let sc = GupsScenario::intensity(level);
            let mut exp = build_tpp_with_config(&sc, tpp_cfg(scan, boost), false);
            let rc = if full {
                RunConfig::steady_state()
            } else {
                RunConfig::steady_state().quick()
            };
            let r = run(&mut exp, &rc);
            println!(
                "scan {scan:4} boost {boost:3.1} @ {level}x: {:7.2} Mops/s  share {:5.1}%  ({}t)",
                r.ops_per_sec / 1e6,
                r.default_tier_app_share() * 100.0,
                r.warmup_ticks_used
            );
        }
    }
}

/// Steady-state throughput and warm-up ticks per (scan, boost) pair.
fn sweepdisc() {
    for (scan, boost) in [
        (1024usize, 1.0f64),
        (256, 1.0),
        (256, 2.0),
        (256, 4.0),
        (128, 1.0),
        (128, 2.0),
        (128, 4.0),
    ] {
        for level in [0usize, 3] {
            let sc = GupsScenario::intensity(level);
            let mut exp = build_tpp_with_config(&sc, tpp_cfg(scan, boost), false);
            let r = run(&mut exp, &RunConfig::steady_state().quick());
            println!(
                "scan {scan:4} boost {boost:3.1} @ {level}x: {:7.2} Mops/s  ({}t)",
                r.ops_per_sec / 1e6,
                r.warmup_ticks_used
            );
        }
    }
}

/// Early-window vs steady throughput: is convergence visible from t=0?
fn convdisc() {
    for (scan, boost) in [
        (1024usize, 1.0f64),
        (1024, 2.0),
        (1024, 4.0),
        (512, 2.0),
        (2048, 2.0),
        (2048, 4.0),
    ] {
        for level in [2usize, 3] {
            let sc = GupsScenario::intensity(level);
            let mut exp = build_tpp_with_config(&sc, tpp_cfg(scan, boost), false);
            let r = run(&mut exp, &RunConfig::timeline(300));
            let steady = window_mops(&r.series, 250, 300);
            let t90 = r
                .series
                .iter()
                .position(|s| s.ops_per_sec / 1e6 >= 0.9 * steady)
                .unwrap_or(300);
            println!(
                "scan {scan:4} boost {boost:3.1} @ {level}x: 0-50 {:6.1}  50-100 {:6.1}  steady {:6.1}  t90 {t90:3}",
                window_mops(&r.series, 0, 50),
                window_mops(&r.series, 50, 100),
                steady
            );
        }
    }
}

/// Recovery throughput after the hot set shifts mid-run: the window
/// where `promotion_boost` earns its keep at a lean scan budget.
fn phasedisc(tick: SimTime) {
    for (scan, boost) in [(1024usize, 1.0f64), (1024, 4.0), (256, 1.0), (256, 2.0)] {
        let mut sc = GupsScenario::intensity(2);
        sc.phases = vec![(tick * 200, 4096)];
        let mut exp = build_tpp_with_config(&sc, tpp_cfg(scan, boost), false);
        let r = run(&mut exp, &RunConfig::timeline(400));
        println!(
            "scan {scan:4} boost {boost:3.1}: pre 150-200 {:6.1}  post 200-250 {:6.1}  post 250-300 {:6.1}  post 300-400 {:6.1}",
            window_mops(&r.series, 150, 200),
            window_mops(&r.series, 200, 250),
            window_mops(&r.series, 250, 300),
            window_mops(&r.series, 300, 400)
        );
    }
}

/// Per-tick migration volume around a mid-run change (or none).
fn migration_trace(tick: SimTime, which: &str) {
    let mut sc = GupsScenario::intensity(2);
    match which {
        "contention" => sc.antagonist_change = Some((tick * 250, 12)),
        "hotmove" => sc.phases = vec![(tick * 250, 4096)],
        _ => {}
    }
    let mut exp = build_gups(
        &sc,
        Policy::System {
            kind: SystemKind::Hemem,
            colloid: true,
        },
    );
    let r = run(&mut exp, &RunConfig::timeline(500));
    let mut last_nonzero = 0usize;
    for (i, s) in r.series.iter().enumerate() {
        if s.migrated_bytes > 0 {
            last_nonzero = i;
        }
        if i % 20 == 0 || ((240..320).contains(&i) && i % 5 == 0) {
            println!(
                "tick {i:3}  mig {:7}  l_d {:6.1}  l_a {:6.1}  ops/s {:.2e}",
                s.migrated_bytes,
                s.l_default_ns.unwrap_or(0.0),
                s.l_alternate_ns.unwrap_or(0.0),
                s.ops_per_sec
            );
        }
    }
    println!("last tick with migration: {last_nonzero}");
    println!("ops/s {:.3e}", r.ops_per_sec);
}

/// Tick-by-tick trace of the supervised engine-outage cell around the
/// outage end (tick 370).
fn outage_trace() {
    use experiments::degradation::{build_cell, HardFault};
    let mut exp = build_cell(
        HardFault::EngineOutage,
        SystemKind::Hemem,
        true,
        false,
        false,
    );
    let mut last_migrated = 0u64;
    for i in 0..500usize {
        exp.apply_schedule();
        let report = exp.machine.run_tick(exp.tick);
        exp.system.on_tick(&mut exp.machine, &report);
        let migrated = exp.machine.migrated_pages();
        let sv = exp.system.supervision().unwrap();
        if (240..260).contains(&i) || (360..430).contains(&i) {
            println!(
                "tick {i:3}  mode {:10}  failed {:2}  done {:3}  backlog {:3}  limit {:?}  probes {}",
                format!("{:?}", sv.final_mode),
                report.failed_migrations.len(),
                migrated - last_migrated,
                exp.machine.migration_backlog(),
                exp.machine.migration_admission_limit(),
                sv.probes_sent,
            );
        }
        last_migrated = migrated;
    }
}
