//! ARMS-style adaptivity gauntlet (binary `gauntlet`).
//!
//! Every matrix in this harness so far drives workloads that shift at most
//! once; the gauntlet scores each tiering configuration on workloads that
//! *keep changing under it* (DESIGN.md §14):
//!
//! - **phase-shift** — the hot set rotates through the working set on a
//!   schedule ([`workloads::PhaseShiftStream`]);
//! - **diurnal** — the active window breathes sinusoidally over a
//!   simulated day ([`workloads::DiurnalStream`]);
//! - **adversarial** — anti-phase hot-set flips timed near the
//!   controller's observation quantum ([`workloads::AdversarialStream`]);
//! - **fixture** — a committed NDJSON trace replayed verbatim
//!   ([`workloads::TraceReplayer`]), so scores are comparable across
//!   machines and PRs.
//!
//! Each cell of the matrix (HeMem/TPP/MEMTIS × ±Colloid × ±supervisor ×
//! ±transactional engine) is scored on time-to-equilibrium after every
//! shift (reusing [`telemetry::time_to_equilibrium`]), wasted-migration
//! work ([`telemetry::migration_accounting`] provenance round trips),
//! worst-window tail latency, and a composite resilience score.
//!
//! The module also owns the record → export → import → replay
//! determinism proof: a capture run's `RunResult` and telemetry stream
//! must be bit-identical to the run replayed from its own NDJSON export
//! ([`determinism_check`]), which `--smoke` gates together with page
//! conservation and the adversarial supervised-Colloid-vs-bare-vanilla
//! comparison.

use std::sync::Arc;

use memsim::{AccessStream, CoreConfig, Machine, MachineConfig, TrafficClass, Vpn, PAGE_SIZE};
use simkit::SimTime;
use tiersys::{build_system, ColloidParams, SystemKind, SystemParams};
use workloads::{
    trace_from_ndjson, trace_to_ndjson, AdversarialConfig, AdversarialStream, DiurnalConfig,
    DiurnalStream, PhaseShiftConfig, PhaseShiftStream, Trace, TraceRecorder, TraceReplayer,
};

use crate::degradation::{supervise, time_avg_latency_ns};
use crate::report::Table;
use crate::runner::{run as run_exp, RunConfig, RunResult, TickSample};
use crate::scenario::Experiment;

/// First page of the application's working set.
const APP_BASE: Vpn = 1024;
/// Event-ring capacity per cell (adversarial cells migrate heavily).
const EVENT_CAP: usize = 200_000;
/// Relative tolerance for per-shift time-to-equilibrium.
const TTE_TOLERANCE: f64 = 0.1;
/// Sliding-window width (ticks) for the worst-window tail latency.
const TAIL_WINDOW: usize = 10;

/// Shape of the gauntlet.
#[derive(Debug, Clone)]
pub struct GauntletScenario {
    /// Application working-set pages.
    pub ws_pages: u64,
    /// Hot-set pages of the generators.
    pub hot_pages: u64,
    /// Default-tier capacity in pages (must be < `ws_pages` so tiering
    /// has something to do).
    pub default_pages: u64,
    /// Application cores for generated-trace cells (fixture cells always
    /// run one core — the shape the capture used).
    pub app_cores: usize,
    /// Ticks per matrix cell.
    pub run_ticks: usize,
    /// Hot-set rotation period of the phase-shift trace, in ticks.
    pub phase_period_ticks: u64,
    /// Simulated-day length of the diurnal trace, in ticks.
    pub diurnal_period_ticks: u64,
    /// Flip period of the adversarial trace, in ticks — chosen near the
    /// controllers' observation quantum to maximise ping-pong.
    pub flip_period_ticks: u64,
    /// Ticks of the determinism capture/replay run.
    pub capture_ticks: usize,
    /// Root RNG seed.
    pub seed: u64,
}

impl GauntletScenario {
    /// The default gauntlet; `quick` shrinks the time axis for CI.
    pub fn paper_default(quick: bool) -> Self {
        GauntletScenario {
            ws_pages: 4096,
            hot_pages: 1024,
            default_pages: 1536,
            app_cores: 4,
            run_ticks: if quick { 160 } else { 400 },
            phase_period_ticks: 40,
            diurnal_period_ticks: 80,
            flip_period_ticks: 30,
            capture_ticks: if quick { 24 } else { 48 },
            seed: 0xC0_11_07,
        }
    }

    /// The machine tick (the same base quantum every other driver uses).
    pub fn tick(&self) -> SimTime {
        SimTime::from_us(100.0)
    }

    /// Working-set page range.
    pub fn ws_range(&self) -> std::ops::Range<Vpn> {
        APP_BASE..APP_BASE + self.ws_pages
    }

    /// Simulated length of one matrix cell.
    pub fn horizon(&self) -> SimTime {
        self.tick() * self.run_ticks as u64
    }
}

/// The four trace columns of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Scheduled hot-set rotation.
    PhaseShift,
    /// Sinusoidal active-window breathing.
    Diurnal,
    /// Anti-phase hot-set flips near the observation quantum.
    Adversarial,
    /// A committed NDJSON trace replayed verbatim.
    Fixture,
}

impl TraceKind {
    /// The generated trace kinds (the fixture column needs a loaded trace).
    pub const GENERATED: [TraceKind; 3] = [
        TraceKind::PhaseShift,
        TraceKind::Diurnal,
        TraceKind::Adversarial,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::PhaseShift => "phase-shift",
            TraceKind::Diurnal => "diurnal",
            TraceKind::Adversarial => "adversarial",
            TraceKind::Fixture => "fixture-replay",
        }
    }
}

/// Phase-shift generator config at gauntlet scale.
pub fn phase_shift_config(sc: &GauntletScenario) -> PhaseShiftConfig {
    let mut c = PhaseShiftConfig::gauntlet_default(APP_BASE, sc.tick() * sc.phase_period_ticks);
    c.ws_pages = sc.ws_pages;
    c.hot_pages = sc.hot_pages;
    c.stride_pages = sc.hot_pages;
    c
}

/// Diurnal generator config at gauntlet scale.
pub fn diurnal_config(sc: &GauntletScenario) -> DiurnalConfig {
    let mut c = DiurnalConfig::gauntlet_default(APP_BASE, sc.tick() * sc.diurnal_period_ticks);
    c.ws_pages = sc.ws_pages;
    c.min_active_pages = sc.hot_pages / 2;
    c.max_active_pages = (sc.hot_pages * 2).min(sc.ws_pages);
    c
}

/// Adversarial generator config at gauntlet scale.
pub fn adversarial_config(sc: &GauntletScenario) -> AdversarialConfig {
    let mut c = AdversarialConfig::gauntlet_default(APP_BASE, sc.tick() * sc.flip_period_ticks);
    c.ws_pages = sc.ws_pages;
    c.hot_pages = sc.hot_pages;
    c.offset_a = 0;
    c.offset_b = sc.ws_pages - sc.hot_pages;
    c
}

/// A fresh generator stream for one core of a generated-trace cell.
fn make_stream(sc: &GauntletScenario, kind: TraceKind) -> Box<dyn AccessStream> {
    match kind {
        TraceKind::PhaseShift => Box::new(
            PhaseShiftStream::new(phase_shift_config(sc)).expect("valid phase-shift config"),
        ),
        TraceKind::Diurnal => {
            Box::new(DiurnalStream::new(diurnal_config(sc)).expect("valid diurnal config"))
        }
        TraceKind::Adversarial => Box::new(
            AdversarialStream::new(adversarial_config(sc)).expect("valid adversarial config"),
        ),
        TraceKind::Fixture => unreachable!("fixture cells replay a loaded trace"),
    }
}

/// Shift instants used for per-shift scoring (empty for fixtures, whose
/// schedule is opaque).
pub fn shift_times(sc: &GauntletScenario, kind: TraceKind) -> Vec<SimTime> {
    let horizon = sc.horizon();
    match kind {
        TraceKind::PhaseShift => phase_shift_config(sc).shift_times(horizon),
        TraceKind::Diurnal => diurnal_config(sc).shift_times(horizon),
        TraceKind::Adversarial => adversarial_config(sc).shift_times(horizon),
        TraceKind::Fixture => Vec::new(),
    }
}

/// Builds the gauntlet's two-tier machine with the working set
/// first-touch-filled (default tier first).
fn build_machine(sc: &GauntletScenario, transactional: bool) -> Machine {
    let mut cfg = MachineConfig::with_alt_latency_ratio(1.9);
    cfg.seed = sc.seed;
    cfg.tiers[0].capacity_bytes = sc.default_pages * PAGE_SIZE;
    cfg.tiers[1].capacity_bytes = (sc.ws_pages + 1024) * PAGE_SIZE;
    if transactional {
        cfg.engine = memsim::MigrationEngineConfig::transactional();
    }
    cfg.validate().expect("gauntlet machine must validate");
    let mut machine = Machine::new(cfg);
    let mut free = machine.free_pages(memsim::TierId::DEFAULT);
    for vpn in sc.ws_range() {
        if free > 0 {
            machine.place(vpn, memsim::TierId::DEFAULT);
            free -= 1;
        } else {
            machine.place(vpn, memsim::TierId::ALTERNATE);
        }
    }
    machine
}

/// Wires `cores` streams and the tiering policy into an [`Experiment`].
fn assemble(
    sc: &GauntletScenario,
    mut machine: Machine,
    cores: Vec<Box<dyn AccessStream>>,
    kind: SystemKind,
    colloid: bool,
    supervised: bool,
) -> Experiment {
    for stream in cores {
        machine.add_core(stream, CoreConfig::app_default(), TrafficClass::App);
    }
    let mut params = SystemParams::new(vec![sc.ws_range()], colloid.then(ColloidParams::default));
    params.unloaded_ns = machine
        .config()
        .tiers
        .iter()
        .map(|t| t.unloaded_latency().as_ns())
        .collect();
    let system = build_system(kind, params);
    let mut exp = Experiment {
        machine,
        system,
        tick: sc.tick(),
        antagonist_core_ids: Vec::new(),
        antagonist_change: None,
        sink: telemetry::Sink::default(),
        schedule_markers: Vec::new(),
    };
    if supervised {
        supervise(&mut exp, vec![sc.ws_range()]);
    }
    exp
}

/// Builds one generated-trace cell.
pub fn build_cell(
    sc: &GauntletScenario,
    tkind: TraceKind,
    kind: SystemKind,
    colloid: bool,
    supervised: bool,
    transactional: bool,
) -> Experiment {
    let machine = build_machine(sc, transactional);
    let cores = (0..sc.app_cores).map(|_| make_stream(sc, tkind)).collect();
    assemble(sc, machine, cores, kind, colloid, supervised)
}

/// Builds one fixture-replay cell: a single core replaying `trace`
/// verbatim (the shape the capture used). The empty-trace case surfaces
/// as the typed [`workloads::ReplayError`], never a panic.
pub fn build_fixture_cell(
    sc: &GauntletScenario,
    trace: &Arc<Trace>,
    kind: SystemKind,
    colloid: bool,
    supervised: bool,
    transactional: bool,
) -> Result<Experiment, workloads::ReplayError> {
    let machine = build_machine(sc, transactional);
    let replayer = TraceReplayer::try_new(Arc::clone(trace))?;
    Ok(assemble(
        sc,
        machine,
        vec![Box::new(replayer)],
        kind,
        colloid,
        supervised,
    ))
}

/// Scores of one matrix cell.
#[derive(Debug, Clone)]
pub struct CellScore {
    /// Policy display name (e.g. `HeMem+Colloid+SV [txn]`).
    pub system: String,
    /// Which tiering system.
    pub kind: SystemKind,
    /// Colloid attached.
    pub colloid: bool,
    /// Supervisor attached.
    pub supervised: bool,
    /// Transactional migration engine.
    pub transactional: bool,
    /// Whole-run application throughput.
    pub ops_per_sec: f64,
    /// Mean time-to-equilibrium across shifts, with unconverged shifts
    /// charged the full inter-shift interval. `None` when the trace has
    /// no scored shifts (fixture column).
    pub mean_tte: Option<SimTime>,
    /// Shifts that reached equilibrium before the next shift.
    pub converged_shifts: usize,
    /// Shifts scored.
    pub total_shifts: usize,
    /// Migration accounting over the event stream (useful vs wasted via
    /// provenance round trips).
    pub accounting: telemetry::MigrationAccounting,
    /// Worst sliding-window arrival-weighted latency (ns).
    pub worst_window_ns: Option<f64>,
    /// Arrival-weighted latency over the final quarter of the run (ns).
    pub steady_ns: Option<f64>,
    /// Working-set pages resident at the end of the run.
    pub resident_pages: u64,
    /// Composite resilience score (higher is better).
    pub resilience: f64,
}

impl CellScore {
    /// Mean TTE in ticks (for display), `None` for unscored traces.
    pub fn mean_tte_ticks(&self, tick: SimTime) -> Option<f64> {
        self.mean_tte
            .map(|t| t.as_ps() as f64 / tick.as_ps() as f64)
    }
}

/// Display name of a cell's policy stack.
pub fn cell_name(kind: SystemKind, colloid: bool, supervised: bool, transactional: bool) -> String {
    let mut name = kind.name().to_string();
    if colloid {
        name.push_str("+Colloid");
    }
    if supervised {
        name.push_str("+SV");
    }
    if transactional {
        name.push_str(" [txn]");
    }
    name
}

/// Identity of one matrix cell: which policy stack is under test.
#[derive(Debug, Clone, Copy)]
struct CellId {
    kind: SystemKind,
    colloid: bool,
    supervised: bool,
    transactional: bool,
}

impl CellId {
    fn name(&self) -> String {
        cell_name(self.kind, self.colloid, self.supervised, self.transactional)
    }
}

/// Per-shift time-to-equilibrium with penalty semantics: each shift is
/// judged only on the samples up to the next shift, and a shift that never
/// re-converges is charged the full inter-shift interval.
fn tte_over_shifts(
    series: &[TickSample],
    shifts: &[SimTime],
    horizon: SimTime,
) -> (Option<SimTime>, usize) {
    if shifts.is_empty() {
        return (None, 0);
    }
    let mut total_ps = 0u64;
    let mut converged = 0usize;
    for (i, &s) in shifts.iter().enumerate() {
        let end = shifts.get(i + 1).copied().unwrap_or(horizon);
        let a = series.partition_point(|m| m.t <= s);
        let b = series.partition_point(|m| m.t <= end);
        let slice = &series[a..b];
        let interval_ticks = slice.len();
        let window = (interval_ticks / 8).max(3);
        let tte =
            telemetry::time_to_equilibrium(slice, s, window, TTE_TOLERANCE, |m| m.ops_per_sec);
        match tte {
            Some(t) => {
                converged += 1;
                total_ps += t.as_ps();
            }
            None => total_ps += end.saturating_sub(s).as_ps(),
        }
    }
    (
        Some(SimTime::from_ps(total_ps / shifts.len() as u64)),
        converged,
    )
}

/// Worst arrival-weighted latency over sliding [`TAIL_WINDOW`]-tick
/// windows (half-window stride).
fn worst_window(series: &[TickSample]) -> Option<f64> {
    if series.len() < TAIL_WINDOW {
        return time_avg_latency_ns(series);
    }
    let stride = (TAIL_WINDOW / 2).max(1);
    let mut worst: Option<f64> = None;
    let mut start = 0;
    while start + TAIL_WINDOW <= series.len() {
        if let Some(l) = time_avg_latency_ns(&series[start..start + TAIL_WINDOW]) {
            worst = Some(worst.map_or(l, |w: f64| w.max(l)));
        }
        start += stride;
    }
    worst
}

/// Scores a finished run.
fn score_run(
    sc: &GauntletScenario,
    id: CellId,
    exp: &Experiment,
    r: &RunResult,
    events: &[telemetry::Event],
    shifts: &[SimTime],
) -> CellScore {
    let horizon = sc.horizon();
    let (mean_tte, converged_shifts) = tte_over_shifts(&r.series, shifts, horizon);
    let accounting = telemetry::migration_accounting(events);
    let worst = worst_window(&r.series);
    let steady_from = r.series.len().saturating_sub(sc.run_ticks / 4);
    let steady = time_avg_latency_ns(&r.series[steady_from..]);
    let resident = sc
        .ws_range()
        .filter(|&v| exp.machine.tier_of(v).is_some())
        .count() as u64;

    // Composite resilience: throughput (Mops) discounted by migration
    // efficiency, adaptation speed, and tail behaviour. All factors are in
    // (0, 1] so the score stays comparable across cells.
    let mops_score = r.ops_per_sec / 1e6;
    let interval_ps = if shifts.is_empty() {
        horizon.as_ps()
    } else {
        horizon.as_ps() / (shifts.len() as u64 + 1)
    };
    let tte_factor = match mean_tte {
        Some(t) => 1.0 / (1.0 + t.as_ps() as f64 / interval_ps.max(1) as f64),
        None => 1.0,
    };
    let tail_factor = match (steady, worst) {
        (Some(s), Some(w)) if w > 0.0 => (s / w).clamp(0.0, 1.0),
        _ => 1.0,
    };
    let resilience = mops_score * accounting.efficiency() * tte_factor * tail_factor;

    CellScore {
        system: id.name(),
        kind: id.kind,
        colloid: id.colloid,
        supervised: id.supervised,
        transactional: id.transactional,
        ops_per_sec: r.ops_per_sec,
        mean_tte,
        converged_shifts,
        total_shifts: shifts.len(),
        accounting,
        worst_window_ns: worst,
        steady_ns: steady,
        resident_pages: resident,
        resilience,
    }
}

/// Runs one cell end to end with telemetry attached and scores it.
fn run_scored(
    sc: &GauntletScenario,
    mut exp: Experiment,
    id: CellId,
    shifts: &[SimTime],
) -> CellScore {
    exp.attach_telemetry(telemetry::Sink::ring(EVENT_CAP, sc.run_ticks));
    let r = run_exp(&mut exp, &RunConfig::timeline(sc.run_ticks));
    let events = exp.sink.with(|rec| rec.events()).unwrap_or_default();
    score_run(sc, id, &exp, &r, &events, shifts)
}

/// Runs one generated-trace cell.
pub fn run_cell(
    sc: &GauntletScenario,
    tkind: TraceKind,
    kind: SystemKind,
    colloid: bool,
    supervised: bool,
    transactional: bool,
) -> CellScore {
    let exp = build_cell(sc, tkind, kind, colloid, supervised, transactional);
    let shifts = shift_times(sc, tkind);
    let id = CellId {
        kind,
        colloid,
        supervised,
        transactional,
    };
    run_scored(sc, exp, id, &shifts)
}

/// Runs one fixture-replay cell.
pub fn run_fixture_cell(
    sc: &GauntletScenario,
    trace: &Arc<Trace>,
    kind: SystemKind,
    colloid: bool,
    supervised: bool,
    transactional: bool,
) -> Result<CellScore, workloads::ReplayError> {
    let exp = build_fixture_cell(sc, trace, kind, colloid, supervised, transactional)?;
    let id = CellId {
        kind,
        colloid,
        supervised,
        transactional,
    };
    Ok(run_scored(sc, exp, id, &[]))
}

/// One trace column of the matrix.
#[derive(Debug, Clone)]
pub struct GauntletOutcome {
    /// The trace this column drove.
    pub kind: TraceKind,
    /// All cells, in system → colloid → supervisor → engine order.
    pub cells: Vec<CellScore>,
}

/// Runs the full matrix: every generated trace kind (plus the fixture
/// column when a trace is supplied) × every system × ±Colloid ×
/// ±supervisor × both migration engines.
pub fn run_matrix(sc: &GauntletScenario, fixture: Option<&Arc<Trace>>) -> Vec<GauntletOutcome> {
    let mut out = Vec::new();
    for tkind in TraceKind::GENERATED {
        let mut cells = Vec::new();
        for kind in SystemKind::ALL {
            for colloid in [false, true] {
                for supervised in [false, true] {
                    for transactional in [false, true] {
                        cells.push(run_cell(
                            sc,
                            tkind,
                            kind,
                            colloid,
                            supervised,
                            transactional,
                        ));
                    }
                }
            }
        }
        out.push(GauntletOutcome { kind: tkind, cells });
    }
    if let Some(trace) = fixture {
        let mut cells = Vec::new();
        for kind in SystemKind::ALL {
            for colloid in [false, true] {
                for supervised in [false, true] {
                    for transactional in [false, true] {
                        cells.push(
                            run_fixture_cell(sc, trace, kind, colloid, supervised, transactional)
                                .expect("fixture trace validated non-empty at load time"),
                        );
                    }
                }
            }
        }
        out.push(GauntletOutcome {
            kind: TraceKind::Fixture,
            cells,
        });
    }
    out
}

/// Formats one trace column as a score table.
pub fn render(sc: &GauntletScenario, outcome: &GauntletOutcome) -> String {
    let mut t = Table::new(vec![
        "system",
        "Mops/s",
        "TTE (ticks)",
        "converged",
        "useful/wasted",
        "eff",
        "worst ns",
        "steady ns",
        "resilience",
    ]);
    for c in &outcome.cells {
        let fmt_ns = |v: Option<f64>| v.map(|x| format!("{x:.0}")).unwrap_or_else(|| "-".into());
        t.row(vec![
            c.system.clone(),
            format!("{:.2}", c.ops_per_sec / 1e6),
            c.mean_tte_ticks(sc.tick())
                .map(|x| format!("{x:.1}"))
                .unwrap_or_else(|| "-".into()),
            format!("{}/{}", c.converged_shifts, c.total_shifts),
            format!("{}/{}", c.accounting.useful, c.accounting.wasted),
            format!("{:.2}", c.accounting.efficiency()),
            fmt_ns(c.worst_window_ns),
            fmt_ns(c.steady_ns),
            format!("{:.3}", c.resilience),
        ]);
    }
    format!("## {} trace\n{}", outcome.kind.label(), t.render())
}

// --- determinism proof ---------------------------------------------------

/// FNV-1a over a byte string (digests must be dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bit-faithful digest of a [`RunResult`]: every field (series included)
/// participates via its shortest-round-trip `Debug` form, so two digests
/// are equal iff the runs produced identical numbers.
pub fn run_digest(r: &RunResult) -> String {
    format!("{:016x}", fnv1a(format!("{r:?}").as_bytes()))
}

/// Everything the record → export → import → replay proof produced.
#[derive(Debug, Clone)]
pub struct DeterminismReport {
    /// Records the capture run generated.
    pub records: usize,
    /// NDJSON export size in bytes.
    pub ndjson_bytes: usize,
    /// Digest of the original (recorded) run.
    pub original_digest: String,
    /// Digest of the run replayed from the imported NDJSON.
    pub replay_digest: String,
    /// Digest of a second, independent replay of the same import.
    pub replay2_digest: String,
    /// Whether the original and replayed telemetry event streams are
    /// byte-identical as NDJSON.
    pub events_match: bool,
}

impl DeterminismReport {
    /// True iff replay is bit-identical to the original run and to itself.
    pub fn holds(&self) -> bool {
        self.original_digest == self.replay_digest
            && self.replay_digest == self.replay2_digest
            && self.events_match
    }
}

/// Builds the capture-shape cell: one app core, HeMem+Colloid, exclusive
/// engine — the configuration whose captures the fixture column replays.
fn capture_shape(sc: &GauntletScenario, stream: Box<dyn AccessStream>) -> Experiment {
    let machine = build_machine(sc, false);
    assemble(sc, machine, vec![stream], SystemKind::Hemem, true, false)
}

/// Runs one capture-shape cell for `ticks` and returns its result plus
/// the telemetry event stream as NDJSON.
fn run_capture_shape(
    sc: &GauntletScenario,
    stream: Box<dyn AccessStream>,
    ticks: usize,
) -> (RunResult, String) {
    let mut exp = capture_shape(sc, stream);
    exp.attach_telemetry(telemetry::Sink::ring(EVENT_CAP, ticks));
    let r = run_exp(&mut exp, &RunConfig::timeline(ticks));
    let events = exp.sink.with(|rec| rec.events()).unwrap_or_default();
    (r, telemetry::events_to_ndjson(&events))
}

/// Records a capture run, exports it to NDJSON, re-imports it, replays
/// it twice, and compares everything bit for bit.
///
/// The proof needs `llc_hit_prob == 0` on every access (the gauntlet
/// generators guarantee this): LLC-hit sampling shares the per-core RNG
/// with the stream, and a replayer consumes no draws, so any LLC draw
/// after the first access would diverge — DESIGN.md §14.
pub fn determinism_check(sc: &GauntletScenario) -> Result<DeterminismReport, String> {
    // Capture: record the phase-shift generator while the run executes.
    let generator = PhaseShiftStream::new(phase_shift_config(sc)).map_err(|e| e.to_string())?;
    let (recorder, handle) = TraceRecorder::new(generator, usize::MAX);
    let (original, original_events) = run_capture_shape(sc, Box::new(recorder), sc.capture_ticks);
    let trace = handle.lock().expect("trace sink poisoned").clone();
    if trace.records().iter().any(|r| r.access.llc_hit_prob != 0.0) {
        return Err("capture contains llc_hit_prob > 0 accesses: replay cannot be bit-identical (DESIGN.md §14)".into());
    }

    // Export → import.
    let ndjson = trace_to_ndjson(&trace);
    let imported = trace_from_ndjson(&ndjson).map_err(|e| format!("re-import failed: {e}"))?;
    if imported != trace {
        return Err("imported trace differs from the recorded one".into());
    }
    let imported = Arc::new(imported);

    // Replay twice; all three runs must match bit for bit.
    let mut report = DeterminismReport {
        records: trace.len(),
        ndjson_bytes: ndjson.len(),
        original_digest: run_digest(&original),
        replay_digest: String::new(),
        replay2_digest: String::new(),
        events_match: false,
    };
    let mut replay_events = String::new();
    for round in 0..2 {
        let replayer = TraceReplayer::try_new(Arc::clone(&imported)).map_err(|e| e.to_string())?;
        let (replayed, events) = run_capture_shape(sc, Box::new(replayer), sc.capture_ticks);
        let digest = run_digest(&replayed);
        if round == 0 {
            report.replay_digest = digest;
            replay_events = events;
        } else {
            report.replay2_digest = digest;
        }
    }
    report.events_match = replay_events == original_events;
    Ok(report)
}

/// Digest of `trace` replayed through the capture-shape cell (one core,
/// HeMem+Colloid, exclusive engine) over `capture_ticks` — the quantity
/// the golden pin freezes so future PRs cannot silently change replay
/// semantics.
pub fn fixture_replay_digest(sc: &GauntletScenario, trace: &Arc<Trace>) -> String {
    let replayer = TraceReplayer::try_new(Arc::clone(trace)).expect("non-empty fixture");
    let (r, _events) = run_capture_shape(sc, Box::new(replayer), sc.capture_ticks);
    run_digest(&r)
}

/// Captures a short phase-shift run and returns the first `max_records`
/// accesses as NDJSON — the committed-fixture generator (EXPERIMENTS.md
/// "Adaptivity gauntlet" documents the workflow).
pub fn capture_fixture_ndjson(sc: &GauntletScenario, max_records: usize) -> String {
    let generator =
        PhaseShiftStream::new(phase_shift_config(sc)).expect("valid phase-shift config");
    let (recorder, handle) = TraceRecorder::new(generator, max_records);
    let _ = run_capture_shape(sc, Box::new(recorder), sc.capture_ticks);
    let trace = handle.lock().expect("trace sink poisoned").clone();
    trace_to_ndjson(&trace)
}

// --- smoke gates ---------------------------------------------------------

/// Mean over cells selected by `pick`, of `metric`.
fn mean_over(
    cells: &[CellScore],
    pick: impl Fn(&CellScore) -> bool,
    metric: impl Fn(&CellScore) -> f64,
) -> Option<f64> {
    let sel: Vec<f64> = cells.iter().filter(|c| pick(c)).map(&metric).collect();
    (!sel.is_empty()).then(|| sel.iter().sum::<f64>() / sel.len() as f64)
}

/// The `--smoke` self-validation gates. Returns the failures (empty =
/// pass):
///
/// 1. **replay determinism** — record → export → import → replay is
///    bit-identical to the original run (`RunResult` digest + telemetry
///    NDJSON), and two replays of the same import are identical;
/// 2. **page conservation** — every cell ends with the full working set
///    resident;
/// 3. **adversarial adaptivity** — averaged across systems on the
///    exclusive engine, supervised Colloid beats bare vanilla on both
///    mean time-to-equilibrium and wasted-migration work in the
///    adversarial column;
/// 4. **typed trace errors** — corrupt and empty NDJSON fixtures surface
///    as typed errors, never panics.
pub fn smoke_failures(
    sc: &GauntletScenario,
    outcomes: &[GauntletOutcome],
    det: &DeterminismReport,
) -> Vec<String> {
    let mut fails = Vec::new();

    if !det.holds() {
        fails.push(format!(
            "replay not bit-identical: original {} vs replay {} / replay2 {} (events match: {})",
            det.original_digest, det.replay_digest, det.replay2_digest, det.events_match
        ));
    }

    for outcome in outcomes {
        for c in &outcome.cells {
            if c.resident_pages != sc.ws_pages {
                fails.push(format!(
                    "[{}] {}: {} of {} pages resident (pages lost or duplicated)",
                    outcome.kind.label(),
                    c.system,
                    c.resident_pages,
                    sc.ws_pages
                ));
            }
        }
    }

    if let Some(adv) = outcomes.iter().find(|o| o.kind == TraceKind::Adversarial) {
        let supervised_colloid = |c: &CellScore| c.colloid && c.supervised && !c.transactional;
        let bare_vanilla = |c: &CellScore| !c.colloid && !c.supervised && !c.transactional;
        let tte_ticks = |c: &CellScore| c.mean_tte_ticks(sc.tick()).unwrap_or(sc.run_ticks as f64);
        let wasted = |c: &CellScore| c.accounting.wasted as f64;
        match (
            mean_over(&adv.cells, supervised_colloid, tte_ticks),
            mean_over(&adv.cells, bare_vanilla, tte_ticks),
        ) {
            (Some(sv), Some(van)) if sv >= van => fails.push(format!(
                "adversarial: supervised Colloid TTE {sv:.1} ticks not better than bare vanilla {van:.1}"
            )),
            (None, _) | (_, None) => fails.push("adversarial column missing cells".into()),
            _ => {}
        }
        if let (Some(sv), Some(van)) = (
            mean_over(&adv.cells, supervised_colloid, wasted),
            mean_over(&adv.cells, bare_vanilla, wasted),
        ) {
            if sv >= van {
                fails.push(format!(
                    "adversarial: supervised Colloid wasted work {sv:.0} not better than bare vanilla {van:.0}"
                ));
            }
        }
    } else {
        fails.push("no adversarial column in the matrix".into());
    }

    // Typed-error surface: corrupt and empty inputs must fail cleanly.
    if trace_from_ndjson("{\"schema\":\"colloid-trace\",\"version\":1,\"records\":2}\n{broken")
        .is_ok()
    {
        fails.push("corrupt NDJSON fixture did not produce an error".into());
    }
    let empty = trace_from_ndjson("{\"schema\":\"colloid-trace\",\"version\":1,\"records\":0}\n")
        .expect("empty trace parses");
    if TraceReplayer::try_new(Arc::new(empty)).is_ok() {
        fails.push("empty fixture trace did not produce a typed replay error".into());
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GauntletScenario {
        GauntletScenario {
            ws_pages: 1024,
            hot_pages: 256,
            default_pages: 384,
            app_cores: 2,
            run_ticks: 60,
            phase_period_ticks: 20,
            diurnal_period_ticks: 40,
            flip_period_ticks: 15,
            capture_ticks: 8,
            seed: 7,
        }
    }

    #[test]
    fn generated_cells_run_and_conserve_pages() {
        let sc = tiny();
        for tkind in TraceKind::GENERATED {
            let c = run_cell(&sc, tkind, SystemKind::Hemem, true, false, false);
            assert_eq!(c.resident_pages, sc.ws_pages, "{}", tkind.label());
            assert!(c.ops_per_sec > 0.0);
            if tkind != TraceKind::Fixture {
                assert!(c.total_shifts > 0);
            }
        }
    }

    #[test]
    fn determinism_check_holds_on_tiny_scenario() {
        let sc = tiny();
        let det = determinism_check(&sc).expect("determinism check runs");
        assert!(det.records > 0);
        assert!(
            det.holds(),
            "original {} replay {} replay2 {} events_match {}",
            det.original_digest,
            det.replay_digest,
            det.replay2_digest,
            det.events_match
        );
    }

    #[test]
    fn fixture_cell_replays_committed_shape() {
        let sc = tiny();
        let ndjson = capture_fixture_ndjson(&sc, 512);
        let trace = Arc::new(trace_from_ndjson(&ndjson).unwrap());
        assert_eq!(trace.len(), 512);
        let a = run_fixture_cell(&sc, &trace, SystemKind::Tpp, false, false, false).unwrap();
        let b = run_fixture_cell(&sc, &trace, SystemKind::Tpp, false, false, false).unwrap();
        assert_eq!(a.resident_pages, sc.ws_pages);
        // Two replays of the same fixture are bit-identical.
        assert_eq!(a.ops_per_sec.to_bits(), b.ops_per_sec.to_bits());
    }

    #[test]
    fn empty_fixture_surfaces_typed_error() {
        let sc = tiny();
        let empty = Arc::new(Trace::default());
        let err = build_fixture_cell(&sc, &empty, SystemKind::Hemem, false, false, false)
            .err()
            .expect("empty fixture must not build");
        assert_eq!(err, workloads::ReplayError::EmptyTrace);
    }

    #[test]
    fn cell_names_compose() {
        assert_eq!(
            cell_name(SystemKind::Hemem, true, true, true),
            "HeMem+Colloid+SV [txn]"
        );
        assert_eq!(cell_name(SystemKind::Tpp, false, false, false), "TPP");
    }

    #[test]
    fn transactional_cells_conserve_pages() {
        let sc = tiny();
        let c = run_cell(
            &sc,
            TraceKind::Adversarial,
            SystemKind::Memtis,
            true,
            true,
            true,
        );
        assert!(c.system.ends_with("[txn]"));
        assert_eq!(c.resident_pages, sc.ws_pages);
    }
}
