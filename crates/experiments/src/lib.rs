//! Evaluation harness: regenerates every figure of the Colloid paper.
//!
//! Structure:
//!
//! - [`scenario`] — assembles a [`memsim::Machine`], workload cores, and a
//!   tiering policy into a runnable experiment (GUPS §2.1, GAPBS PageRank,
//!   Silo YCSB-C, and CacheLib HeMemKV from §5.3).
//! - [`runner`] — drives an experiment tick by tick to steady state
//!   (adaptive convergence detection) and measures throughput, per-tier
//!   latencies and bandwidth splits; optionally records per-tick series for
//!   the convergence figures.
//! - [`oracle`] — the best-case baseline: sweeps manual placements of
//!   0–100 % of the hot set into the default tier (10 % steps, the paper's
//!   `mbind` methodology) and reports the best.
//! - [`figures`] — one driver per paper figure; each prints the same
//!   rows/series the paper reports and returns them as a string. Binaries
//!   `fig1`…`fig11` (in `src/bin/`) invoke these.
//! - [`report`] — plain-text table formatting.
//! - [`timeline`] — the telemetry demonstration (binary `timeline`): the
//!   Figure 9 contention shift recorded end to end with a
//!   [`telemetry::RingRecorder`], exported as NDJSON + CSV, and analysed
//!   for time-to-equilibrium, migration efficiency, and latency
//!   inversions (DESIGN.md §10).
//! - [`trace`] — the causal-tracing demonstration (binary `trace`): the
//!   contention shift with span tracing live, exported as
//!   chrome-`trace_event` JSON and folded stacks, plus the per-page
//!   provenance/blame report and the simulator's wall-clock profile
//!   (DESIGN.md §11).
//! - [`robustness`] — the fault-injection matrix (binary `robustness`):
//!   throughput degradation of every system ± Colloid under graded
//!   counter/migration/PEBS fault intensities.
//! - [`degradation`] — the hard-fault matrix (binary `degradation`):
//!   tier shrink, permanent bandwidth collapse, and engine outages, each
//!   run with and without the [`tiersys::Supervisor`].
//! - [`gauntlet`] — the adaptivity gauntlet (binary `gauntlet`): every
//!   system ± Colloid ± supervisor, both migration engines, against
//!   phase-shifting/diurnal/adversarial traces plus replayed NDJSON
//!   fixtures, scored on time-to-equilibrium, wasted migration, and
//!   worst-window tail latency, with a record → export → import → replay
//!   bit-identity proof (DESIGN.md §14).
//! - [`migration`] — the transactional-migration matrix (binary
//!   `migration`): the exclusive legacy engine vs the multi-channel
//!   transactional engine under write-conflict storms and channel
//!   stalls, with double-entry accounting smoke gates.
//!
//! Every driver accepts a *quick* mode (fewer sweep points, shorter
//! warm-up) used by the Criterion benches; the binaries run full mode by
//! default and quick mode with `--quick` or `COLLOID_QUICK=1`.

pub mod degradation;
pub mod figures;
pub mod gauntlet;
pub mod migration;
pub mod multitier;
pub mod oracle;
pub mod report;
pub mod robustness;
pub mod runner;
pub mod scenario;
pub mod timeline;
pub mod trace;

pub use oracle::{best_case, OracleResult};
pub use runner::{run, RunConfig, RunResult, TickSample};
pub use scenario::{AppKind, Experiment, GupsScenario, Policy};

/// Whether quick mode was requested on the command line or environment.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("COLLOID_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false)
}
