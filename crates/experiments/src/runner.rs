//! Steady-state experiment runner.
//!
//! Drives an [`Experiment`] tick by tick: the machine simulates one quantum,
//! the tiering system reacts, and the runner watches application throughput
//! until it stabilises (or a tick budget runs out), then measures over a
//! fixed window — mirroring the paper's "we allow enough time so that each
//! system reaches steady-state, and measure steady-state application
//! throughput" (§2.1).

use memsim::{FaultStats, TierId, TrafficClass};
use simkit::SimTime;
use tiersys::RetryStats;

use crate::scenario::Experiment;

/// One per-tick observation (used by the Figure 9/10 timelines).
///
/// This is the telemetry subsystem's metric record: the runner populates it
/// from each [`memsim::TickReport`] and routes it through a
/// [`telemetry::Recorder`], so timelines, exporters
/// ([`telemetry::metrics_to_csv`]) and analytics
/// ([`telemetry::time_to_equilibrium`]) all share one sample type.
pub type TickSample = telemetry::TickMetrics;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Minimum warm-up ticks before convergence checks begin.
    pub min_warmup_ticks: usize,
    /// Hard cap on warm-up ticks.
    pub max_warmup_ticks: usize,
    /// Measurement window after warm-up, in ticks.
    pub measure_ticks: usize,
    /// Convergence window size (ticks) for the stability test.
    pub window: usize,
    /// Relative throughput change between consecutive windows below which
    /// the run is considered converged.
    pub tolerance: f64,
    /// Record per-tick samples for the whole run.
    pub collect_series: bool,
}

impl RunConfig {
    /// Defaults for steady-state measurements of the tiering systems.
    pub fn steady_state() -> Self {
        RunConfig {
            min_warmup_ticks: 150,
            max_warmup_ticks: 1000,
            measure_ticks: 100,
            window: 50,
            tolerance: 0.02,
            collect_series: false,
        }
    }

    /// Defaults for static placements (no convergence needed beyond queue
    /// and EWMA warm-up).
    pub fn static_placement() -> Self {
        RunConfig {
            min_warmup_ticks: 25,
            max_warmup_ticks: 25,
            measure_ticks: 60,
            window: 10,
            tolerance: 1.0,
            collect_series: false,
        }
    }

    /// Defaults for timeline experiments (fixed length, full series).
    pub fn timeline(ticks: usize) -> Self {
        RunConfig {
            min_warmup_ticks: 0,
            max_warmup_ticks: 0,
            measure_ticks: ticks,
            window: usize::MAX,
            tolerance: 0.0,
            collect_series: true,
        }
    }

    /// Shrinks warm-up/measure windows for quick (bench) mode.
    pub fn quick(mut self) -> Self {
        self.min_warmup_ticks = (self.min_warmup_ticks / 2).max(10);
        self.max_warmup_ticks = (self.max_warmup_ticks / 2).max(20);
        self.measure_ticks = (self.measure_ticks / 2).max(20);
        self
    }

    /// Checks the configuration for degenerate values that would silently
    /// disable parts of the runner. `window == usize::MAX` is the documented
    /// way to disable convergence detection ([`RunConfig::timeline`] uses
    /// it); `window == 0` is always a bug (every tick would form its own
    /// "window" and the tolerance test would run against single samples).
    /// `measure_ticks == 0` stays legal: warm-up-only runs (the benches)
    /// use it deliberately, and the zero-duration guard reports 0 ops/s.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("window must be >= 1 (usize::MAX disables convergence checks)".into());
        }
        if self.max_warmup_ticks < self.min_warmup_ticks {
            return Err(format!(
                "max_warmup_ticks ({}) < min_warmup_ticks ({})",
                self.max_warmup_ticks, self.min_warmup_ticks
            ));
        }
        if !self.tolerance.is_finite() || self.tolerance < 0.0 {
            return Err(format!(
                "tolerance must be finite and >= 0, got {}",
                self.tolerance
            ));
        }
        Ok(())
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Steady-state application throughput (operations per second).
    pub ops_per_sec: f64,
    /// Mean default-tier latency over the measurement window (ns).
    pub l_default_ns: Option<f64>,
    /// Mean alternate-tier latency over the measurement window (ns).
    pub l_alternate_ns: Option<f64>,
    /// Bytes served per tier per traffic class over the window.
    pub bytes_by_tier_class: [[u64; TrafficClass::COUNT]; 2],
    /// Measurement window duration.
    pub measure_duration: SimTime,
    /// Warm-up ticks actually used (after convergence detection).
    pub warmup_ticks_used: usize,
    /// Injected-fault totals over the whole run, warm-up included (all
    /// zeros on fault-free machines).
    pub fault_stats: FaultStats,
    /// Migration-retry counters from the tiering system at the end of the
    /// run (`None` for policies without a retry queue, e.g. static).
    pub retry_stats: Option<RetryStats>,
    /// Supervisor report — mode-transition timeline, time-to-recover, probe
    /// and drain counters — when the policy runs under a
    /// [`tiersys::Supervisor`] (`None` otherwise).
    pub supervision: Option<tiersys::SupervisionReport>,
    /// Migration-engine accounting at the end of the run: starts, commits,
    /// typed aborts, dirty retries, failovers, shootdown batches. The books
    /// always balance (`started == completed + aborted() + in_flight()`).
    pub migration: memsim::MigrationCounters,
    /// Per-tick samples (empty unless `collect_series`).
    pub series: Vec<TickSample>,
}

impl RunResult {
    /// Application bandwidth fraction served by the default tier.
    pub fn default_tier_app_share(&self) -> f64 {
        let app = TrafficClass::App.index();
        let d = self.bytes_by_tier_class[0][app] as f64;
        let a = self.bytes_by_tier_class[1][app] as f64;
        if d + a <= 0.0 {
            0.0
        } else {
            d / (d + a)
        }
    }
}

/// Runs one tick and converts the report into a sample. The sample is
/// recorded into the experiment's attached sink (if any) and the runner's
/// own `collector`.
fn step(
    exp: &mut Experiment,
    collector: &telemetry::Sink,
) -> (TickSample, [[u64; TrafficClass::COUNT]; 2], u64, FaultStats) {
    let _prof = simkit::profile::scope("runner.tick");
    exp.apply_schedule();
    let tick_span =
        exp.sink
            .span_enter_at(exp.machine.now(), telemetry::Source::Runner, "runner.tick");
    let report = exp.machine.run_tick(exp.tick);
    {
        let _prof = simkit::profile::scope("system.on_tick");
        let span =
            exp.sink
                .span_enter_at(report.t_end, telemetry::Source::System, "system.on_tick");
        // Fallback causal anchor: migrations the tiering system enqueues
        // without a more specific decision (HeMem/TPP placement moves,
        // vanilla policies) attribute to this tick's control step.
        let prev_cause = exp.sink.cause();
        exp.sink
            .span_decision(telemetry::Source::System, "system.decide", "policy");
        exp.system.on_tick(&mut exp.machine, &report);
        exp.sink.set_cause(prev_cause);
        exp.sink.span_exit_at(report.t_end, span);
    }
    exp.sink.span_exit_at(report.t_end, tick_span);
    let app = TrafficClass::App.index();
    let mut bytes = [[0u64; TrafficClass::COUNT]; 2];
    for (i, t) in report.tiers.iter().enumerate().take(2) {
        bytes[i] = t.bytes_by_class;
    }
    let sample = TickSample {
        t: report.t_end,
        ops_per_sec: report.app_ops_per_sec(),
        l_default_ns: report.littles_latency_ns(TierId::DEFAULT),
        l_alternate_ns: report.littles_latency_ns(TierId::ALTERNATE),
        true_l_default_ns: report.true_latency_ns.first().copied().flatten(),
        true_l_alternate_ns: report.true_latency_ns.get(1).copied().flatten(),
        occupancy_default: report.tiers[0].occupancy,
        occupancy_alternate: report.tiers[1].occupancy,
        rate_default_per_ns: report.tiers[0].rate_per_ns,
        rate_alternate_per_ns: report.tiers[1].rate_per_ns,
        migrated_bytes: report.migrated_bytes,
        migration_backlog: report.migration_backlog as u64,
        app_bytes_default: report.tiers[0].bytes_by_class[app],
        app_bytes_alternate: report.tiers[1].bytes_by_class[app],
    };
    exp.sink.metrics(|| sample);
    collector.metrics(|| sample);
    (sample, bytes, report.app_ops, report.fault_stats)
}

/// Drives the experiment to steady state, then measures.
///
/// # Panics
///
/// Panics if `rc` fails [`RunConfig::validate`].
pub fn run(exp: &mut Experiment, rc: &RunConfig) -> RunResult {
    rc.validate().expect("invalid RunConfig");
    // Per-tick samples flow through a telemetry recorder rather than an
    // ad-hoc Vec; the ring is sized so a full-length run never drops.
    let collector = if rc.collect_series {
        telemetry::Sink::ring(0, rc.max_warmup_ticks.saturating_add(rc.measure_ticks))
    } else {
        telemetry::Sink::disabled()
    };
    let mut warmup_used = 0;
    let mut fault_stats = FaultStats::default();

    // Warm-up with adaptive convergence detection.
    let mut window_ops: Vec<f64> = Vec::new();
    let mut prev_window: Option<f64> = None;
    let mut stable_windows = 0;
    for tick in 0..rc.max_warmup_ticks {
        let (sample, _, _, faults) = step(exp, &collector);
        fault_stats.absorb(&faults);
        warmup_used = tick + 1;
        window_ops.push(sample.ops_per_sec);
        if window_ops.len() >= rc.window {
            let mean: f64 = window_ops.iter().sum::<f64>() / window_ops.len() as f64;
            window_ops.clear();
            if let Some(prev) = prev_window {
                let rel = (mean - prev).abs() / prev.max(1.0);
                if rel < rc.tolerance {
                    stable_windows += 1;
                } else {
                    stable_windows = 0;
                }
            }
            prev_window = Some(mean);
            if stable_windows >= 2 && warmup_used >= rc.min_warmup_ticks {
                break;
            }
        }
    }

    // Measurement window.
    let t_begin = exp.machine.now();
    let mut ops_total = 0u64;
    let mut bytes_total = [[0u64; TrafficClass::COUNT]; 2];
    let mut l_d_sum = 0.0;
    let mut l_d_n = 0u32;
    let mut l_a_sum = 0.0;
    let mut l_a_n = 0u32;
    for _ in 0..rc.measure_ticks {
        let (sample, bytes, ops, faults) = step(exp, &collector);
        fault_stats.absorb(&faults);
        ops_total += ops;
        for i in 0..2 {
            for c in 0..TrafficClass::COUNT {
                bytes_total[i][c] += bytes[i][c];
            }
        }
        if let Some(l) = sample.l_default_ns {
            l_d_sum += l;
            l_d_n += 1;
        }
        if let Some(l) = sample.l_alternate_ns {
            l_a_sum += l;
            l_a_n += 1;
        }
    }
    let dur = exp.machine.now().saturating_sub(t_begin);

    RunResult {
        ops_per_sec: if dur.as_secs() > 0.0 {
            ops_total as f64 / dur.as_secs()
        } else {
            0.0
        },
        l_default_ns: (l_d_n > 0).then(|| l_d_sum / l_d_n as f64),
        l_alternate_ns: (l_a_n > 0).then(|| l_a_sum / l_a_n as f64),
        bytes_by_tier_class: bytes_total,
        measure_duration: dur,
        warmup_ticks_used: warmup_used,
        fault_stats,
        retry_stats: exp.system.retry_stats(),
        supervision: exp.system.supervision(),
        migration: exp.machine.migration_counters(),
        series: collector.with(|r| r.metrics()).unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{build_gups, GupsScenario, Policy};

    #[test]
    fn static_run_measures_throughput_and_latency() {
        let sc = GupsScenario::intensity(0);
        let mut exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 1.0,
            },
        );
        let r = run(&mut exp, &RunConfig::static_placement());
        assert!(r.ops_per_sec > 1e6, "ops/s = {}", r.ops_per_sec);
        let l_d = r.l_default_ns.expect("default tier busy");
        let l_a = r.l_alternate_ns.expect("alternate tier busy");
        assert!(l_d > 60.0 && l_d < 400.0, "L_D = {l_d}");
        assert!(l_a > 100.0 && l_a < 400.0, "L_A = {l_a}");
        // Hot set fully in default: the default tier serves most app bytes.
        assert!(r.default_tier_app_share() > 0.8);
    }

    #[test]
    fn series_collection_records_every_tick() {
        let sc = GupsScenario::intensity(0);
        let mut exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 0.5,
            },
        );
        let r = run(&mut exp, &RunConfig::timeline(30));
        assert_eq!(r.series.len(), 30);
        // Time increases monotonically.
        assert!(r.series.windows(2).all(|w| w[0].t < w[1].t));
    }

    #[test]
    fn convergence_detection_stops_early_for_static_load() {
        let sc = GupsScenario::intensity(0);
        let mut exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 1.0,
            },
        );
        let rc = RunConfig {
            min_warmup_ticks: 30,
            max_warmup_ticks: 500,
            measure_ticks: 20,
            window: 10,
            tolerance: 0.05,
            collect_series: false,
        };
        let r = run(&mut exp, &rc);
        assert!(
            r.warmup_ticks_used < 200,
            "static load should converge fast, used {}",
            r.warmup_ticks_used
        );
    }

    #[test]
    fn quick_mode_shrinks_budgets() {
        let rc = RunConfig::steady_state().quick();
        assert!(rc.max_warmup_ticks <= RunConfig::steady_state().max_warmup_ticks / 2);
        assert!(rc.measure_ticks >= 20);
    }

    #[test]
    fn every_preset_config_validates() {
        RunConfig::steady_state().validate().unwrap();
        RunConfig::static_placement().validate().unwrap();
        // timeline's window == usize::MAX is the documented convergence
        // disable, not a bug.
        RunConfig::timeline(10).validate().unwrap();
        RunConfig::steady_state().quick().validate().unwrap();
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let ok = RunConfig::steady_state();
        let cases: Vec<(&str, RunConfig)> = vec![
            (
                "window 0",
                RunConfig {
                    window: 0,
                    ..ok.clone()
                },
            ),
            (
                "warmup inverted",
                RunConfig {
                    min_warmup_ticks: 10,
                    max_warmup_ticks: 5,
                    ..ok.clone()
                },
            ),
            (
                "nan tolerance",
                RunConfig {
                    tolerance: f64::NAN,
                    ..ok.clone()
                },
            ),
            (
                "negative tolerance",
                RunConfig {
                    tolerance: -0.1,
                    ..ok.clone()
                },
            ),
        ];
        for (what, rc) in cases {
            assert!(rc.validate().is_err(), "{what} should be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "invalid RunConfig")]
    fn run_panics_on_invalid_config() {
        let sc = GupsScenario::intensity(0);
        let mut exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 1.0,
            },
        );
        let rc = RunConfig {
            window: 0,
            ..RunConfig::static_placement()
        };
        run(&mut exp, &rc);
    }

    #[test]
    fn fault_free_run_reports_zero_fault_stats() {
        let sc = GupsScenario::intensity(0);
        let mut exp = build_gups(
            &sc,
            Policy::System {
                kind: tiersys::SystemKind::Hemem,
                colloid: false,
            },
        );
        let r = run(&mut exp, &RunConfig::timeline(30));
        assert_eq!(r.fault_stats.total(), 0);
        // The system carries a retry queue, but without faults nothing is
        // ever captured into it.
        let rs = r.retry_stats.expect("HeMem drives a retry queue");
        assert_eq!(rs.scheduled, 0);
        assert_eq!(rs.dropped, 0);
    }

    #[test]
    fn static_policy_has_no_retry_stats() {
        let sc = GupsScenario::intensity(0);
        let mut exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 1.0,
            },
        );
        let r = run(&mut exp, &RunConfig::timeline(5));
        assert!(r.retry_stats.is_none());
    }

    #[test]
    fn app_share_of_idle_run_is_zero_not_nan() {
        // Pin the division guard: an all-zero byte matrix must yield 0.0,
        // not NaN (0/0).
        let r = RunResult {
            ops_per_sec: 0.0,
            l_default_ns: None,
            l_alternate_ns: None,
            bytes_by_tier_class: [[0; TrafficClass::COUNT]; 2],
            measure_duration: SimTime::ZERO,
            warmup_ticks_used: 0,
            fault_stats: FaultStats::default(),
            retry_stats: None,
            supervision: None,
            migration: memsim::MigrationCounters::default(),
            series: Vec::new(),
        };
        assert_eq!(r.default_tier_app_share(), 0.0);
        assert!(r.default_tier_app_share().is_finite());
    }
}
