//! Graceful-degradation matrix: hard tier faults, with and without the
//! tiering supervisor.
//!
//! The robustness matrix ([`crate::robustness`]) stresses *soft* faults —
//! noisy counters, transient migration failures — that a well-built system
//! rides out on its own. This driver injects the *hard* faults of
//! `memsim::faults` (permanent capacity loss, permanent bandwidth
//! collapse, migration-engine outages) and measures what the
//! [`tiersys::Supervisor`] buys: each (fault × system) cell runs twice,
//! once with the bare system and once wrapped in the supervisor, over an
//! identical machine and workload. Until the fault fires the two runs are
//! bit-identical (the supervisor in `Normal` mode imposes no limits), so
//! every post-fault difference is attributable to supervision.
//!
//! The headline metric is the arrival-weighted mean application access
//! latency over the post-fault window — the quantity the paper argues
//! tiering should manage — together with the supervisor's mode-transition
//! timeline and time-to-recover from [`crate::runner::RunResult`].
//!
//! Not a paper figure; see EXPERIMENTS.md ("Graceful degradation") for
//! recorded results and DESIGN.md §9 for the supervisor design.

use memsim::{BandwidthPhase, EngineOutage, FaultPlan, TierId, TierShrink, Vpn};
use simkit::SimTime;
use tiersys::{Supervisor, SupervisorConfig, SystemKind, TieringSystem};

use crate::report::{mode_timeline, mops, retry_counts, txn_counts, Table};
use crate::runner::{run as run_exp, RunConfig, RunResult, TickSample};
use crate::scenario::{build_gups, Experiment, GupsScenario, Policy};

/// Contention intensity of the degradation matrix (2x, as in the
/// robustness matrix).
pub const MATRIX_INTENSITY: usize = 2;

/// Alternate-tier frames left after the tier-shrink fault. The machine
/// maps 18 560 pages against an 8 192-frame default tier, so feasibility
/// needs at least 10 368 alternate frames; this leaves a thin margin and
/// forces a modest forced evacuation at the shrink instant.
pub const SHRUNK_ALT_FRAMES: u64 = 11_136;

/// Default-tier headroom the tier-shrink scenario reserves at first touch
/// (rescue space for the supervisor's hottest-first drain).
pub const SHRINK_HEADROOM: u64 = 1024;

/// The three hard-fault scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HardFault {
    /// The alternate tier permanently loses most of its frames
    /// (24 576 → [`SHRUNK_ALT_FRAMES`]) early in the run, while the hot
    /// set still lives there: failing hardware holding hot data.
    TierShrink,
    /// The migration path permanently collapses to 10 % of its bandwidth
    /// after the systems have converged.
    BwCollapse,
    /// The migration engine is wedged for a 120-tick window after
    /// convergence; every attempted copy aborts and still burns engine
    /// time.
    EngineOutage,
}

impl HardFault {
    /// All scenarios.
    pub const ALL: [HardFault; 3] = [
        HardFault::TierShrink,
        HardFault::BwCollapse,
        HardFault::EngineOutage,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            HardFault::TierShrink => "tier-shrink",
            HardFault::BwCollapse => "bw-collapse",
            HardFault::EngineOutage => "engine-outage",
        }
    }

    /// Tick index at which the fault fires (quick mode shortens the
    /// post-convergence scenarios, not the early-shrink one).
    pub fn fault_tick(self, quick: bool) -> usize {
        match self {
            HardFault::TierShrink => 40,
            HardFault::BwCollapse | HardFault::EngineOutage => {
                if quick {
                    150
                } else {
                    250
                }
            }
        }
    }

    /// Total timeline length in ticks.
    pub fn run_ticks(self, quick: bool) -> usize {
        match self {
            HardFault::TierShrink => {
                if quick {
                    200
                } else {
                    400
                }
            }
            HardFault::BwCollapse | HardFault::EngineOutage => {
                if quick {
                    300
                } else {
                    500
                }
            }
        }
    }

    /// The fault plan, anchored at the machine tick duration.
    pub fn plan(self, tick: SimTime, quick: bool) -> FaultPlan {
        let at = tick * self.fault_tick(quick) as u64;
        match self {
            HardFault::TierShrink => FaultPlan {
                tier_shrinks: vec![TierShrink {
                    tier: TierId::ALTERNATE,
                    at,
                    new_frames: SHRUNK_ALT_FRAMES,
                }],
                ..FaultPlan::none()
            },
            HardFault::BwCollapse => FaultPlan {
                bandwidth_phases: vec![BandwidthPhase {
                    start: at,
                    end: None,
                    factor: 0.1,
                }],
                ..FaultPlan::none()
            },
            HardFault::EngineOutage => FaultPlan {
                engine_outages: vec![EngineOutage {
                    start: at,
                    end: at + tick * 120,
                }],
                ..FaultPlan::none()
            },
        }
    }

    /// The GUPS scenario carrying this fault.
    ///
    /// The two post-convergence faults (bandwidth collapse, engine outage)
    /// pair the fault with a contention jump (2× → 3×) at the same
    /// instant: by fault time every system has converged and gone
    /// migration-quiet, so a fault alone would touch nothing. The jump
    /// re-creates the migration demand of Figure 9's right column — and
    /// the broken migration path turns servicing that demand from a
    /// rebalance into pure churn.
    pub fn scenario(self, tick: SimTime, quick: bool) -> GupsScenario {
        let mut sc = GupsScenario::intensity(MATRIX_INTENSITY);
        let at = tick * self.fault_tick(quick) as u64;
        sc.faults = self.plan(tick, quick);
        match self {
            HardFault::TierShrink => sc.first_touch_headroom = SHRINK_HEADROOM,
            HardFault::BwCollapse | HardFault::EngineOutage => {
                sc.antagonist_change = Some((at, 15));
            }
        }
        sc
    }
}

/// One (fault × system × supervision) cell.
pub struct CellResult {
    /// Policy display name (with "(supervised)" when wrapped).
    pub name: String,
    /// The runner's aggregate result (timeline series included).
    pub result: RunResult,
    /// Arrival-weighted mean app access latency over the post-fault
    /// window, ns.
    pub post_fault_latency_ns: Option<f64>,
    /// Bytes pushed through the (broken) migration path after the fault
    /// fired — the wasted-work side of the ledger.
    pub post_fault_mig_bytes: u64,
    /// Working-set pages still mapped at the end of the run.
    pub pages_mapped: u64,
    /// Working-set pages the scenario started with.
    pub pages_expected: u64,
}

/// Arrival-weighted mean application access latency over `series`
/// (weights: app bytes served per tier per tick). `None` if the window
/// saw no app traffic.
pub fn time_avg_latency_ns(series: &[TickSample]) -> Option<f64> {
    let mut weighted = 0.0;
    let mut bytes = 0.0;
    for s in series {
        if let Some(l) = s.l_default_ns {
            weighted += l * s.app_bytes_default as f64;
            bytes += s.app_bytes_default as f64;
        }
        if let Some(l) = s.l_alternate_ns {
            weighted += l * s.app_bytes_alternate as f64;
            bytes += s.app_bytes_alternate as f64;
        }
    }
    (bytes > 0.0).then(|| weighted / bytes)
}

/// Wraps an experiment's tiering system in the supervisor (managed range =
/// the GUPS working set).
pub fn supervise(exp: &mut Experiment, managed: Vec<std::ops::Range<Vpn>>) {
    let inner = std::mem::replace(
        &mut exp.system,
        Box::new(tiersys::StaticPlacement) as Box<dyn TieringSystem>,
    );
    exp.system = Box::new(Supervisor::new(inner, SupervisorConfig::new(managed)));
}

/// Builds one cell's experiment. Panics if the fault plan is infeasible
/// for the assembled machine ([`memsim::Machine::validate_fault_feasibility`]).
/// `transactional` swaps the exclusive legacy migration engine for the
/// multi-channel transactional one; everything else in the cell is
/// identical, so the column pair isolates the engine.
pub fn build_cell(
    fault: HardFault,
    kind: SystemKind,
    supervised: bool,
    transactional: bool,
    quick: bool,
) -> Experiment {
    let tick = SimTime::from_us(100.0);
    let mut sc = fault.scenario(tick, quick);
    if transactional {
        sc.engine = memsim::MigrationEngineConfig::transactional();
    }
    let mut exp = build_gups(
        &sc,
        Policy::System {
            kind,
            colloid: true,
        },
    );
    exp.machine
        .validate_fault_feasibility()
        .expect("degradation fault plan must be feasible");
    if supervised {
        supervise(&mut exp, vec![sc.gups_config().ws_range()]);
    }
    exp
}

/// Runs one cell end to end.
pub fn run_cell(
    fault: HardFault,
    kind: SystemKind,
    supervised: bool,
    transactional: bool,
    quick: bool,
) -> CellResult {
    let mut exp = build_cell(fault, kind, supervised, transactional, quick);
    let ws = fault.scenario(exp.tick, quick).gups_config().ws_range();
    let rc = RunConfig::timeline(fault.run_ticks(quick));
    let result = run_exp(&mut exp, &rc);
    let post = &result.series[fault.fault_tick(quick)..];
    let post_fault_latency_ns = time_avg_latency_ns(post);
    let post_fault_mig_bytes = post.iter().map(|s| s.migrated_bytes).sum();
    let pages_mapped = ws
        .clone()
        .filter(|&v| exp.machine.tier_of(v).is_some())
        .count() as u64;
    let name = if transactional {
        format!("{} [txn]", exp.system.name())
    } else {
        exp.system.name()
    };
    CellResult {
        name,
        result,
        post_fault_latency_ns,
        post_fault_mig_bytes,
        pages_mapped,
        pages_expected: ws.end - ws.start,
    }
}

/// Runs the degradation matrix and prints the table. `smoke` restricts the
/// sweep to HeMem (the CI gate); full mode covers all three systems.
pub fn run(quick: bool, smoke: bool) -> String {
    let kinds: &[SystemKind] = if smoke {
        &[SystemKind::Hemem]
    } else {
        &SystemKind::ALL
    };
    let mut out = String::from(
        "== Graceful degradation: hard faults with and without the supervisor (GUPS @ 2x) ==\n",
    );
    for fault in HardFault::ALL {
        let mut t = Table::new(vec![
            "system",
            "Mops/s",
            "post-lat (ns)",
            "post-mig (MB)",
            "mig c/a/r/f/b",
            "retry s/r/d(g) q",
            "modes",
        ]);
        for &kind in kinds {
            for transactional in [false, true] {
                for supervised in [false, true] {
                    eprintln!(
                        "[degradation] {} / {}{}{} ...",
                        fault.label(),
                        kind.name(),
                        if transactional { " [txn]" } else { "" },
                        if supervised { " (supervised)" } else { "" },
                    );
                    let cell = run_cell(fault, kind, supervised, transactional, quick);
                    assert_eq!(
                        cell.pages_mapped,
                        cell.pages_expected,
                        "{} lost pages under {}",
                        cell.name,
                        fault.label()
                    );
                    t.row(vec![
                        cell.name,
                        mops(cell.result.ops_per_sec),
                        cell.post_fault_latency_ns
                            .map(|l| format!("{l:.2}"))
                            .unwrap_or_else(|| "-".into()),
                        format!("{:.1}", cell.post_fault_mig_bytes as f64 / 1e6),
                        txn_counts(&cell.result.migration),
                        retry_counts(cell.result.retry_stats.as_ref()),
                        mode_timeline(cell.result.supervision.as_ref()),
                    ]);
                }
            }
        }
        out.push_str(&format!("\n-- {} --\n", fault.label()));
        out.push_str(&t.render());
    }
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_hard_fault_plan_validates() {
        let tick = SimTime::from_us(100.0);
        for fault in HardFault::ALL {
            for quick in [false, true] {
                fault.plan(tick, quick).validate().unwrap();
                assert!(fault.plan(tick, quick).has_hard_faults());
                assert!(fault.fault_tick(quick) < fault.run_ticks(quick));
            }
        }
    }

    #[test]
    fn cells_build_and_pass_feasibility() {
        for fault in HardFault::ALL {
            for supervised in [false, true] {
                for transactional in [false, true] {
                    let exp = build_cell(fault, SystemKind::Hemem, supervised, transactional, true);
                    assert_eq!(
                        exp.system.name().contains("supervised"),
                        supervised,
                        "{}",
                        exp.system.name()
                    );
                    assert_eq!(exp.machine.config().engine.transactional, transactional);
                }
            }
        }
    }

    #[test]
    fn shrink_scenario_reserves_headroom() {
        let tick = SimTime::from_us(100.0);
        let exp = build_cell(HardFault::TierShrink, SystemKind::Hemem, false, false, true);
        assert_eq!(
            exp.machine.free_pages(TierId::DEFAULT),
            SHRINK_HEADROOM,
            "first-touch fill should leave the drain's rescue space free"
        );
        let sc = HardFault::BwCollapse.scenario(tick, true);
        assert_eq!(sc.first_touch_headroom, 0);
    }

    #[test]
    fn time_avg_latency_weights_by_arrivals() {
        let s = |l_d: f64, b_d: u64, l_a: f64, b_a: u64| TickSample {
            l_default_ns: Some(l_d),
            l_alternate_ns: Some(l_a),
            app_bytes_default: b_d,
            app_bytes_alternate: b_a,
            ..TickSample::at(SimTime::ZERO)
        };
        // All traffic on a 100ns tier + an idle 1000ns tier: mean is 100.
        let avg = time_avg_latency_ns(&[s(100.0, 64, 1000.0, 0)]).unwrap();
        assert!((avg - 100.0).abs() < 1e-9);
        // 3:1 split.
        let avg = time_avg_latency_ns(&[s(100.0, 192, 1000.0, 64)]).unwrap();
        assert!((avg - 325.0).abs() < 1e-9);
        assert!(time_avg_latency_ns(&[]).is_none());
    }
}
