//! Extended-version experiments (the paper's §5 defers these sensitivity
//! analyses to its extended version [57]):
//!
//! - **ε/δ sensitivity** of the Colloid controller on the real simulator
//!   ("increasing ε leads to faster detection of dynamic workload changes
//!   at the cost of worse stability; increasing δ leads to better stability
//!   at the cost of suboptimal steady-state throughput");
//! - **varying application core counts** (5/10/15);
//! - **varying read/write ratios** (read-only, 1:1, write-heavy GUPS);
//! - the §5.1 in-text claim that larger objects raise the **effective
//!   per-core parallelism** (in-flight L3 misses per core) via prefetching.

use crate::report::{mops, ratio, Table};
use crate::runner::{run as run_exp, RunConfig};
use crate::scenario::{build_gups, build_gups_with_colloid, GupsScenario, Policy};
use tiersys::{ColloidParams, SystemKind};

/// ε/δ sensitivity on GUPS at 2× contention (HeMem+Colloid).
pub fn sensitivity(quick: bool) -> String {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut out =
        String::from("== Extended: epsilon/delta sensitivity (HeMem+Colloid, GUPS @ 2x) ==\n");
    let mut t = Table::new(vec!["eps", "delta", "Mops/s", "L_D/L_A"]);
    for (eps, delta) in [
        (0.01, 0.05), // paper defaults
        (0.005, 0.05),
        (0.05, 0.05),
        (0.01, 0.01),
        (0.01, 0.15),
    ] {
        eprintln!("[ext] sensitivity eps={eps} delta={delta} ...");
        let sc = GupsScenario::intensity(2);
        let params = ColloidParams {
            epsilon: eps,
            delta,
            ..ColloidParams::default()
        };
        let mut e = build_gups_with_colloid(&sc, SystemKind::Hemem, params);
        let r = run_exp(&mut e, &rc);
        let gap = match (r.l_default_ns, r.l_alternate_ns) {
            (Some(d), Some(a)) => format!("{:.2}", d / a),
            _ => "-".into(),
        };
        t.row(vec![
            format!("{eps}"),
            format!("{delta}"),
            mops(r.ops_per_sec),
            gap,
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Varying application core counts (5/10/15) at 2× contention.
pub fn core_counts(quick: bool) -> String {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut out = String::from("== Extended: varying application cores (GUPS @ 2x) ==\n");
    let mut t = Table::new(vec!["cores", "HeMem", "HeMem+Colloid", "speedup"]);
    for cores in [5usize, 10, 15] {
        eprintln!("[ext] cores={cores} ...");
        let mut sc = GupsScenario::intensity(2);
        sc.app_cores = cores;
        let vanilla = {
            let mut e = build_gups(
                &sc,
                Policy::System {
                    kind: SystemKind::Hemem,
                    colloid: false,
                },
            );
            run_exp(&mut e, &rc).ops_per_sec
        };
        let colloid = {
            let mut e = build_gups(
                &sc,
                Policy::System {
                    kind: SystemKind::Hemem,
                    colloid: true,
                },
            );
            run_exp(&mut e, &rc).ops_per_sec
        };
        t.row(vec![
            cores.to_string(),
            mops(vanilla),
            mops(colloid),
            ratio(colloid / vanilla.max(1.0)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Varying GUPS read/write mix at 2× contention.
pub fn rw_ratios(quick: bool) -> String {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut out = String::from("== Extended: varying read/write ratio (GUPS @ 2x) ==\n");
    let mut t = Table::new(vec!["write-frac", "HeMem", "HeMem+Colloid", "speedup"]);
    for wf in [0.0, 0.5, 1.0] {
        eprintln!("[ext] write_fraction={wf} ...");
        let sc = GupsScenario::intensity(2);
        let with_wf = |colloid: bool| {
            let mut g = sc.gups_config();
            g.write_fraction = wf;
            let mut e = crate::scenario::build_gups_with_stream(
                &sc,
                g,
                Policy::System {
                    kind: SystemKind::Hemem,
                    colloid,
                },
            );
            run_exp(&mut e, &rc).ops_per_sec
        };
        let vanilla = with_wf(false);
        let colloid = with_wf(true);
        t.row(vec![
            format!("{wf}"),
            mops(vanilla),
            mops(colloid),
            ratio(colloid / vanilla.max(1.0)),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The §5.1 in-text claim: effective per-core parallelism (average
/// in-flight L3 misses per core, i.e. CHA occupancy / app cores) rises with
/// object size thanks to prefetching — 2.82× from 64 B to 4096 B in the
/// paper.
pub fn effective_mlp(_quick: bool) -> String {
    let mut out = String::from(
        "== Extended: effective per-core parallelism vs object size (GUPS @ 0x, hot packed) ==\n",
    );
    let mut t = Table::new(vec!["object", "occupancy/core", "vs 64B"]);
    let mut base = None;
    for size in [64u32, 256, 1024, 4096] {
        eprintln!("[ext] effective MLP object={size}B ...");
        let mut sc = GupsScenario::intensity(0);
        sc.object_size = size;
        let mut e = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 1.0,
            },
        );
        e.machine.run_tick(simkit::SimTime::from_us(100.0));
        let rep = e.machine.run_tick(simkit::SimTime::from_us(300.0));
        let occ: f64 = rep.tiers.iter().map(|t| t.occupancy).sum();
        let per_core = occ / sc.app_cores as f64;
        let b = *base.get_or_insert(per_core);
        t.row(vec![
            format!("{size}B"),
            format!("{per_core:.2}"),
            format!("{:.2}x", per_core / b),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("(paper: 2.82x more in-flight misses per core at 4096B vs 64B)\n");
    out
}

/// TPP with vs without Transparent Huge Pages (the paper evaluates both;
/// THP-disabled results live in its extended version).
pub fn tpp_thp(quick: bool) -> String {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut out = String::from(
        "== Extended: TPP with and without THP (GUPS) ==
",
    );
    let mut t = Table::new(vec!["variant", "0x", "3x"]);
    for huge in [true, false] {
        let mut row = vec![if huge { "TPP (THP)" } else { "TPP (4K only)" }.to_string()];
        for intensity in [0usize, 3] {
            eprintln!("[ext] TPP huge={huge} @ {intensity}x ...");
            let sc = GupsScenario::intensity(intensity);
            let mut e = crate::scenario::build_tpp_variant(&sc, huge, false);
            row.push(mops(run_exp(&mut e, &rc).ops_per_sec));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str(
        "(THP promotes whole regions per fault: fewer faults per byte migrated)
",
    );
    out
}

/// Runs all extended-version analyses.
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    out.push_str(&effective_mlp(quick));
    out.push('\n');
    out.push_str(&sensitivity(quick));
    out.push('\n');
    out.push_str(&core_counts(quick));
    out.push('\n');
    out.push_str(&rw_ratios(quick));
    out.push('\n');
    out.push_str(&tpp_thp(quick));
    println!("{out}");
    out
}
