//! Figure 4: conceptual behaviour of the Colloid watermark controller
//! (Algorithm 2) on a toy model — (a) static workload converging to p*,
//! (b) a sudden jump of p, (c) a sudden move of p* (watermark reset).
//!
//! This figure needs no machine simulation: it exercises the controller on
//! a synthetic two-tier latency model, exactly like the paper's
//! illustration.

use colloid::ShiftController;

use std::fmt::Write as _;

/// Synthetic tiers whose latencies cross at `p_star`.
struct Toy {
    p_star: f64,
}

impl Toy {
    fn latencies(&self, p: f64) -> (f64, f64) {
        let l_d = (150.0 + 250.0 * (p - self.p_star)).max(1.0);
        let l_a = (150.0 - 120.0 * (p - self.p_star)).max(1.0);
        (l_d, l_a)
    }
}

fn step(c: &mut ShiftController, toy: &Toy, p: f64) -> f64 {
    let (l_d, l_a) = toy.latencies(p);
    let dp = c.compute_shift(p, l_d, l_a);
    if l_d < l_a {
        (p + dp).min(1.0)
    } else {
        (p - dp).max(0.0)
    }
}

fn trace(
    out: &mut String,
    label: &str,
    mut toy: Toy,
    p0: f64,
    quanta: usize,
    p_jump: Option<(usize, f64)>,
    p_star_jump: Option<(usize, f64)>,
) {
    let _ = writeln!(out, "-- {label} --");
    let _ = writeln!(
        out,
        "{:>3}  {:>6}  {:>6}  {:>6}  {:>6}",
        "t", "p", "p_lo", "p_hi", "p*"
    );
    let mut c = ShiftController::new(0.01, 0.02);
    let mut p = p0;
    for t in 0..quanta {
        if let Some((at, new_p)) = p_jump {
            if t == at {
                p = new_p;
            }
        }
        if let Some((at, new_star)) = p_star_jump {
            if t == at {
                toy.p_star = new_star;
            }
        }
        if t % 2 == 0 || t == quanta - 1 {
            let _ = writeln!(
                out,
                "{:>3}  {:6.3}  {:6.3}  {:6.3}  {:6.3}",
                t,
                p,
                c.p_lo(),
                c.p_hi(),
                toy.p_star
            );
        }
        p = step(&mut c, &toy, p);
    }
    let (l_d, l_a) = toy.latencies(p);
    let _ = writeln!(
        out,
        "final: p = {p:.3} (p* = {:.3}), L_D = {l_d:.1} ns, L_A = {l_a:.1} ns, resets = {}\n",
        toy.p_star,
        c.resets()
    );
}

/// Runs the Figure 4 traces and prints them.
pub fn run(_quick: bool) -> String {
    let mut out = String::from("== Figure 4: watermark controller convergence (toy model) ==\n");
    trace(
        &mut out,
        "(a) static workload: p converges to p*",
        Toy { p_star: 0.6 },
        1.0,
        24,
        None,
        None,
    );
    trace(
        &mut out,
        "(b) sudden change in p at t=8",
        Toy { p_star: 0.6 },
        1.0,
        30,
        Some((8, 0.1)),
        None,
    );
    trace(
        &mut out,
        "(c) sudden change in p* at t=12 (watermark reset)",
        Toy { p_star: 0.3 },
        1.0,
        40,
        None,
        Some((12, 0.8)),
    );
    println!("{out}");
    out
}
