//! Figure 2: root-causing Figure 1 — (a) per-tier loaded access latency,
//! (b) per-tier application-bandwidth split (Intel-MBM style) for the
//! best-case and for each system.
//!
//! Paper headline: with contention rising 1×→3×, the default tier's access
//! latency inflates 2.5×/3.8×/5× over unloaded — exceeding the alternate
//! tier by 1.2×/1.8×/2.4× — while the existing systems keep serving >75 %
//! of GUPS traffic from the default tier.

use crate::figures::{collect_gups_grid, intensity_label, vanilla_policies, GupsGrid};
use crate::report::{ns, pct, Table};

/// Renders Figure 2 from an already-collected grid.
pub fn render(grid: &GupsGrid) -> String {
    let mut out = String::from(
        "== Figure 2a: per-tier loaded access latency (ns), systems pack hot set in default ==\n",
    );
    let mut headers = vec!["policy".to_string()];
    for &i in &grid.intensities {
        headers.push(format!("{} L_D", intensity_label(i)));
        headers.push(format!("{} L_A", intensity_label(i)));
    }
    let mut t = Table::new(headers.iter().map(String::as_str).collect());
    for policy in vanilla_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            let r = grid.get(policy, i);
            row.push(ns(r.l_default_ns));
            row.push(ns(r.l_alternate_ns));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str(
        "\n-- default-tier latency inflation vs unloaded (70 ns; paper: 2.5x/3.8x/5x at 1-3x) --\n",
    );
    for &i in &grid.intensities {
        // Use the HeMem run as representative (all pack the hot set).
        let r = grid.get(vanilla_policies()[0], i);
        if let Some(l) = r.l_default_ns {
            out.push_str(&format!(
                "{}: L_D = {:.0} ns = {:.1}x unloaded, {:.2}x of L_A\n",
                intensity_label(i),
                l,
                l / 70.0,
                l / r.l_alternate_ns.unwrap_or(f64::NAN)
            ));
        }
    }

    out.push_str("\n== Figure 2b: share of GUPS bandwidth served by the default tier ==\n");
    let mut headers2 = vec!["policy"];
    let labels: Vec<String> = grid
        .intensities
        .iter()
        .map(|&i| intensity_label(i))
        .collect();
    headers2.extend(labels.iter().map(String::as_str));
    let mut b = Table::new(headers2);
    let mut best_row = vec!["best-case".to_string()];
    for &i in &grid.intensities {
        best_row.push(pct(grid.oracle(i).best_result().default_tier_app_share()));
    }
    b.row(best_row);
    for policy in vanilla_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            row.push(pct(grid.get(policy, i).default_tier_app_share()));
        }
        b.row(row);
    }
    out.push_str(&b.render());
    out
}

/// Runs the Figure 2 experiments and prints the result.
pub fn run(quick: bool) -> String {
    let intensities = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let grid = collect_gups_grid(&vanilla_policies(), &intensities, true, quick);
    let s = render(&grid);
    println!("{s}");
    s
}
