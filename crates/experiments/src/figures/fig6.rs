//! Figure 6: understanding Colloid's benefits — (a) per-tier GUPS bandwidth
//! split with Colloid (tracks the best-case placement), (b) per-tier access
//! latencies with Colloid (the gap shrinks vs Figure 2a).

use crate::figures::{collect_gups_grid, intensity_label, GupsGrid};
use crate::report::{ns, pct, Table};
use crate::scenario::Policy;
use tiersys::SystemKind;

fn colloid_policies() -> Vec<Policy> {
    SystemKind::ALL
        .into_iter()
        .map(|kind| Policy::System {
            kind,
            colloid: true,
        })
        .collect()
}

/// Renders Figure 6 from an already-collected grid (needs Colloid runs and
/// oracles).
pub fn render(grid: &GupsGrid) -> String {
    let mut out = String::from(
        "== Figure 6a: share of GUPS bandwidth served by the default tier (with Colloid) ==\n",
    );
    let mut headers = vec!["policy"];
    let labels: Vec<String> = grid
        .intensities
        .iter()
        .map(|&i| intensity_label(i))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(headers);
    let mut best_row = vec!["best-case".to_string()];
    for &i in &grid.intensities {
        best_row.push(pct(grid.oracle(i).best_result().default_tier_app_share()));
    }
    t.row(best_row);
    for policy in colloid_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            row.push(pct(grid.get(policy, i).default_tier_app_share()));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\n== Figure 6b: per-tier access latency with Colloid (gap shrinks) ==\n");
    let mut headers2 = vec!["policy".to_string()];
    for &i in &grid.intensities {
        headers2.push(format!("{} L_D", intensity_label(i)));
        headers2.push(format!("{} L_A", intensity_label(i)));
        headers2.push(format!("{} gap", intensity_label(i)));
    }
    let mut l = Table::new(headers2.iter().map(String::as_str).collect());
    for policy in colloid_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            let r = grid.get(policy, i);
            row.push(ns(r.l_default_ns));
            row.push(ns(r.l_alternate_ns));
            match (r.l_default_ns, r.l_alternate_ns) {
                (Some(d), Some(a)) => row.push(format!("{:.2}x", d / a)),
                _ => row.push("-".into()),
            }
        }
        l.row(row);
    }
    out.push_str(&l.render());
    out
}

/// Runs the Figure 6 experiments and prints the result.
pub fn run(quick: bool) -> String {
    let intensities = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let grid = collect_gups_grid(&colloid_policies(), &intensities, true, quick);
    let s = render(&grid);
    println!("{s}");
    s
}
