//! Figure 9: convergence timelines under dynamic changes.
//!
//! Three scenarios (columns in the paper), each run for every system with
//! and without Colloid, reporting instantaneous throughput over time:
//!
//! - **hot-set change @ 0×**: the GUPS hot set jumps to a new region with
//!   no contention — both variants dip and recover identically;
//! - **hot-set change @ 3×**: under contention, Colloid recovers to its
//!   *higher* pre-change throughput;
//! - **contention change 0×→3×**: the antagonist switches on mid-run — the
//!   vanilla systems stay degraded, Colloid adapts within ~10 s
//!   (paper timescale; scaled here, see DESIGN.md §5).

use simkit::SimTime;

use crate::report::series;
use crate::runner::{run as run_exp, RunConfig, RunResult};
use crate::scenario::{build_gups, GupsScenario, Policy};
use tiersys::SystemKind;

/// Ticks before the dynamic change.
const PRE_TICKS: usize = 300;
/// Ticks after the change.
const POST_TICKS: usize = 300;

/// The three Figure 9 scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dynamic {
    /// Hot set jumps at mid-run, no antagonist.
    HotsetAt0x,
    /// Hot set jumps at mid-run, 3× antagonist throughout.
    HotsetAt3x,
    /// Antagonist switches 0× → 3× at mid-run.
    ContentionOn,
}

impl Dynamic {
    /// All scenarios, in the paper's column order.
    pub const ALL: [Dynamic; 3] = [
        Dynamic::HotsetAt0x,
        Dynamic::HotsetAt3x,
        Dynamic::ContentionOn,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Dynamic::HotsetAt0x => "hot-set change @ 0x",
            Dynamic::HotsetAt3x => "hot-set change @ 3x",
            Dynamic::ContentionOn => "contention 0x -> 3x",
        }
    }

    /// Builds the scenario with the change scheduled mid-run.
    pub fn scenario(self, tick: SimTime, pre_ticks: usize) -> GupsScenario {
        let t_change = tick * pre_ticks as u64;
        match self {
            Dynamic::HotsetAt0x => {
                let mut sc = GupsScenario::intensity(0);
                sc.phases = vec![(t_change, 0)];
                sc
            }
            Dynamic::HotsetAt3x => {
                let mut sc = GupsScenario::intensity(3);
                sc.phases = vec![(t_change, 0)];
                sc
            }
            Dynamic::ContentionOn => {
                let mut sc = GupsScenario::intensity(0);
                sc.antagonist_change = Some((t_change, 15));
                sc
            }
        }
    }
}

/// Runs one timeline (system × scenario) and returns the full series.
pub fn timeline(kind: SystemKind, colloid: bool, dynamic: Dynamic, quick: bool) -> RunResult {
    let (pre, post) = if quick {
        (PRE_TICKS / 2, POST_TICKS / 2)
    } else {
        (PRE_TICKS, POST_TICKS)
    };
    let tick = SimTime::from_us(100.0);
    let sc = dynamic.scenario(tick, pre);
    let mut exp = build_gups(&sc, Policy::System { kind, colloid });
    run_exp(&mut exp, &RunConfig::timeline(pre + post))
}

/// Runs the Figure 9 grid and prints throughput timelines.
pub fn run(quick: bool) -> String {
    let mut out = String::from("== Figure 9: convergence under dynamic changes ==\n");
    for dynamic in Dynamic::ALL {
        for kind in SystemKind::ALL {
            for colloid in [false, true] {
                let name = if colloid {
                    format!("{}+Colloid", kind.name())
                } else {
                    kind.name().to_string()
                };
                eprintln!("[fig9] {name} / {} ...", dynamic.label());
                let r = timeline(kind, colloid, dynamic, quick);
                let pts: Vec<(f64, f64)> = r
                    .series
                    .iter()
                    .map(|s| (s.t.as_ns() / 1e6, s.ops_per_sec / 1e6))
                    .collect();
                out.push_str(&series(
                    &format!("{name} | {} | Mops/s over time (ms)", dynamic.label()),
                    &pts,
                    20,
                ));
            }
        }
    }
    println!("{out}");
    out
}
