//! Figure 8: Colloid's benefit vs GUPS object size (64–4096 B).
//!
//! Heatmap per system: rows = object size, columns = contention intensity,
//! cell = throughput with Colloid / without. Paper: for objects ≥ 256 B the
//! prefetcher raises effective per-core parallelism enough that the default
//! tier's latency exceeds the alternate tier's even at 0× — so Colloid
//! helps (1.17–1.35×) even without an antagonist, while at 3× benefits
//! shrink slightly as the alternate tier's own interconnect saturates.

use crate::report::{ratio, Table};
use crate::runner::{run as run_exp, RunConfig};
use crate::scenario::{build_gups, GupsScenario, Policy};
use tiersys::SystemKind;

/// Runs the Figure 8 sweep and prints the per-system heatmaps.
pub fn run(quick: bool) -> String {
    let sizes: Vec<u32> = if quick {
        vec![64, 4096]
    } else {
        vec![64, 256, 1024, 4096]
    };
    let intensities: Vec<usize> = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };

    let mut out = String::from("== Figure 8: Colloid speedup vs GUPS object size ==\n");
    for kind in SystemKind::ALL {
        out.push_str(&format!("\n-- {} --\n", kind.name()));
        let mut headers = vec!["object".to_string()];
        headers.extend(intensities.iter().map(|i| format!("{i}x")));
        let mut t = Table::new(headers.iter().map(String::as_str).collect());
        for &size in &sizes {
            let mut row = vec![format!("{size}B")];
            for &i in &intensities {
                let mut sc = GupsScenario::intensity(i);
                sc.object_size = size;
                eprintln!("[fig8] {} {size}B @ {i}x ...", kind.name());
                let vanilla = {
                    let mut e = build_gups(
                        &sc,
                        Policy::System {
                            kind,
                            colloid: false,
                        },
                    );
                    run_exp(&mut e, &rc).ops_per_sec
                };
                let colloid = {
                    let mut e = build_gups(
                        &sc,
                        Policy::System {
                            kind,
                            colloid: true,
                        },
                    );
                    run_exp(&mut e, &rc).ops_per_sec
                };
                row.push(ratio(colloid / vanilla.max(1.0)));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }
    println!("{out}");
    out
}
