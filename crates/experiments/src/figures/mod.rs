//! One driver per figure of the paper.
//!
//! Each `figN::run(quick)` regenerates figure N: it executes the
//! experiments behind the figure and prints (and returns) the same
//! rows/series the paper reports. See DESIGN.md §4 for the figure →
//! module map and EXPERIMENTS.md for recorded paper-vs-measured results.
//!
//! Figures that share runs (1↔2, 5↔6) are rendered from a common
//! [`GupsGrid`] so the `all-figs` binary can reuse one collection pass.

pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use std::collections::HashMap;

use crate::oracle::{best_case, OracleResult};
use crate::runner::{run, RunConfig, RunResult};
use crate::scenario::{build_gups, GupsScenario, Policy};
use tiersys::SystemKind;

/// Results of a (policy × contention-intensity) sweep over the GUPS setup.
pub struct GupsGrid {
    /// Keyed by `(policy name, intensity)`.
    pub entries: HashMap<(String, usize), RunResult>,
    /// Best-case oracle per intensity.
    pub oracles: HashMap<usize, OracleResult>,
    /// Intensities covered.
    pub intensities: Vec<usize>,
}

impl GupsGrid {
    /// The result for `policy` at `intensity`.
    pub fn get(&self, policy: Policy, intensity: usize) -> &RunResult {
        &self.entries[&(policy.name(), intensity)]
    }

    /// The oracle for `intensity`.
    pub fn oracle(&self, intensity: usize) -> &OracleResult {
        &self.oracles[&intensity]
    }
}

/// The six system policies (three vanilla, three +Colloid).
pub fn all_system_policies() -> Vec<Policy> {
    SystemKind::ALL
        .into_iter()
        .flat_map(|kind| {
            [false, true]
                .into_iter()
                .map(move |colloid| Policy::System { kind, colloid })
        })
        .collect()
}

/// The three vanilla system policies.
pub fn vanilla_policies() -> Vec<Policy> {
    SystemKind::ALL
        .into_iter()
        .map(|kind| Policy::System {
            kind,
            colloid: false,
        })
        .collect()
}

/// Runs the GUPS sweep for the given policies and intensities, with the
/// best-case oracle when requested.
pub fn collect_gups_grid(
    policies: &[Policy],
    intensities: &[usize],
    with_oracle: bool,
    quick: bool,
) -> GupsGrid {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut entries = HashMap::new();
    let mut oracles = HashMap::new();
    for &intensity in intensities {
        let scenario = GupsScenario::intensity(intensity);
        if with_oracle {
            eprintln!("[grid] oracle @ {intensity}x ...");
            oracles.insert(intensity, best_case(&scenario, quick));
        }
        for &policy in policies {
            eprintln!("[grid] {} @ {intensity}x ...", policy.name());
            let mut exp = build_gups(&scenario, policy);
            entries.insert((policy.name(), intensity), run(&mut exp, &rc));
        }
    }
    GupsGrid {
        entries,
        oracles,
        intensities: intensities.to_vec(),
    }
}

/// Intensity labels as the paper writes them.
pub fn intensity_label(i: usize) -> String {
    format!("{i}x")
}
