//! Figure 10: migration rate over time for HeMem and HeMem+Colloid in the
//! Figure 9 scenarios.
//!
//! Paper headline: HeMem+Colloid never exceeds HeMem's peak migration rate;
//! its rate decays more gradually near convergence because the dynamic
//! migration limit shrinks with Δp; steady-state migration traffic stays
//! negligible (< 0.7 % of application throughput).

use crate::figures::fig9::{timeline, Dynamic};
use crate::report::series;
use tiersys::SystemKind;

/// Runs the Figure 10 experiments and prints migration-rate timelines.
pub fn run(quick: bool) -> String {
    let mut out = String::from("== Figure 10: migration rate over time (HeMem) ==\n");
    for dynamic in Dynamic::ALL {
        for colloid in [false, true] {
            let name = if colloid { "HeMem+Colloid" } else { "HeMem" };
            eprintln!("[fig10] {name} / {} ...", dynamic.label());
            let r = timeline(SystemKind::Hemem, colloid, dynamic, quick);
            let pts: Vec<(f64, f64)> = r
                .series
                .iter()
                .map(|s| {
                    let dur_s = 100e-6; // one tick
                    (s.t.as_ns() / 1e6, s.migrated_bytes as f64 / dur_s / 1e6)
                })
                .collect();
            let peak = pts.iter().map(|p| p.1).fold(0.0, f64::max);
            out.push_str(&series(
                &format!(
                    "{name} | {} | migration MB/s over time (ms)",
                    dynamic.label()
                ),
                &pts,
                20,
            ));
            out.push_str(&format!("peak migration rate: {peak:.1} MB/s\n"));
        }
    }
    println!("{out}");
    out
}
