//! Figure 1: GUPS throughput of HeMem/TPP/MEMTIS vs the best case, at
//! 0×–3× memory interconnect contention intensity.
//!
//! Paper headline: "Even at moderate memory interconnect contention
//! intensity, existing memory tiering systems achieve performance that is
//! far from optimal" — gaps up to 2.3×/2.36×/2.46× at 3×.

use crate::figures::{collect_gups_grid, intensity_label, vanilla_policies, GupsGrid};
use crate::report::{mops, ratio, Table};
use crate::runner::{run as run_exp, RunConfig};
use crate::scenario::{build_tpp_with_config, GupsScenario, Policy};

/// Renders Figure 1 from an already-collected grid.
pub fn render(grid: &GupsGrid) -> String {
    let mut out = String::from("== Figure 1: GUPS throughput (Mops/s), systems vs best-case ==\n");
    let mut headers = vec!["policy"];
    let labels: Vec<String> = grid
        .intensities
        .iter()
        .map(|&i| intensity_label(i))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(headers.clone());

    let mut best_row = vec!["best-case".to_string()];
    for &i in &grid.intensities {
        best_row.push(mops(grid.oracle(i).best_ops_per_sec()));
    }
    t.row(best_row);
    for policy in vanilla_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            row.push(mops(grid.get(policy, i).ops_per_sec));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\n-- gap vs best-case (best/system; paper: up to 2.3-2.46x at 3x) --\n");
    let mut g = Table::new(headers);
    for policy in vanilla_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            let best = grid.oracle(i).best_ops_per_sec();
            let sys = grid.get(policy, i).ops_per_sec;
            row.push(ratio(best / sys.max(1.0)));
        }
        g.row(row);
    }
    out.push_str(&g.render());

    out.push_str("\n-- best-case hot fraction in default tier --\n");
    for &i in &grid.intensities {
        let o = grid.oracle(i);
        out.push_str(&format!(
            "{}: best at {:.0}% hot in default\n",
            intensity_label(i),
            o.best_fraction() * 100.0
        ));
    }
    out
}

/// Runs TPP at default and fast-discovery settings across intensities and
/// renders the comparison: with discovery fast enough to actually pack
/// the hot set into the default tier (>75 % traffic share, as the
/// paper's TPP does), TPP degrades under contention like HeMem/MEMTIS —
/// vanilla TPP's small Figure 1 gap is slow discovery, not robustness.
pub fn render_fast_discovery(intensities: &[usize], quick: bool) -> String {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut out = String::from(
        "\n-- TPP discovery speed: default vs fast discovery (Mops/s, default-tier traffic share) --\n",
    );
    let mut headers = vec!["policy".to_string()];
    headers.extend(intensities.iter().map(|&i| intensity_label(i)));
    let mut t = Table::new(headers.iter().map(String::as_str).collect());
    for fast in [false, true] {
        let name = if fast { "TPP (fast discovery)" } else { "TPP" };
        let cfg = if fast {
            tiersys::tpp::TppConfig::fast_discovery()
        } else {
            tiersys::tpp::TppConfig::default()
        };
        let mut row = vec![name.to_string()];
        for &i in intensities {
            eprintln!("[fig1] {name} @ {i}x ...");
            let sc = GupsScenario::intensity(i);
            let mut exp = build_tpp_with_config(&sc, cfg.clone(), false);
            let r = run_exp(&mut exp, &rc);
            row.push(format!(
                "{} ({:.0}%)",
                mops(r.ops_per_sec),
                r.default_tier_app_share() * 100.0
            ));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out
}

/// Runs the Figure 1 experiments and prints the result.
pub fn run(quick: bool) -> String {
    let intensities = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let grid = collect_gups_grid(&vanilla_policies(), &intensities, true, quick);
    let mut s = render(&grid);
    s.push_str(&render_fast_discovery(&intensities, quick));
    println!("{s}");
    s
}

/// Exposes which policies this figure needs (for the shared all-figs run).
pub fn policies() -> Vec<Policy> {
    vanilla_policies()
}
