//! Figure 1: GUPS throughput of HeMem/TPP/MEMTIS vs the best case, at
//! 0×–3× memory interconnect contention intensity.
//!
//! Paper headline: "Even at moderate memory interconnect contention
//! intensity, existing memory tiering systems achieve performance that is
//! far from optimal" — gaps up to 2.3×/2.36×/2.46× at 3×.

use crate::figures::{collect_gups_grid, intensity_label, vanilla_policies, GupsGrid};
use crate::report::{mops, ratio, Table};
use crate::scenario::Policy;

/// Renders Figure 1 from an already-collected grid.
pub fn render(grid: &GupsGrid) -> String {
    let mut out = String::from("== Figure 1: GUPS throughput (Mops/s), systems vs best-case ==\n");
    let mut headers = vec!["policy"];
    let labels: Vec<String> = grid
        .intensities
        .iter()
        .map(|&i| intensity_label(i))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(headers.clone());

    let mut best_row = vec!["best-case".to_string()];
    for &i in &grid.intensities {
        best_row.push(mops(grid.oracle(i).best_ops_per_sec()));
    }
    t.row(best_row);
    for policy in vanilla_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            row.push(mops(grid.get(policy, i).ops_per_sec));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\n-- gap vs best-case (best/system; paper: up to 2.3-2.46x at 3x) --\n");
    let mut g = Table::new(headers);
    for policy in vanilla_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            let best = grid.oracle(i).best_ops_per_sec();
            let sys = grid.get(policy, i).ops_per_sec;
            row.push(ratio(best / sys.max(1.0)));
        }
        g.row(row);
    }
    out.push_str(&g.render());

    out.push_str("\n-- best-case hot fraction in default tier --\n");
    for &i in &grid.intensities {
        let o = grid.oracle(i);
        out.push_str(&format!(
            "{}: best at {:.0}% hot in default\n",
            intensity_label(i),
            o.best_fraction() * 100.0
        ));
    }
    out
}

/// Runs the Figure 1 experiments and prints the result.
pub fn run(quick: bool) -> String {
    let intensities = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let grid = collect_gups_grid(&vanilla_policies(), &intensities, true, quick);
    let s = render(&grid);
    println!("{s}");
    s
}

/// Exposes which policies this figure needs (for the shared all-figs run).
pub fn policies() -> Vec<Policy> {
    vanilla_policies()
}
