//! Figure 11: end-to-end benefits on real-application workloads —
//! (a) GAPBS PageRank, (b) Silo running YCSB-C, (c) CacheLib running
//! HeMemKV — each at 0×–3× contention, per system, with and without
//! Colloid.
//!
//! Paper headline improvements at higher intensities: PageRank
//! 1.05–2.12×, Silo 1.08–1.25×, CacheLib 1.37–1.93×. PageRank's metric in
//! the paper is execution time (lower is better); here we report its
//! throughput in operations/s — the improvement ratios are directly
//! comparable (time ratio = inverse throughput ratio).

use crate::report::{mops, ratio, Table};
use crate::runner::{run as run_exp, RunConfig};
use crate::scenario::{build_app, AppKind, Policy};
use tiersys::SystemKind;

/// Runs the Figure 11 experiments and prints per-application tables.
pub fn run(quick: bool) -> String {
    let intensities: Vec<usize> = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut out = String::from("== Figure 11: real-application performance with Colloid ==\n");
    for app in AppKind::ALL {
        out.push_str(&format!("\n-- {} (throughput, Mops/s) --\n", app.name()));
        let mut headers = vec!["policy".to_string()];
        headers.extend(intensities.iter().map(|i| format!("{i}x")));
        let mut t = Table::new(headers.iter().map(String::as_str).collect());
        let mut speedups = Table::new(headers.iter().map(String::as_str).collect());
        for kind in SystemKind::ALL {
            let mut vrow = vec![kind.name().to_string()];
            let mut crow = vec![format!("{}+Colloid", kind.name())];
            let mut srow = vec![kind.name().to_string()];
            for &i in &intensities {
                let antagonists = i * 5;
                eprintln!("[fig11] {} {} @ {i}x ...", app.name(), kind.name());
                let vanilla = {
                    let mut e = build_app(
                        app,
                        antagonists,
                        Policy::System {
                            kind,
                            colloid: false,
                        },
                        7,
                    );
                    run_exp(&mut e, &rc).ops_per_sec
                };
                let colloid = {
                    let mut e = build_app(
                        app,
                        antagonists,
                        Policy::System {
                            kind,
                            colloid: true,
                        },
                        7,
                    );
                    run_exp(&mut e, &rc).ops_per_sec
                };
                vrow.push(mops(vanilla));
                crow.push(mops(colloid));
                srow.push(ratio(colloid / vanilla.max(1.0)));
            }
            t.row(vrow);
            t.row(crow);
            speedups.row(srow);
        }
        out.push_str(&t.render());
        out.push_str("\nColloid speedup:\n");
        out.push_str(&speedups.render());
    }
    println!("{out}");
    out
}
