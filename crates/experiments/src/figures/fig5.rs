//! Figure 5: steady-state GUPS throughput of each system with and without
//! Colloid, against the best case.
//!
//! Paper headline: "Colloid enables each system to achieve near-optimal
//! performance, independent of the memory interconnect intensity" —
//! improvements of 1.2–2.3× (HeMem), 1.35–2.35× (TPP), 1.29–2.3× (MEMTIS),
//! landing within 3 %/8 %/13 % of best-case.

use crate::figures::{all_system_policies, collect_gups_grid, intensity_label, GupsGrid};
use crate::report::{mops, ratio, Table};
use crate::scenario::Policy;
use tiersys::SystemKind;

/// Renders Figure 5 from an already-collected grid.
pub fn render(grid: &GupsGrid) -> String {
    let mut out =
        String::from("== Figure 5: GUPS throughput (Mops/s) with and without Colloid ==\n");
    let mut headers = vec!["policy"];
    let labels: Vec<String> = grid
        .intensities
        .iter()
        .map(|&i| intensity_label(i))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut t = Table::new(headers.clone());
    let mut best_row = vec!["best-case".to_string()];
    for &i in &grid.intensities {
        best_row.push(mops(grid.oracle(i).best_ops_per_sec()));
    }
    t.row(best_row);
    for policy in all_system_policies() {
        let mut row = vec![policy.name()];
        for &i in &grid.intensities {
            row.push(mops(grid.get(policy, i).ops_per_sec));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\n-- Colloid speedup (with/without; paper: 1.2-2.35x at 1-3x) --\n");
    let mut s = Table::new(headers.clone());
    for kind in SystemKind::ALL {
        let mut row = vec![kind.name().to_string()];
        for &i in &grid.intensities {
            let vanilla = grid
                .get(
                    Policy::System {
                        kind,
                        colloid: false,
                    },
                    i,
                )
                .ops_per_sec;
            let colloid = grid
                .get(
                    Policy::System {
                        kind,
                        colloid: true,
                    },
                    i,
                )
                .ops_per_sec;
            row.push(ratio(colloid / vanilla.max(1.0)));
        }
        s.row(row);
    }
    out.push_str(&s.render());

    out.push_str("\n-- distance from best-case with Colloid (paper: within 3%/8%/13%) --\n");
    let mut d = Table::new(headers);
    for kind in SystemKind::ALL {
        let mut row = vec![format!("{}+Colloid", kind.name())];
        for &i in &grid.intensities {
            let best = grid.oracle(i).best_ops_per_sec();
            let colloid = grid
                .get(
                    Policy::System {
                        kind,
                        colloid: true,
                    },
                    i,
                )
                .ops_per_sec;
            row.push(format!("{:+.1}%", (colloid / best - 1.0) * 100.0));
        }
        d.row(row);
    }
    out.push_str(&d.render());
    out
}

/// Runs the Figure 5 experiments and prints the result.
pub fn run(quick: bool) -> String {
    let intensities = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let grid = collect_gups_grid(&all_system_policies(), &intensities, true, quick);
    let s = render(&grid);
    println!("{s}");
    s
}
