//! Figure 7: Colloid's benefit vs the alternate tier's unloaded latency.
//!
//! Heatmap per system: rows = alternate-tier unloaded latency (1.9–2.7× the
//! default tier, the paper's uncore-frequency sweep, which also lowers the
//! alternate tier's bandwidth), columns = contention intensity, cell =
//! throughput with Colloid / without Colloid. Paper: benefits shrink with
//! higher alternate latency but persist — 1.01–1.76× even at 2.7×.

use crate::report::{ratio, Table};
use crate::runner::{run as run_exp, RunConfig};
use crate::scenario::{build_gups, GupsScenario, Policy};
use tiersys::SystemKind;

/// Runs the Figure 7 sweep and prints the per-system heatmaps.
pub fn run(quick: bool) -> String {
    let ratios: Vec<f64> = if quick {
        vec![1.9, 2.7]
    } else {
        vec![1.9, 2.3, 2.7]
    };
    let intensities: Vec<usize> = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };

    let mut out =
        String::from("== Figure 7: Colloid speedup vs alternate-tier unloaded latency ==\n");
    for kind in SystemKind::ALL {
        out.push_str(&format!("\n-- {} --\n", kind.name()));
        let mut headers = vec!["alt-lat".to_string()];
        headers.extend(intensities.iter().map(|i| format!("{i}x")));
        let mut t = Table::new(headers.iter().map(String::as_str).collect());
        for &r in &ratios {
            let mut row = vec![format!("{r:.1}x")];
            for &i in &intensities {
                let mut sc = GupsScenario::intensity(i);
                sc.alt_latency_ratio = r;
                eprintln!("[fig7] {} ratio={r} @ {i}x ...", kind.name());
                let vanilla = {
                    let mut e = build_gups(
                        &sc,
                        Policy::System {
                            kind,
                            colloid: false,
                        },
                    );
                    run_exp(&mut e, &rc).ops_per_sec
                };
                let colloid = {
                    let mut e = build_gups(
                        &sc,
                        Policy::System {
                            kind,
                            colloid: true,
                        },
                    );
                    run_exp(&mut e, &rc).ops_per_sec
                };
                row.push(ratio(colloid / vanilla.max(1.0)));
            }
            t.row(row);
        }
        out.push_str(&t.render());
    }
    println!("{out}");
    out
}
