//! The best-case placement oracle (paper §2.1).
//!
//! "We determine the best-case memory placement for each configuration by
//! manually placing 0–100% of the hot set in the default tier (in
//! increments of 10) using the Linux mbind API; the remaining hot set is
//! placed in the alternate tier and any remaining capacity in the default
//! tier is filled with randomly chosen pages from the cold set. We call the
//! highest throughput across these manual placements as the best-case
//! application throughput."

use crate::runner::{run, RunConfig, RunResult};
use crate::scenario::{build_gups, GupsScenario, Policy};

/// Result of the best-case sweep.
#[derive(Debug, Clone)]
pub struct OracleResult {
    /// `(hot fraction in default tier, result)` for every sweep point.
    pub points: Vec<(f64, RunResult)>,
    /// Index of the best point.
    pub best: usize,
}

impl OracleResult {
    /// The best-case throughput (ops/s).
    pub fn best_ops_per_sec(&self) -> f64 {
        self.points[self.best].1.ops_per_sec
    }

    /// The best hot-set fraction in the default tier.
    pub fn best_fraction(&self) -> f64 {
        self.points[self.best].0
    }

    /// The best point's full result.
    pub fn best_result(&self) -> &RunResult {
        &self.points[self.best].1
    }
}

/// Sweeps manual placements over the given hot-set fractions and returns
/// the per-point results plus the best.
pub fn best_case_over(
    scenario: &GupsScenario,
    fractions: impl IntoIterator<Item = f64>,
    rc: &RunConfig,
) -> OracleResult {
    let mut points = Vec::new();
    for f in fractions {
        let mut exp = build_gups(
            scenario,
            Policy::Static {
                hot_default_fraction: f,
            },
        );
        let result = run(&mut exp, rc);
        points.push((f, result));
    }
    assert!(!points.is_empty(), "oracle sweep needs at least one point");
    let best = points
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.ops_per_sec.total_cmp(&b.1 .1.ops_per_sec))
        .map(|(i, _)| i)
        .expect("non-empty sweep");
    OracleResult { points, best }
}

/// The paper's 0–100 % sweep in 10 % increments.
pub fn best_case(scenario: &GupsScenario, quick: bool) -> OracleResult {
    let rc = if quick {
        RunConfig::static_placement().quick()
    } else {
        RunConfig::static_placement()
    };
    let fractions: Vec<f64> = if quick {
        vec![0.0, 0.25, 0.5, 0.75, 1.0]
    } else {
        (0..=10).map(|i| i as f64 / 10.0).collect()
    };
    best_case_over(scenario, fractions, &rc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_picks_full_default_at_zero_contention() {
        // Without contention the default tier is strictly faster: the best
        // placement packs the whole hot set there (p* = 1).
        let sc = GupsScenario::intensity(0);
        let r = best_case_over(&sc, [0.0, 0.5, 1.0], &RunConfig::static_placement());
        assert_eq!(r.best_fraction(), 1.0, "best at 0x must be 100% hot");
        assert!(r.best_ops_per_sec() > 0.0);
    }

    #[test]
    fn oracle_moves_hot_set_out_under_contention() {
        // At 3x the default tier is overloaded: placements keeping most of
        // the hot set out of it must win.
        let sc = GupsScenario::intensity(3);
        let r = best_case_over(&sc, [0.0, 0.5, 1.0], &RunConfig::static_placement());
        assert!(
            r.best_fraction() < 1.0,
            "best at 3x keeps hot pages out of the default tier, got {}",
            r.best_fraction()
        );
    }
}
