//! Causal-trace demonstration (binary `trace`).
//!
//! Runs the Figure 9 "contention 0x -> 3x" shift for HeMem+Colloid with
//! the full tracing stack live — scoped tick spans, async per-copy
//! migration spans, decision spans carried as causal links — then:
//!
//! - exports the run as chrome-`trace_event` JSON
//!   (`telemetry_out/trace.json`, loadable in `ui.perfetto.dev` or
//!   `chrome://tracing`) and folded stacks (`telemetry_out/trace.folded`,
//!   for `flamegraph.pl`/inferno);
//! - folds the migration spans into the per-page provenance report:
//!   useful/wasted accounting, ping-pong churn, and the blame table
//!   attributing wasted copies to the decision sites that issued them;
//! - prints the simulator's own wall-clock profile (`simkit::profile`)
//!   over the instrumented hot paths.
//!
//! `--smoke` self-validates (the CI trace job drives this): the emitted
//! JSON must pass [`telemetry::validate_chrome_trace`], every completed
//! migration span must resolve a causal chain back to a decision span,
//! the provenance wasted total must reconcile with
//! [`telemetry::migration_accounting`] over the event stream, the
//! profiler must cover the instrumented hot paths, and the fault-free
//! quickstart must show zero ping-pong pages.

use simkit::SimTime;
use tiersys::SystemKind;

use crate::figures::fig9::Dynamic;
use crate::runner::{run as run_exp, RunConfig, TickSample};
use crate::scenario::{build_gups, GupsScenario, Policy};

/// Event-ring capacity (same sizing rationale as the timeline demo).
const EVENT_CAP: usize = 200_000;
/// Span-ring capacity: 3 scoped spans per tick plus one per decision and
/// one per page copy — a full run stays well under this.
const SPAN_CAP: usize = 400_000;
/// Ping-pong horizon: a page migrated again within this window of its
/// previous copy counts as churn (10 control quanta at the 100 µs tick).
const PING_PONG_WINDOW: SimTime = SimTime::from_ps(1_000_000_000); // 1 ms

/// One traced run and everything derived from it.
pub struct TraceOutcome {
    /// Policy display name.
    pub name: String,
    /// Recorded event stream.
    pub events: Vec<telemetry::Event>,
    /// Recorded span stream (scoped + async + decisions).
    pub spans: Vec<telemetry::SpanRecord>,
    /// Per-tick metric series.
    pub series: Vec<TickSample>,
    /// Spans the ring dropped (0 unless `SPAN_CAP` overflows).
    pub dropped_spans: u64,
    /// Folded per-page provenance.
    pub provenance: telemetry::ProvenanceReport,
}

fn snapshot(exp: &crate::Experiment, name: String, series: Vec<TickSample>) -> TraceOutcome {
    let events = exp.sink.with(|rec| rec.events()).unwrap_or_default();
    let spans = exp.sink.with(|rec| rec.spans()).unwrap_or_default();
    let dropped_spans = exp.sink.with(|rec| rec.dropped_spans()).unwrap_or(0);
    let provenance = telemetry::provenance(&events, &spans, PING_PONG_WINDOW);
    TraceOutcome {
        name,
        events,
        spans,
        series,
        dropped_spans,
        provenance,
    }
}

/// The contention-shift cell with the tracing stack live.
pub fn run_contention_cell(quick: bool) -> TraceOutcome {
    let pre = if quick { 150 } else { 300 };
    let tick = SimTime::from_us(100.0);
    let sc = Dynamic::ContentionOn.scenario(tick, pre);
    let policy = Policy::System {
        kind: SystemKind::Hemem,
        colloid: true,
    };
    let name = policy.name();
    let mut exp = build_gups(&sc, policy);
    exp.attach_telemetry(telemetry::Sink::new(Box::new(
        telemetry::RingRecorder::new(EVENT_CAP, 2 * pre).with_span_cap(SPAN_CAP),
    )));
    let r = run_exp(&mut exp, &RunConfig::timeline(2 * pre));
    snapshot(&exp, name, r.series)
}

/// The fault-free quickstart cell (steady-state GUPS, HeMem+Colloid):
/// the baseline against which zero ping-pong churn is asserted.
pub fn run_quickstart_cell() -> TraceOutcome {
    let scenario = GupsScenario::intensity(2);
    let policy = Policy::System {
        kind: SystemKind::Hemem,
        colloid: true,
    };
    let name = policy.name();
    let mut exp = build_gups(&scenario, policy);
    exp.attach_telemetry(telemetry::Sink::new(Box::new(
        telemetry::RingRecorder::new(EVENT_CAP, 1 << 12).with_span_cap(SPAN_CAP),
    )));
    run_exp(&mut exp, &RunConfig::steady_state());
    snapshot(&exp, name, Vec::new())
}

/// Smoke check: every completed migration span resolves a causal chain
/// back to a decision span. Returns the number checked.
fn check_causal_chains(c: &TraceOutcome) -> Result<usize, String> {
    let index = telemetry::SpanIndex::new(&c.spans);
    let mut checked = 0usize;
    for sp in &c.spans {
        if !matches!(sp.payload, telemetry::SpanPayload::Migration { .. }) {
            continue;
        }
        match index.decision_chain(sp.cause) {
            Some(_) => checked += 1,
            None => {
                return Err(format!(
                    "{}: migration span {} (vpn payload {:?}) has no causal chain to a decision",
                    c.name, sp.id.0, sp.payload
                ))
            }
        }
    }
    Ok(checked)
}

/// Runs the traced demo, writes exports, prints the report. Returns the
/// report and, for `--smoke`, any validation failure.
pub fn run(quick: bool, smoke: bool) -> (String, Result<(), String>) {
    let mut out = String::from("== Causal trace: contention 0x -> 3x (HeMem+Colloid) ==\n");
    let out_dir = std::path::Path::new("telemetry_out");
    let mut check: Result<(), String> = Ok(());

    simkit::profile::reset();
    simkit::profile::set_enabled(true);
    eprintln!("[trace] contention cell ...");
    let cell = run_contention_cell(quick);
    eprintln!("[trace] quickstart cell ...");
    let quickstart = run_quickstart_cell();
    simkit::profile::set_enabled(false);
    let profile = simkit::profile::table();

    // Exports: chrome trace + folded stacks for the contention cell.
    let trace_json = telemetry::chrome_trace_json(&cell.spans, &cell.events, &cell.series);
    let folded = telemetry::folded_stacks(&cell.spans);
    if let Err(e) = std::fs::create_dir_all(out_dir)
        .and_then(|()| std::fs::write(out_dir.join("trace.json"), &trace_json))
        .and_then(|()| std::fs::write(out_dir.join("trace.folded"), &folded))
    {
        eprintln!("[trace] export write failed: {e}");
    } else {
        out.push_str(&format!(
            "wrote telemetry_out/trace.json ({} spans, {} events, {} metric rows; \
             load in ui.perfetto.dev)\nwrote telemetry_out/trace.folded ({} stacks)\n",
            cell.spans.len(),
            cell.events.len(),
            cell.series.len(),
            folded.lines().count(),
        ));
    }

    out.push_str(&format!("\n-- Provenance: {} --\n", cell.name));
    out.push_str(&cell.provenance.render());
    out.push_str(&format!(
        "\n-- Provenance: {} (fault-free quickstart) --\n",
        quickstart.name
    ));
    out.push_str(&quickstart.provenance.render());
    out.push_str("\n-- Simulator wall-clock profile --\n");
    out.push_str(&profile);

    if smoke {
        // 1. The emitted trace must pass the offline format checker.
        check = telemetry::validate_chrome_trace(&trace_json)
            .map(|n| {
                out.push_str(&format!("\ntrace.json: {n} trace events validated\n"));
            })
            .map_err(|e| format!("chrome-trace validation failed: {e}"));
        // 2. Every completed copy chains back to a decision span.
        for c in [&cell, &quickstart] {
            if check.is_ok() {
                check = check_causal_chains(c).map(|n| {
                    out.push_str(&format!(
                        "{}: {} migration spans causally resolved\n",
                        c.name, n
                    ));
                });
            }
            if check.is_ok() && c.dropped_spans > 0 {
                check = Err(format!(
                    "{}: span ring overflowed ({} dropped)",
                    c.name, c.dropped_spans
                ));
            }
            // 3. Blame reconciles with the event-stream accounting.
            if check.is_ok() {
                let acct = telemetry::migration_accounting(&c.events);
                let p = &c.provenance;
                if (p.completed, p.wasted) != (acct.completed, acct.wasted) {
                    check = Err(format!(
                        "{}: provenance ({} completed / {} wasted) disagrees with \
                         accounting ({} / {})",
                        c.name, p.completed, p.wasted, acct.completed, acct.wasted
                    ));
                } else if p.completed_events != p.completed {
                    check = Err(format!(
                        "{}: {} migration spans vs {} MigrationComplete events",
                        c.name, p.completed, p.completed_events
                    ));
                }
            }
        }
        if check.is_ok() && cell.provenance.completed == 0 {
            check = Err("contention cell completed no migrations".into());
        }
        // 4. Zero ping-pong churn in the fault-free quickstart.
        if check.is_ok() && quickstart.provenance.ping_pong_pages > 0 {
            check = Err(format!(
                "fault-free quickstart shows {} ping-pong pages",
                quickstart.provenance.ping_pong_pages
            ));
        }
        // 5. The profiler covered the instrumented hot paths.
        if check.is_ok() {
            let rows = simkit::profile::stats();
            let hot = [
                "machine.event_loop",
                "machine.cha_sample",
                "machine.mig_engine",
                "colloid.on_quantum",
                "system.on_tick",
            ];
            let missing: Vec<&str> = hot
                .iter()
                .filter(|h| !rows.iter().any(|r| r.label == **h))
                .copied()
                .collect();
            if !missing.is_empty() {
                check = Err(format!("profiler missed hot paths: {missing:?}"));
            }
        }
        out.push_str(match &check {
            Ok(()) => "trace smoke: PASS\n",
            Err(e) => {
                eprintln!("[trace] smoke failure: {e}");
                "trace smoke: FAIL\n"
            }
        });
    }
    println!("{out}");
    (out, check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_cell_traces_causally() {
        let c = run_contention_cell(true);
        assert!(!c.spans.is_empty(), "traced run must record spans");
        assert_eq!(c.dropped_spans, 0, "span ring sized for the full run");
        // Scoped tick spans nest under the runner.
        assert!(c.spans.iter().any(|s| s.name == "machine.tick"));
        assert!(c.spans.iter().any(|s| s.name == "runner.tick"));
        // Colloid decisions were recorded and migrations chain to them.
        assert!(c
            .spans
            .iter()
            .any(|s| matches!(s.payload, telemetry::SpanPayload::Decision { .. })));
        assert!(c.provenance.completed > 0);
        assert_eq!(
            check_causal_chains(&c).unwrap() as u64,
            c.provenance.completed
        );
        // Provenance reconciles with the accounting.
        let acct = telemetry::migration_accounting(&c.events);
        assert_eq!(c.provenance.completed, acct.completed);
        assert_eq!(c.provenance.wasted, acct.wasted);
        // The exports are well-formed.
        let json = telemetry::chrome_trace_json(&c.spans, &c.events, &c.series);
        assert!(telemetry::validate_chrome_trace(&json).unwrap() > 0);
        assert!(!telemetry::folded_stacks(&c.spans).is_empty());
    }
}
