//! Telemetry demonstration: runs the Figure 9 contention shift with a full
//! event/metric recorder attached, exports NDJSON + CSV, and prints the
//! rendered timeline with convergence analytics. Pass `--quick` for the
//! shortened run and `--smoke` to self-validate (non-zero exit on failure).

fn main() {
    let quick = experiments::quick_requested();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (_, check) = experiments::timeline::run(tiersys::SystemKind::Hemem, quick, smoke);
    if check.is_err() {
        std::process::exit(1);
    }
}
