//! Regenerates the extended-version sensitivity analyses (the paper's [57]):
//! ε/δ sensitivity, varying core counts, varying read/write ratios, and the
//! effective-parallelism-vs-object-size claim from §5.1.

fn main() {
    experiments::figures::ext::run(experiments::quick_requested());
}
