//! Runs the adaptivity gauntlet: every tiering system (± Colloid,
//! ± supervisor, both migration engines) against phase-shifting, diurnal,
//! and adversarial traces plus the committed NDJSON fixture replay.
//!
//! Flags:
//!
//! - `--quick` / `COLLOID_QUICK=1` — shortened runs for CI;
//! - `--smoke` — enforce the self-validation gates (replay bit-identity,
//!   page conservation, supervised Colloid beating bare vanilla in the
//!   adversarial column) with a non-zero exit on failure;
//! - `--replay <path>` — replay a different NDJSON trace in the fixture
//!   column (corrupt or empty files exit cleanly with a typed error);
//! - `--gen-fixture` — regenerate the committed fixture trace and its
//!   golden replay digest (EXPERIMENTS.md documents the workflow).
//!
//! The score tables are also written to `gauntlet_out/scores.txt` (the CI
//! job uploads them as an artifact).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use experiments::gauntlet::{self, GauntletScenario};
use tiersys::SystemKind;
use workloads::{trace_from_ndjson, Trace, TraceReplayer};

/// Records in the committed fixture (quick-mode scale: the file stays
/// small enough to commit, the replay still exercises wrap-around).
const FIXTURE_RECORDS: usize = 1024;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/gauntlet_phase_shift.ndjson")
}

fn golden_digest_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/gauntlet_fixture_digest.txt")
}

/// Loads and validates an NDJSON fixture, surfacing corrupt or empty
/// files as clean errors (exit 2), never panics.
fn load_fixture(path: &Path) -> Result<Arc<Trace>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace =
        trace_from_ndjson(&text).map_err(|e| format!("invalid trace {}: {e}", path.display()))?;
    let trace = Arc::new(trace);
    // Reject empty traces here with the typed replay error so the matrix
    // never panics on them.
    TraceReplayer::try_new(Arc::clone(&trace))
        .map_err(|e| format!("unusable trace {}: {e}", path.display()))?;
    Ok(trace)
}

fn gen_fixture(sc: &GauntletScenario) {
    let ndjson = gauntlet::capture_fixture_ndjson(sc, FIXTURE_RECORDS);
    let fixture = fixture_path();
    std::fs::create_dir_all(fixture.parent().unwrap()).expect("create fixtures dir");
    std::fs::write(&fixture, &ndjson).expect("write fixture");
    println!("wrote {} ({} bytes)", fixture.display(), ndjson.len());

    // Golden digest: the fixture replayed through the capture-shape cell.
    let trace = Arc::new(trace_from_ndjson(&ndjson).expect("fixture re-imports"));
    let cell = gauntlet::run_fixture_cell(sc, &trace, SystemKind::Hemem, true, false, false)
        .expect("fixture replays");
    let digest = format!(
        "{:.6} {} {}\n",
        cell.ops_per_sec / 1e6,
        cell.accounting.completed,
        gauntlet::fixture_replay_digest(sc, &trace)
    );
    let golden = golden_digest_path();
    std::fs::write(&golden, &digest).expect("write golden digest");
    println!("wrote {}: {digest}", golden.display());
}

fn main() {
    let quick = experiments::quick_requested();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let args: Vec<String> = std::env::args().collect();
    let replay_arg = args
        .iter()
        .position(|a| a == "--replay")
        .map(|i| PathBuf::from(args.get(i + 1).cloned().unwrap_or_default()));
    let sc = GauntletScenario::paper_default(quick);

    if args.iter().any(|a| a == "--gen-fixture") {
        gen_fixture(&sc);
        return;
    }

    println!(
        "Adaptivity gauntlet: {} ws pages, hot {}, default tier {} pages, {} ticks/cell{}",
        sc.ws_pages,
        sc.hot_pages,
        sc.default_pages,
        sc.run_ticks,
        if quick { " (quick)" } else { "" },
    );

    // Fixture column: the committed trace, or the user's --replay file.
    let path = replay_arg.unwrap_or_else(fixture_path);
    let fixture = match load_fixture(&path) {
        Ok(t) => {
            println!("fixture: {} ({} records)", path.display(), t.len());
            Some(t)
        }
        Err(e) => {
            eprintln!("fixture error: {e}");
            std::process::exit(2);
        }
    };

    // Replay-determinism proof (always reported; gated under --smoke).
    let det = match gauntlet::determinism_check(&sc) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("determinism check failed to run: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "replay determinism: {} records, {} NDJSON bytes, original {} / replay {} / replay2 {}, events match: {}",
        det.records,
        det.ndjson_bytes,
        det.original_digest,
        det.replay_digest,
        det.replay2_digest,
        det.events_match
    );

    let outcomes = gauntlet::run_matrix(&sc, fixture.as_ref());
    let mut report = String::new();
    for outcome in &outcomes {
        report.push_str(&gauntlet::render(&sc, outcome));
        report.push('\n');
    }
    print!("{report}");

    std::fs::create_dir_all("gauntlet_out").expect("create gauntlet_out");
    std::fs::write("gauntlet_out/scores.txt", &report).expect("write score table");
    println!("score tables written to gauntlet_out/scores.txt");

    if smoke {
        let fails = gauntlet::smoke_failures(&sc, &outcomes, &det);
        if fails.is_empty() {
            println!("smoke: ok");
        } else {
            for f in &fails {
                eprintln!("smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
