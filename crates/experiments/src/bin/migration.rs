//! Transactional-migration matrix: exclusive vs transactional engine
//! under {baseline, write-conflict storm, channel stall}.
//!
//! `--quick` shortens the timelines; `--smoke` enforces the
//! self-validation gates (page conservation across aborts/failovers,
//! double-entry abort accounting, the read-mostly latency win) with a
//! non-zero exit on failure. The CI `migration-smoke` job runs
//! `--quick --smoke`.

fn main() {
    let quick = experiments::quick_requested();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let fails = experiments::migration::run(quick, smoke);
    if !fails.is_empty() {
        for f in &fails {
            eprintln!("smoke FAIL: {f}");
        }
        std::process::exit(1);
    }
}
