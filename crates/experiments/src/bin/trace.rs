//! Causal-tracing demonstration: runs the Figure 9 contention shift with
//! span tracing live, exports a Perfetto-loadable chrome trace and folded
//! stacks, and prints the per-page provenance/blame report plus the
//! simulator's wall-clock profile. Pass `--quick` for the shortened run
//! and `--smoke` to self-validate (non-zero exit on failure).

fn main() {
    let quick = experiments::quick_requested();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (_, check) = experiments::trace::run(quick, smoke);
    if check.is_err() {
        std::process::exit(1);
    }
}
