//! Runs the robustness matrix (fault injection vs. tiering systems). Pass
//! `--quick` (or set `COLLOID_QUICK=1`) for shortened runs.

fn main() {
    experiments::robustness::run(experiments::quick_requested());
}
