//! Regenerates Figure 9 of the paper. Pass `--quick` (or set
//! `COLLOID_QUICK=1`) for the reduced sweep used by the benches.

fn main() {
    experiments::figures::fig9::run(experiments::quick_requested());
}
