//! Regenerates Figure 1 of the paper. Pass `--quick` (or set
//! `COLLOID_QUICK=1`) for the reduced sweep used by the benches.

fn main() {
    experiments::figures::fig1::run(experiments::quick_requested());
}
