//! Graceful-degradation matrix: hard faults × {bare, supervised} systems.
//!
//! `--quick` shortens the timelines; `--smoke` restricts the sweep to
//! HeMem (the CI gate runs `--quick --smoke`).

fn main() {
    let quick = experiments::quick_requested();
    let smoke = std::env::args().any(|a| a == "--smoke");
    experiments::degradation::run(quick, smoke);
}
