//! Runs the three-tier contention-shift grid (every tiering system,
//! vanilla vs +Colloid) on the local/CXL/far chain. Pass `--quick` (or
//! set `COLLOID_QUICK=1`) for shortened runs and `--smoke` to enforce the
//! self-validation gates (page conservation, vanilla inversion, Colloid
//! balancing) with a non-zero exit on failure.

use experiments::multitier;

fn main() {
    let quick = experiments::quick_requested();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sc = multitier::MultiTierScenario::paper_default(quick);
    println!(
        "Three-tier contention shift: {} ws pages, hot {} @ +{}, antagonist -> {} cores after {} ticks{}",
        sc.ws_pages,
        sc.hot_pages,
        sc.hot_offset,
        sc.antagonist_cores_after,
        sc.warmup_ticks,
        if quick { " (quick)" } else { "" },
    );
    let results = multitier::run_grid(&sc);
    print!("{}", multitier::render(&results));
    if smoke {
        let fails = multitier::smoke_failures(&sc, &results);
        if fails.is_empty() {
            println!("smoke: ok");
        } else {
            for f in &fails {
                eprintln!("smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
