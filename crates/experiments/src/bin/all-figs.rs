//! Regenerates every figure in one pass, sharing the GUPS sweep between
//! Figures 1/2 and 5/6. Pass `--quick` for the reduced sweeps.

use experiments::figures;

fn main() {
    let quick = experiments::quick_requested();
    let intensities: Vec<usize> = if quick { vec![0, 3] } else { vec![0, 1, 2, 3] };

    // One grid serves figures 1, 2, 5 and 6.
    let grid =
        figures::collect_gups_grid(&figures::all_system_policies(), &intensities, true, quick);
    println!("{}", figures::fig1::render(&grid));
    println!("{}", figures::fig2::render(&grid));
    figures::fig4::run(quick);
    println!("{}", figures::fig5::render(&grid));
    println!("{}", figures::fig6::render(&grid));
    figures::fig7::run(quick);
    figures::fig8::run(quick);
    figures::fig9::run(quick);
    figures::fig10::run(quick);
    figures::fig11::run(quick);
}
