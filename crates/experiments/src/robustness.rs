//! Robustness matrix: how gracefully does each tiering system degrade
//! when its inputs degrade?
//!
//! The paper argues Colloid's latency-balancing is robust where
//! hotness-packing heuristics are fragile. This driver stresses that claim
//! directly: the §2.1 GUPS setup runs under increasing fault intensity
//! ([`FaultLevel`]) — noisy/stale/dropped CHA windows, transiently failing
//! migrations, lost PEBS samples, and a degraded migration path — and
//! reports steady-state throughput against the fault-free run of the same
//! policy, together with the injected-fault and migration-retry counters
//! from [`crate::runner::RunResult`].
//!
//! Not a paper figure; see EXPERIMENTS.md ("Robustness") for recorded
//! results and the fault model's hardware rationale in DESIGN.md.

use memsim::{BandwidthPhase, FaultPlan};
use simkit::SimTime;
use tiersys::SystemKind;

use crate::report::{fault_counts, mops, ratio, retry_counts, Table};
use crate::runner::{run as run_exp, RunConfig, RunResult};
use crate::scenario::{build_gups, GupsScenario, Policy};

/// Contention intensity the matrix runs at (2× — enough interconnect
/// pressure that Colloid's placement decisions matter).
pub const MATRIX_INTENSITY: usize = 2;

/// Graded fault intensities for the robustness sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultLevel {
    /// No faults (the reference run).
    None,
    /// Light PMU jitter and rare migration failures.
    Mild,
    /// Sustained counter noise, occasional stale/dropped windows, lossy
    /// PEBS, 5 % migration failures.
    Moderate,
    /// Heavy noise, frequent stale/dropped windows, 15 % migration
    /// failures, and a long migration-bandwidth collapse to 25 %.
    Severe,
}

impl FaultLevel {
    /// All levels, mildest first.
    pub const ALL: [FaultLevel; 4] = [
        FaultLevel::None,
        FaultLevel::Mild,
        FaultLevel::Moderate,
        FaultLevel::Severe,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultLevel::None => "none",
            FaultLevel::Mild => "mild",
            FaultLevel::Moderate => "moderate",
            FaultLevel::Severe => "severe",
        }
    }

    /// The fault plan at this level. `tick` anchors the severe level's
    /// bandwidth-degradation phase in simulated time.
    pub fn plan(self, tick: SimTime) -> FaultPlan {
        match self {
            FaultLevel::None => FaultPlan::none(),
            FaultLevel::Mild => FaultPlan {
                counter_noise: 0.1,
                counter_stale_prob: 0.02,
                migration_fail_prob: 0.01,
                pebs_loss_prob: 0.05,
                ..FaultPlan::none()
            },
            FaultLevel::Moderate => FaultPlan {
                counter_noise: 0.2,
                counter_stale_prob: 0.05,
                counter_drop_prob: 0.02,
                migration_fail_prob: 0.05,
                pebs_loss_prob: 0.15,
                ..FaultPlan::none()
            },
            FaultLevel::Severe => FaultPlan {
                counter_noise: 0.4,
                counter_stale_prob: 0.1,
                counter_drop_prob: 0.05,
                migration_fail_prob: 0.15,
                pebs_loss_prob: 0.3,
                bandwidth_phases: vec![BandwidthPhase {
                    start: tick * 200,
                    end: Some(tick * 500),
                    factor: 0.25,
                }],
                ..FaultPlan::none()
            },
        }
    }
}

/// The combined-fault plan of the end-to-end robustness test: 20 % counter
/// noise, 5 % transient migration failures, and one mid-run
/// bandwidth-degradation phase.
pub fn combined_faults(tick: SimTime) -> FaultPlan {
    FaultPlan {
        counter_noise: 0.2,
        migration_fail_prob: 0.05,
        bandwidth_phases: vec![BandwidthPhase {
            start: tick * 60,
            end: Some(tick * 120),
            factor: 0.5,
        }],
        ..FaultPlan::none()
    }
}

/// The §2.1 GUPS scenario at [`MATRIX_INTENSITY`] with `level`'s faults.
pub fn scenario(level: FaultLevel, tick: SimTime) -> GupsScenario {
    let mut sc = GupsScenario::intensity(MATRIX_INTENSITY);
    sc.faults = level.plan(tick);
    sc
}

/// Runs one (policy × fault level) cell of the matrix.
pub fn run_cell(kind: SystemKind, colloid: bool, level: FaultLevel, quick: bool) -> RunResult {
    let rc = if quick {
        RunConfig::steady_state().quick()
    } else {
        RunConfig::steady_state()
    };
    let mut exp = build_gups(
        &scenario(level, SimTime::from_us(100.0)),
        Policy::System { kind, colloid },
    );
    run_exp(&mut exp, &rc)
}

/// Runs the full robustness matrix and prints the table.
pub fn run(quick: bool) -> String {
    let mut out = String::from("== Robustness: throughput under injected faults (GUPS @ 2x) ==\n");
    let mut t = Table::new(vec![
        "system",
        "faults",
        "Mops/s",
        "vs fault-free",
        "injected",
        "retry s/r/d",
    ]);
    for kind in SystemKind::ALL {
        for colloid in [false, true] {
            let policy = Policy::System { kind, colloid };
            let mut baseline = None;
            for level in FaultLevel::ALL {
                eprintln!("[robustness] {} / {} ...", policy.name(), level.label());
                let r = run_cell(kind, colloid, level, quick);
                let vs = match baseline {
                    None => {
                        baseline = Some(r.ops_per_sec);
                        "1.00x".into()
                    }
                    Some(base) if base > 0.0 => ratio(r.ops_per_sec / base),
                    Some(_) => "-".into(),
                };
                t.row(vec![
                    policy.name(),
                    level.label().into(),
                    mops(r.ops_per_sec),
                    vs,
                    fault_counts(&r.fault_stats),
                    retry_counts(r.retry_stats.as_ref()),
                ]);
            }
        }
    }
    out.push_str(&t.render());
    println!("{out}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_level_yields_a_valid_plan() {
        let tick = SimTime::from_us(100.0);
        for level in FaultLevel::ALL {
            level.plan(tick).validate().unwrap();
        }
        assert!(!FaultLevel::None.plan(tick).is_active());
        assert!(FaultLevel::Severe.plan(tick).is_active());
        combined_faults(tick).validate().unwrap();
    }

    #[test]
    fn severity_is_monotone() {
        let tick = SimTime::from_us(100.0);
        let plans: Vec<FaultPlan> = FaultLevel::ALL.iter().map(|l| l.plan(tick)).collect();
        for w in plans.windows(2) {
            assert!(w[0].counter_noise <= w[1].counter_noise);
            assert!(w[0].migration_fail_prob <= w[1].migration_fail_prob);
            assert!(w[0].pebs_loss_prob <= w[1].pebs_loss_prob);
        }
    }

    #[test]
    fn one_cell_runs_under_faults() {
        // A heavily shortened Moderate cell: the point is that faults are
        // actually injected and the result stays finite.
        let tick = SimTime::from_us(100.0);
        let mut exp = build_gups(
            &scenario(FaultLevel::Moderate, tick),
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
        );
        let rc = RunConfig {
            min_warmup_ticks: 20,
            max_warmup_ticks: 40,
            measure_ticks: 20,
            window: 20,
            tolerance: 0.05,
            collect_series: false,
        };
        let r = run_exp(&mut exp, &rc);
        assert!(r.ops_per_sec.is_finite() && r.ops_per_sec > 0.0);
        assert!(r.fault_stats.total() > 0, "no faults injected");
    }
}
