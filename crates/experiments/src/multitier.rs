//! End-to-end N-tier experiment (binary `multitier`): a three-tier machine
//! — local DDR (~70 ns), CXL-attached DDR (~180 ns), far/pooled memory
//! (~350 ns), each behind its own bandwidth link — under the §2.1
//! contention shift, every tiering system vanilla vs +Colloid.
//!
//! The two-tier figures cannot exercise the pairwise multi-tier balancer
//! (§3.1): with one adjacent pair, the chain degenerates to Algorithm 1.
//! This experiment is the balancer's integration surface. The working set
//! first-touch-fills the chain top-down so the hot set starts in *far*
//! memory, then an antagonist storms the local tier mid-run:
//!
//! - vanilla systems ratchet the hot set into the (now contended) local
//!   tier and leave the chain latency-inverted — local slower than CXL;
//! - Colloid's pairwise controllers move hot pages only in the
//!   latency-balancing direction along each adjacent pair, converging
//!   towards equal per-tier access latencies.
//!
//! The runner here is deliberately not [`crate::runner::run`]: that
//! measurement path (and its [`crate::TickSample`]) is pinned by the
//! two-tier golden outputs, while this loop measures *every* tier of the
//! chain.

use memsim::{
    CoreConfig, Machine, MachineConfig, TickReport, TierId, TrafficClass, Vpn, PAGE_SIZE,
};
use simkit::SimTime;
use tiersys::{build_system, ColloidParams, SystemKind, SystemParams};
use workloads::{AntagonistConfig, AntagonistStream, GupsConfig, GupsStream};

use crate::report::Table;
use crate::scenario::Experiment;

/// First page of the antagonist's pinned buffer.
const ANTAGONIST_BASE: Vpn = 0;
/// First page of the application's working set.
const APP_BASE: Vpn = 1024;

/// Shape of the three-tier contention-shift experiment.
#[derive(Debug, Clone)]
pub struct MultiTierScenario {
    /// Local-tier capacity in pages (the antagonist pins 128 of them).
    pub local_pages: u64,
    /// CXL-tier capacity in pages.
    pub cxl_pages: u64,
    /// Far-tier capacity in pages.
    pub far_pages: u64,
    /// Application working-set pages (first-touch fills the chain
    /// top-down, so the tail lands in far memory).
    pub ws_pages: u64,
    /// Hot-set pages.
    pub hot_pages: u64,
    /// Hot-set offset within the working set — past the local+CXL fill,
    /// so discovery starts from the bottom of the chain.
    pub hot_offset: u64,
    /// Application cores.
    pub app_cores: usize,
    /// Antagonist cores activated at the shift.
    pub antagonist_cores_after: usize,
    /// Ticks before the antagonist shift.
    pub warmup_ticks: usize,
    /// Ticks after the shift before measurement starts.
    pub converge_ticks: usize,
    /// Measurement window, in ticks.
    pub measure_ticks: usize,
    /// Root RNG seed.
    pub seed: u64,
}

impl MultiTierScenario {
    /// The default grid point; `quick` shrinks the time axis for CI.
    pub fn paper_default(quick: bool) -> Self {
        MultiTierScenario {
            local_pages: 1024,
            cxl_pages: 1536,
            far_pages: 8192,
            ws_pages: 4096,
            hot_pages: 768,
            hot_offset: 3072,
            app_cores: 8,
            antagonist_cores_after: 10,
            warmup_ticks: if quick { 300 } else { 900 },
            converge_ticks: if quick { 500 } else { 1500 },
            measure_ticks: if quick { 100 } else { 200 },
            seed: 0xC0_11_03,
        }
    }

    /// Working-set page range.
    pub fn ws_range(&self) -> std::ops::Range<Vpn> {
        APP_BASE..APP_BASE + self.ws_pages
    }
}

/// Steady-state observation of one tier at the end of a run.
#[derive(Debug, Clone, Copy)]
pub struct TierObservation {
    /// Mean Little's-law latency over the measurement window, `None` when
    /// the tier never carried traffic in the window.
    pub latency_ns: Option<f64>,
    /// Share of application bytes served by this tier.
    pub app_share: f64,
    /// Managed pages resident on this tier at the end of the run.
    pub resident_pages: u64,
}

/// Result of one (system, colloid, engine) cell of the grid.
#[derive(Debug, Clone)]
pub struct MultiTierResult {
    /// Policy display name ("HeMem", "HeMem+Colloid", "HeMem [txn]", ...).
    pub system: String,
    /// Per-tier steady-state observations, tier 0 first.
    pub tiers: Vec<TierObservation>,
    /// Steady-state application throughput.
    pub ops_per_sec: f64,
    /// Cumulative migration-engine counters at the end of the run.
    pub migration: memsim::MigrationCounters,
}

impl MultiTierResult {
    /// Largest relative latency gap across adjacent tier pairs that both
    /// carried traffic: `|l_i - l_{i+1}| / min(l_i, l_{i+1})`. Zero when
    /// fewer than two tiers were busy.
    pub fn max_adjacent_gap(&self) -> f64 {
        self.tiers
            .windows(2)
            .filter_map(|w| match (w[0].latency_ns, w[1].latency_ns) {
                (Some(u), Some(l)) => Some((u - l).abs() / u.min(l).max(1e-9)),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Whether some adjacent pair is latency-inverted: a faster-by-design
    /// tier measuring more than 5% slower than its slower neighbour.
    pub fn inverted(&self) -> bool {
        self.tiers.windows(2).any(|w| {
            matches!(
                (w[0].latency_ns, w[1].latency_ns),
                (Some(u), Some(l)) if u > l * 1.05
            )
        })
    }

    /// Managed pages resident across the whole chain.
    pub fn resident_total(&self) -> u64 {
        self.tiers.iter().map(|t| t.resident_pages).sum()
    }
}

/// Builds the three-tier machine: the `cxl_three_tier` preset resized to
/// the scenario, the antagonist buffer pinned to the local tier, and the
/// working set first-touch-filled down the chain.
fn build_machine(sc: &MultiTierScenario, transactional: bool) -> (Machine, Vec<memsim::CoreId>) {
    let mut cfg = MachineConfig::cxl_three_tier();
    cfg.tiers[0].capacity_bytes = sc.local_pages * PAGE_SIZE;
    cfg.tiers[1].capacity_bytes = sc.cxl_pages * PAGE_SIZE;
    cfg.tiers[2].capacity_bytes = sc.far_pages * PAGE_SIZE;
    cfg.seed = sc.seed;
    if transactional {
        cfg.engine = memsim::MigrationEngineConfig::transactional();
    }
    cfg.validate().expect("three-tier preset must validate");
    let mut machine = Machine::new(cfg);

    // Antagonist buffer pinned to the local tier; all cores idle until the
    // scheduled shift.
    let buf = AntagonistConfig::paper_default(ANTAGONIST_BASE, 0);
    machine.place_range(buf.range(), TierId(0));
    for vpn in buf.range() {
        machine.pin(vpn);
    }
    let mut antagonist_ids = Vec::new();
    for i in 0..sc.antagonist_cores_after {
        let acfg = AntagonistConfig::paper_default(ANTAGONIST_BASE, i as u64);
        let id = machine.add_core(
            Box::new(AntagonistStream::new(acfg)),
            CoreConfig::antagonist_default(),
            TrafficClass::Antagonist,
        );
        machine.set_core_active(id, false);
        antagonist_ids.push(id);
    }

    // First-touch down the chain: local, then CXL, then far.
    let mut tier = 0u8;
    let mut free = machine.free_pages(TierId(tier));
    for vpn in sc.ws_range() {
        while free == 0 {
            tier += 1;
            free = machine.free_pages(TierId(tier));
        }
        machine.place(vpn, TierId(tier));
        free -= 1;
    }

    let gups = gups_config(sc);
    for _ in 0..sc.app_cores {
        machine.add_core(
            Box::new(GupsStream::new(gups.clone()).expect("valid GUPS config")),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
    }
    (machine, antagonist_ids)
}

fn gups_config(sc: &MultiTierScenario) -> GupsConfig {
    let mut g = GupsConfig::paper_default(APP_BASE);
    g.ws_pages = sc.ws_pages;
    g.hot_pages = sc.hot_pages;
    g.hot_offset = sc.hot_offset;
    g.phases = Vec::new();
    g
}

/// Assembles one grid cell as a runnable [`Experiment`]. `transactional`
/// swaps the exclusive legacy migration engine for the multi-channel
/// transactional one.
pub fn build(
    sc: &MultiTierScenario,
    kind: SystemKind,
    colloid: bool,
    transactional: bool,
) -> Experiment {
    let (machine, antagonist_core_ids) = build_machine(sc, transactional);
    let mut params = SystemParams::new(vec![sc.ws_range()], colloid.then(ColloidParams::default));
    params.unloaded_ns = machine
        .config()
        .tiers
        .iter()
        .map(|t| t.unloaded_latency().as_ns())
        .collect();
    assert_eq!(params.n_tiers(), 3);
    let system = build_system(kind, params);
    let tick = SimTime::from_us(100.0);
    let shift_at = tick * sc.warmup_ticks as u64;
    Experiment {
        machine,
        system,
        tick,
        antagonist_core_ids,
        antagonist_change: Some((shift_at, sc.antagonist_cores_after)),
        sink: telemetry::Sink::default(),
        schedule_markers: vec![(shift_at, "antagonist storm on the local tier".into())],
    }
}

/// One machine tick + system reaction (the N-tier measurement step).
fn step(exp: &mut Experiment) -> TickReport {
    exp.apply_schedule();
    let report = exp.machine.run_tick(exp.tick);
    exp.system.on_tick(&mut exp.machine, &report);
    report
}

/// Runs one grid cell to completion and measures every tier.
pub fn run_cell(
    sc: &MultiTierScenario,
    kind: SystemKind,
    colloid: bool,
    transactional: bool,
) -> MultiTierResult {
    let mut exp = build(sc, kind, colloid, transactional);
    let n_tiers = exp.machine.config().tiers.len();
    let name = if transactional {
        format!("{} [txn]", exp.system.name())
    } else {
        exp.system.name()
    };

    for _ in 0..sc.warmup_ticks + sc.converge_ticks {
        step(&mut exp);
    }

    let mut lat_sum = vec![0.0f64; n_tiers];
    let mut lat_n = vec![0u32; n_tiers];
    let mut app_bytes = vec![0u64; n_tiers];
    let mut ops_total = 0u64;
    let t_begin = exp.machine.now();
    let app = TrafficClass::App.index();
    for _ in 0..sc.measure_ticks {
        let report = step(&mut exp);
        ops_total += report.app_ops;
        for i in 0..n_tiers {
            if let Some(l) = report.littles_latency_ns(TierId(i as u8)) {
                lat_sum[i] += l;
                lat_n[i] += 1;
            }
            app_bytes[i] += report.tiers[i].bytes_by_class[app];
        }
    }
    let dur = exp.machine.now().saturating_sub(t_begin);

    let total_app: u64 = app_bytes.iter().sum();
    let mut resident = vec![0u64; n_tiers];
    for vpn in sc.ws_range() {
        if let Some(t) = exp.machine.tier_of(vpn) {
            resident[t.index()] += 1;
        }
    }
    let tiers = (0..n_tiers)
        .map(|i| TierObservation {
            latency_ns: (lat_n[i] > 0).then(|| lat_sum[i] / f64::from(lat_n[i])),
            app_share: if total_app > 0 {
                app_bytes[i] as f64 / total_app as f64
            } else {
                0.0
            },
            resident_pages: resident[i],
        })
        .collect();
    MultiTierResult {
        system: name,
        tiers,
        ops_per_sec: if dur.as_secs() > 0.0 {
            ops_total as f64 / dur.as_secs()
        } else {
            0.0
        },
        migration: exp.machine.migration_counters(),
    }
}

/// Runs the full grid (three systems × {vanilla, Colloid} × {exclusive,
/// transactional engine}), in system order with the vanilla-exclusive
/// cell first.
pub fn run_grid(sc: &MultiTierScenario) -> Vec<MultiTierResult> {
    let mut out = Vec::new();
    for kind in SystemKind::ALL {
        for colloid in [false, true] {
            for transactional in [false, true] {
                out.push(run_cell(sc, kind, colloid, transactional));
            }
        }
    }
    out
}

/// Formats the grid as the experiment's report table.
pub fn render(results: &[MultiTierResult]) -> String {
    let mut t = Table::new(vec![
        "system",
        "L0 (ns)",
        "L1 (ns)",
        "L2 (ns)",
        "max gap",
        "shares L0/L1/L2",
        "resident",
        "mig c/a/r/f/b",
        "Mops/s",
    ]);
    for r in results {
        let lat = |i: usize| {
            r.tiers[i]
                .latency_ns
                .map(|l| format!("{l:.0}"))
                .unwrap_or_else(|| "idle".into())
        };
        t.row(vec![
            r.system.clone(),
            lat(0),
            lat(1),
            lat(2),
            format!("{:.2}", r.max_adjacent_gap()),
            r.tiers
                .iter()
                .map(|x| format!("{:.0}%", x.app_share * 100.0))
                .collect::<Vec<_>>()
                .join("/"),
            format!("{}", r.resident_total()),
            crate::report::txn_counts(&r.migration),
            format!("{:.1}", r.ops_per_sec / 1e6),
        ]);
    }
    t.render()
}

/// The `--smoke` self-validation gates. Returns the failures (empty =
/// pass):
///
/// 1. page conservation — every run ends with the full working set
///    resident somewhere on the chain (transactional cells included:
///    aborts and failovers must not lose or duplicate pages);
/// 2. transactional commit accounting reconciles — every committed
///    transaction went through a shootdown batch;
/// 3. the contention shift bites — at least one vanilla run ends with an
///    adjacent latency inversion (the paper's failure mode);
/// 4. Colloid balances — averaged across systems, the Colloid cells'
///    worst adjacent latency gap is strictly smaller than the vanilla
///    cells'.
pub fn smoke_failures(sc: &MultiTierScenario, results: &[MultiTierResult]) -> Vec<String> {
    let mut fails = Vec::new();
    for r in results {
        if r.resident_total() != sc.ws_pages {
            fails.push(format!(
                "{}: {} of {} managed pages resident (pages lost or duplicated)",
                r.system,
                r.resident_total(),
                sc.ws_pages
            ));
        }
        if r.system.contains("[txn]") && r.migration.batched_pages != r.migration.completed {
            fails.push(format!(
                "{}: {} committed transactions but {} batched shootdown pages",
                r.system, r.migration.completed, r.migration.batched_pages
            ));
        }
    }
    let (vanilla, colloid): (Vec<_>, Vec<_>) =
        results.iter().partition(|r| !r.system.contains("Colloid"));
    if !vanilla.iter().any(|r| r.inverted()) {
        fails
            .push("no vanilla run ends latency-inverted: the contention shift is toothless".into());
    }
    let mean = |rs: &[&MultiTierResult]| {
        rs.iter().map(|r| r.max_adjacent_gap()).sum::<f64>() / rs.len().max(1) as f64
    };
    let (gv, gc) = (mean(&vanilla), mean(&colloid));
    if gc >= gv {
        fails.push(format!(
            "Colloid does not balance the chain: mean max adjacent gap {gc:.2} (Colloid) vs {gv:.2} (vanilla)"
        ));
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MultiTierScenario {
        MultiTierScenario {
            local_pages: 256,
            cxl_pages: 384,
            far_pages: 2048,
            ws_pages: 1024,
            hot_pages: 192,
            hot_offset: 768,
            app_cores: 4,
            antagonist_cores_after: 6,
            warmup_ticks: 40,
            converge_ticks: 60,
            measure_ticks: 30,
            seed: 7,
        }
    }

    #[test]
    fn build_selects_the_chain_driver_and_places_the_chain() {
        let sc = tiny();
        let exp = build(&sc, SystemKind::Hemem, true, false);
        assert_eq!(exp.system.name(), "HeMem+Colloid");
        assert_eq!(exp.machine.config().tiers.len(), 3);
        // First-touch reached the bottom tier and the hot set starts there.
        assert_eq!(exp.machine.tier_of(APP_BASE), Some(TierId(0)));
        assert_eq!(
            exp.machine.tier_of(APP_BASE + sc.hot_offset),
            Some(TierId(2))
        );
    }

    #[test]
    fn cells_conserve_pages_and_measure_every_tier() {
        let sc = tiny();
        let r = run_cell(&sc, SystemKind::Hemem, true, false);
        assert_eq!(r.resident_total(), sc.ws_pages);
        assert_eq!(r.tiers.len(), 3);
        assert!(r.ops_per_sec > 0.0);
        let share: f64 = r.tiers.iter().map(|t| t.app_share).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
    }

    #[test]
    fn transactional_cells_conserve_pages_and_reconcile() {
        let sc = tiny();
        let r = run_cell(&sc, SystemKind::Hemem, true, true);
        assert!(r.system.ends_with("[txn]"));
        assert_eq!(r.resident_total(), sc.ws_pages);
        let m = &r.migration;
        assert!(m.completed > 0, "the chain driver should migrate pages");
        assert_eq!(m.batched_pages, m.completed);
        assert!(m.commit_batches <= m.completed);
        assert_eq!(m.started, m.completed + m.aborted() + m.in_flight());
    }

    #[test]
    fn gap_and_inversion_metrics() {
        let obs = |l: Option<f64>| TierObservation {
            latency_ns: l,
            app_share: 0.0,
            resident_pages: 0,
        };
        let r = MultiTierResult {
            system: "x".into(),
            tiers: vec![obs(Some(300.0)), obs(Some(150.0)), obs(None)],
            ops_per_sec: 0.0,
            migration: memsim::MigrationCounters::default(),
        };
        assert!(r.inverted());
        assert!((r.max_adjacent_gap() - 1.0).abs() < 1e-9);
        let balanced = MultiTierResult {
            system: "y".into(),
            tiers: vec![obs(Some(200.0)), obs(Some(200.0)), obs(Some(205.0))],
            ops_per_sec: 0.0,
            migration: memsim::MigrationCounters::default(),
        };
        assert!(!balanced.inverted());
        assert!(balanced.max_adjacent_gap() < 0.05);
    }
}
