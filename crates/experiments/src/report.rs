//! Plain-text report formatting for the figure drivers.

use std::fmt::Write as _;

/// A simple fixed-width table builder.
///
/// # Examples
///
/// ```
/// let mut t = experiments::report::Table::new(vec!["system", "0x", "1x"]);
/// t.row(vec!["HeMem".into(), "1.00".into(), "0.83".into()]);
/// let s = t.render();
/// assert!(s.contains("HeMem"));
/// assert!(s.lines().count() >= 3);
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells beyond the header count are kept, shorter
    /// rows are padded).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        fn cell(r: &[String], c: usize) -> &str {
            r.get(c).map(String::as_str).unwrap_or("")
        }
        for (c, w) in widths.iter_mut().enumerate() {
            *w = self
                .rows
                .iter()
                .map(|r| cell(r, c).len())
                .chain([self.headers.get(c).map(String::len).unwrap_or(0)])
                .max()
                .unwrap_or(0);
        }
        let mut out = String::new();
        let write_row = |out: &mut String, r: &[String]| {
            for (c, width) in widths.iter().enumerate() {
                let _ = write!(out, "{:width$}  ", cell(r, c), width = *width);
            }
            out.truncate(out.trim_end().len());
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }
}

/// Formats operations/second in millions with two decimals (`-` for
/// non-finite values).
pub fn mops(ops_per_sec: f64) -> String {
    if !ops_per_sec.is_finite() {
        return "-".into();
    }
    format!("{:.2}", ops_per_sec / 1e6)
}

/// Formats a latency option in nanoseconds. A `None` latency (idle tier)
/// and a non-finite one (corrupted upstream arithmetic) both render as `-`
/// so tables never show `NaN`/`inf` cells.
pub fn ns(l: Option<f64>) -> String {
    match l {
        Some(l) if l.is_finite() => format!("{l:.0}"),
        _ => "-".into(),
    }
}

/// Formats a ratio with two decimals and a trailing `x` (`-` for
/// non-finite values).
pub fn ratio(x: f64) -> String {
    if !x.is_finite() {
        return "-".into();
    }
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage (`-` for non-finite values).
pub fn pct(x: f64) -> String {
    if !x.is_finite() {
        return "-".into();
    }
    format!("{:.0}%", x * 100.0)
}

/// Formats run-level injected-fault counters as a compact cell
/// (`-` when nothing was injected).
pub fn fault_counts(fs: &memsim::FaultStats) -> String {
    if fs.total() == 0 {
        return "-".into();
    }
    let mut parts = Vec::new();
    for (label, n) in [
        ("noisy", fs.windows_noisy),
        ("stale", fs.windows_stale),
        ("drop", fs.windows_dropped),
        ("mig", fs.migration_failures),
        ("pebs", fs.pebs_dropped),
        ("evac", fs.pages_evacuated),
        ("outage", fs.engine_outage_aborts),
        ("storm", fs.storm_dirties),
    ] {
        if n > 0 {
            parts.push(format!("{label} {n}"));
        }
    }
    parts.join(" ")
}

/// Formats migration-retry counters as
/// `scheduled/recovered/dropped(gave-up) q=max-depth` — `gave_up` counts
/// migrations abandoned at the attempt cap (a subset of `dropped`), and
/// `q=` is the retry queue's high-water depth (`-` for policies without a
/// retry queue).
pub fn retry_counts(rs: Option<&tiersys::RetryStats>) -> String {
    match rs {
        Some(r) => format!(
            "{}/{}/{}({}) q={}",
            r.scheduled, r.recovered, r.dropped, r.gave_up, r.max_pending
        ),
        None => "-".into(),
    }
}

/// Formats cumulative migration-engine counters as
/// `completed/aborted/dirty-retries/failovers/batches` (`-` when the
/// engine never started a copy). Exclusive-engine rows show zeros in the
/// transactional columns; transactional rows are where retries, failovers
/// and shootdown batches appear.
pub fn txn_counts(c: &memsim::MigrationCounters) -> String {
    if c.started == 0 {
        return "-".into();
    }
    format!(
        "{}/{}/{}/{}/{}",
        c.completed,
        c.aborted(),
        c.dirty_retries,
        c.failovers,
        c.commit_batches
    )
}

/// Formats a supervisor's mode timeline as `mode@ms -> mode@ms ...` with a
/// trailing `ttr=` time-to-recover when the run recovered (`-` for
/// unsupervised policies).
pub fn mode_timeline(sv: Option<&tiersys::SupervisionReport>) -> String {
    let Some(sv) = sv else { return "-".into() };
    let mut parts: Vec<String> = sv
        .timeline
        .iter()
        .map(|(t, m)| format!("{}@{:.1}ms", m.name(), t.as_us() / 1000.0))
        .collect();
    if let Some(ttr) = sv.time_to_recover {
        parts.push(format!("ttr={:.1}ms", ttr.as_us() / 1000.0));
    }
    parts.join(" -> ")
}

/// Renders a compact ASCII time series: one `t: value` line per sample
/// bucket, downsampled to at most `max_lines` lines. Delegates to the
/// telemetry renderer so figure drivers and the timeline binary produce
/// byte-identical output.
pub fn series(label: &str, points: &[(f64, f64)], max_lines: usize) -> String {
    telemetry::render::series(label, points, max_lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(mops(12_345_678.0), "12.35");
        assert_eq!(ns(Some(123.4)), "123");
        assert_eq!(ns(None), "-");
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(pct(0.25), "25%");
    }

    #[test]
    fn formatters_never_render_non_finite_values() {
        // A NaN latency used to render as the literal cell "NaN"; pin the
        // dash fallback for every non-finite input across all formatters.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(mops(bad), "-");
            assert_eq!(ns(Some(bad)), "-");
            assert_eq!(ratio(bad), "-");
            assert_eq!(pct(bad), "-");
        }
        // Finite values are untouched by the guard.
        assert_eq!(mops(0.0), "0.00");
        assert_eq!(pct(0.0), "0%");
    }

    #[test]
    fn fault_and_retry_cells() {
        assert_eq!(fault_counts(&memsim::FaultStats::default()), "-");
        let fs = memsim::FaultStats {
            windows_noisy: 12,
            migration_failures: 3,
            ..Default::default()
        };
        assert_eq!(fault_counts(&fs), "noisy 12 mig 3");
        let hard = memsim::FaultStats {
            pages_evacuated: 7,
            engine_outage_aborts: 2,
            migration_failures: 2,
            ..Default::default()
        };
        assert_eq!(fault_counts(&hard), "mig 2 evac 7 outage 2");
        assert_eq!(retry_counts(None), "-");
        let rs = tiersys::RetryStats {
            scheduled: 5,
            recovered: 4,
            dropped: 1,
            gave_up: 1,
            max_pending: 3,
            ..Default::default()
        };
        assert_eq!(retry_counts(Some(&rs)), "5/4/1(1) q=3");
    }

    #[test]
    fn txn_counts_cell() {
        assert_eq!(txn_counts(&memsim::MigrationCounters::default()), "-");
        let c = memsim::MigrationCounters {
            started: 12,
            completed: 9,
            aborted_write_conflict: 2,
            aborted_watchdog: 1,
            dirty_retries: 5,
            failovers: 1,
            commit_batches: 3,
            batched_pages: 9,
            ..Default::default()
        };
        assert_eq!(txn_counts(&c), "9/3/5/1/3");
    }

    #[test]
    fn mode_timeline_cell() {
        assert_eq!(mode_timeline(None), "-");
        let sv = tiersys::SupervisionReport {
            timeline: vec![
                (simkit::SimTime::ZERO, tiersys::SupervisorMode::Normal),
                (
                    simkit::SimTime::from_us(500.0),
                    tiersys::SupervisorMode::Frozen,
                ),
                (
                    simkit::SimTime::from_us(1500.0),
                    tiersys::SupervisorMode::Recovered,
                ),
            ],
            time_to_recover: Some(simkit::SimTime::from_us(2000.0)),
            ..Default::default()
        };
        let s = mode_timeline(Some(&sv));
        assert_eq!(
            s,
            "normal@0.0ms -> frozen@0.5ms -> recovered@1.5ms -> ttr=2.0ms"
        );
    }

    #[test]
    fn series_downsamples() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let s = series("test", &pts, 10);
        assert!(s.lines().count() <= 12);
        assert!(s.contains("-- test --"));
    }

    #[test]
    fn empty_series() {
        assert!(series("x", &[], 5).contains("empty"));
    }
}
