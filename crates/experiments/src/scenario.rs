//! Experiment assembly: machine + workload + tiering policy.
//!
//! The GUPS setup reproduces paper §2.1 exactly (scaled 1024×): a 72 MB
//! working set with a 24 MB hot set, 15 application cores, a 512 KB
//! antagonist buffer pinned to the default tier, and 0/5/10/15 antagonist
//! cores for the 0×/1×/2×/3× contention intensities. The three application
//! scenarios reproduce §5.3 with the default tier sized to one third of the
//! working set.

use memsim::{
    CoreConfig, CoreId, FaultPlan, Machine, MachineConfig, TierId, TrafficClass, Vpn, PAGE_SIZE,
};
use simkit::SimTime;
use tiersys::{
    build_system, ColloidParams, StaticPlacement, SystemKind, SystemParams, TieringSystem,
};
use workloads::{
    AntagonistConfig, AntagonistStream, GupsConfig, GupsStream, KvCacheConfig, KvCacheStream,
    PageRankConfig, PageRankStream, SiloConfig, SiloStream,
};

/// First page of the antagonist's pinned buffer.
const ANTAGONIST_BASE: Vpn = 0;
/// First page of the application's working set.
const APP_BASE: Vpn = 1024;
/// Maximum antagonist threads (cores 16–30 in the paper).
pub const MAX_ANTAGONIST_CORES: usize = 15;
/// Application threads (cores 1–15 in the paper).
pub const APP_CORES: usize = 15;

/// The page-placement policy driving an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Manually pinned placement: `hot_default_fraction` of the hot set in
    /// the default tier, remaining default frames filled with cold pages
    /// (the paper's best-case methodology, §2.1).
    Static {
        /// Fraction of the hot set placed in the default tier.
        hot_default_fraction: f64,
    },
    /// One of the three tiering systems, optionally with Colloid.
    System {
        /// Which system.
        kind: SystemKind,
        /// Attach the Colloid controller.
        colloid: bool,
    },
}

impl Policy {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Policy::Static {
                hot_default_fraction,
            } => format!("static({:.0}%)", hot_default_fraction * 100.0),
            Policy::System { kind, colloid } => {
                if *colloid {
                    format!("{}+Colloid", kind.name())
                } else {
                    kind.name().to_string()
                }
            }
        }
    }
}

/// A GUPS experiment configuration (paper §2.1 defaults).
#[derive(Debug, Clone)]
pub struct GupsScenario {
    /// Application cores (paper: 15).
    pub app_cores: usize,
    /// Antagonist cores: 0/5/10/15 for 0×/1×/2×/3× intensity.
    pub antagonist_cores: usize,
    /// GUPS object size in bytes (Figure 8 sweeps 64–4096).
    pub object_size: u32,
    /// Alternate-tier unloaded latency as a multiple of the default tier's
    /// (Figure 7 sweeps 1.9–2.7).
    pub alt_latency_ratio: f64,
    /// Initial hot-set offset within the working set, in pages. The default
    /// places the hot set outside the first-touch default-tier fill so
    /// systems must discover and migrate it.
    pub hot_offset: u64,
    /// Scheduled hot-set moves (Figure 9).
    pub phases: Vec<(SimTime, u64)>,
    /// Scheduled antagonist-intensity change: at the given time, activate
    /// exactly `usize` antagonist cores (Figure 9 right column).
    pub antagonist_change: Option<(SimTime, usize)>,
    /// Fault-injection plan (robustness experiments; defaults to injecting
    /// nothing, which leaves every run bit-identical to the fault-free
    /// machine).
    pub faults: FaultPlan,
    /// Migration-engine shape. Defaults to the exclusive legacy engine,
    /// which the golden outputs pin; the transactional-migration matrix
    /// swaps in [`memsim::MigrationEngineConfig::transactional`].
    pub engine: memsim::MigrationEngineConfig,
    /// Default-tier frames the first-touch fill leaves free (degradation
    /// experiments use this headroom as the rescue space for hot pages
    /// drained off a shrinking alternate tier). Zero — the default — keeps
    /// the classic "fill the default tier first" layout bit-identical.
    pub first_touch_headroom: u64,
    /// Root RNG seed.
    pub seed: u64,
}

impl GupsScenario {
    /// The §2.1 baseline at a given contention intensity (0–3 ×).
    pub fn intensity(level: usize) -> Self {
        GupsScenario {
            app_cores: APP_CORES,
            antagonist_cores: level * 5,
            object_size: 64,
            alt_latency_ratio: 1.9,
            hot_offset: 9216,
            phases: Vec::new(),
            antagonist_change: None,
            faults: FaultPlan::none(),
            engine: memsim::MigrationEngineConfig::default(),
            first_touch_headroom: 0,
            seed: 0xC0_11_01,
        }
    }

    /// The GUPS workload configuration for this scenario.
    pub fn gups_config(&self) -> GupsConfig {
        let mut g = GupsConfig::paper_default(APP_BASE);
        g.object_size = self.object_size;
        g.hot_offset = self.hot_offset;
        g.phases = self.phases.clone();
        g
    }
}

/// The application scenarios of §5.3 (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// GAPBS PageRank on a power-law graph.
    PageRank,
    /// Silo running YCSB-C.
    Silo,
    /// CacheLib running HeMemKV.
    KvCache,
}

impl AppKind {
    /// All three applications.
    pub const ALL: [AppKind; 3] = [AppKind::PageRank, AppKind::Silo, AppKind::KvCache];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::PageRank => "GAPBS-PageRank",
            AppKind::Silo => "Silo-YCSB-C",
            AppKind::KvCache => "CacheLib-HeMemKV",
        }
    }
}

/// A fully assembled, runnable experiment.
pub struct Experiment {
    /// The machine under test.
    pub machine: Machine,
    /// The placement policy.
    pub system: Box<dyn TieringSystem>,
    /// Machine tick (the base quantum).
    pub tick: SimTime,
    /// Core ids of the antagonist threads (active prefix).
    pub antagonist_core_ids: Vec<CoreId>,
    /// Pending antagonist-intensity change.
    pub antagonist_change: Option<(SimTime, usize)>,
    /// Telemetry sink shared with the machine and tiering system (disabled
    /// by default; see [`Experiment::attach_telemetry`]).
    pub sink: telemetry::Sink,
    /// Workload-schedule markers not yet announced as
    /// [`telemetry::EventKind::WorkloadShift`] events, time-sorted.
    pub schedule_markers: Vec<(SimTime, String)>,
}

impl Experiment {
    /// Wires a telemetry sink through every layer of the experiment: the
    /// machine (migrations, evacuations, faults), the tiering system
    /// (Colloid, retry queue, supervisor), and the runner's own schedule
    /// markers. Telemetry is passive — attaching a sink never changes
    /// simulated behaviour.
    pub fn attach_telemetry(&mut self, sink: telemetry::Sink) {
        self.machine.set_telemetry(sink.clone());
        self.system.set_telemetry(sink.clone());
        self.sink = sink;
    }

    /// Applies a scheduled antagonist change once its time arrives and
    /// announces due workload-schedule markers.
    pub fn apply_schedule(&mut self) {
        let now = self.machine.now();
        if let Some((at, count)) = self.antagonist_change {
            if now >= at {
                for (i, &id) in self.antagonist_core_ids.iter().enumerate() {
                    self.machine.set_core_active(id, i < count);
                }
                self.antagonist_change = None;
                self.sink.emit(telemetry::Source::Runner, || {
                    telemetry::EventKind::WorkloadShift {
                        what: format!("antagonist cores -> {count}"),
                    }
                });
            }
        }
        while let Some((at, _)) = self.schedule_markers.first() {
            if now < *at {
                break;
            }
            let (_, what) = self.schedule_markers.remove(0);
            self.sink.emit(telemetry::Source::Runner, || {
                telemetry::EventKind::WorkloadShift { what }
            });
        }
    }
}

/// Adds the antagonist buffer (pinned to the default tier) and its cores;
/// the first `active` cores run, the rest idle.
fn add_antagonist(machine: &mut Machine, active: usize) -> Vec<CoreId> {
    let buf = AntagonistConfig::paper_default(ANTAGONIST_BASE, 0);
    machine.place_range(buf.range(), TierId::DEFAULT);
    for vpn in buf.range() {
        machine.pin(vpn);
    }
    let mut ids = Vec::new();
    for i in 0..MAX_ANTAGONIST_CORES {
        let cfg = AntagonistConfig::paper_default(ANTAGONIST_BASE, i as u64);
        let id = machine.add_core(
            Box::new(AntagonistStream::new(cfg)),
            CoreConfig::antagonist_default(),
            TrafficClass::Antagonist,
        );
        machine.set_core_active(id, i < active);
        ids.push(id);
    }
    ids
}

/// Places the application's working set: either the static oracle layout or
/// a first-touch fill (default tier first, then the alternate tier).
fn place_working_set(
    machine: &mut Machine,
    ws: std::ops::Range<Vpn>,
    hot: std::ops::Range<Vpn>,
    policy: Policy,
    headroom: u64,
) {
    match policy {
        Policy::Static {
            hot_default_fraction,
        } => {
            let hot_pages = hot.end - hot.start;
            let k = (hot_pages as f64 * hot_default_fraction).round() as u64;
            // Hot split.
            machine.place_range(hot.start..hot.start + k, TierId::DEFAULT);
            machine.place_range(hot.start + k..hot.end, TierId::ALTERNATE);
            // Cold pages fill the default tier's remaining frames, rest go
            // to the alternate tier.
            let mut free = machine.free_pages(TierId::DEFAULT);
            for vpn in ws {
                if hot.contains(&vpn) {
                    continue;
                }
                if free > 0 {
                    machine.place(vpn, TierId::DEFAULT);
                    free -= 1;
                } else {
                    machine.place(vpn, TierId::ALTERNATE);
                }
            }
        }
        Policy::System { .. } => {
            // First-touch: pages allocate from the default tier until it
            // fills (minus any requested headroom), then from the
            // alternate tier.
            let mut free = machine.free_pages(TierId::DEFAULT).saturating_sub(headroom);
            for vpn in ws {
                if free > 0 {
                    machine.place(vpn, TierId::DEFAULT);
                    free -= 1;
                } else {
                    machine.place(vpn, TierId::ALTERNATE);
                }
            }
        }
    }
}

/// Builds the tiering system for `policy` over `managed` pages.
fn build_policy(
    machine: &Machine,
    managed: Vec<std::ops::Range<Vpn>>,
    policy: Policy,
) -> Box<dyn TieringSystem> {
    match policy {
        Policy::Static { .. } => Box::new(StaticPlacement),
        Policy::System { kind, colloid } => {
            let mut params = SystemParams::new(managed, colloid.then(ColloidParams::default));
            params.unloaded_ns = machine
                .config()
                .tiers
                .iter()
                .map(|t| t.unloaded_latency().as_ns())
                .collect();
            build_system(kind, params)
        }
    }
}

/// Assembles the GUPS experiment of §2.1 with explicit Colloid knobs
/// (used by the ablation benches; [`build_gups`] covers the common case).
pub fn build_gups_with_colloid(
    scenario: &GupsScenario,
    kind: SystemKind,
    colloid: ColloidParams,
) -> Experiment {
    let mut exp = build_gups(
        scenario,
        Policy::System {
            kind,
            colloid: false,
        },
    );
    let gups = scenario.gups_config();
    let mut params = SystemParams::new(vec![gups.ws_range()], Some(colloid));
    params.unloaded_ns = exp
        .machine
        .config()
        .tiers
        .iter()
        .map(|t| t.unloaded_latency().as_ns())
        .collect();
    exp.system = build_system(kind, params);
    exp
}

/// Assembles the GUPS experiment of §2.1.
pub fn build_gups(scenario: &GupsScenario, policy: Policy) -> Experiment {
    build_gups_with_stream(scenario, scenario.gups_config(), policy)
}

/// Assembles the GUPS experiment under TPP with explicit THP and Colloid
/// choices (the paper evaluates TPP both with and without THP).
pub fn build_tpp_variant(scenario: &GupsScenario, huge: bool, colloid: bool) -> Experiment {
    build_tpp_with_config(
        scenario,
        tiersys::tpp::TppConfig {
            huge,
            ..tiersys::tpp::TppConfig::default()
        },
        colloid,
    )
}

/// Builds a GUPS experiment running TPP under an arbitrary configuration
/// (e.g. [`tiersys::tpp::TppConfig::fast_discovery`]).
pub fn build_tpp_with_config(
    scenario: &GupsScenario,
    cfg: tiersys::tpp::TppConfig,
    colloid: bool,
) -> Experiment {
    let mut exp = build_gups(
        scenario,
        Policy::System {
            kind: SystemKind::Tpp,
            colloid: false,
        },
    );
    let gups = scenario.gups_config();
    let mut params = SystemParams::new(vec![gups.ws_range()], colloid.then(ColloidParams::default));
    params.unloaded_ns = exp
        .machine
        .config()
        .tiers
        .iter()
        .map(|t| t.unloaded_latency().as_ns())
        .collect();
    exp.system = Box::new(tiersys::tpp::Tpp::new(params, cfg));
    exp
}

/// Assembles the GUPS experiment with an explicitly customised workload
/// configuration (e.g. a non-default read/write mix) — the extended-version
/// sensitivity analyses use this.
pub fn build_gups_with_stream(
    scenario: &GupsScenario,
    gups: GupsConfig,
    policy: Policy,
) -> Experiment {
    let mut cfg = MachineConfig::with_alt_latency_ratio(scenario.alt_latency_ratio);
    cfg.seed = scenario.seed;
    cfg.faults = scenario.faults.clone();
    cfg.engine = scenario.engine.clone();
    let mut machine = Machine::new(cfg);
    let antagonist_core_ids = add_antagonist(&mut machine, scenario.antagonist_cores);

    place_working_set(
        &mut machine,
        gups.ws_range(),
        gups.hot_range(),
        policy,
        scenario.first_touch_headroom,
    );
    for _ in 0..scenario.app_cores {
        machine.add_core(
            Box::new(GupsStream::new(gups.clone()).expect("valid GUPS config")),
            CoreConfig::app_default(),
            TrafficClass::App,
        );
    }
    let system = build_policy(&machine, vec![gups.ws_range()], policy);
    let schedule_markers = gups
        .phases
        .iter()
        .map(|&(at, off)| (at, format!("hot set moves to page offset {off}")))
        .collect();
    Experiment {
        machine,
        system,
        tick: SimTime::from_us(100.0),
        antagonist_core_ids,
        antagonist_change: scenario.antagonist_change,
        sink: telemetry::Sink::default(),
        schedule_markers,
    }
}

/// Assembles one of the §5.3 application experiments; the default tier is
/// sized to one third of the application's working set (plus the pinned
/// antagonist buffer).
pub fn build_app(app: AppKind, antagonist_cores: usize, policy: Policy, seed: u64) -> Experiment {
    // Working-set shape per application.
    let (ws_pages, core_cfg): (u64, CoreConfig) = match app {
        AppKind::PageRank => {
            let c = PageRankConfig::paper_default(APP_BASE);
            let r = c.ws_range();
            (
                r.end - r.start,
                CoreConfig {
                    demand_slots: 8,
                    prefetch_slots: 20,
                    think_time: SimTime::ZERO,
                },
            )
        }
        AppKind::Silo => {
            let c = SiloConfig::paper_default(APP_BASE);
            (c.ws_pages(), CoreConfig::app_default())
        }
        AppKind::KvCache => {
            let c = KvCacheConfig::paper_default(APP_BASE);
            let r = c.ws_range();
            (
                r.end - r.start,
                CoreConfig {
                    demand_slots: 4,
                    prefetch_slots: 30,
                    think_time: SimTime::ZERO,
                },
            )
        }
    };

    let mut cfg = MachineConfig::icelake_two_tier();
    cfg.seed = seed;
    // Default tier = 1/3 of the working set + the antagonist's 128 pages.
    cfg.tiers[0].capacity_bytes = (ws_pages / 3 + 128) * PAGE_SIZE;
    cfg.tiers[1].capacity_bytes = (ws_pages + 1024) * PAGE_SIZE;
    let mut machine = Machine::new(cfg);
    let antagonist_core_ids = add_antagonist(&mut machine, antagonist_cores);

    let ws = APP_BASE..APP_BASE + ws_pages;
    place_working_set(&mut machine, ws.clone(), ws.start..ws.start, policy, 0);
    for i in 0..APP_CORES {
        let stream: Box<dyn memsim::AccessStream> = match app {
            AppKind::PageRank => Box::new(PageRankStream::new(
                PageRankConfig::paper_default(APP_BASE),
                i as u64,
            )),
            AppKind::Silo => Box::new(SiloStream::new(SiloConfig::paper_default(APP_BASE))),
            AppKind::KvCache => {
                Box::new(KvCacheStream::new(KvCacheConfig::paper_default(APP_BASE)))
            }
        };
        machine.add_core(stream, core_cfg.clone(), TrafficClass::App);
    }
    let system = build_policy(&machine, vec![ws], policy);
    Experiment {
        machine,
        system,
        tick: SimTime::from_us(100.0),
        antagonist_core_ids,
        antagonist_change: None,
        sink: telemetry::Sink::default(),
        schedule_markers: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gups_scenario_intensities() {
        assert_eq!(GupsScenario::intensity(0).antagonist_cores, 0);
        assert_eq!(GupsScenario::intensity(3).antagonist_cores, 15);
    }

    #[test]
    fn static_placement_splits_hot_set() {
        let sc = GupsScenario::intensity(0);
        let exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 0.5,
            },
        );
        let g = sc.gups_config();
        let hot = g.hot_range();
        let in_default = hot
            .clone()
            .filter(|&v| exp.machine.tier_of(v) == Some(TierId::DEFAULT))
            .count() as u64;
        let hot_pages = hot.end - hot.start;
        assert_eq!(in_default, hot_pages / 2);
        // Default tier is full (cold fill).
        assert_eq!(exp.machine.free_pages(TierId::DEFAULT), 0);
    }

    #[test]
    fn first_touch_fills_default_first() {
        let sc = GupsScenario::intensity(0);
        let exp = build_gups(
            &sc,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: false,
            },
        );
        let g = sc.gups_config();
        // The first working-set page lands in the default tier, the last in
        // the alternate tier, and the hot region starts fully alternate.
        assert_eq!(
            exp.machine.tier_of(g.ws_range().start),
            Some(TierId::DEFAULT)
        );
        assert_eq!(
            exp.machine.tier_of(g.ws_range().end - 1),
            Some(TierId::ALTERNATE)
        );
        assert_eq!(
            exp.machine.tier_of(g.hot_range().start),
            Some(TierId::ALTERNATE)
        );
    }

    #[test]
    fn every_policy_builds() {
        let sc = GupsScenario::intensity(1);
        for kind in SystemKind::ALL {
            for colloid in [false, true] {
                let exp = build_gups(&sc, Policy::System { kind, colloid });
                let name = exp.system.name();
                assert!(name.contains(kind.name()));
                assert_eq!(name.contains("Colloid"), colloid);
            }
        }
    }

    #[test]
    fn apps_build_with_third_sized_default_tier() {
        for app in AppKind::ALL {
            let exp = build_app(
                app,
                0,
                Policy::System {
                    kind: SystemKind::Hemem,
                    colloid: true,
                },
                1,
            );
            let cap = exp.machine.config().tiers[0].capacity_pages();
            // Default tier full after first-touch (ws >= 3x default).
            assert_eq!(exp.machine.free_pages(TierId::DEFAULT), 0, "{app:?}");
            assert!(cap > 1000, "{app:?} default tier is {cap} pages");
        }
    }

    #[test]
    fn antagonist_change_applies_at_time() {
        let mut sc = GupsScenario::intensity(0);
        sc.antagonist_change = Some((SimTime::from_us(200.0), 15));
        let mut exp = build_gups(
            &sc,
            Policy::Static {
                hot_default_fraction: 1.0,
            },
        );
        // Before the scheduled time nothing changes.
        exp.apply_schedule();
        assert!(exp.antagonist_change.is_some());
        exp.machine.run_tick(SimTime::from_us(250.0));
        exp.apply_schedule();
        assert!(exp.antagonist_change.is_none());
    }

    #[test]
    fn policy_names() {
        assert_eq!(
            Policy::Static {
                hot_default_fraction: 0.3
            }
            .name(),
            "static(30%)"
        );
        assert_eq!(
            Policy::System {
                kind: SystemKind::Tpp,
                colloid: true
            }
            .name(),
            "TPP+Colloid"
        );
    }
}
