//! Transactional-migration matrix (binary `migration`): the exclusive
//! legacy engine vs the multi-channel transactional engine under
//! migration-hostile stress.
//!
//! Each cell runs the §2.1 GUPS machine (HeMem+Colloid) through a
//! contention jump (2× → 3× antagonists) that re-creates Figure 9's
//! migration demand, then measures the arrival-weighted application
//! access latency over the post-jump window while one of three stresses
//! targets the migration path:
//!
//! - **baseline** — no faults; the engines differ only in shape (one
//!   paced channel vs four channels with batched shootdowns);
//! - **write-storm** — a [`memsim::WriteConflictStorm`] dirties in-flight
//!   copy transactions: a first window forces dirty-retry-then-commit, a
//!   second forces retry exhaustion and clean aborts. The storm only has
//!   teeth against the transactional engine (the exclusive engine has no
//!   validate step), so the comparison shows what the Nomad-style
//!   non-exclusive copy costs — and that write-hot pages abort instead of
//!   ping-ponging while read-mostly pages keep migrating;
//! - **channel-stall** — one DMA channel freezes mid-run; the watchdog
//!   must fail its transactions over to healthy channels.
//!
//! The `--smoke` gates (CI: `migration-smoke`) assert the tentpole's
//! robustness story: page conservation across induced aborts and
//! failovers, double-entry reconciliation between per-tick transaction
//! deltas and the engine's cumulative counters, and the read-mostly win —
//! under the write storm the transactional engine's app latency stays at
//! or below the exclusive engine's.
//!
//! Not a paper figure; see EXPERIMENTS.md ("Transactional migration") for
//! recorded results and DESIGN.md §13 for the engine design.

use memsim::{
    ChannelStall, FaultPlan, MigrationCounters, TierId, TrafficClass, TxnTickStats,
    WriteConflictStorm,
};
use simkit::SimTime;
use tiersys::SystemKind;

use crate::report::{mops, ns, txn_counts, Table};
use crate::scenario::{build_gups, Experiment, GupsScenario, Policy};

/// Contention intensity before the jump (matches the degradation matrix).
pub const MATRIX_INTENSITY: usize = 2;

/// Antagonist cores after the jump (3×).
pub const JUMP_CORES: usize = 15;

/// Fraction of the page-number space the write storm treats as write-hot.
pub const STORM_HOT_FRACTION: f64 = 0.3;

/// The two engines under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The single-channel, exclusive legacy engine.
    Exclusive,
    /// The multi-channel transactional engine
    /// ([`memsim::MigrationEngineConfig::transactional`]).
    Transactional,
}

impl EngineKind {
    /// Both engines.
    pub const ALL: [EngineKind; 2] = [EngineKind::Exclusive, EngineKind::Transactional];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Exclusive => "exclusive",
            EngineKind::Transactional => "transactional",
        }
    }
}

/// The three migration-path stresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stress {
    /// No injected faults.
    Baseline,
    /// Write-conflict storm over the whole post-jump window: the first
    /// half dirties each transaction once (retry-then-commit), the second
    /// half dirties past the retry cap (clean abort).
    WriteStorm,
    /// Channel 0 repeatedly stalls mid-burst after the jump; each stall
    /// outlasts several watchdog periods.
    ChannelStall,
}

impl Stress {
    /// All stresses.
    pub const ALL: [Stress; 3] = [Stress::Baseline, Stress::WriteStorm, Stress::ChannelStall];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Stress::Baseline => "baseline",
            Stress::WriteStorm => "write-storm",
            Stress::ChannelStall => "channel-stall",
        }
    }

    /// Tick index of the contention jump (stress onset).
    pub fn stress_tick(self, quick: bool) -> usize {
        if quick {
            150
        } else {
            250
        }
    }

    /// Total timeline length in ticks.
    pub fn run_ticks(self, quick: bool) -> usize {
        if quick {
            300
        } else {
            500
        }
    }

    /// The fault plan, anchored at the machine tick duration. Past the
    /// engine's `dirty_retry_max` of 3, `dirties_per_txn: 8` forces the
    /// abort path in the storm's second window.
    pub fn plan(self, tick: SimTime, quick: bool) -> FaultPlan {
        let start = tick * self.stress_tick(quick) as u64;
        let end = tick * self.run_ticks(quick) as u64;
        let mid = start + (end.saturating_sub(start)) / 2;
        match self {
            Stress::Baseline => FaultPlan::none(),
            Stress::WriteStorm => FaultPlan {
                write_conflict_storms: vec![
                    WriteConflictStorm {
                        start,
                        end: mid,
                        hot_fraction: STORM_HOT_FRACTION,
                        dirties_per_txn: 1,
                    },
                    WriteConflictStorm {
                        start: mid,
                        end,
                        hot_fraction: STORM_HOT_FRACTION,
                        dirties_per_txn: 8,
                    },
                ],
                ..FaultPlan::none()
            },
            Stress::ChannelStall => FaultPlan {
                // A comb of stalls rather than one window: each opens a
                // hair past a tick boundary — while channel 0 is still
                // chewing through the migration batch enqueued at that
                // boundary — and lasts several watchdog periods, so a
                // caught transaction must fail over rather than ride the
                // stall out. The comb spans the hot-set discovery burst
                // and the contention jump, the two migration-heavy
                // stretches of the run.
                // Stalls sit 20 ticks apart so the channel rejoins the
                // rotation (and is busy again) before the next onset, and
                // the onset offset sweeps the first microseconds past the
                // boundary — where the batch enqueued at that boundary is
                // still copying — so successive stalls sample different
                // phases of the copy/commit cycle.
                channel_stalls: (0..14)
                    .map(|i| {
                        let at = tick * (2 + i * 20) + SimTime::from_us(2.0 + (i % 7) as f64);
                        ChannelStall {
                            channel: 0,
                            start: at,
                            end: at + SimTime::from_us(290.0),
                        }
                    })
                    .collect(),
                ..FaultPlan::none()
            },
        }
    }

    /// The GUPS scenario carrying this stress for the given engine.
    pub fn scenario(self, engine: EngineKind, tick: SimTime, quick: bool) -> GupsScenario {
        let mut sc = GupsScenario::intensity(MATRIX_INTENSITY);
        let at = tick * self.stress_tick(quick) as u64;
        sc.antagonist_change = Some((at, JUMP_CORES));
        sc.faults = self.plan(tick, quick);
        if engine == EngineKind::Transactional {
            sc.engine = memsim::MigrationEngineConfig::transactional();
        }
        sc
    }
}

/// One (engine × stress) cell.
#[derive(Debug, Clone)]
pub struct MigrationCell {
    /// Display name, `"<engine> / <stress>"`.
    pub name: String,
    /// The engine under test.
    pub engine: EngineKind,
    /// The injected stress.
    pub stress: Stress,
    /// Application throughput over the post-jump window.
    pub ops_per_sec: f64,
    /// Arrival-weighted mean app access latency over the post-jump
    /// window, ns.
    pub post_latency_ns: Option<f64>,
    /// Cumulative migration-engine counters at the end of the run.
    pub counters: MigrationCounters,
    /// Sum of the per-tick transaction deltas over the whole run — the
    /// other side of the double-entry ledger the smoke gate reconciles
    /// against `counters`.
    pub tick_sums: TxnTickStats,
    /// Injected-fault counters (storm dirties land here).
    pub fault_stats: memsim::FaultStats,
    /// Working-set pages still mapped at the end of the run.
    pub pages_mapped: u64,
    /// Working-set pages the scenario started with.
    pub pages_expected: u64,
}

/// Builds one cell's experiment (HeMem+Colloid on the §2.1 machine).
pub fn build_cell(engine: EngineKind, stress: Stress, quick: bool) -> Experiment {
    let tick = SimTime::from_us(100.0);
    let sc = stress.scenario(engine, tick, quick);
    let exp = build_gups(
        &sc,
        Policy::System {
            kind: SystemKind::Hemem,
            colloid: true,
        },
    );
    exp.machine
        .validate_fault_feasibility()
        .expect("migration-matrix fault plan must be feasible");
    exp
}

/// Runs one cell end to end, accumulating both sides of the accounting
/// ledger tick by tick.
pub fn run_cell(engine: EngineKind, stress: Stress, quick: bool) -> MigrationCell {
    let mut exp = build_cell(engine, stress, quick);
    let tick = exp.tick;
    let sc = stress.scenario(engine, tick, quick);
    let ws = sc.gups_config().ws_range();
    let stress_tick = stress.stress_tick(quick);
    let app = TrafficClass::App.index();

    let mut sums = TxnTickStats::default();
    let mut fault_stats = memsim::FaultStats::default();
    let mut weighted = 0.0f64;
    let mut bytes = 0.0f64;
    let mut ops = 0u64;
    let mut post_start = SimTime::ZERO;
    for i in 0..stress.run_ticks(quick) {
        exp.apply_schedule();
        if i == stress_tick {
            post_start = exp.machine.now();
        }
        let report = exp.machine.run_tick(tick);
        exp.system.on_tick(&mut exp.machine, &report);
        let t = &report.txn;
        sums.begun += t.begun;
        sums.committed += t.committed;
        sums.aborted_write_conflict += t.aborted_write_conflict;
        sums.aborted_watchdog += t.aborted_watchdog;
        sums.dirty_retries += t.dirty_retries;
        sums.failovers += t.failovers;
        sums.commit_batches += t.commit_batches;
        fault_stats.absorb(&report.fault_stats);
        if i >= stress_tick {
            ops += report.app_ops;
            for (ti, w) in report.tiers.iter().enumerate() {
                if let Some(l) = report.littles_latency_ns(TierId(ti as u8)) {
                    weighted += l * w.bytes_by_class[app] as f64;
                    bytes += w.bytes_by_class[app] as f64;
                }
            }
        }
    }
    let dur = exp.machine.now().saturating_sub(post_start);
    let pages_mapped = ws
        .clone()
        .filter(|&v| exp.machine.tier_of(v).is_some())
        .count() as u64;
    MigrationCell {
        name: format!("{} / {}", engine.label(), stress.label()),
        engine,
        stress,
        ops_per_sec: if dur.as_secs() > 0.0 {
            ops as f64 / dur.as_secs()
        } else {
            0.0
        },
        post_latency_ns: (bytes > 0.0).then(|| weighted / bytes),
        counters: exp.machine.migration_counters(),
        tick_sums: sums,
        fault_stats,
        pages_mapped,
        pages_expected: ws.end - ws.start,
    }
}

/// Runs the full matrix, stress-major with the exclusive engine first.
pub fn run_matrix(quick: bool) -> Vec<MigrationCell> {
    let mut out = Vec::new();
    for stress in Stress::ALL {
        for engine in EngineKind::ALL {
            eprintln!("[migration] {} / {} ...", engine.label(), stress.label());
            out.push(run_cell(engine, stress, quick));
        }
    }
    out
}

/// Formats the matrix as the experiment's report table.
pub fn render(cells: &[MigrationCell]) -> String {
    let mut t = Table::new(vec![
        "engine / stress",
        "Mops/s",
        "post-lat (ns)",
        "mig c/a/r/f/b",
        "storm dirties",
        "pages",
    ]);
    for c in cells {
        t.row(vec![
            c.name.clone(),
            mops(c.ops_per_sec),
            ns(c.post_latency_ns),
            txn_counts(&c.counters),
            format!("{}", c.fault_stats.storm_dirties),
            format!("{}/{}", c.pages_mapped, c.pages_expected),
        ]);
    }
    t.render()
}

fn cell(cells: &[MigrationCell], engine: EngineKind, stress: Stress) -> &MigrationCell {
    cells
        .iter()
        .find(|c| c.engine == engine && c.stress == stress)
        .expect("matrix must contain every (engine, stress) cell")
}

/// The `--smoke` self-validation gates. Returns the failures (empty =
/// pass):
///
/// 1. page conservation — every cell ends with the full working set
///    mapped, including the cells that force aborts and failovers;
/// 2. double-entry reconciliation — the sum of per-tick transaction
///    deltas matches the engine's cumulative counters field by field, and
///    every committed transaction went through a shootdown batch;
/// 3. the storm bites — the transactional write-storm cell records storm
///    dirties, dirty retries, *and* retry-exhaustion aborts, yet still
///    commits migrations (read-mostly pages keep flowing);
/// 4. the stall bites — the transactional channel-stall cell records
///    watchdog failovers;
/// 5. the read-mostly win — under the write storm the transactional
///    engine's post-jump app latency is at or below the exclusive
///    engine's (5 % tolerance): non-exclusive copies keep migration off
///    the app's critical path even while write-hot pages conflict.
pub fn smoke_failures(cells: &[MigrationCell]) -> Vec<String> {
    let mut fails = Vec::new();
    for c in cells {
        if c.pages_mapped != c.pages_expected {
            fails.push(format!(
                "{}: {} of {} working-set pages mapped (pages lost across aborts/failovers)",
                c.name, c.pages_mapped, c.pages_expected
            ));
        }
        let m = &c.counters;
        let s = &c.tick_sums;
        for (label, delta_sum, cumulative) in [
            ("begun", s.begun, m.started),
            ("committed", s.committed, m.completed),
            (
                "aborted_write_conflict",
                s.aborted_write_conflict,
                m.aborted_write_conflict,
            ),
            ("aborted_watchdog", s.aborted_watchdog, m.aborted_watchdog),
            ("dirty_retries", s.dirty_retries, m.dirty_retries),
            ("failovers", s.failovers, m.failovers),
            ("commit_batches", s.commit_batches, m.commit_batches),
        ] {
            if delta_sum != cumulative {
                fails.push(format!(
                    "{}: per-tick {label} deltas sum to {delta_sum} but the \
                     cumulative counter says {cumulative} (accounting leak)",
                    c.name
                ));
            }
        }
        if c.engine == EngineKind::Transactional && m.batched_pages != m.completed {
            fails.push(format!(
                "{}: {} committed transactions but {} batched shootdown pages",
                c.name, m.completed, m.batched_pages
            ));
        }
    }
    let storm = cell(cells, EngineKind::Transactional, Stress::WriteStorm);
    if storm.fault_stats.storm_dirties == 0 {
        fails.push("write-storm cell injected no storm dirties".into());
    }
    if storm.counters.dirty_retries == 0 || storm.counters.aborted_write_conflict == 0 {
        fails.push(format!(
            "write-storm cell must exercise both retry and abort paths \
             (retries {}, aborts {})",
            storm.counters.dirty_retries, storm.counters.aborted_write_conflict
        ));
    }
    if storm.counters.completed == 0 {
        fails.push("write-storm cell committed nothing: read-mostly pages stopped flowing".into());
    }
    let stall = cell(cells, EngineKind::Transactional, Stress::ChannelStall);
    if stall.counters.failovers == 0 {
        fails.push("channel-stall cell recorded no watchdog failovers".into());
    }
    let excl_storm = cell(cells, EngineKind::Exclusive, Stress::WriteStorm);
    match (storm.post_latency_ns, excl_storm.post_latency_ns) {
        (Some(txn), Some(excl)) => {
            if txn > excl * 1.05 {
                fails.push(format!(
                    "under the write storm the transactional engine's app latency \
                     ({txn:.1} ns) exceeds the exclusive engine's ({excl:.1} ns)"
                ));
            }
        }
        _ => fails.push("write-storm cells saw no app traffic in the post-jump window".into()),
    }
    fails
}

/// Runs the matrix and prints the table; with `smoke` also prints the
/// gate verdicts and returns the failures.
pub fn run(quick: bool, smoke: bool) -> Vec<String> {
    let cells = run_matrix(quick);
    println!("== Transactional vs exclusive migration under stress (GUPS @ 2x -> 3x, HeMem+Colloid) ==\n");
    print!("{}", render(&cells));
    if !smoke {
        return Vec::new();
    }
    let fails = smoke_failures(&cells);
    if fails.is_empty() {
        println!("\nsmoke: ok");
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stress_plan_validates() {
        let tick = SimTime::from_us(100.0);
        for stress in Stress::ALL {
            for quick in [false, true] {
                stress.plan(tick, quick).validate().unwrap();
                assert!(stress.stress_tick(quick) < stress.run_ticks(quick));
            }
        }
    }

    #[test]
    fn scenarios_wire_engine_and_faults() {
        let tick = SimTime::from_us(100.0);
        let sc = Stress::WriteStorm.scenario(EngineKind::Transactional, tick, true);
        assert!(sc.engine.transactional);
        assert_eq!(sc.faults.write_conflict_storms.len(), 2);
        assert!(sc.antagonist_change.is_some());
        let sc = Stress::ChannelStall.scenario(EngineKind::Exclusive, tick, true);
        assert!(!sc.engine.transactional);
        // The stall comb: every window targets channel 0 and outlasts the
        // watchdog, so a transaction caught mid-copy must fail over.
        assert_eq!(sc.faults.channel_stalls.len(), 14);
        for s in &sc.faults.channel_stalls {
            assert_eq!(s.channel, 0);
            assert!(s.end - s.start > sc.engine.watchdog);
        }
    }

    #[test]
    fn cells_build_and_pass_feasibility() {
        for engine in EngineKind::ALL {
            for stress in Stress::ALL {
                let exp = build_cell(engine, stress, true);
                assert_eq!(
                    exp.machine.config().engine.transactional,
                    engine == EngineKind::Transactional
                );
            }
        }
    }

    #[test]
    fn smoke_gate_catches_a_cooked_ledger() {
        let blank = |engine: EngineKind, stress: Stress| MigrationCell {
            name: format!("{} / {}", engine.label(), stress.label()),
            engine,
            stress,
            ops_per_sec: 1.0,
            post_latency_ns: Some(100.0),
            counters: MigrationCounters::default(),
            tick_sums: TxnTickStats::default(),
            fault_stats: memsim::FaultStats::default(),
            pages_mapped: 0,
            pages_expected: 0,
        };
        let mut cells: Vec<MigrationCell> = Stress::ALL
            .into_iter()
            .flat_map(|s| EngineKind::ALL.into_iter().map(move |e| blank(e, s)))
            .collect();
        // An all-zero matrix trips the storm/stall liveness gates.
        let fails = smoke_failures(&cells);
        assert!(fails.iter().any(|f| f.contains("storm")));
        assert!(fails.iter().any(|f| f.contains("failover")));
        // A counter drift trips the reconciliation gate.
        cells[0].counters.completed = 7;
        let fails = smoke_failures(&cells);
        assert!(fails.iter().any(|f| f.contains("accounting leak")));
        // Lost pages trip conservation.
        cells[1].pages_expected = 10;
        let fails = smoke_failures(&cells);
        assert!(fails.iter().any(|f| f.contains("pages lost")));
    }
}
