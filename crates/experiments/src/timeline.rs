//! End-to-end telemetry demonstration (binary `timeline`).
//!
//! Runs the Figure 9 "contention 0x -> 3x" shift for one tiering system
//! with and without Colloid, with a full [`telemetry::RingRecorder`]
//! attached, then:
//!
//! - exports the event stream as NDJSON and the per-tick metrics as CSV
//!   (under `telemetry_out/`),
//! - renders throughput timelines and an event-log excerpt,
//! - reports the derived analytics: time-to-equilibrium after the shift,
//!   migration-efficiency accounting, and latency-inversion episodes.
//!
//! `--smoke` additionally validates the NDJSON schema and requires a
//! finite time-to-equilibrium for the Colloid run, exiting non-zero on
//! failure (the CI telemetry job drives this).

use simkit::SimTime;
use tiersys::SystemKind;

use crate::figures::fig9::Dynamic;
use crate::report::series;
use crate::runner::{run as run_exp, RunConfig, TickSample};
use crate::scenario::{build_gups, Policy};

/// Event-ring capacity: comfortably above the migration traffic a full
/// 600-tick run generates, so accounting sees the complete stream.
const EVENT_CAP: usize = 200_000;
/// Convergence window (ticks) for the time-to-equilibrium measurement.
const TTE_WINDOW: usize = 25;
/// Relative tolerance for the time-to-equilibrium measurement.
const TTE_TOLERANCE: f64 = 0.05;

/// One instrumented timeline run and everything derived from it.
pub struct CellOutcome {
    /// Policy display name (e.g. `HeMem+Colloid`).
    pub name: String,
    /// Simulated time of the workload shift.
    pub shift_t: SimTime,
    /// Per-tick metrics for the whole run.
    pub series: Vec<TickSample>,
    /// The recorded event stream.
    pub events: Vec<telemetry::Event>,
    /// Events the ring had to drop (0 unless `EVENT_CAP` overflows).
    pub dropped_events: u64,
    /// Time from the shift to throughput re-stabilisation.
    pub tte: Option<SimTime>,
    /// Migration-efficiency accounting over the event stream.
    pub accounting: telemetry::MigrationAccounting,
    /// Latency-inversion episode statistics over the series.
    pub inversions: telemetry::InversionStats,
}

/// Runs one contention-shift timeline with full telemetry attached.
pub fn run_cell(kind: SystemKind, colloid: bool, quick: bool) -> CellOutcome {
    let (pre, post) = if quick { (150, 150) } else { (300, 300) };
    let tick = SimTime::from_us(100.0);
    let sc = Dynamic::ContentionOn.scenario(tick, pre);
    let policy = Policy::System { kind, colloid };
    let name = policy.name();
    let mut exp = build_gups(&sc, policy);
    exp.attach_telemetry(telemetry::Sink::ring(EVENT_CAP, pre + post));
    let r = run_exp(&mut exp, &RunConfig::timeline(pre + post));
    let events = exp.sink.with(|rec| rec.events()).unwrap_or_default();
    let dropped_events = exp.sink.with(|rec| rec.dropped_events()).unwrap_or(0);
    let shift_t = tick * pre as u64;
    let tte = telemetry::time_to_equilibrium(&r.series, shift_t, TTE_WINDOW, TTE_TOLERANCE, |m| {
        m.ops_per_sec
    });
    let accounting = telemetry::migration_accounting(&events);
    let inversions = telemetry::InversionStats::from_series(&r.series);
    CellOutcome {
        name,
        shift_t,
        series: r.series,
        events,
        dropped_events,
        tte,
        accounting,
        inversions,
    }
}

/// Formats one cell's analytics block.
fn analytics_block(c: &CellOutcome) -> String {
    let mut out = String::new();
    let tte = match c.tte {
        Some(t) => format!("{:.1} ms", t.as_ns() / 1e6),
        None => "not reached".to_string(),
    };
    out.push_str(&format!(
        "  time-to-equilibrium after shift: {tte}\n  migrations: {} started, {} completed, \
         {} useful / {} wasted (efficiency {:.0}%), {} failed, {} retried, {} exhausted\n",
        c.accounting.started,
        c.accounting.completed,
        c.accounting.useful,
        c.accounting.wasted,
        c.accounting.efficiency() * 100.0,
        c.accounting.failed,
        c.accounting.retried,
        c.accounting.exhausted,
    ));
    out.push_str(&format!(
        "  latency inversions: {} episodes, {:.1} ms total, longest {:.1} ms ({:.0}% of run)\n",
        c.inversions.episodes,
        c.inversions.total.as_ns() / 1e6,
        c.inversions.longest.as_ns() / 1e6,
        c.inversions.inverted_fraction(&c.series) * 100.0,
    ));
    if c.dropped_events > 0 {
        out.push_str(&format!(
            "  (event ring overflowed: {} oldest events dropped)\n",
            c.dropped_events
        ));
    }
    out
}

/// File-name-safe variant of a policy name.
fn slug(name: &str) -> String {
    name.chars()
        .map(|ch| {
            if ch.is_ascii_alphanumeric() {
                ch.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Runs the demo (vanilla vs Colloid), writes exports, prints the report.
/// Returns the report and, for `--smoke`, any validation failure.
pub fn run(kind: SystemKind, quick: bool, smoke: bool) -> (String, Result<(), String>) {
    let mut out = String::from("== Telemetry timeline: contention 0x -> 3x ==\n");
    let out_dir = std::path::Path::new("telemetry_out");
    let mut check: Result<(), String> = Ok(());
    for colloid in [false, true] {
        eprintln!("[timeline] {} ...", Policy::System { kind, colloid }.name());
        let cell = run_cell(kind, colloid, quick);

        // Exports.
        let ndjson = telemetry::events_to_ndjson(&cell.events);
        let csv = telemetry::metrics_to_csv(&cell.series);
        if let Err(e) = std::fs::create_dir_all(out_dir)
            .and_then(|()| {
                std::fs::write(
                    out_dir.join(format!("{}.ndjson", slug(&cell.name))),
                    &ndjson,
                )
            })
            .and_then(|()| std::fs::write(out_dir.join(format!("{}.csv", slug(&cell.name))), &csv))
        {
            eprintln!("[timeline] export write failed: {e}");
        } else {
            out.push_str(&format!(
                "wrote telemetry_out/{0}.ndjson ({1} events) and telemetry_out/{0}.csv ({2} rows)\n",
                slug(&cell.name),
                cell.events.len(),
                cell.series.len(),
            ));
        }

        // Timeline + event log + analytics.
        let pts: Vec<(f64, f64)> = cell
            .series
            .iter()
            .map(|s| (s.t.as_ns() / 1e6, s.ops_per_sec / 1e6))
            .collect();
        out.push_str(&series(
            &format!(
                "{} | shift @ {:.1} ms | Mops/s over time (ms)",
                cell.name,
                cell.shift_t.as_ns() / 1e6
            ),
            &pts,
            20,
        ));
        out.push_str(&telemetry::render::event_log(&cell.events, 12));
        out.push_str(&analytics_block(&cell));

        // Smoke checks: the NDJSON must parse against the schema, and the
        // Colloid run must reach a finite equilibrium after the shift.
        if smoke && check.is_ok() {
            check = telemetry::validate_ndjson(&ndjson)
                .map(|_| ())
                .map_err(|e| format!("{}: NDJSON validation failed: {e}", cell.name));
            if check.is_ok() && colloid && cell.tte.is_none() {
                check = Err(format!(
                    "{}: no finite time-to-equilibrium after the shift",
                    cell.name
                ));
            }
            if check.is_ok() && cell.events.is_empty() {
                check = Err(format!("{}: event stream is empty", cell.name));
            }
        }
    }
    if smoke {
        out.push_str(match &check {
            Ok(()) => "telemetry smoke: PASS\n",
            Err(e) => {
                out_err(e);
                "telemetry smoke: FAIL\n"
            }
        });
    }
    println!("{out}");
    (out, check)
}

fn out_err(e: &str) {
    eprintln!("[timeline] smoke failure: {e}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_cell_records_events_and_metrics() {
        let c = run_cell(SystemKind::Hemem, true, true);
        assert_eq!(c.series.len(), 300);
        assert!(!c.events.is_empty(), "instrumented run must emit events");
        assert_eq!(c.dropped_events, 0, "ring sized for the full stream");
        // The antagonist switch-on is announced by the runner layer.
        assert!(c
            .events
            .iter()
            .any(|e| matches!(e.kind, telemetry::EventKind::WorkloadShift { .. })));
        // Colloid's placement decisions appear as p-updates.
        assert!(c
            .events
            .iter()
            .any(|e| matches!(e.kind, telemetry::EventKind::PUpdate { .. })));
        // Migration traffic is accounted.
        assert!(c.accounting.completed > 0);
        // The exports round-trip: NDJSON validates, CSV has one row per tick.
        let nd = telemetry::events_to_ndjson(&c.events);
        assert_eq!(telemetry::validate_ndjson(&nd).unwrap(), c.events.len());
        let csv = telemetry::metrics_to_csv(&c.series);
        assert_eq!(csv.lines().count(), c.series.len() + 1);
    }
}
