//! Figure 9 kernel: a quantum in the middle of a hot-set transition — the
//! heaviest moment for every system (sampling, migration and measurement
//! all active). Regenerate the timelines with
//! `cargo run -p experiments --release --bin fig9`.

use colloid_bench::{converged_scenario, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::{GupsScenario, Policy};
use simkit::SimTime;
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for colloid in [false, true] {
        // Hot set moves right after the warm-up window: the benchmark
        // measures quanta during re-convergence.
        let mut sc = GupsScenario::intensity(0);
        sc.phases = vec![(SimTime::from_ms(25.0), 0)];
        let mut exp = converged_scenario(
            &sc,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid,
            },
        );
        let label = if colloid {
            "transition/colloid"
        } else {
            "transition/vanilla"
        };
        g.bench_function(label, |b| b.iter(|| one_quantum(&mut exp)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
