//! Figure 7 kernel: one quantum at the sweep's extreme point — alternate
//! tier at 2.7x the default's unloaded latency, 3x contention, with and
//! without Colloid. Regenerate the heatmaps with
//! `cargo run -p experiments --release --bin fig7`.

use colloid_bench::{converged_scenario, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::{GupsScenario, Policy};
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for colloid in [false, true] {
        let mut sc = GupsScenario::intensity(3);
        sc.alt_latency_ratio = 2.7;
        let mut exp = converged_scenario(
            &sc,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid,
            },
        );
        let label = if colloid {
            "alt2.7x/colloid"
        } else {
            "alt2.7x/vanilla"
        };
        g.bench_function(label, |b| b.iter(|| one_quantum(&mut exp)));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
