//! Figure 4 kernel: a single Algorithm 2 step, and a full toy-model
//! convergence (the paper's conceptual traces). Regenerate the traces with
//! `cargo run -p experiments --release --bin fig4`.

use colloid::ShiftController;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig4/compute_shift", |b| {
        let mut ctl = ShiftController::new(0.01, 0.05);
        let mut p = 0.5;
        b.iter(|| {
            let dp = ctl.compute_shift(black_box(p), 150.0 + 100.0 * p, 180.0 - 50.0 * p);
            p = (p + dp * 0.1).clamp(0.0, 1.0);
            dp
        })
    });
    c.bench_function("fig4/toy-convergence-60-quanta", |b| {
        b.iter(|| {
            let mut ctl = ShiftController::new(0.01, 0.02);
            let mut p: f64 = 0.9;
            for _ in 0..60 {
                let l_d = 150.0 + 250.0 * (p - 0.6);
                let l_a = 150.0 - 120.0 * (p - 0.6);
                let dp = ctl.compute_shift(p, l_d.max(1.0), l_a.max(1.0));
                p = if l_d < l_a {
                    (p + dp).min(1.0)
                } else {
                    (p - dp).max(0.0)
                };
            }
            p
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
