//! Figure 6 kernel: the balanced steady state that Figure 6 reports —
//! one quantum of HeMem+Colloid at 1x, where the hot set is split across
//! tiers to equalise latencies. Regenerate the figure's data with
//! `cargo run -p experiments --release --bin fig6`.

use colloid_bench::{converged_gups, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut exp = converged_gups(SystemKind::Hemem, true, 1);
    g.bench_function("HeMem+Colloid@1x/balanced-quantum", |b| {
        b.iter(|| one_quantum(&mut exp))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
