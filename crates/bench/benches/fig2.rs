//! Figure 2 kernel: the CHA counter read + Little's-Law latency derivation
//! that root-causes Figure 1, measured on a loaded machine. Regenerate the
//! figure's data with `cargo run -p experiments --release --bin fig2`.

use colloid_bench::{converged_gups, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use memsim::TierId;
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let mut exp = converged_gups(SystemKind::Hemem, false, 2);
    g.bench_function("loaded-quantum+latency-derivation", |b| {
        b.iter(|| {
            let report = exp.machine.run_tick(exp.tick);
            let l_d = report.littles_latency_ns(TierId::DEFAULT);
            let l_a = report.littles_latency_ns(TierId::ALTERNATE);
            exp.system.on_tick(&mut exp.machine, &report);
            (l_d, l_a)
        })
    });
    let mut exp2 = converged_gups(SystemKind::Hemem, false, 2);
    g.bench_function("quantum-only", |b| b.iter(|| one_quantum(&mut exp2)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
