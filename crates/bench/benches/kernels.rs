//! Substrate micro-benchmarks: the hot paths every figure's simulation
//! rests on — DRAM controller scheduling, CHA accounting, event queue,
//! samplers, and the page-list structures.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memsim::controller::MemoryController;
use memsim::{AccessKind, Cha, DramConfig, TierId, TrafficClass};
use simkit::rng::{seed_from, ScrambledZipf, Zipf};
use simkit::{EventQueue, SimTime};
use tierctl::{FreqTracker, TierBins};

fn bench(c: &mut Criterion) {
    c.bench_function("kernels/controller-schedule", |b| {
        let mut mc = MemoryController::new(DramConfig::ddr4_3200_8ch());
        let mut t = SimTime::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            t += SimTime::from_ns(2.0);
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
            mc.schedule(t, addr >> 32, AccessKind::Read).done
        })
    });

    c.bench_function("kernels/cha-arrival-departure", |b| {
        let mut cha = Cha::new(2);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimTime::from_ns(5.0);
            cha.on_read_arrival(TierId::DEFAULT, t, TrafficClass::App);
            cha.on_read_departure(TierId::DEFAULT, t + SimTime::from_ns(100.0));
        })
    });

    c.bench_function("kernels/event-queue-push-pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        for i in 0..256u64 {
            q.push(SimTime::from_ns(i as f64), i);
        }
        let mut t = SimTime::from_ns(256.0);
        b.iter(|| {
            let (_, e) = q.pop().expect("non-empty");
            t += SimTime::from_ns(1.0);
            q.push(t, e);
            e
        })
    });

    c.bench_function("kernels/zipf-sample", |b| {
        let z = Zipf::new(400_000, 0.99);
        let mut rng = seed_from(1, 0);
        b.iter(|| z.sample(&mut rng))
    });

    c.bench_function("kernels/scrambled-zipf-sample", |b| {
        let z = ScrambledZipf::new(400_000, 0.99);
        let mut rng = seed_from(2, 0);
        b.iter(|| z.sample(&mut rng))
    });

    c.bench_function("kernels/freq-tracker-record", |b| {
        let mut t = FreqTracker::new(16);
        let mut vpn = 0u64;
        b.iter(|| {
            vpn = (vpn + 1) % 18_432;
            t.record(black_box(vpn))
        })
    });

    c.bench_function("kernels/tierbins-update", |b| {
        let mut bins = TierBins::new(2, 5, 16);
        for vpn in 0..18_432 {
            bins.insert(vpn, TierId::DEFAULT, 0);
        }
        let mut vpn = 0u64;
        let mut count = 0u32;
        b.iter(|| {
            vpn = (vpn + 1) % 18_432;
            count = (count + 1) % 16;
            bins.update_count(black_box(vpn), count);
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
