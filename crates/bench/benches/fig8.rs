//! Figure 8 kernel: one quantum with 4096 B GUPS objects (the prefetcher
//! raises per-core parallelism and the default tier saturates even at 0x).
//! Regenerate the heatmaps with
//! `cargo run -p experiments --release --bin fig8`.

use colloid_bench::{converged_scenario, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::scenario::{GupsScenario, Policy};
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [64u32, 4096] {
        let mut sc = GupsScenario::intensity(0);
        sc.object_size = size;
        let mut exp = converged_scenario(
            &sc,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
        );
        g.bench_function(format!("object{size}B@0x/quantum"), |b| {
            b.iter(|| one_quantum(&mut exp))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
