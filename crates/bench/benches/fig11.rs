//! Figure 11 kernel: one steady-state quantum of each real-application
//! workload under HeMem+Colloid at 2x contention. Regenerate the
//! per-application tables with
//! `cargo run -p experiments --release --bin fig11`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_app, AppKind, Policy};
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for app in AppKind::ALL {
        let mut exp = build_app(
            app,
            10,
            Policy::System {
                kind: SystemKind::Hemem,
                colloid: true,
            },
            7,
        );
        let rc = RunConfig {
            min_warmup_ticks: 40,
            max_warmup_ticks: 120,
            measure_ticks: 0,
            window: 30,
            tolerance: 0.03,
            collect_series: false,
        };
        let _ = run(&mut exp, &rc);
        g.bench_function(format!("{}@2x/quantum", app.name()), |b| {
            b.iter(|| {
                let report = exp.machine.run_tick(exp.tick);
                exp.system.on_tick(&mut exp.machine, &report);
                report.app_ops
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
