//! Ablations of the Colloid design choices DESIGN.md calls out:
//!
//! 1. **watermark reset on/off** — without the reset, a moved equilibrium
//!    is never re-acquired (printed toy-model comparison);
//! 2. **ε / δ sensitivity** — detection speed vs steady-state optimality
//!    (the paper's extended-version analysis);
//! 3. **dynamic migration limit on/off** — oscillation around the
//!    equilibrium on the real simulator (printed steady-state comparison);
//! 4. the benchmarked kernel: one quantum with/without the dynamic limit.

use colloid::ShiftController;
use colloid_bench::one_quantum;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::runner::{run, RunConfig};
use experiments::scenario::{build_gups_with_colloid, GupsScenario};
use std::time::Duration;
use tiersys::{ColloidParams, SystemKind};

/// Toy model latencies crossing at `p_star`.
fn latencies(p_star: f64, p: f64) -> (f64, f64) {
    (
        (150.0 + 250.0 * (p - p_star)).max(1.0),
        (150.0 - 120.0 * (p - p_star)).max(1.0),
    )
}

fn drive(ctl: &mut ShiftController, p_star: f64, p: &mut f64, quanta: usize) {
    for _ in 0..quanta {
        let (l_d, l_a) = latencies(p_star, *p);
        let dp = ctl.compute_shift(*p, l_d, l_a);
        *p = if l_d < l_a {
            (*p + dp).min(1.0)
        } else {
            (*p - dp).max(0.0)
        };
    }
}

fn print_reset_ablation() {
    println!("\n== ablation: watermark reset (equilibrium moves 0.3 -> 0.8) ==");
    for (label, mut ctl) in [
        ("reset ON ", ShiftController::new(0.01, 0.02)),
        ("reset OFF", ShiftController::without_reset(0.01, 0.02)),
    ] {
        let mut p = 0.9;
        drive(&mut ctl, 0.3, &mut p, 80);
        drive(&mut ctl, 0.8, &mut p, 150);
        println!(
            "  {label}: final p = {p:.3} (target 0.8), resets = {}",
            ctl.resets()
        );
    }
}

fn print_sensitivity() {
    println!("\n== ablation: epsilon/delta sensitivity (toy model, p* = 0.6) ==");
    for (eps, delta) in [
        (0.005, 0.02),
        (0.01, 0.02),
        (0.05, 0.02),
        (0.01, 0.005),
        (0.01, 0.1),
    ] {
        let mut ctl = ShiftController::new(eps, delta);
        let mut p: f64 = 1.0;
        let mut quanta = 0;
        for q in 0..300 {
            let (l_d, l_a) = latencies(0.6, p);
            if (l_d - l_a).abs() <= 0.05 * l_d && quanta == 0 {
                quanta = q;
            }
            let dp = ctl.compute_shift(p, l_d, l_a);
            p = if l_d < l_a {
                (p + dp).min(1.0)
            } else {
                (p - dp).max(0.0)
            };
        }
        let (l_d, l_a) = latencies(0.6, p);
        println!(
            "  eps={eps:<6} delta={delta:<6}: converged-in={quanta:>3} quanta, final |L_D-L_A|/L_D = {:.3}",
            (l_d - l_a).abs() / l_d
        );
    }
}

fn bench(c: &mut Criterion) {
    print_reset_ablation();
    print_sensitivity();

    // Dynamic migration limit on/off: compare steady-state migration
    // traffic (the limit's purpose is damping oscillation near the
    // equilibrium, §3.2), then benchmark the quantum for both variants.
    println!("\n== ablation: dynamic migration limit (HeMem+Colloid @ 1x) ==");
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (label, dynamic_limit) in [("dynamic-limit-on", true), ("dynamic-limit-off", false)] {
        let sc = GupsScenario::intensity(1);
        let params = ColloidParams {
            dynamic_limit,
            ..ColloidParams::default()
        };
        let mut exp = build_gups_with_colloid(&sc, SystemKind::Hemem, params);
        // Warm to steady state, then observe migration churn.
        let rc = RunConfig {
            min_warmup_ticks: 40,
            max_warmup_ticks: 150,
            measure_ticks: 50,
            window: 30,
            tolerance: 0.03,
            collect_series: false,
        };
        let r = run(&mut exp, &rc);
        let mig = memsim::TrafficClass::Migration.index();
        let mig_bytes: u64 = (0..2).map(|t| r.bytes_by_tier_class[t][mig]).sum();
        println!(
            "  {label}: steady-state migration traffic = {:.2} MB over the window, {:.1} Mops/s",
            mig_bytes as f64 / 1e6,
            r.ops_per_sec / 1e6
        );
        g.bench_function(format!("{label}/quantum"), |b| {
            b.iter(|| one_quantum(&mut exp))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
