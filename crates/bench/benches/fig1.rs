//! Figure 1 kernel: one steady-state quantum of GUPS under each vanilla
//! system at 3x contention (the configuration whose gap vs best-case is
//! the paper's headline). Regenerate the figure's data with
//! `cargo run -p experiments --release --bin fig1`.

use colloid_bench::{converged_gups, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for kind in SystemKind::ALL {
        let mut exp = converged_gups(kind, false, 3);
        g.bench_function(format!("{}@3x/quantum", kind.name()), |b| {
            b.iter(|| one_quantum(&mut exp))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
