//! Figure 10 kernel: the migration engine — enqueueing and draining page
//! copies through the DMA path. Regenerate the migration-rate timelines
//! with `cargo run -p experiments --release --bin fig10`.

use criterion::{criterion_group, criterion_main, Criterion};
use memsim::{Machine, MachineConfig, TierId};
use simkit::SimTime;

fn bench(c: &mut Criterion) {
    c.bench_function("fig10/migrate-64-pages", |b| {
        b.iter_batched(
            || {
                let mut cfg = MachineConfig::icelake_two_tier();
                cfg.migration_bandwidth = 1e12; // not the bottleneck here
                let mut m = Machine::new(cfg);
                m.place_range(0..4096, TierId::DEFAULT);
                m
            },
            |mut m| {
                for vpn in 0..64 {
                    let _ = m.enqueue_migration(vpn, TierId::ALTERNATE);
                }
                m.run_tick(SimTime::from_us(100.0));
                m.migrated_pages()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
