//! Figure 5 kernel: one steady-state quantum of GUPS under each
//! Colloid-integrated system at 3x contention (the paper's headline
//! recovery). Regenerate the figure's data with
//! `cargo run -p experiments --release --bin fig5`.

use colloid_bench::{converged_gups, one_quantum};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tiersys::SystemKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for kind in SystemKind::ALL {
        let mut exp = converged_gups(kind, true, 3);
        g.bench_function(format!("{}+Colloid@3x/quantum", kind.name()), |b| {
            b.iter(|| one_quantum(&mut exp))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
