//! Property-based tests for the simulation kernel.

use proptest::prelude::*;
use simkit::rng::{seed_from, ScrambledZipf, Zipf};
use simkit::stats::{LatencyHist, OnlineStats, TimeIntegrator};
use simkit::{EventQueue, SimTime};

proptest! {
    /// Events pop in non-decreasing time order regardless of push order,
    /// and same-time events pop in push order.
    #[test]
    fn event_queue_orders_any_sequence(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// The Zipf pmf is non-increasing in rank and sums to 1.
    #[test]
    fn zipf_pmf_shape(n in 2u64..5_000, theta in 0.01f64..0.99) {
        let z = Zipf::new(n, theta);
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for i in 0..n {
            let p = z.pmf(i);
            prop_assert!(p <= prev + 1e-12);
            prev = p;
            sum += p;
        }
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    /// Zipf samples always land in the domain.
    #[test]
    fn zipf_samples_in_domain(n in 1u64..10_000, theta in 0.01f64..0.99, seed in 0u64..1_000) {
        let z = Zipf::new(n.max(1), theta);
        let s = ScrambledZipf::new(n.max(1), theta);
        let mut rng = seed_from(seed, 0);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n.max(1));
            prop_assert!(s.sample(&mut rng) < n.max(1));
        }
    }

    /// Histogram quantiles are monotone in q and bracket the sample range
    /// within bucket resolution.
    #[test]
    fn hist_quantiles_monotone(samples in prop::collection::vec(1.0f64..50_000.0, 1..300)) {
        let mut h = LatencyHist::new();
        for &s in &samples {
            h.record(SimTime::from_ns(s));
        }
        let mut prev = 0.0;
        for i in 0..=10 {
            let q = h.quantile_ns(i as f64 / 10.0);
            prop_assert!(q >= prev, "quantile not monotone: {q} < {prev}");
            prev = q;
        }
        let max = samples.iter().cloned().fold(0.0, f64::max);
        prop_assert!(h.quantile_ns(1.0) >= max * 0.85);
    }

    /// The time integrator equals a step-function integral computed naively.
    #[test]
    fn integrator_matches_naive(steps in prop::collection::vec((1u64..100, 0.0f64..50.0), 1..100)) {
        let mut i = TimeIntegrator::new();
        let mut t = 0u64;
        let mut naive = 0.0;
        let mut cur = 0.0;
        for &(dt, v) in &steps {
            naive += cur * dt as f64; // value held over [t, t+dt)
            t += dt;
            cur = v;
            i.set(SimTime::from_ps(t), v);
        }
        // Integrate a final stretch.
        naive += cur * 1_000.0;
        let total = i.integral_at(SimTime::from_ps(t + 1_000));
        // integral_at works in ns; our naive sum is in value*ps.
        prop_assert!((total - naive / 1_000.0).abs() < 1e-6);
    }

    /// Welford mean matches the naive mean.
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert_eq!(s.count(), xs.len() as u64);
        prop_assert!(s.min() <= s.mean() + 1e-9 && s.mean() <= s.max() + 1e-9);
    }

    /// seed_from is a pure function of (seed, stream).
    #[test]
    fn seeding_is_pure(seed in 0u64..u64::MAX, stream in 0u64..1_000) {
        use rand::Rng;
        let mut a = seed_from(seed, stream);
        let mut b = seed_from(seed, stream);
        for _ in 0..16 {
            prop_assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
