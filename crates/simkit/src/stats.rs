//! Statistics primitives.
//!
//! These are the measurement tools the simulated hardware counters and the
//! Colloid controller are built from:
//!
//! - [`Ewma`]: exponentially weighted moving average — Colloid smooths its
//!   occupancy and rate measurements with EWMA (paper §3.1).
//! - [`TimeIntegrator`]: time-weighted integral of a step function — this is
//!   exactly what a CHA occupancy counter accumulates in hardware.
//! - [`OnlineStats`]: streaming mean/variance/min/max (Welford).
//! - [`LatencyHist`]: log-bucketed latency histogram with quantile queries.

use crate::time::SimTime;

/// Exponentially weighted moving average.
///
/// The first observation initialises the average directly (no bias toward
/// zero); subsequent observations are blended with weight `alpha`.
///
/// # Examples
///
/// ```
/// let mut e = simkit::stats::Ewma::new(0.5);
/// e.update(10.0);
/// e.update(20.0);
/// assert_eq!(e.get(), 15.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// Larger `alpha` weighs recent samples more (less smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Feeds one observation.
    pub fn update(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// Current smoothed value (0.0 before any observation).
    pub fn get(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// True if at least one observation has been fed.
    pub fn is_initialized(&self) -> bool {
        self.value.is_some()
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Time-weighted integral of a piecewise-constant signal.
///
/// This models a hardware occupancy counter: every cycle the counter adds
/// the current queue occupancy; reading it twice and dividing the delta by
/// the elapsed time yields the average occupancy — the `O` term of
/// Little's Law in the Colloid latency measurement.
///
/// # Examples
///
/// ```
/// use simkit::{stats::TimeIntegrator, SimTime};
///
/// let mut occ = TimeIntegrator::new();
/// occ.set(SimTime::from_ns(0.0), 2.0);   // 2 requests in flight
/// occ.set(SimTime::from_ns(10.0), 4.0);  // 2 more arrive at t=10
/// let integral = occ.integral_at(SimTime::from_ns(20.0));
/// // 2*10 + 4*10 = 60 request-ns
/// assert_eq!(integral, 60.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimeIntegrator {
    last_time: SimTime,
    current: f64,
    integral: f64,
}

impl TimeIntegrator {
    /// Creates an integrator at value 0, time 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the signal to `value` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `t` precedes the previous update.
    pub fn set(&mut self, t: SimTime, value: f64) {
        debug_assert!(t >= self.last_time, "TimeIntegrator time went backwards");
        self.integral += self.current * t.saturating_sub(self.last_time).as_ns();
        self.last_time = t;
        self.current = value;
    }

    /// Adds `delta` to the signal at time `t`.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(t, v);
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The integral `∫ value dt` (in value·ns) up to time `t`.
    pub fn integral_at(&self, t: SimTime) -> f64 {
        self.integral + self.current * t.saturating_sub(self.last_time).as_ns()
    }

    /// Mean value of the signal over `[t0, t1]` given integral snapshots.
    ///
    /// Returns 0.0 for an empty interval.
    pub fn mean_between(i0: f64, i1: f64, t0: SimTime, t1: SimTime) -> f64 {
        let dt = t1.saturating_sub(t0).as_ns();
        if dt <= 0.0 {
            0.0
        } else {
            (i1 - i0) / dt
        }
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if self.n == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (0.0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Log-bucketed latency histogram over [`SimTime`] samples.
///
/// Buckets grow geometrically (12.5 % per step), covering 1 ns to ~100 µs
/// with ~1 % relative quantile error — plenty for memory-latency shapes.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: f64,
}

const HIST_BASE_NS: f64 = 1.0;
const HIST_GROWTH: f64 = 1.125;
const HIST_BUCKETS: usize = 128;

impl LatencyHist {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHist {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum_ns: 0.0,
        }
    }

    fn bucket_of(ns: f64) -> usize {
        if ns <= HIST_BASE_NS {
            return 0;
        }
        let idx = (ns / HIST_BASE_NS).log(HIST_GROWTH).floor() as usize;
        idx.min(HIST_BUCKETS - 1)
    }

    fn bucket_upper_ns(idx: usize) -> f64 {
        HIST_BASE_NS * HIST_GROWTH.powi(idx as i32 + 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, lat: SimTime) {
        let ns = lat.as_ns();
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in nanoseconds (exact, not bucketed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) in nanoseconds.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::bucket_upper_ns(i);
            }
        }
        Self::bucket_upper_ns(HIST_BUCKETS - 1)
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum_ns = 0.0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_initialized());
        e.update(100.0);
        assert_eq!(e.get(), 100.0);
    }

    #[test]
    fn ewma_blends() {
        let mut e = Ewma::new(0.25);
        e.update(0.0);
        e.update(100.0);
        assert_eq!(e.get(), 25.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(42.0);
        }
        assert!((e.get() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.5);
        e.update(5.0);
        e.reset();
        assert!(!e.is_initialized());
        assert_eq!(e.get(), 0.0);
    }

    #[test]
    #[should_panic]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn integrator_step_function() {
        let mut i = TimeIntegrator::new();
        i.set(SimTime::from_ns(0.0), 1.0);
        i.set(SimTime::from_ns(5.0), 3.0);
        // 1*5 + 3*5 = 20
        assert_eq!(i.integral_at(SimTime::from_ns(10.0)), 20.0);
        assert_eq!(i.current(), 3.0);
    }

    #[test]
    fn integrator_add_delta() {
        let mut i = TimeIntegrator::new();
        i.add(SimTime::from_ns(0.0), 2.0);
        i.add(SimTime::from_ns(10.0), -1.0);
        assert_eq!(i.current(), 1.0);
        assert_eq!(
            i.integral_at(SimTime::from_ns(20.0)),
            2.0 * 10.0 + 1.0 * 10.0
        );
    }

    #[test]
    fn integrator_mean_between() {
        let m = TimeIntegrator::mean_between(10.0, 70.0, SimTime::ZERO, SimTime::from_ns(20.0));
        assert_eq!(m, 3.0);
        // Empty interval yields zero, not NaN.
        let z = TimeIntegrator::mean_between(5.0, 5.0, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(z, 0.0);
    }

    #[test]
    fn online_stats_mean_var() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert!((s.variance() - 4.0).abs() < 1e-9);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn online_stats_empty_is_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
    }

    #[test]
    fn hist_mean_is_exact() {
        let mut h = LatencyHist::new();
        h.record(SimTime::from_ns(70.0));
        h.record(SimTime::from_ns(130.0));
        assert_eq!(h.mean_ns(), 100.0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn hist_quantiles_are_close() {
        let mut h = LatencyHist::new();
        for i in 1..=1000 {
            h.record(SimTime::from_ns(i as f64));
        }
        let p50 = h.quantile_ns(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50 = {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99 = {p99}");
    }

    #[test]
    fn hist_merge_adds_counts() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(SimTime::from_ns(10.0));
        b.record(SimTime::from_ns(30.0));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean_ns(), 20.0);
    }

    #[test]
    fn hist_reset_clears() {
        let mut h = LatencyHist::new();
        h.record(SimTime::from_ns(10.0));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn hist_extremes_clamp() {
        let mut h = LatencyHist::new();
        h.record(SimTime::from_ns(0.1));
        h.record(SimTime::from_ms(10.0));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) > 0.0);
    }
}
