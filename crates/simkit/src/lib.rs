//! Simulation kernel for the Colloid reproduction.
//!
//! `simkit` provides the building blocks shared by every simulated component
//! in this workspace:
//!
//! - [`time`]: a picosecond-resolution simulated clock type ([`SimTime`])
//!   with convenient nanosecond/microsecond constructors.
//! - [`event`]: a deterministic discrete-event queue ([`EventQueue`]) with
//!   stable FIFO ordering among same-timestamp events.
//! - [`rng`]: seeded, splittable pseudo-random number helpers plus a Zipfian
//!   sampler (used by the YCSB-style workloads).
//! - [`stats`]: statistics primitives used throughout the simulator and the
//!   Colloid controller — EWMA smoothing, time-weighted averages, windowed
//!   rate meters, online mean/variance, and log-bucketed latency histograms.
//! - [`profile`]: an opt-in wall-clock profiler for the simulator's own hot
//!   paths (scoped timers aggregated into a self/total table).
//!
//! Everything in this crate is deterministic: given the same seed and the
//! same sequence of calls, results are reproducible bit-for-bit. The one
//! deliberately non-deterministic module is [`profile`], which reads the
//! host clock — it is purely observational and feeds nothing back into
//! simulated state.

pub mod event;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use time::SimTime;
