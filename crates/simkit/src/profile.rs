//! Wall-clock profiler for the simulator's own hot paths.
//!
//! Simulated time tells you where the *modelled* machine spends its
//! cycles; this module tells you where the *simulator process* spends
//! host CPU. Hot paths wrap themselves in [`scope`] guards; the profiler
//! aggregates wall-clock **self** time (elapsed minus time attributed to
//! enclosed scopes), **total** time, and call counts per label, rendered
//! by [`table`].
//!
//! Design constraints:
//!
//! - **Near-zero cost when off** (the default): `scope` checks one
//!   thread-local flag and returns an inert guard — no clock read, no
//!   map lookup.
//! - **Purely observational**: the profiler reads [`Instant`] but feeds
//!   nothing back into the simulation, so enabling it cannot perturb
//!   simulated results (wall time never influences sim time).
//! - **Recursion-safe**: a label's total is only accumulated when its
//!   outermost instance leaves the stack, so recursive or re-entrant
//!   scopes don't double-count totals.
//!
//! State is thread-local; each thread profiles independently.

use std::cell::RefCell;
use std::time::{Duration, Instant};

#[derive(Default)]
struct Frame {
    label: &'static str,
    start: Option<Instant>,
    /// Wall time attributed to directly nested scopes, subtracted from
    /// this frame's elapsed time to get self time.
    child: Duration,
}

#[derive(Clone, Copy, Default)]
struct Entry {
    calls: u64,
    self_time: Duration,
    total: Duration,
    /// Live instances of this label on the stack (recursion guard).
    on_stack: u32,
}

#[derive(Default)]
struct ProfState {
    enabled: bool,
    stack: Vec<Frame>,
    entries: Vec<(&'static str, Entry)>,
}

impl ProfState {
    fn entry(&mut self, label: &'static str) -> &mut Entry {
        if let Some(i) = self.entries.iter().position(|(l, _)| *l == label) {
            &mut self.entries[i].1
        } else {
            self.entries.push((label, Entry::default()));
            &mut self.entries.last_mut().unwrap().1
        }
    }
}

thread_local! {
    static STATE: RefCell<ProfState> = RefCell::new(ProfState::default());
}

/// One aggregated profiler row, as reported by [`stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopeStats {
    /// Label passed to [`scope`].
    pub label: &'static str,
    /// Completed instances.
    pub calls: u64,
    /// Wall time inside this scope excluding enclosed scopes.
    pub self_time: Duration,
    /// Wall time inside this scope including enclosed scopes; recursive
    /// re-entries are counted once (outermost instance only).
    pub total: Duration,
}

/// Turns profiling on or off for the current thread. Turning it on does
/// not clear previously accumulated stats; see [`reset`].
pub fn set_enabled(on: bool) {
    STATE.with(|s| s.borrow_mut().enabled = on);
}

/// Whether profiling is currently on for this thread.
pub fn enabled() -> bool {
    STATE.with(|s| s.borrow().enabled)
}

/// Clears all accumulated stats (open scopes on the stack survive and
/// will report into the fresh accumulator when they close).
pub fn reset() {
    STATE.with(|s| s.borrow_mut().entries.clear());
}

/// Enters a profiled scope. The returned guard attributes wall time to
/// `label` until it drops. When profiling is off this is one flag check.
#[must_use = "the scope is timed until the returned guard drops"]
pub fn scope(label: &'static str) -> Scope {
    let armed = STATE.with(|s| {
        let mut st = s.borrow_mut();
        if !st.enabled {
            return false;
        }
        st.entry(label).on_stack += 1;
        st.stack.push(Frame {
            label,
            start: Some(Instant::now()),
            child: Duration::ZERO,
        });
        true
    });
    Scope { armed }
}

/// Guard returned by [`scope`]; closes the scope on drop.
pub struct Scope {
    armed: bool,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            // `armed` guarantees a matching push; a missing frame means
            // reset-while-open or drop-order abuse — tolerate it.
            let Some(frame) = st.stack.pop() else { return };
            let elapsed = frame.start.map(|t| t.elapsed()).unwrap_or_default();
            if let Some(parent) = st.stack.last_mut() {
                parent.child += elapsed;
            }
            let entry = st.entry(frame.label);
            entry.calls += 1;
            entry.self_time += elapsed.saturating_sub(frame.child);
            entry.on_stack = entry.on_stack.saturating_sub(1);
            if entry.on_stack == 0 {
                entry.total += elapsed;
            }
        });
    }
}

/// Snapshot of the per-label aggregates, sorted by descending self time.
pub fn stats() -> Vec<ScopeStats> {
    let mut rows: Vec<ScopeStats> = STATE.with(|s| {
        s.borrow()
            .entries
            .iter()
            .map(|(label, e)| ScopeStats {
                label,
                calls: e.calls,
                self_time: e.self_time,
                total: e.total,
            })
            .collect()
    });
    rows.sort_by(|a, b| b.self_time.cmp(&a.self_time).then(a.label.cmp(b.label)));
    rows
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{us:.1}us")
    }
}

/// Renders the profiler table: one row per label, sorted by self time,
/// with per-call averages. Empty string when nothing was profiled.
pub fn table() -> String {
    let rows = stats();
    if rows.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>9} {:>10} {:>10} {:>10}\n",
        "scope", "calls", "self", "total", "total/call"
    ));
    for r in rows {
        let per_call = if r.calls > 0 {
            r.total / r.calls as u32
        } else {
            Duration::ZERO
        };
        out.push_str(&format!(
            "{:<28} {:>9} {:>10} {:>10} {:>10}\n",
            r.label,
            r.calls,
            fmt_dur(r.self_time),
            fmt_dur(r.total),
            fmt_dur(per_call)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(min: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < min {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        reset();
        set_enabled(false);
        {
            let _g = scope("idle");
            spin(Duration::from_micros(50));
        }
        assert!(stats().is_empty());
        assert_eq!(table(), "");
    }

    #[test]
    fn nested_scopes_split_self_and_total() {
        reset();
        set_enabled(true);
        {
            let _outer = scope("outer_split");
            spin(Duration::from_millis(2));
            {
                let _inner = scope("inner_split");
                spin(Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let rows = stats();
        let outer = rows.iter().find(|r| r.label == "outer_split").unwrap();
        let inner = rows.iter().find(|r| r.label == "inner_split").unwrap();
        assert_eq!((outer.calls, inner.calls), (1, 1));
        // Outer total covers inner total; outer self excludes it.
        assert!(outer.total >= inner.total);
        assert!(outer.self_time < outer.total);
        assert!(inner.self_time >= Duration::from_millis(1));
        assert!(outer.total >= Duration::from_millis(3));
        reset();
    }

    #[test]
    fn recursion_counts_total_once() {
        reset();
        set_enabled(true);
        fn recurse(depth: u32) {
            let _g = scope("recurse_once");
            spin(Duration::from_micros(200));
            if depth > 0 {
                recurse(depth - 1);
            }
        }
        recurse(3);
        set_enabled(false);
        let rows = stats();
        let r = rows.iter().find(|r| r.label == "recurse_once").unwrap();
        assert_eq!(r.calls, 4);
        // Total accumulated only at the outermost exit: roughly the whole
        // 4 x 200us once, not quadratically.
        assert!(r.total >= Duration::from_micros(700));
        assert!(r.total < 2 * r.self_time + Duration::from_millis(1));
        reset();
    }

    #[test]
    fn table_lists_scopes_with_headers() {
        reset();
        set_enabled(true);
        {
            let _g = scope("tabled");
            spin(Duration::from_micros(100));
        }
        set_enabled(false);
        let t = table();
        assert!(t.contains("scope"));
        assert!(t.contains("total/call"));
        assert!(t.contains("tabled"));
        reset();
    }
}
