//! Simulated time.
//!
//! All simulated components share a single notion of time: [`SimTime`], a
//! monotonically non-decreasing instant measured in integer **picoseconds**
//! since the start of the simulation. Picosecond resolution lets us express
//! sub-nanosecond service times (e.g. a 64 B burst on a 75 GB/s UPI link
//! occupies ~853 ps) without floating-point drift in the event queue.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
const PS_PER_NS: u64 = 1_000;

/// An instant (or duration) of simulated time, in picoseconds.
///
/// `SimTime` is used both as an absolute instant and as a duration; the
/// arithmetic operators below cover both uses. Saturating subtraction is
/// deliberate: latency math on noisy counters must never panic.
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
///
/// let base = SimTime::from_ns(70.0);
/// let wait = SimTime::from_ns(35.5);
/// assert_eq!((base + wait).as_ns(), 105.5);
/// assert!(base < base + wait);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (start of simulation).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant; useful as an "idle" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from (possibly fractional) nanoseconds.
    ///
    /// Negative inputs clamp to zero.
    pub fn from_ns(ns: f64) -> Self {
        if ns <= 0.0 {
            return SimTime(0);
        }
        SimTime((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Creates a time from microseconds.
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1_000.0)
    }

    /// Creates a time from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1_000_000.0)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time in microseconds.
    pub fn as_us(self) -> f64 {
        self.as_ns() / 1_000.0
    }

    /// Time in seconds.
    pub fn as_secs(self) -> f64 {
        self.as_ns() / 1e9
    }

    /// Saturating difference `self - other` (zero if `other > self`).
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero instant.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies a duration by a (non-negative) floating-point scale.
    pub fn scale(self, factor: f64) -> SimTime {
        debug_assert!(factor >= 0.0, "cannot scale time by a negative factor");
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns >= 1e9 {
            write!(f, "{:.3}s", ns / 1e9)
        } else if ns >= 1e6 {
            write!(f, "{:.3}ms", ns / 1e6)
        } else if ns >= 1e3 {
            write!(f, "{:.3}us", ns / 1e3)
        } else {
            write!(f, "{ns:.1}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trip() {
        let t = SimTime::from_ns(70.0);
        assert_eq!(t.as_ps(), 70_000);
        assert_eq!(t.as_ns(), 70.0);
    }

    #[test]
    fn fractional_ns() {
        let t = SimTime::from_ns(0.853);
        assert_eq!(t.as_ps(), 853);
    }

    #[test]
    fn negative_ns_clamps_to_zero() {
        assert_eq!(SimTime::from_ns(-5.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100.0);
        let b = SimTime::from_ns(30.0);
        assert_eq!((a + b).as_ns(), 130.0);
        assert_eq!((a - b).as_ns(), 70.0);
        assert_eq!((a * 3).as_ns(), 300.0);
        assert_eq!((a / 4).as_ns(), 25.0);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = SimTime::from_ns(10.0);
        let b = SimTime::from_ns(30.0);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_ns(10.0);
        let b = SimTime::from_ns(30.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::from_us(1.0), SimTime::from_ns(1_000.0));
        assert_eq!(SimTime::from_ms(1.0), SimTime::from_us(1_000.0));
    }

    #[test]
    fn scale_rounds() {
        let t = SimTime::from_ns(10.0);
        assert_eq!(t.scale(2.5).as_ns(), 25.0);
        assert_eq!(t.scale(0.0), SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_ns(50.0)), "50.0ns");
        assert_eq!(format!("{}", SimTime::from_us(2.5)), "2.500us");
        assert_eq!(format!("{}", SimTime::from_ms(3.25)), "3.250ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_ns(i as f64)).sum();
        assert_eq!(total.as_ns(), 10.0);
    }
}
