//! Seeded randomness helpers.
//!
//! Every stochastic component in the simulator draws from a [`SmallRng`]
//! seeded through [`seed_from`], so that an experiment is fully determined
//! by its top-level seed. [`Zipf`] implements the Zipfian distribution used
//! by the YCSB-C/Silo workload (the `rand` crate alone does not ship one),
//! following the classic Gray et al. "Quickly generating billion-record
//! synthetic databases" rejection-free method that YCSB also uses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives a child RNG from a root seed and a stream label.
///
/// Different `(seed, stream)` pairs produce statistically independent
/// streams, letting e.g. each simulated core own its own RNG while the whole
/// machine stays reproducible from one seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = simkit::rng::seed_from(42, 0);
/// let mut b = simkit::rng::seed_from(42, 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seed_from(seed: u64, stream: u64) -> SmallRng {
    // SplitMix64-style mixing to decorrelate adjacent (seed, stream) pairs.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// A Zipfian sampler over `0..n` with skew parameter `theta`.
///
/// Rank 0 is the most popular item. YCSB's default skew is `theta = 0.99`.
/// Sampling is O(1) using the closed-form inverse of the (approximate)
/// Zipfian CDF from Gray et al., SIGMOD '94 — the same construction YCSB's
/// `ZipfianGenerator` uses.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let zipf = simkit::rng::Zipf::new(1_000, 0.99);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0, 1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    /// Generalised harmonic number `H_{n,theta}`.
    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact summation up to a cutoff, then the Euler-Maclaurin integral
        // approximation; domains in this workspace are ≤ a few million, and
        // the approximation error beyond 10^6 terms is < 1e-9 relative.
        const EXACT: u64 = 1_000_000;
        let m = n.min(EXACT);
        let mut z = 0.0;
        for i in 1..=m {
            z += 1.0 / (i as f64).powf(theta);
        }
        if n > m {
            // Integral of x^-theta from m to n.
            z += ((n as f64).powf(1.0 - theta) - (m as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        z
    }

    /// Draws a rank in `0..n` (0 = hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability mass of rank `i` (0-based) under the exact Zipf law.
    pub fn pmf(&self, i: u64) -> f64 {
        debug_assert!(i < self.n);
        1.0 / ((i + 1) as f64).powf(self.theta) / self.zetan
    }

    /// `zeta(2, theta)`, exposed for tests.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// A scrambled Zipfian sampler: Zipfian popularity, but popular items are
/// spread uniformly over the key space (as in YCSB's `ScrambledZipfian`).
///
/// This is what real key-value workloads look like: hotness is not
/// correlated with key order, so hot keys land on pages scattered across the
/// working set.
#[derive(Debug, Clone)]
pub struct ScrambledZipf {
    inner: Zipf,
}

impl ScrambledZipf {
    /// Creates a scrambled sampler over `0..n` with skew `theta`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipf {
            inner: Zipf::new(n, theta),
        }
    }

    /// Draws an item in `0..n`; popularity is Zipfian but scattered.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let rank = self.inner.sample(rng);
        fnv1a_64(rank) % self.inner.n()
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.inner.n()
    }
}

/// FNV-1a hash of a u64, used to scatter ranks over the key space.
pub fn fnv1a_64(x: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for i in 0..8 {
        h ^= (x >> (i * 8)) & 0xFF;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_from_is_deterministic() {
        let mut a = seed_from(7, 3);
        let mut b = seed_from(7, 3);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seed_from_streams_differ() {
        let mut a = seed_from(7, 0);
        let mut b = seed_from(7, 1);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zipf_in_range() {
        let z = Zipf::new(100, 0.99);
        let mut rng = seed_from(1, 0);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_rank0_is_hottest() {
        let z = Zipf::new(1_000, 0.99);
        let mut rng = seed_from(2, 0);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[100]);
        // Rank 0 should carry roughly pmf(0) of the mass.
        let observed = counts[0] as f64 / 200_000.0;
        let expected = z.pmf(0);
        assert!(
            (observed - expected).abs() / expected < 0.15,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(500, 0.8);
        let total: f64 = (0..500).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_large_domain_zeta_approximation() {
        // zeta computed with the integral tail should be close to a direct
        // (slower) summation for a domain just over the exact cutoff.
        let n = 1_200_000u64;
        let theta = 0.99;
        let approx = Zipf::zeta(n, theta);
        let mut exact = 0.0;
        for i in 1..=n {
            exact += 1.0 / (i as f64).powf(theta);
        }
        assert!((approx - exact).abs() / exact < 1e-6);
    }

    #[test]
    fn scrambled_zipf_spreads_hot_keys() {
        let s = ScrambledZipf::new(10_000, 0.99);
        let mut rng = seed_from(3, 0);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        // The hottest item should not be item 0 deterministically; mass
        // should be scattered. Find top item and check it isn't adjacent to
        // the next hottest.
        let (top_idx, _) = counts.iter().enumerate().max_by_key(|(_, c)| **c).unwrap();
        let mut rest = counts.clone();
        rest[top_idx] = 0;
        let (second_idx, _) = rest.iter().enumerate().max_by_key(|(_, c)| **c).unwrap();
        assert!((top_idx as i64 - second_idx as i64).unsigned_abs() > 1);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a_64(0), fnv1a_64(0));
        assert_ne!(fnv1a_64(1), fnv1a_64(2));
    }
}
