//! Deterministic discrete-event queue.
//!
//! The simulator advances by repeatedly popping the earliest pending event.
//! Determinism matters: two events scheduled for the same instant must pop
//! in the order they were pushed (stable FIFO tie-breaking), otherwise runs
//! with identical seeds could diverge depending on heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry: `(time, sequence, payload)` with min-ordering.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // (and, on ties, the first-pushed) entry at the top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue ordered by [`SimTime`].
///
/// Events with equal timestamps pop in insertion order. The queue also
/// tracks the current simulation clock: [`EventQueue::now`] returns the
/// timestamp of the most recently popped event.
///
/// # Examples
///
/// ```
/// use simkit::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(20.0), "late");
/// q.push(SimTime::from_ns(10.0), "early");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.now(), SimTime::from_ns(10.0));
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `time` is in the past: the simulator never
    /// schedules retroactive work.
    pub fn push(&mut self, time: SimTime, event: E) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` at `delay` after the current clock.
    pub fn push_after(&mut self, delay: SimTime, event: E) {
        self.push(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            debug_assert!(s.time >= self.now, "clock went backwards");
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// Timestamp of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The current simulation clock (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(30.0), 3);
        q.push(SimTime::from_ns(10.0), 1);
        q.push(SimTime::from_ns(20.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.push(SimTime::from_ns(42.0), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(42.0));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10.0), "a");
        q.pop();
        q.push_after(SimTime::from_ns(5.0), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15.0));
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(7.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(7.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10.0), 1);
        q.push(SimTime::from_ns(30.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_ns(20.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.is_empty());
    }
}
