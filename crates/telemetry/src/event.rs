//! The typed event vocabulary shared by every instrumented layer.
//!
//! Events carry plain data (page numbers, tier indices, latencies) rather
//! than types from the crates that emit them, so `telemetry` sits at the
//! bottom of the dependency graph (only `simkit`) and every other crate can
//! depend on it without cycles.

use simkit::SimTime;

/// A virtual page number (mirrors `memsim::Vpn` without the dependency).
pub type Vpn = u64;

/// Which layer emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// The simulated machine (migration engine, evacuations, faults).
    Machine,
    /// A Colloid controller (watermarks, placement decisions).
    Colloid,
    /// A tiering system (retry queue, placement bookkeeping).
    System,
    /// The tiering supervisor (mode machine, canary probes).
    Supervisor,
    /// The experiment runner (workload schedule markers).
    Runner,
}

impl Source {
    /// Number of distinct sources (for per-source bookkeeping).
    pub const COUNT: usize = 5;

    /// Dense index in `0..COUNT`.
    pub fn index(self) -> usize {
        match self {
            Source::Machine => 0,
            Source::Colloid => 1,
            Source::System => 2,
            Source::Supervisor => 3,
            Source::Runner => 4,
        }
    }

    /// Display / NDJSON name.
    pub fn name(self) -> &'static str {
        match self {
            Source::Machine => "machine",
            Source::Colloid => "colloid",
            Source::System => "system",
            Source::Supervisor => "supervisor",
            Source::Runner => "runner",
        }
    }
}

/// Why a migration did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// Engine-outage hard fault: the copy thread is wedged (the abort
    /// still burned the engine's time budget).
    Outage,
    /// Transient in-flight failure: the copy aborted before touching the
    /// DMA engine and the destination reservation was released.
    Transient,
    /// A copy transaction exhausted its dirty-retry budget: the page is
    /// write-hot and stays put in the source tier.
    WriteConflict,
    /// A copy transaction hit the watchdog bound with no healthy channel
    /// left to fail over to.
    Watchdog,
}

impl FailReason {
    /// Display / NDJSON name.
    pub fn name(self) -> &'static str {
        match self {
            FailReason::Outage => "outage",
            FailReason::Transient => "transient",
            FailReason::WriteConflict => "write_conflict",
            FailReason::Watchdog => "watchdog",
        }
    }
}

/// What happened. Tier fields are dense tier indices (0 = default tier).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The migration engine picked a page up and started the copy.
    MigrationStart {
        /// Page being copied.
        vpn: Vpn,
        /// Source tier index the page is leaving.
        src: u8,
        /// Destination tier index.
        dst: u8,
    },
    /// A page copy finished and the mapping flipped.
    MigrationComplete {
        /// Page that moved.
        vpn: Vpn,
        /// Source tier index the page left.
        src: u8,
        /// Destination tier index.
        dst: u8,
        /// Wall-clock copy duration (engine start to mapping flip), ns.
        copy_ns: f64,
    },
    /// A migration aborted in flight.
    MigrationFail {
        /// Page that stayed put.
        vpn: Vpn,
        /// Intended destination tier index.
        dst: u8,
        /// Failure class.
        reason: FailReason,
    },
    /// A copy transaction's validation found the snapshot dirtied by a
    /// concurrent write; the transaction backs off and re-copies (or
    /// aborts with [`FailReason::WriteConflict`] once out of retries).
    TxnDirty {
        /// Page whose copy was invalidated.
        vpn: Vpn,
        /// The copy pass that just failed validation (1-based).
        attempt: u32,
    },
    /// The watchdog moved a stuck copy transaction to a healthy channel.
    TxnFailover {
        /// Page whose transaction failed over.
        vpn: Vpn,
        /// The stalled channel being abandoned.
        from_channel: u32,
        /// The healthy channel restarting the copy.
        to_channel: u32,
    },
    /// A batch of validated copy transactions committed under one TLB
    /// shootdown and flipped their mappings together.
    BatchCommit {
        /// Transactions committed by this shootdown.
        pages: u64,
        /// Shootdown cost charged to the batch, ns.
        cost_ns: f64,
    },
    /// The retry queue successfully re-enqueued a parked migration.
    MigrationRetry {
        /// Page being re-driven.
        vpn: Vpn,
        /// Destination tier index.
        dst: u8,
    },
    /// The retry queue abandoned a migration at its attempt cap.
    RetryExhausted {
        /// Page whose migration was given up on.
        vpn: Vpn,
        /// Destination tier index it never reached.
        dst: u8,
    },
    /// Algorithm 2 moved a watermark (or reset the pair).
    WatermarkMove {
        /// New lower watermark.
        p_lo: f64,
        /// New upper watermark.
        p_hi: f64,
        /// The move was a full reset (`p_lo ← 0`, `p_hi ← 1`).
        reset: bool,
    },
    /// Algorithm 1 issued a placement decision this quantum.
    PUpdate {
        /// Default-tier access-probability share.
        p: f64,
        /// Smoothed default-tier loaded latency, ns.
        l_default_ns: f64,
        /// Smoothed alternate-tier loaded latency, ns.
        l_alternate_ns: f64,
        /// Migration direction ("promote" / "demote").
        mode: &'static str,
        /// Desired access-probability shift.
        delta_p: f64,
        /// Byte budget for this quantum's migrations.
        byte_limit: u64,
    },
    /// The supervisor's mode machine changed mode.
    ModeTransition {
        /// Mode being left.
        from: &'static str,
        /// Mode being entered.
        to: &'static str,
    },
    /// The supervisor sent a one-page canary migration while `Frozen`.
    ProbeSent {
        /// The canary page.
        vpn: Vpn,
    },
    /// Fault injection perturbed this tick (per-tick counter deltas).
    FaultsInjected {
        /// Counter windows with injected noise.
        noisy: u64,
        /// Counter windows served stale.
        stale: u64,
        /// Counter windows dropped (zeroed).
        dropped: u64,
        /// Transient in-flight migration failures.
        migration_failures: u64,
        /// PEBS samples dropped.
        pebs_dropped: u64,
        /// Pages force-evacuated by a tier shrink.
        evacuated: u64,
        /// Migrations aborted by an engine outage.
        outage_aborts: u64,
        /// Copy-transaction validations forced dirty by a write-conflict
        /// storm.
        storm_dirties: u64,
    },
    /// A tier-shrink hard fault force-evacuated pages this tick.
    TierEvacuation {
        /// Pages teleported off the shrunk tier.
        pages: u64,
    },
    /// A scheduled workload change took effect (hot-set move, antagonist
    /// intensity change).
    WorkloadShift {
        /// Human-readable description of the change.
        what: String,
    },
    /// Learned equilibrium state was discarded (watermark reset after a
    /// hard fault or supervisor recovery).
    EquilibriumReset,
}

impl EventKind {
    /// Display / NDJSON name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MigrationStart { .. } => "migration_start",
            EventKind::MigrationComplete { .. } => "migration_complete",
            EventKind::MigrationFail { .. } => "migration_fail",
            EventKind::TxnDirty { .. } => "txn_dirty",
            EventKind::TxnFailover { .. } => "txn_failover",
            EventKind::BatchCommit { .. } => "batch_commit",
            EventKind::MigrationRetry { .. } => "migration_retry",
            EventKind::RetryExhausted { .. } => "retry_exhausted",
            EventKind::WatermarkMove { .. } => "watermark_move",
            EventKind::PUpdate { .. } => "p_update",
            EventKind::ModeTransition { .. } => "mode_transition",
            EventKind::ProbeSent { .. } => "probe_sent",
            EventKind::FaultsInjected { .. } => "faults_injected",
            EventKind::TierEvacuation { .. } => "tier_evacuation",
            EventKind::WorkloadShift { .. } => "workload_shift",
            EventKind::EquilibriumReset => "equilibrium_reset",
        }
    }
}

/// One recorded event: when, who, what.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time the event happened at.
    pub t: SimTime,
    /// Emitting layer.
    pub source: Source,
    /// Payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_indices_are_dense_and_distinct() {
        let all = [
            Source::Machine,
            Source::Colloid,
            Source::System,
            Source::Supervisor,
            Source::Runner,
        ];
        let mut seen = [false; Source::COUNT];
        for s in all {
            assert!(!seen[s.index()], "{:?} collides", s);
            seen[s.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn names_are_snake_case() {
        let kinds = [
            EventKind::MigrationStart {
                vpn: 1,
                src: 1,
                dst: 0,
            },
            EventKind::TxnDirty { vpn: 1, attempt: 2 },
            EventKind::TxnFailover {
                vpn: 1,
                from_channel: 0,
                to_channel: 1,
            },
            EventKind::BatchCommit {
                pages: 8,
                cost_ns: 4000.0,
            },
            EventKind::EquilibriumReset,
            EventKind::WorkloadShift {
                what: "x".to_string(),
            },
        ];
        for k in &kinds {
            assert!(k.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
        assert_eq!(FailReason::Outage.name(), "outage");
        assert_eq!(FailReason::WriteConflict.name(), "write_conflict");
        assert_eq!(FailReason::Watchdog.name(), "watchdog");
        assert_eq!(Source::Supervisor.name(), "supervisor");
    }
}
